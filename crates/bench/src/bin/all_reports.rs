//! Prints every table/figure reproduction in paper order.
fn main() {
    for r in [
        netcl_bench::report_table3(),
        netcl_bench::report_fig12(),
        netcl_bench::report_table4(3),
        netcl_bench::report_table5(),
        netcl_bench::report_table6(),
        netcl_bench::report_fig13(),
        netcl_bench::report_fig14_agg(&[2, 4, 6], 32),
        netcl_bench::report_fig14_cache(),
        netcl_bench::report_ablations(),
        netcl_bench::report_ablate_duplication(),
        netcl_bench::report_chaos(8),
    ] {
        println!("{r}");
    }
}
