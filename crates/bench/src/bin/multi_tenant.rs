//! Merged-vs-dedicated multi-tenant throughput and placement quality
//! (DESIGN.md §17).
//!
//! Two real NetCL applications — AGG (tenant 0) and CACHE (tenant 1) —
//! are merged onto one switch with `netcl::compile_tenants`, and each
//! tenant's stream is measured twice: on the merged pipeline (per-tenant
//! accounting enabled) and on its dedicated-switch solo baseline (the
//! tenant's namespaced module re-extracted from the merge, so the wire
//! format is identical). The ratio is the cost of sharing; the
//! `multi_tenant` section of `BENCH_switch.json` records it together
//! with a placement-quality figure from `netcl_place::plan` over the
//! allocator-reported per-tenant footprints.
//!
//! Modes:
//!
//! - `--smoke`: seconds-scale CI run, prints results, writes nothing;
//! - `--gate`: fails (exit 1) if any tenant's merged throughput drops
//!   more than 10% below the dedicated baseline recorded in the
//!   checked-in `BENCH_switch.json`;
//! - default: full measurement, merges the section into
//!   `BENCH_switch.json`.
//!
//! Every mode first runs a correctness pass: each tenant's packets
//! produce byte-identical outputs on the merged and dedicated switches,
//! the merged switch's per-tenant counters reconcile exactly with the
//! solo runs' global counters, and an over-budget tenant set is rejected
//! with a structured `E0502` diagnostic — never a panic.

use std::time::Instant;

use netcl_apps::{agg, cache};
use netcl_bmv2::Switch;
use netcl_runtime::managed::ManagedMemory;
use netcl_tofino::{TenantBudget, TenantBudgets, TofinoSpec};

/// One tenant's bench state: its merged-comp packet stream plus the
/// merged and dedicated switches it runs on.
struct TenantBench {
    id: u16,
    name: &'static str,
    packets: Vec<Vec<u8>>,
}

/// AGG sized for a *shared* pipeline: two tenants split one switch's PHV,
/// so each runs a narrower shape than it would alone (the default 32-value
/// AGG plus the 8-word CACHE overflow the 4096-bit PHV together — exactly
/// the budget pressure the tenant model exists to surface).
fn agg_cfg() -> agg::AggConfig {
    agg::AggConfig { slot_size: 8, ..Default::default() }
}

fn cache_cfg() -> cache::CacheConfig {
    cache::CacheConfig { words: 4, ..Default::default() }
}

fn sources() -> (String, String) {
    (agg::netcl_source(&agg_cfg()), cache::netcl_source(&cache_cfg()))
}

fn compile_merged(
    budgets: &TenantBudgets,
) -> Result<netcl::MergedCompilation, netcl::CompileError> {
    let (agg_src, cache_src) = sources();
    netcl::compile_tenants(
        &[
            netcl::TenantSource { tenant: 0, name: "agg.ncl", source: &agg_src },
            netcl::TenantSource { tenant: 1, name: "cache.ncl", source: &cache_src },
        ],
        1,
        &netcl::CompileOptions::default(),
        budgets,
    )
}

/// The wire offset of the NCL comp byte (the tenant classifier).
const COMP_BYTE: usize = 8;

/// Rewrites a packet built against a tenant's original comp numbering to
/// the merged comp id. Solo baselines keep merged ids, so the same bytes
/// run on both switches.
fn to_merged_comp(mut wire: Vec<u8>, merged_comp: u8) -> Vec<u8> {
    wire[COMP_BYTE] = merged_comp;
    wire
}

/// Seeds the CACHE tenant's lookup/value state through the control plane,
/// under its merged (`t1__`) names — identically on whichever switch is
/// passed, so merged and dedicated start from the same state.
fn populate_cache(module: &netcl::ir::Module, sw: &mut Switch) {
    use netcl::sema::model::LookupEntry;
    let cfg = cache_cfg();
    let mm = ManagedMemory::new(module);
    for k in 0..4u64 {
        let slot = k as u16;
        let value = cache::server_value(&cfg, k);
        mm.lookup_insert(sw, "t1__index", LookupEntry::Exact { key: k, value: slot as u64 })
            .expect("insert t1__index");
        for (i, &w) in value.iter().enumerate() {
            mm.write(sw, "t1__Val", &[i, slot as usize], w).expect("write t1__Val");
        }
        mm.write(sw, "t1__Share", &[slot as usize], (1u64 << cfg.words) - 1).expect("t1__Share");
        mm.write(sw, "t1__Valid", &[slot as usize], 1).expect("t1__Valid");
    }
}

fn tenant_streams(merged: &netcl::MergedCompilation) -> Vec<TenantBench> {
    let agg_cfg = self::agg_cfg();
    let cache_cfg = self::cache_cfg();
    let comp_of = |tenant: u16| {
        merged.tenant(tenant).expect("tenant slice").map.comp(1).expect("kernel comp 1")
    };
    let mut agg_packets = Vec::new();
    for c in 0..4 {
        for w in 0..agg_cfg.num_workers {
            agg_packets.push(to_merged_comp(agg::chunk_packet(&agg_cfg, w, c), comp_of(0)));
        }
    }
    let cache_packets = (0..8u64)
        .map(|k| to_merged_comp(cache::request(&cache_cfg, 1, 2, 1, k, None), comp_of(1)))
        .collect();
    vec![
        TenantBench { id: 0, name: "AGG", packets: agg_packets },
        TenantBench { id: 1, name: "CACHE", packets: cache_packets },
    ]
}

fn merged_switch(merged: &netcl::MergedCompilation) -> Switch {
    let mut sw = Switch::new(merged.merged.tna_p4.clone());
    let comps: Vec<(u8, u16)> = merged
        .tenants
        .iter()
        .flat_map(|s| s.map.comps.iter().map(|&(_, m)| (m, s.tenant)))
        .collect();
    sw.set_tenants(&comps);
    populate_cache(&merged.merged.tna_ir, &mut sw);
    sw
}

fn solo_switch(merged: &netcl::MergedCompilation, tenant: u16) -> Switch {
    let slice = merged.tenant(tenant).expect("tenant slice");
    let mut sw = Switch::new(slice.solo.tna_p4.clone());
    if tenant == 1 {
        populate_cache(&slice.solo.tna_ir, &mut sw);
    }
    sw
}

/// Processes `total` packets (cycling the set) and returns packets/sec.
fn measure(sw: &mut Switch, packets: &[Vec<u8>], total: usize) -> f64 {
    let mut pkt = sw.new_packet();
    let mut out = Vec::new();
    for wire in packets {
        let _ = sw.process_into(wire, &mut pkt, &mut out);
    }
    let start = Instant::now();
    let mut done = 0usize;
    'outer: loop {
        for wire in packets {
            let _ = sw.process_into(wire, &mut pkt, &mut out);
            done += 1;
            if done >= total {
                break 'outer;
            }
        }
    }
    done as f64 / start.elapsed().as_secs_f64()
}

/// The correctness pass, run in every mode: merged ≡ dedicated on
/// outputs, per-tenant counters reconcile with the solo runs, and
/// over-budget sets reject structurally.
fn verify(merged: &netcl::MergedCompilation, tenants: &[TenantBench]) -> bool {
    let mut msw = merged_switch(merged);
    let mut ok = true;
    for t in tenants {
        let mut solo = solo_switch(merged, t.id);
        let mut pkt_m = msw.new_packet();
        let mut pkt_s = solo.new_packet();
        let (mut out_m, mut out_s) = (Vec::new(), Vec::new());
        for round in 0..3 {
            for (i, w) in t.packets.iter().enumerate() {
                let rm = msw.process_into(w, &mut pkt_m, &mut out_m);
                let rs = solo.process_into(w, &mut pkt_s, &mut out_s);
                if rm != rs || (rm.is_ok() && out_m != out_s) {
                    eprintln!(
                        "DIVERGENCE {}: merged vs dedicated, round {round} packet {i}",
                        t.name
                    );
                    ok = false;
                }
            }
        }
        let tc = msw.tenant_counters(t.id);
        let sc = solo.counters();
        if tc.packets != sc.packets || tc.reg_action_execs != sc.reg_action_execs {
            eprintln!(
                "DIVERGENCE {}: per-tenant counters {tc:?} vs solo (packets {}, reg {})",
                t.name, sc.packets, sc.reg_action_execs
            );
            ok = false;
        }
        // The tenant's registers on the shared switch end byte-identical
        // to the dedicated run (names match: solo keeps the namespace).
        let pick = |sw: &Switch, id: u16| -> Vec<(String, Vec<u64>)> {
            sw.registers()
                .filter(|(n, _)| netcl::util::tenant::of(n) == Some(id))
                .map(|(n, c)| (n.to_string(), c.to_vec()))
                .collect()
        };
        if pick(&msw, t.id) != pick(&solo, t.id) {
            eprintln!("DIVERGENCE {}: tenant register state differs merged vs solo", t.name);
            ok = false;
        }
    }
    // Over-budget rejection is structured, never a panic.
    let tight = TenantBudgets {
        per_tenant: vec![(
            1,
            TenantBudget { stages: 12, sram_bits: u64::MAX, salus: 64, tables: 0 },
        )],
        default_budget: None,
    };
    match compile_merged(&tight) {
        Err(e) if e.codes.iter().any(|c| c == "E0502") => {}
        Err(e) => {
            eprintln!("budget rejection carried codes {:?}, expected E0502", e.codes);
            ok = false;
        }
        Ok(_) => {
            eprintln!("zero-table budget for tenant 1 was not rejected");
            ok = false;
        }
    }
    if ok {
        println!(
            "multi-tenant differential: merged ≡ dedicated outputs/counters/registers, \
             over-budget set rejects with E0502"
        );
    }
    ok
}

struct Row {
    tenant: u16,
    name: &'static str,
    dedicated_pps: f64,
    merged_pps: f64,
    packets: u64,
    reg_action_execs: u64,
    table_hits: u64,
    table_misses: u64,
}

fn measure_rows(merged: &netcl::MergedCompilation, tenants: &[TenantBench], n: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for t in tenants {
        let mut solo = solo_switch(merged, t.id);
        let dedicated_pps = measure(&mut solo, &t.packets, n);
        // A fresh merged switch per tenant: the measured stream is
        // tenant-only, so the ratio isolates the merged pipeline's
        // dispatch-and-baggage cost rather than traffic sharing.
        let mut msw = merged_switch(merged);
        let merged_pps = measure(&mut msw, &t.packets, n);
        let tc = msw.tenant_counters(t.id);
        let (table_hits, table_misses) = msw.tenant_table_stats(t.id);
        rows.push(Row {
            tenant: t.id,
            name: t.name,
            dedicated_pps,
            merged_pps,
            packets: tc.packets,
            reg_action_execs: tc.reg_action_execs,
            table_hits,
            table_misses,
        });
    }
    rows
}

/// Aggregate throughput of the shared switch on a round-robin interleave
/// of every tenant's packets — the "both tenants live at once" figure.
fn measure_interleaved(
    merged: &netcl::MergedCompilation,
    tenants: &[TenantBench],
    n: usize,
) -> f64 {
    let mut mixed = Vec::new();
    let longest = tenants.iter().map(|t| t.packets.len()).max().unwrap_or(0);
    for i in 0..longest {
        for t in tenants {
            mixed.push(t.packets[i % t.packets.len()].clone());
        }
    }
    let mut msw = merged_switch(merged);
    measure(&mut msw, &mixed, n)
}

struct PlacementQuality {
    switches: usize,
    switches_used: usize,
    mean_utilization: f64,
    assignment: Vec<(u16, usize)>,
}

/// Grades the FFD planner on the allocator-reported footprints: 2 tenants
/// over a 2-switch topology (a tight merge should use 1).
fn placement_quality(merged: &netcl::MergedCompilation) -> PlacementQuality {
    let report = merged.report.as_ref().expect("Tofino allocation report");
    let spec = TofinoSpec::tofino1();
    let footprints = netcl_place::TenantFootprint::from_report(report);
    let p = netcl_place::plan(&footprints, 2, &spec).expect("placement plans");
    let assignment =
        footprints.iter().map(|f| (f.tenant, p.switch_of(f.tenant).expect("placed"))).collect();
    PlacementQuality {
        switches: 2,
        switches_used: p.switches_used(),
        mean_utilization: p.mean_utilization(),
        assignment,
    }
}

fn print_row(r: &Row) {
    println!(
        "{:<6} tenant {}  dedicated {:>11.0} pps   merged {:>11.0} pps ({:.2}x)   \
         ({} pkts, {} reg-actions, {} hits, {} misses)",
        r.name,
        r.tenant,
        r.dedicated_pps,
        r.merged_pps,
        r.merged_pps / r.dedicated_pps,
        r.packets,
        r.reg_action_execs,
        r.table_hits,
        r.table_misses,
    );
}

/// Pulls one tenant's numeric field out of the checked-in multi_tenant
/// section (hand-rolled: the repo deliberately has no JSON dependency).
fn baseline_field(json: &str, name: &str, field: &str) -> Option<f64> {
    let sect = &json[json.find("\"multi_tenant\":")?..];
    let start = sect.find(&format!("\"app\": \"{name}\""))?;
    let block = &sect[start..];
    let key = format!("\"{field}\":");
    let at = block.find(&key)? + key.len();
    let num: String = block[at..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// The CI gate (satellite task): each tenant's merged throughput must stay
/// within 10% of the dedicated-switch baseline recorded in the checked-in
/// `BENCH_switch.json`. Raw pps swings with runner speed, so the recorded
/// baseline is normalized: the effective floor is the *smaller* of the
/// recorded dedicated figure and the in-run dedicated re-measurement — a
/// slower runner lowers both sides together, while a genuine merged-path
/// regression lowers only the merged side and still trips the gate.
fn run_gate(rows: &[Row]) -> i32 {
    let json = match std::fs::read_to_string("BENCH_switch.json") {
        Ok(j) => j,
        Err(e) => {
            eprintln!("gate FAIL: cannot read BENCH_switch.json baseline: {e}");
            return 1;
        }
    };
    let mut failures = 0;
    for r in rows {
        let Some(recorded) = baseline_field(&json, r.name, "dedicated_pps") else {
            eprintln!(
                "gate FAIL: no {} dedicated_pps in BENCH_switch.json multi_tenant section",
                r.name
            );
            failures += 1;
            continue;
        };
        let baseline = recorded.min(r.dedicated_pps);
        println!(
            "gate: {:<6} merged {:.0} pps vs dedicated baseline {:.0} pps \
             (recorded {:.0}, in-run {:.0}) = {:.2}x",
            r.name,
            r.merged_pps,
            baseline,
            recorded,
            r.dedicated_pps,
            r.merged_pps / baseline
        );
        if r.merged_pps < 0.9 * baseline {
            eprintln!(
                "gate FAIL: {} merged {:.0} pps dropped >10% below dedicated baseline {:.0}",
                r.name, r.merged_pps, baseline
            );
            failures += 1;
        }
    }
    if failures == 0 {
        println!("multi-tenant regression gate: pass");
        0
    } else {
        1
    }
}

fn main() {
    let mut smoke = false;
    let mut gate = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--gate" => gate = true,
            other => {
                eprintln!("error: unknown argument `{other}` (expected `--smoke` or `--gate`)");
                std::process::exit(2);
            }
        }
    }
    let n = if smoke {
        2_000
    } else if gate {
        100_000
    } else {
        300_000
    };

    let merged = compile_merged(&TenantBudgets::default()).expect("AGG+CACHE merge compiles");
    let tenants = tenant_streams(&merged);
    if !verify(&merged, &tenants) {
        eprintln!("error: multi-tenant differential failed");
        std::process::exit(1);
    }

    let rows = measure_rows(&merged, &tenants, n);
    for r in &rows {
        print_row(r);
    }
    let interleaved_pps = measure_interleaved(&merged, &tenants, n);
    let pq = placement_quality(&merged);
    println!(
        "merged interleaved {:>11.0} pps   placement: {}/{} switches used, \
         mean utilization {:.3}",
        interleaved_pps, pq.switches_used, pq.switches, pq.mean_utilization
    );

    if gate {
        std::process::exit(run_gate(&rows));
    }
    if smoke {
        println!("smoke run: not writing BENCH_switch.json");
        return;
    }

    let mut section = String::from("{\n    \"tenants\": [\n");
    for (i, r) in rows.iter().enumerate() {
        section.push_str(&format!(
            "      {{\"tenant\": {}, \"app\": \"{}\", \"dedicated_pps\": {:.0}, \
             \"merged_pps\": {:.0}, \"merged_over_dedicated\": {:.3}, \"packets\": {}, \
             \"reg_action_execs\": {}, \"table_hits\": {}, \"table_misses\": {}}}{}\n",
            r.tenant,
            r.name,
            r.dedicated_pps,
            r.merged_pps,
            r.merged_pps / r.dedicated_pps,
            r.packets,
            r.reg_action_execs,
            r.table_hits,
            r.table_misses,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    section.push_str("    ],\n");
    section.push_str(&format!("    \"merged_interleaved_pps\": {interleaved_pps:.0},\n"));
    let assign: Vec<String> = pq.assignment.iter().map(|(t, s)| format!("[{t}, {s}]")).collect();
    section.push_str(&format!(
        "    \"placement\": {{\"switches\": {}, \"switches_used\": {}, \
         \"mean_utilization\": {:.3}, \"tenant_switch\": [{}]}}\n  }}",
        pq.switches,
        pq.switches_used,
        pq.mean_utilization,
        assign.join(", ")
    ));

    let path = "BENCH_switch.json";
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path} ({e}); run the throughput binary first");
        std::process::exit(1);
    });
    // The multi_tenant section is the last top-level key: strip an
    // existing one (or the closing brace) and re-append.
    let base = match json.find(",\n  \"multi_tenant\":") {
        Some(i) => json[..i].to_string(),
        None => {
            let t = json.trim_end();
            t.strip_suffix('}').expect("JSON object").trim_end().to_string()
        }
    };
    std::fs::write(path, format!("{base},\n  \"multi_tenant\": {section}\n}}\n"))
        .expect("write BENCH_switch.json");
    println!("merged multi_tenant section into {path}");
}
