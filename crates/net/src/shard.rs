//! Sharded parallel simulation with conservative lookahead (DESIGN.md §15).
//!
//! The topology is partitioned into shards; each shard is a full
//! [`Network`] that owns a subset of the nodes and runs the ordinary
//! event loop over them. Shards only interact through *arrivals* that
//! cross a partition boundary, and every such arrival is at least one
//! inter-shard link latency in the future — so a shard may safely process
//! every event strictly earlier than
//!
//! ```text
//! H_s = min over shards t ≠ s of (next_event_time(t) + dist(t, s))
//! ```
//!
//! where `dist` is the all-pairs shortest path over the shard graph with
//! edge weights equal to the minimum latency of the links crossing each
//! boundary (Floyd–Warshall, so multi-hop chains through intermediate
//! shards are bounded correctly). This is classic conservative
//! (CMB/YAWNS-style) synchronization: windows of independent work
//! separated by barriers where cross-shard arrivals are exchanged.
//!
//! Determinism is inherited, not re-proven: event keys (`EventSrc`) are
//! locally derivable and unique, chaos RNG streams are per sending node,
//! and the fault schedule is replicated into every shard with identical
//! keys — so each shard reproduces exactly the per-node event sequence of
//! the scalar run, and the merged run is byte-identical to
//! [`NetworkBuilder::build`] + [`Network::run`] with the same
//! `(seed, schedule)`. The determinism suite (`tests/determinism.rs`)
//! asserts this for every app, both shard runners, under chaos.

use crate::fault::Fault;
use crate::sim::{ExternalEvent, FlowSource, NetObs, NetStats, Network, NetworkBuilder, XsEvent};
use crate::topo::{NodeId, Topology};
use netcl_bmv2::Switch;
use netcl_obs::trace::Trace;
use std::collections::{HashMap, HashSet};
use std::sync::mpsc;
use std::time::Instant;

// The threaded runner hands each shard to its own thread.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Network>();
};

/// An assignment of every node to exactly one shard.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    groups: Vec<Vec<NodeId>>,
}

impl Partition {
    /// A partition from explicit per-shard node groups.
    pub fn new(groups: Vec<Vec<NodeId>>) -> Partition {
        Partition { groups }
    }

    /// Deals `nodes` round-robin across `shards` groups — a quick way to
    /// shard an arbitrary topology for tests.
    pub fn round_robin(nodes: &[NodeId], shards: usize) -> Partition {
        let mut groups = vec![Vec::new(); shards.max(1)];
        for (i, &n) in nodes.iter().enumerate() {
            groups[i % shards.max(1)].push(n);
        }
        Partition { groups }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.groups.len()
    }

    /// The per-shard node groups.
    pub fn groups(&self) -> &[Vec<NodeId>] {
        &self.groups
    }

    /// Packs weighted *units* (groups of nodes that must stay together —
    /// a fat-tree pod, a core switch) onto `shards` shards by longest
    /// processing time: units in descending weight order, each onto the
    /// currently lightest shard. Returns the partition and the resulting
    /// per-shard loads.
    ///
    /// Deterministic: ties in weight break toward the lower unit index and
    /// ties in load toward the lower shard index, so the assignment is a
    /// pure function of the input order. LPT's bound applies — the busiest
    /// shard carries at most `total/shards + max_unit_weight`, which the
    /// partitioner proptests assert on random fat-trees.
    pub fn balanced_with_weights(
        units: Vec<(Vec<NodeId>, u64)>,
        shards: usize,
    ) -> (Partition, Vec<u64>) {
        let shards = shards.max(1);
        let mut order: Vec<usize> = (0..units.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(units[i].1), i));
        let mut groups = vec![Vec::new(); shards];
        let mut loads = vec![0u64; shards];
        let mut units: Vec<Option<(Vec<NodeId>, u64)>> = units.into_iter().map(Some).collect();
        for i in order {
            let (nodes, w) = units[i].take().expect("each unit placed once");
            let lightest = (0..shards).min_by_key(|&s| (loads[s], s)).expect("shards ≥ 1");
            loads[lightest] += w;
            groups[lightest].extend(nodes);
        }
        (Partition { groups }, loads)
    }

    /// [`Self::balanced_with_weights`] without the load report.
    pub fn balanced(units: Vec<(Vec<NodeId>, u64)>, shards: usize) -> Partition {
        Self::balanced_with_weights(units, shards).0
    }

    /// A stable 64-bit digest of the assignment (shard index and node
    /// list order both count). Recorded next to benchmark rows so a run
    /// can be replayed against the exact partition that produced it.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a canonical byte walk of the groups.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for (i, g) in self.groups.iter().enumerate() {
            eat(i as u64);
            eat(g.len() as u64);
            for &n in g {
                eat(match n {
                    NodeId::Host(x) => (1u64 << 48) | x as u64,
                    NodeId::Device(x) => (2u64 << 48) | x as u64,
                });
            }
        }
        h
    }

    /// The node → shard map, rejecting duplicate assignments.
    fn shard_of(&self) -> Result<HashMap<NodeId, usize>, String> {
        let mut m = HashMap::new();
        for (i, g) in self.groups.iter().enumerate() {
            for &n in g {
                if m.insert(n, i).is_some() {
                    return Err(format!("node {n} assigned to more than one shard"));
                }
            }
        }
        Ok(m)
    }
}

impl NetworkBuilder {
    /// Builds the configuration as a set of shard networks coordinated by
    /// a [`ShardedNetwork`]. Every topology node and every added
    /// device/host must be assigned to exactly one shard, and every link
    /// crossing a shard boundary must have nonzero latency (the lookahead
    /// window collapses otherwise).
    pub fn build_sharded(self, partition: Partition) -> Result<ShardedNetwork, String> {
        self.build_sharded_inner(partition, None)
    }

    /// [`Self::build_sharded`] with a route cache precomputed by
    /// [`crate::PrecomputedRoutes::new`] **from this same topology**. A
    /// bench sweeping shard counts over one fat-tree rebuilds the network
    /// per count; the switch forest (seconds and ~190 MB at 10⁵ hosts) is
    /// identical every time and should be paid for once.
    pub fn build_sharded_with(
        self,
        partition: Partition,
        routes: &crate::PrecomputedRoutes,
    ) -> Result<ShardedNetwork, String> {
        self.build_sharded_inner(partition, Some(routes.cache.clone()))
    }

    fn build_sharded_inner(
        self,
        partition: Partition,
        routes: Option<crate::route::RouteCache>,
    ) -> Result<ShardedNetwork, String> {
        if partition.num_shards() == 0 {
            return Err("partition has no shards".into());
        }
        let shard_of = partition.shard_of()?;
        for n in self.topology.nodes() {
            if !shard_of.contains_key(&n) {
                return Err(format!("topology node {n} not assigned to any shard"));
            }
        }
        for (id, ..) in &self.devices {
            if !shard_of.contains_key(&NodeId::Device(*id)) {
                return Err(format!("device {id} not assigned to any shard"));
            }
        }
        for (id, ..) in &self.hosts {
            if !shard_of.contains_key(&NodeId::Host(*id)) {
                return Err(format!("host {id} not assigned to any shard"));
            }
        }
        let dist = lookahead_matrix(&self.topology, &shard_of, partition.num_shards())?;

        // Split the configuration by owner. The full topology, seed, and
        // fault schedule are replicated into every shard: topology for
        // routing (paths cross shards), the seed because per-node RNG
        // streams derive from it, the schedule so fault keys and fault
        // *state* (downed links, partitions, failed devices) match the
        // scalar run in every shard. Devices, hosts, and restart hooks go
        // only to their owner.
        let nsh = partition.num_shards();
        let mut dev_split: Vec<Vec<_>> = (0..nsh).map(|_| Vec::new()).collect();
        for (id, sw, lat) in self.devices {
            dev_split[shard_of[&NodeId::Device(id)]].push((id, sw, lat));
        }
        let mut host_split: Vec<Vec<_>> = (0..nsh).map(|_| Vec::new()).collect();
        for (id, h, lat) in self.hosts {
            host_split[shard_of[&NodeId::Host(id)]].push((id, h, lat));
        }
        let mut hook_split: Vec<HashMap<_, _>> = (0..nsh).map(|_| HashMap::new()).collect();
        for (id, hook) in self.restart_hooks {
            hook_split[shard_of[&NodeId::Device(id)]].insert(id, hook);
        }
        let routes = routes.unwrap_or_else(|| crate::route::RouteCache::new(&self.topology));
        let mut shards = Vec::with_capacity(nsh);
        for (i, (devices, (hosts, restart_hooks))) in
            dev_split.into_iter().zip(host_split.into_iter().zip(hook_split)).enumerate()
        {
            let owned: HashSet<NodeId> = partition.groups[i].iter().copied().collect();
            let b = NetworkBuilder {
                topology: self.topology.clone(),
                devices,
                hosts,
                seed: self.seed,
                faults: self.faults.clone(),
                // Rule-update schedules replicate like faults so update
                // keys agree in every shard; application is owner-only.
                updates: self.updates.clone(),
                restart_hooks,
                obs: self.obs,
                engine: self.engine,
            };
            shards.push(b.build_part_with(Some(owned), routes.clone()));
        }
        Ok(ShardedNetwork {
            shards,
            shard_of,
            dist,
            ext_seq: 0,
            threaded: true,
            rounds: 0,
            busy_ns: vec![0; nsh],
            critical_path_ns: 0,
            peak_queue: 0,
            flow_source: None,
            next_flow: None,
        })
    }
}

/// All-pairs conservative lookahead over the shard graph: edge weight
/// between adjacent shards is the minimum latency among the links crossing
/// that boundary; Floyd–Warshall closes the matrix so chains through
/// intermediate shards are bounded too.
fn lookahead_matrix(
    topo: &Topology,
    shard_of: &HashMap<NodeId, usize>,
    nsh: usize,
) -> Result<Vec<Vec<u64>>, String> {
    let mut dist = vec![vec![u64::MAX; nsh]; nsh];
    for (s, row) in dist.iter_mut().enumerate() {
        row[s] = 0;
    }
    for node in topo.nodes() {
        let a = shard_of[&node];
        for &(nb, spec) in topo.neighbors(node) {
            let b = shard_of[&nb];
            if a == b {
                continue;
            }
            if spec.latency_ns == 0 {
                return Err(format!(
                    "inter-shard link {node} — {nb} has zero latency: no lookahead window"
                ));
            }
            if spec.latency_ns < dist[a][b] {
                dist[a][b] = spec.latency_ns;
            }
        }
    }
    for k in 0..nsh {
        for i in 0..nsh {
            for j in 0..nsh {
                let via = dist[i][k].saturating_add(dist[k][j]);
                if via < dist[i][j] {
                    dist[i][j] = via;
                }
            }
        }
    }
    Ok(dist)
}

/// Per-shard horizons for one window. Shard `s` must not advance past the
/// earliest arrival it does not yet know about. Such an arrival is a chain
/// starting at some shard's pending event and ending at `s`:
///
/// * starting at `t ≠ s`: no earlier than `next_t + dist(t, s)`;
/// * starting at `s` *itself* and bouncing back (s → t → s): no earlier
///   than `next_s + min over t≠s of (dist(s,t) + dist(t,s))`. Dropping
///   this term is the classic conservative-sync mistake — a shard runs
///   far ahead on its own sends and the replies land in its past.
///
/// The shard holding the globally earliest event always gets a horizon
/// past it (inter-shard distances are ≥ 1), so every round progresses.
/// Cap (ns past the globally earliest event) on how far the streamed
/// injector pre-pumps flows each round. Flows inside the conservative
/// window are known-future external events, so injecting them eagerly is
/// free — and essential: clamping every horizon at the *next* flow would
/// shrink rounds to one inter-arrival gap (~ns) and serialize the run on
/// round overhead. The cap bounds live memory to O(window / mean gap)
/// flows when horizons are unbounded (single shard, drained queues).
const PUMP_WINDOW_NS: u64 = 65_536;

fn horizons_of(dist: &[Vec<u64>], nexts: &[Option<u64>]) -> Vec<u64> {
    (0..nexts.len())
        .map(|s| {
            let mut h = u64::MAX;
            let mut round_trip = u64::MAX;
            for (t, next) in nexts.iter().enumerate() {
                if t == s {
                    continue;
                }
                round_trip = round_trip.min(dist[s][t].saturating_add(dist[t][s]));
                if let Some(nt) = next {
                    h = h.min(nt.saturating_add(dist[t][s]));
                }
            }
            if let Some(ns) = nexts[s] {
                h = h.min(ns.saturating_add(round_trip));
            }
            h
        })
        .collect()
}

/// A set of shard networks advancing in conservative-lookahead windows.
///
/// Mirrors the driver surface of [`Network`] (sends, timers, faults,
/// accessors); stats and observability are merged across shards on
/// demand, in shard-index order, via [`NetStats::accumulate`] — whose
/// order-independence is itself under test.
pub struct ShardedNetwork {
    shards: Vec<Network>,
    shard_of: HashMap<NodeId, usize>,
    /// `dist[t][s]`: lookahead bound from shard `t` to shard `s`.
    dist: Vec<Vec<u64>>,
    /// Driver-injection counter, kept at the wrapper so injection keys
    /// match the scalar run's no matter which shard owns the target.
    ext_seq: u64,
    threaded: bool,
    /// Synchronization rounds executed.
    rounds: u64,
    /// Cumulative wall-clock busy time per shard.
    busy_ns: Vec<u64>,
    /// Sum over rounds of the slowest shard's busy time — the wall time an
    /// ideal machine with one core per shard would need (the bench reports
    /// events/sec against both this and actual wall time).
    critical_path_ns: u64,
    /// High-water mark of live events across all shards, sampled at round
    /// starts — the memory proxy showing streamed injection holds O(live
    /// events), not O(schedule).
    peak_queue: u64,
    /// Streamed driver injections ([`Self::set_flow_source`]), pulled and
    /// routed to owner shards as rounds reach each flow's time.
    flow_source: Option<FlowSource>,
    /// The next not-yet-injected flow — a one-flow lookahead. Flows due
    /// inside the conservative window are pumped eagerly before each
    /// round ([`PUMP_WINDOW_NS`]); only then does the remaining flow
    /// clamp horizons (no shard may run past an uninjected flow).
    next_flow: Option<(u64, u32, Vec<u8>)>,
}

impl std::fmt::Debug for ShardedNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedNetwork")
            .field("shards", &self.shards.len())
            .field("rounds", &self.rounds)
            .field("threaded", &self.threaded)
            .finish_non_exhaustive()
    }
}

impl ShardedNetwork {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Selects the threaded (default) or sequential window runner. Both
    /// produce byte-identical results; the sequential one exists so the
    /// determinism suite can diff them.
    pub fn set_threaded(&mut self, threaded: bool) {
        self.threaded = threaded;
    }

    /// Injects a send from a host at an absolute time (same key the
    /// scalar run would assign to this injection).
    pub fn send_from_host(&mut self, host: u32, at_ns: u64, bytes: Vec<u8>) {
        self.ext_seq += 1;
        let shard = self.shard_of[&NodeId::Host(host)];
        self.shards[shard].inject_external(
            at_ns,
            self.ext_seq,
            ExternalEvent::HostSend(host, bytes),
        );
    }

    /// Arms a host timer at an absolute time.
    pub fn set_host_timer(&mut self, host: u32, at_ns: u64, token: u64) {
        self.ext_seq += 1;
        let shard = self.shard_of[&NodeId::Host(host)];
        self.shards[shard].inject_external(at_ns, self.ext_seq, ExternalEvent::Timer(host, token));
    }

    /// Schedules a fault mid-run, replicated into every shard with the
    /// same key (all shards carry the same fault list, so indices agree).
    pub fn schedule_fault(&mut self, at_ns: u64, fault: Fault) {
        for sh in &mut self.shards {
            sh.schedule_fault(at_ns, fault.clone());
        }
    }

    /// Schedules a control-plane rule update mid-run, replicated into
    /// every shard with the same key; only the shard owning the device
    /// applies (and counts) it, so merged stats match the scalar run.
    pub fn schedule_update(&mut self, at_ns: u64, device: u16, update: netcl_bmv2::TableUpdate) {
        for sh in &mut self.shards {
            sh.schedule_update(at_ns, device, update.clone());
        }
    }

    /// Applies a rule update to a device now, on its owner shard, through
    /// the journaled path (see [`Network::apply_update`]).
    pub fn apply_update(&mut self, device: u16, update: netcl_bmv2::TableUpdate) -> bool {
        match self.shard_of.get(&NodeId::Device(device)) {
            Some(&s) => self.shards[s].apply_update(device, update),
            None => false,
        }
    }

    /// Runs until every shard drains or ~`max_events` are processed
    /// (a soft cap: each window may overshoot by one shard window).
    /// Returns the number of events processed across all shards.
    pub fn run(&mut self, max_events: u64) -> u64 {
        if self.threaded && self.shards.len() > 1 {
            self.run_threaded(max_events)
        } else {
            self.run_sequential(max_events)
        }
    }

    /// Attaches a lazy flow schedule (see [`Network::set_flow_source`]):
    /// flows are pulled, keyed, and routed to their owner shards as rounds
    /// reach each injection time. Byte-identical to injecting the whole
    /// schedule via [`Self::send_from_host`] up front, with memory bounded
    /// by live events instead of schedule length. Call before any other
    /// driver injection.
    pub fn set_flow_source(&mut self, mut source: FlowSource) {
        self.next_flow = source();
        self.flow_source = Some(source);
    }

    /// Injects every flow due at or before `upto` into its owner shard,
    /// with the same `External` keys a scalar run would assign.
    fn pump_flows(&mut self, upto: u64) {
        while let Some((at, ..)) = self.next_flow {
            if at > upto {
                break;
            }
            let (at, host, bytes) = self.next_flow.take().expect("checked above");
            self.ext_seq += 1;
            let shard = self.shard_of[&NodeId::Host(host)];
            self.shards[shard].inject_external(
                at,
                self.ext_seq,
                ExternalEvent::HostSend(host, bytes),
            );
            self.next_flow = self.flow_source.as_mut().and_then(|s| s());
        }
    }

    fn run_sequential(&mut self, max_events: u64) -> u64 {
        let mut total = 0u64;
        while total < max_events {
            let g = self.shards.iter().filter_map(|s| s.next_event_time()).min();
            match (g, self.next_flow.as_ref().map(|f| f.0)) {
                (None, None) => break,
                (g, Some(f)) if g.is_none_or(|g| f <= g) => {
                    // Every pending event is at or after the next flow:
                    // stream in all flows due by the earliest event (at
                    // least one) and recompute the round with them queued.
                    self.pump_flows(g.unwrap_or(f));
                    continue;
                }
                _ => {}
            }
            if self.next_flow.is_some() {
                // Eager pump: inject every flow due inside this round's
                // conservative window (capped), so the window is bounded
                // by lookahead, not by the flow inter-arrival gap.
                let nexts: Vec<Option<u64>> =
                    self.shards.iter().map(|s| s.next_event_time()).collect();
                let h_min = horizons_of(&self.dist, &nexts).into_iter().min().unwrap_or(u64::MAX);
                let cap = g.expect("matched above").saturating_add(PUMP_WINDOW_NS);
                self.pump_flows(h_min.min(cap));
            }
            let nexts: Vec<Option<u64>> = self.shards.iter().map(|s| s.next_event_time()).collect();
            let mut horizons = horizons_of(&self.dist, &nexts);
            if let Some((f, ..)) = self.next_flow {
                // No shard may run past the next uninjected flow. The
                // pumps above guarantee f is strictly after the earliest
                // event, so the round still progresses.
                for h in &mut horizons {
                    *h = (*h).min(f);
                }
            }
            let live: u64 = self.shards.iter().map(|s| s.queue_len() as u64).sum();
            self.peak_queue = self.peak_queue.max(live);
            let mut round = 0u64;
            let mut round_max = 0u64;
            for (i, sh) in self.shards.iter_mut().enumerate() {
                let t0 = Instant::now();
                round += sh.run_until(horizons[i], max_events - total);
                let busy = t0.elapsed().as_nanos() as u64;
                self.busy_ns[i] += busy;
                round_max = round_max.max(busy);
            }
            let moved = self.route_xs();
            total += round;
            self.rounds += 1;
            self.critical_path_ns += round_max;
            if round == 0 && !moved {
                break;
            }
        }
        total
    }

    /// Routes every shard's outbound cross-shard arrivals to their owners,
    /// coalesced into one staged batch per destination shard
    /// ([`Network::stage_xs`]) — one sort-and-merge per shard per round
    /// instead of a heap push per event. Delivery order across shards is
    /// irrelevant to the outcome: event keys are unique, so the merged
    /// order is the same total order whatever the insertion sequence.
    fn route_xs(&mut self) -> bool {
        let mut moved = false;
        let nsh = self.shards.len();
        let mut per_shard: Vec<Vec<XsEvent>> = (0..nsh).map(|_| Vec::new()).collect();
        for i in 0..nsh {
            for ev in self.shards[i].take_xs_out() {
                let t = self.shard_of[&ev.target];
                debug_assert!(
                    ev.time >= self.shards[t].now(),
                    "lookahead violation: arrival at {} for t={} but shard {t} already at {}",
                    ev.target,
                    ev.time,
                    self.shards[t].now()
                );
                per_shard[t].push(ev);
                moved = true;
            }
        }
        for (t, batch) in per_shard.into_iter().enumerate() {
            self.shards[t].stage_xs(batch);
        }
        moved
    }

    fn run_threaded(&mut self, max_events: u64) -> u64 {
        let nsh = self.shards.len();
        let dist = &self.dist;
        let shard_of = &self.shard_of;
        let busy_ns = &mut self.busy_ns;
        let rounds = &mut self.rounds;
        let critical_path_ns = &mut self.critical_path_ns;
        let peak_queue = &mut self.peak_queue;
        let ext_seq = &mut self.ext_seq;
        let flow_source = &mut self.flow_source;
        let next_flow = &mut self.next_flow;
        let mut total = 0u64;
        // Own next-event times, updated from worker reports; arrivals in
        // flight between shards live in `pending` until the next window,
        // and streamed flows awaiting delivery to their owner shard in
        // `flow_pend` (the workers hold the shards, so the wrapper hands
        // both over with each round's command).
        let mut nexts: Vec<Option<u64>> = self.shards.iter().map(|s| s.next_event_time()).collect();
        let mut pending: Vec<Vec<XsEvent>> = (0..nsh).map(|_| Vec::new()).collect();
        let mut flow_pend: Vec<Vec<(u64, u64, ExternalEvent)>> =
            (0..nsh).map(|_| Vec::new()).collect();
        let (res_tx, res_rx) = mpsc::channel();
        std::thread::scope(|scope| {
            let mut cmd_txs = Vec::with_capacity(nsh);
            for (i, sh) in self.shards.iter_mut().enumerate() {
                let (tx, rx) =
                    mpsc::channel::<(u64, u64, Vec<XsEvent>, Vec<(u64, u64, ExternalEvent)>)>();
                cmd_txs.push(tx);
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    while let Ok((horizon, budget, xs, flows)) = rx.recv() {
                        for (at, seq, ev) in flows {
                            sh.inject_external(at, seq, ev);
                        }
                        if cfg!(debug_assertions) {
                            for ev in &xs {
                                debug_assert!(
                                    ev.time >= sh.now(),
                                    "lookahead violation: arrival at {} for t={} but shard {i} already at {}",
                                    ev.target,
                                    ev.time,
                                    sh.now()
                                );
                            }
                        }
                        sh.stage_xs(xs);
                        // Live-event footprint entering the round, after
                        // this round's deliveries landed.
                        let live = sh.queue_len() as u64;
                        let t0 = Instant::now();
                        let did = sh.run_until(horizon, budget);
                        let busy = t0.elapsed().as_nanos() as u64;
                        let out = sh.take_xs_out();
                        let next = sh.next_event_time();
                        if res_tx.send((i, did, busy, out, next, live)).is_err() {
                            break;
                        }
                    }
                });
            }
            while total < max_events {
                // A shard's effective next event is the earliest of its own
                // queue head and anything waiting to be delivered to it —
                // cross-shard arrivals or streamed flows.
                let eff: Vec<Option<u64>> = (0..nsh)
                    .map(|i| {
                        let mut m = nexts[i];
                        for ev in &pending[i] {
                            m = Some(m.map_or(ev.time, |x| x.min(ev.time)));
                        }
                        for (at, ..) in &flow_pend[i] {
                            m = Some(m.map_or(*at, |x| x.min(*at)));
                        }
                        m
                    })
                    .collect();
                let g = eff.iter().flatten().copied().min();
                if let Some(f) = next_flow.as_ref().map(|f| f.0) {
                    if g.is_none_or(|g| f <= g) {
                        // Every pending event is at or after the next flow:
                        // pull in all flows due by the earliest event (at
                        // least one) and recompute with them pending.
                        let upto = g.unwrap_or(f);
                        loop {
                            match next_flow.as_ref() {
                                Some((at, ..)) if *at <= upto => {}
                                _ => break,
                            }
                            let (at, host, bytes) = next_flow.take().expect("checked above");
                            *ext_seq += 1;
                            flow_pend[shard_of[&NodeId::Host(host)]].push((
                                at,
                                *ext_seq,
                                ExternalEvent::HostSend(host, bytes),
                            ));
                            *next_flow = flow_source.as_mut().and_then(|s| s());
                        }
                        continue;
                    }
                }
                if eff.iter().all(Option::is_none) {
                    break;
                }
                let mut eff = eff;
                if next_flow.is_some() {
                    // Eager pump: stage every flow due inside this round's
                    // conservative window (capped) — same threshold the
                    // sequential runner computes, so rounds line up.
                    let h_min = horizons_of(dist, &eff).into_iter().min().unwrap_or(u64::MAX);
                    let upto = g.expect("events exist here").saturating_add(PUMP_WINDOW_NS);
                    let upto = h_min.min(upto);
                    loop {
                        match next_flow.as_ref() {
                            Some((at, ..)) if *at <= upto => {}
                            _ => break,
                        }
                        let (at, host, bytes) = next_flow.take().expect("checked above");
                        *ext_seq += 1;
                        let t = shard_of[&NodeId::Host(host)];
                        flow_pend[t].push((at, *ext_seq, ExternalEvent::HostSend(host, bytes)));
                        eff[t] = Some(eff[t].map_or(at, |x| x.min(at)));
                        *next_flow = flow_source.as_mut().and_then(|s| s());
                    }
                }
                let mut horizons = horizons_of(dist, &eff);
                if let Some((f, ..)) = next_flow {
                    // No shard may run past the next uninjected flow.
                    for h in &mut horizons {
                        *h = (*h).min(*f);
                    }
                }
                for (i, tx) in cmd_txs.iter().enumerate() {
                    let xs = std::mem::take(&mut pending[i]);
                    let flows = std::mem::take(&mut flow_pend[i]);
                    // A worker only exits when the command channel drops,
                    // so sends cannot fail mid-run.
                    tx.send((horizons[i], max_events - total, xs, flows)).unwrap();
                }
                let mut round = 0u64;
                let mut round_max = 0u64;
                let mut round_live = 0u64;
                let mut moved = false;
                for _ in 0..nsh {
                    let (i, did, busy, out, next, live) = res_rx.recv().unwrap();
                    round += did;
                    busy_ns[i] += busy;
                    round_max = round_max.max(busy);
                    round_live += live;
                    nexts[i] = next;
                    for ev in out {
                        pending[shard_of[&ev.target]].push(ev);
                        moved = true;
                    }
                }
                total += round;
                *rounds += 1;
                *critical_path_ns += round_max;
                *peak_queue = (*peak_queue).max(round_live);
                if round == 0 && !moved {
                    break;
                }
            }
            drop(cmd_txs); // workers exit their recv loops
        });
        total
    }

    /// Merged statistics across shards (shard-index order).
    pub fn stats(&self) -> NetStats {
        let mut s = NetStats::default();
        for sh in &self.shards {
            s.accumulate(&sh.stats);
        }
        s
    }

    /// Each shard's own statistics, in shard-index order — the inputs the
    /// merge folds over (and what the accumulate-order tests exercise).
    pub fn shard_stats(&self) -> Vec<&NetStats> {
        self.shards.iter().map(|s| &s.stats).collect()
    }

    /// Merged observability across shards, when enabled at build time:
    /// histograms merged bucket-wise, per-shard traces absorbed into one
    /// timeline.
    pub fn obs(&self) -> Option<NetObs> {
        if self.shards.iter().all(|s| s.obs().is_none()) {
            return None;
        }
        let mut merged = NetObs::default();
        let mut trace: Option<Trace> = None;
        for sh in &self.shards {
            if let Some(o) = sh.obs() {
                merged.queue_depth.merge(&o.queue_depth);
                merged.event_wall_ns.merge(&o.event_wall_ns);
                if let Some(t) = &o.trace {
                    match &mut trace {
                        Some(acc) => acc.absorb(t.clone()),
                        None => trace = Some(t.clone()),
                    }
                }
            }
        }
        merged.trace = trace;
        Some(merged)
    }

    /// Current simulated time: the furthest any shard has advanced.
    pub fn now(&self) -> u64 {
        self.shards.iter().map(Network::now).max().unwrap_or(0)
    }

    /// Messages a host received, with arrival timestamps.
    pub fn host_received(&self, id: u32) -> &[(u64, Vec<u8>)] {
        match self.shard_of.get(&NodeId::Host(id)) {
            Some(&s) => self.shards[s].host_received(id),
            None => &[],
        }
    }

    /// Direct control-plane access to a device's switch (on its owner).
    pub fn switch_mut(&mut self, id: u16) -> Option<&mut Switch> {
        let s = *self.shard_of.get(&NodeId::Device(id))?;
        self.shards[s].switch_mut(id)
    }

    /// Immutable switch access.
    pub fn switch(&self, id: u16) -> Option<&Switch> {
        let s = *self.shard_of.get(&NodeId::Device(id))?;
        self.shards[s].switch(id)
    }

    /// Whether device `id` is currently failed (fault state is replicated,
    /// so any shard could answer; the owner is canonical).
    pub fn device_failed(&self, id: u16) -> bool {
        match self.shard_of.get(&NodeId::Device(id)) {
            Some(&s) => self.shards[s].device_failed(id),
            None => false,
        }
    }

    /// Synchronization rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Cumulative wall-clock busy nanoseconds per shard.
    pub fn busy_ns(&self) -> &[u64] {
        &self.busy_ns
    }

    /// Sum over rounds of the slowest shard's busy time — the run's
    /// critical path on an ideal one-core-per-shard machine.
    pub fn critical_path_ns(&self) -> u64 {
        self.critical_path_ns
    }

    /// High-water mark of live events across all shards, sampled at round
    /// starts. With a flow source attached this is the run's memory
    /// footprint proxy — O(live events) rather than O(schedule length).
    pub fn peak_queue(&self) -> u64 {
        self.peak_queue
    }
}
