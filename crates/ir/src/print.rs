//! Textual IR dump.
//!
//! The format intentionally echoes LLVM assembly (Fig. 9 middle row) so the
//! paper's examples are recognizable in `--dump-ir` output and golden tests
//! stay readable.

use crate::func::{Function, Inst, InstKind, Module, Terminator};
use crate::types::Operand;
use std::fmt::Write;

/// Prints a module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; module {} (device {})", m.name, m.device);
    for (i, g) in m.globals.iter().enumerate() {
        let dims: Vec<String> = g.dims.iter().map(|d| format!("[{d}]")).collect();
        let mut attrs = Vec::new();
        if g.managed {
            attrs.push("managed");
        }
        if g.lookup {
            attrs.push("lookup");
        }
        let _ = writeln!(
            out,
            "@g{} = global {} {}{} ; {}{}",
            i,
            g.ty,
            g.name,
            dims.join(""),
            attrs.join(" "),
            if g.entries.is_empty() {
                String::new()
            } else {
                format!(" {} entries", g.entries.len())
            }
        );
    }
    for k in &m.kernels {
        out.push('\n');
        out.push_str(&print_function(k));
    }
    out
}

/// Prints one function.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let args: Vec<String> = f
        .args
        .iter()
        .map(|a| {
            format!(
                "{} {}{}{}",
                a.ty,
                if a.in_message { "&" } else { "" },
                a.name,
                if a.count > 1 { format!("[{}]", a.count) } else { String::new() }
            )
        })
        .collect();
    let _ = writeln!(out, "kernel({}) @{}({}) {{", f.computation, f.name, args.join(", "));
    for (i, l) in f.locals.iter_enumerated() {
        let _ = writeln!(out, "  {i:?} = local {} x{} ; {}", l.ty, l.count, l.name);
    }
    for (bid, b) in f.blocks.iter_enumerated() {
        let _ = writeln!(out, "{bid}:");
        for inst in &b.insts {
            let _ = writeln!(out, "  {}", print_inst(f, inst));
        }
        let term = match &b.term {
            Terminator::Br(t) => format!("br {t}"),
            Terminator::CondBr { cond, then_bb, else_bb } => {
                format!("br {}, {then_bb}, {else_bb}", fmt_op(*cond))
            }
            Terminator::Ret(a) => match a.target {
                Some(t) => format!("ret {:?}({})", a.kind, fmt_op(t)),
                None => format!("ret {:?}()", a.kind),
            },
            Terminator::Unterminated => "<unterminated>".to_string(),
        };
        let _ = writeln!(out, "  {term}");
    }
    out.push_str("}\n");
    out
}

fn fmt_op(op: Operand) -> String {
    match op {
        Operand::Value(v) => format!("{v}"),
        Operand::Const(c, ty) => format!("{ty} {c}"),
    }
}

fn fmt_ops(ops: &[Operand]) -> String {
    ops.iter().map(|o| fmt_op(*o)).collect::<Vec<_>>().join(", ")
}

/// Prints a single instruction.
pub fn print_inst(f: &Function, inst: &Inst) -> String {
    let results = inst.results.iter().map(|r| format!("{r}")).collect::<Vec<_>>().join(", ");
    let lhs = if results.is_empty() { String::new() } else { format!("{results} = ") };
    let ty = inst.results.first().map(|&r| format!("{}", f.value_ty(r))).unwrap_or_default();
    let body = match &inst.kind {
        InstKind::Bin { op, a, b } => {
            format!("{} {ty} {}, {}", op.mnemonic(), fmt_op(*a), fmt_op(*b))
        }
        InstKind::Un { op, a } => format!("{} {ty} {}", op.mnemonic(), fmt_op(*a)),
        InstKind::Icmp { pred, a, b } => {
            format!("icmp {} {}, {}", pred.mnemonic(), fmt_op(*a), fmt_op(*b))
        }
        InstKind::Select { cond, a, b } => {
            format!("select {}, {}, {}", fmt_op(*cond), fmt_op(*a), fmt_op(*b))
        }
        InstKind::Cast { kind, a, to } => {
            let k = match kind {
                crate::types::CastKind::Zext => "zext",
                crate::types::CastKind::Sext => "sext",
                crate::types::CastKind::Trunc => "trunc",
            };
            format!("{k} {} to {to}", fmt_op(*a))
        }
        InstKind::Phi { incoming } => {
            let items: Vec<String> =
                incoming.iter().map(|(b, v)| format!("[{b}, {}]", fmt_op(*v))).collect();
            format!("phi {ty} {}", items.join(", "))
        }
        InstKind::LocalLoad { slot, index } => format!("load {slot}[{}]", fmt_op(*index)),
        InstKind::LocalStore { slot, index, value } => {
            format!("store {slot}[{}], {}", fmt_op(*index), fmt_op(*value))
        }
        InstKind::ArgRead { arg, index } => {
            format!("arg.read {}[{}]", f.args[*arg as usize].name, fmt_op(*index))
        }
        InstKind::ArgWrite { arg, index, value } => format!(
            "arg.write {}[{}], {}",
            f.args[*arg as usize].name,
            fmt_op(*index),
            fmt_op(*value)
        ),
        InstKind::MemRead { mem } => format!("mem.read {}[{}]", mem.mem, fmt_ops(&mem.indices)),
        InstKind::MemWrite { mem, value } => {
            format!("mem.write {}[{}], {}", mem.mem, fmt_ops(&mem.indices), fmt_op(*value))
        }
        InstKind::AtomicRmw { op, mem, cond, operands } => {
            let mut s = format!("{} {}[{}]", op.name(), mem.mem, fmt_ops(&mem.indices));
            if let Some(c) = cond {
                let _ = write!(s, " if {}", fmt_op(*c));
            }
            if !operands.is_empty() {
                let _ = write!(s, ", {}", fmt_ops(operands));
            }
            s
        }
        InstKind::Lookup { table, key } => format!("lookup {table}, {}", fmt_op(*key)),
        InstKind::Hash { kind, bits, a } => {
            format!("hash.{:?}<{bits}> {}", kind, fmt_op(*a)).to_lowercase()
        }
        InstKind::Rand => format!("rand {ty}"),
        InstKind::MsgField { field } => format!("msg.{:?}", field).to_lowercase(),
        InstKind::Intrinsic { target, name, args } => {
            format!("intrinsic {target}::{name}({})", fmt_ops(args))
        }
    };
    format!("{lhs}{body}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{ActionRef, FuncBuilder, InstKind, MemId, MemRef, Terminator};
    use crate::types::{IrBinOp, IrTy, Operand as Op};

    #[test]
    fn printed_form_is_stable() {
        let mut b = FuncBuilder::new("sketch", 1);
        let arg = b.add_arg("k", IrTy::I32, 1, false);
        let k = b.emit(InstKind::ArgRead { arg, index: Op::imm(0, IrTy::I32) }, IrTy::I32).unwrap();
        let h = b
            .emit(
                InstKind::Hash {
                    kind: netcl_sema::builtins::HashKind::Crc16,
                    bits: 16,
                    a: Op::Value(k),
                },
                IrTy::I16,
            )
            .unwrap();
        b.emit(
            InstKind::AtomicRmw {
                op: netcl_sema::builtins::AtomicOp {
                    rmw: netcl_sema::builtins::AtomicRmw::SAdd,
                    cond: false,
                    ret_new: true,
                },
                mem: MemRef { mem: MemId(0), indices: vec![Op::Value(h)] },
                cond: None,
                operands: vec![Op::imm(1, IrTy::I32)],
            },
            IrTy::I32,
        );
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let f = b.finish();
        let text = print_function(&f);
        assert!(text.contains("kernel(1) @sketch"));
        assert!(text.contains("arg.read k[i32 0]"));
        assert!(text.contains("hash.crc16<16>"));
        assert!(text.contains("atomic_sadd_new @g0"));
        assert!(text.contains("ret Pass()"));
    }

    #[test]
    fn bin_and_phi_printing() {
        let mut b = FuncBuilder::new("f", 2);
        let x = b.bin(IrBinOp::Add, Op::imm(1, IrTy::I8), Op::imm(2, IrTy::I8), IrTy::I8);
        let _ = x;
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let f = b.finish();
        let text = print_function(&f);
        assert!(text.contains("add i8 i8 1, i8 2"), "{text}");
    }
}
