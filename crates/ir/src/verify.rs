//! IR structural verifier.
//!
//! Run after lowering and between passes in debug builds and tests. Checks:
//!
//! * every block has a terminator and branch targets are in range
//! * every operand refers to a defined value, and the definition dominates
//!   the use (φ uses are checked on the incoming edge)
//! * φ-nodes have exactly one incoming per predecessor and appear before
//!   non-φ instructions
//! * result counts match instruction kinds; `Lookup` hit is `i1`
//! * binary/icmp operands have matching widths
//! * memory references carry one index per declared dimension

use crate::dom::DomTree;
use crate::func::{BlockId, Function, InstKind, Module, Terminator, ValueId};
use crate::types::{IrTy, Operand};
use std::collections::HashMap;

/// A verifier failure (module- or function-level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name.
    pub func: String,
    /// Block in which the problem sits (if applicable).
    pub block: Option<BlockId>,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.block {
            Some(b) => write!(f, "{}/{:?}: {}", self.func, b, self.message),
            None => write!(f, "{}: {}", self.func, self.message),
        }
    }
}

/// Verifies a whole module.
pub fn verify_module(m: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    for k in &m.kernels {
        if let Err(mut e) = verify_function(k, Some(m)) {
            errors.append(&mut e);
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Verifies one function (module optional for memory-shape checks).
pub fn verify_function(f: &Function, module: Option<&Module>) -> Result<(), Vec<VerifyError>> {
    let mut v = Verifier { f, module, errors: Vec::new() };
    v.run();
    if v.errors.is_empty() {
        Ok(())
    } else {
        Err(v.errors)
    }
}

struct Verifier<'a> {
    f: &'a Function,
    module: Option<&'a Module>,
    errors: Vec<VerifyError>,
}

impl<'a> Verifier<'a> {
    fn err(&mut self, block: Option<BlockId>, msg: impl Into<String>) {
        self.errors.push(VerifyError { func: self.f.name.clone(), block, message: msg.into() });
    }

    fn run(&mut self) {
        // Definition sites.
        let mut def_site: HashMap<ValueId, (BlockId, usize)> = HashMap::new();
        for (bid, b) in self.f.blocks.iter_enumerated() {
            for (i, inst) in b.insts.iter().enumerate() {
                if inst.results.len() != inst.kind.result_count() {
                    self.err(
                        Some(bid),
                        format!(
                            "instruction declares {} results, kind requires {}",
                            inst.results.len(),
                            inst.kind.result_count()
                        ),
                    );
                }
                for &r in &inst.results {
                    if self.f.values.get(r).is_none() {
                        self.err(Some(bid), format!("result {r:?} not in value table"));
                    } else if def_site.insert(r, (bid, i)).is_some() {
                        self.err(Some(bid), format!("value {r:?} defined twice"));
                    }
                }
            }
        }

        // Terminators & φ shape.
        let preds = self.f.predecessors();
        for (bid, b) in self.f.blocks.iter_enumerated() {
            match &b.term {
                Terminator::Unterminated => self.err(Some(bid), "block lacks a terminator"),
                t => {
                    for s in t.successors() {
                        if self.f.blocks.get(s).is_none() {
                            self.err(Some(bid), format!("branch to unknown block {s:?}"));
                        }
                    }
                }
            }
            let mut seen_non_phi = false;
            for inst in &b.insts {
                match &inst.kind {
                    InstKind::Phi { incoming } => {
                        if seen_non_phi {
                            self.err(Some(bid), "φ-node after non-φ instruction");
                        }
                        let mut ps: Vec<BlockId> = incoming.iter().map(|(p, _)| *p).collect();
                        ps.sort_unstable();
                        let mut expect = preds[bid].clone();
                        expect.sort_unstable();
                        expect.dedup();
                        ps.dedup();
                        if ps != expect {
                            self.err(
                                Some(bid),
                                format!("φ incoming {ps:?} does not match predecessors {expect:?}"),
                            );
                        }
                    }
                    _ => seen_non_phi = true,
                }
            }
        }

        // Dominance of uses + type checks.
        let dt = DomTree::compute(self.f);
        for (bid, b) in self.f.blocks.iter_enumerated() {
            if !dt.is_reachable(bid) {
                continue;
            }
            for (i, inst) in b.insts.iter().enumerate() {
                if let InstKind::Phi { incoming } = &inst.kind {
                    for (pred, op) in incoming {
                        if let Operand::Value(v) = op {
                            match def_site.get(v) {
                                None => self.err(Some(bid), format!("use of undefined {v:?}")),
                                Some((db, _)) => {
                                    if dt.is_reachable(*pred) && !dt.dominates(*db, *pred) {
                                        self.err(
                                            Some(bid),
                                            format!(
                                                "φ incoming {v:?} from {pred:?} not dominated by def in {db:?}"
                                            ),
                                        );
                                    }
                                }
                            }
                        }
                    }
                    continue;
                }
                for op in inst.kind.operands() {
                    if let Operand::Value(v) = op {
                        match def_site.get(&v) {
                            None => self.err(Some(bid), format!("use of undefined {v:?}")),
                            Some(&(db, di)) => {
                                let ok = if db == bid { di < i } else { dt.dominates(db, bid) };
                                if !ok {
                                    self.err(
                                        Some(bid),
                                        format!("{v:?} used before its definition dominates"),
                                    );
                                }
                            }
                        }
                    }
                }
                self.check_types(bid, inst);
            }
            if let Terminator::CondBr { cond, .. } = &b.term {
                if self.f.operand_ty(*cond) != IrTy::I1 {
                    self.err(Some(bid), "condbr condition must be i1");
                }
            }
        }
    }

    fn check_types(&mut self, bid: BlockId, inst: &crate::func::Inst) {
        let ty = |op: Operand| self.f.operand_ty(op);
        match &inst.kind {
            InstKind::Bin { a, b, .. } => {
                if ty(*a) != ty(*b) {
                    self.err(
                        Some(bid),
                        format!("binary operand width mismatch: {:?} vs {:?}", ty(*a), ty(*b)),
                    );
                }
                if let Some(&r) = inst.results.first() {
                    if self.f.value_ty(r) != ty(*a) {
                        self.err(Some(bid), "binary result width differs from operands");
                    }
                }
            }
            InstKind::Icmp { a, b, .. } => {
                if ty(*a) != ty(*b) {
                    self.err(Some(bid), "icmp operand width mismatch");
                }
                if let Some(&r) = inst.results.first() {
                    if self.f.value_ty(r) != IrTy::I1 {
                        self.err(Some(bid), "icmp result must be i1");
                    }
                }
            }
            InstKind::Select { cond, a, b } => {
                if ty(*cond) != IrTy::I1 {
                    self.err(Some(bid), "select condition must be i1");
                }
                if ty(*a) != ty(*b) {
                    self.err(Some(bid), "select arm width mismatch");
                }
            }
            InstKind::Lookup { table, .. } => {
                if let Some(&hit) = inst.results.first() {
                    if self.f.value_ty(hit) != IrTy::I1 {
                        self.err(Some(bid), "lookup hit result must be i1");
                    }
                }
                if let Some(m) = self.module {
                    if !m.global(*table).lookup {
                        self.err(Some(bid), "lookup on non-lookup global");
                    }
                }
            }
            InstKind::MemRead { mem } | InstKind::MemWrite { mem, .. } => {
                if let Some(m) = self.module {
                    let g = m.global(mem.mem);
                    if mem.indices.len() != g.dims.len() {
                        self.err(
                            Some(bid),
                            format!(
                                "memory reference to `{}` has {} indices for {} dimensions",
                                g.name,
                                mem.indices.len(),
                                g.dims.len()
                            ),
                        );
                    }
                    if g.lookup {
                        self.err(Some(bid), "direct access to lookup memory");
                    }
                }
            }
            InstKind::AtomicRmw { op, mem, cond, operands } => {
                if op.cond != cond.is_some() {
                    self.err(Some(bid), "atomic condition operand mismatch");
                }
                if operands.len() != op.rmw.value_operands() {
                    self.err(Some(bid), "atomic value operand count mismatch");
                }
                if let Some(m) = self.module {
                    let g = m.global(mem.mem);
                    if mem.indices.len() != g.dims.len() {
                        self.err(Some(bid), "atomic index count mismatch");
                    }
                }
            }
            InstKind::LocalLoad { slot, .. } | InstKind::LocalStore { slot, .. }
                if self.f.locals.get(*slot).is_none() =>
            {
                self.err(Some(bid), format!("unknown local slot {slot:?}"));
            }
            InstKind::ArgRead { arg, .. } | InstKind::ArgWrite { arg, .. }
                if *arg as usize >= self.f.args.len() =>
            {
                self.err(Some(bid), format!("argument index {arg} out of range"));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{ActionRef, FuncBuilder, Inst, Terminator};
    use crate::types::{IrBinOp, Operand as Op};

    #[test]
    fn valid_function_passes() {
        let mut b = FuncBuilder::new("k", 1);
        let arg = b.add_arg("x", IrTy::I32, 1, false);
        let x = b.emit(InstKind::ArgRead { arg, index: Op::imm(0, IrTy::I32) }, IrTy::I32).unwrap();
        b.bin(IrBinOp::Add, Op::Value(x), Op::imm(1, IrTy::I32), IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let f = b.finish();
        assert!(verify_function(&f, None).is_ok());
    }

    #[test]
    fn width_mismatch_detected() {
        let mut b = FuncBuilder::new("k", 1);
        b.bin(IrBinOp::Add, Op::imm(1, IrTy::I32), Op::imm(1, IrTy::I16), IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let f = b.finish();
        let errs = verify_function(&f, None).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("width mismatch")), "{errs:?}");
    }

    #[test]
    fn use_before_def_detected() {
        let mut b = FuncBuilder::new("k", 1);
        // Manually craft a use of a value defined later.
        let later = b.func.values.push(crate::func::ValueInfo { ty: IrTy::I32, name: None });
        b.func.blocks[b.current].insts.push(Inst {
            kind: InstKind::Bin { op: IrBinOp::Add, a: Op::Value(later), b: Op::imm(1, IrTy::I32) },
            results: vec![b.func.values.push(crate::func::ValueInfo { ty: IrTy::I32, name: None })],
        });
        b.func.blocks[b.current].insts.push(Inst {
            kind: InstKind::Bin {
                op: IrBinOp::Add,
                a: Op::imm(1, IrTy::I32),
                b: Op::imm(2, IrTy::I32),
            },
            results: vec![later],
        });
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let f = b.finish();
        let errs = verify_function(&f, None).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("before its definition")), "{errs:?}");
    }

    #[test]
    fn bad_branch_target_detected() {
        let mut b = FuncBuilder::new("k", 1);
        b.terminate(Terminator::Br(crate::func::BlockId(99)));
        let f = b.finish();
        let errs = verify_function(&f, None).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unknown block")));
    }

    #[test]
    fn condbr_condition_must_be_i1() {
        let mut b = FuncBuilder::new("k", 1);
        let t = b.new_block();
        let e = b.new_block();
        b.terminate(Terminator::CondBr { cond: Op::imm(1, IrTy::I32), then_bb: t, else_bb: e });
        b.switch_to(t);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        b.switch_to(e);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let f = b.finish();
        let errs = verify_function(&f, None).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("must be i1")));
    }
}
