//! Multi-tenant compilation (DESIGN.md §17).
//!
//! [`compile_tenants`] is the driver for the merged deployment: each
//! tenant's NetCL-C unit goes through the normal frontend (parse → sema →
//! per-device lowering), the lowered base modules are composed with
//! [`netcl_ir::merge::merge`] — namespaced under `t<id>__`, memory ids
//! re-based, computation ids renumbered so the NCL `comp` byte is the
//! tenant classifier at ingress — and the *merged* module runs the pass
//! pipeline and code generators exactly like a single-tenant program.
//!
//! Two artifacts come back per tenant besides the shared merged device:
//! the old→new computation map (hosts address kernels on the shared
//! switch with it) and a **solo** [`CompiledDevice`] built from
//! [`netcl_ir::merge::MergedTenants::solo`] — the dedicated-switch
//! baseline that is wire-compatible with the merged deployment (same comp
//! bytes, same namespaced state). The isolation tests and the
//! `multi_tenant` benchmark compare the two byte-for-byte.
//!
//! Budget enforcement is part of the driver: the merged TNA program is
//! fitted with [`netcl_tofino::allocate_with_budgets`], so an over-budget
//! tenant set is rejected here with the allocator's structured diagnostic
//! (code `E0502`, naming tenant and exhausted resource) — never a panic,
//! never a silent mis-allocation.

use netcl_ir::merge::{self, MergedTenants, TenantMapEntry, TenantUnit};
use netcl_ir::Module;
use netcl_p4::ast::{P4Program, Target};
use netcl_passes::PipelineTarget;
use netcl_sema::Model;
use netcl_tofino::{AllocationReport, TenantBudgets, TofinoSpec};
use netcl_util::{DiagnosticSink, SourceMap};

use crate::codegen;
use crate::compiler::{CompileError, CompileOptions, CompiledDevice, EmitTarget};
use crate::lower;

/// One tenant's translation unit.
#[derive(Clone, Copy, Debug)]
pub struct TenantSource<'a> {
    /// Tenant id (becomes the `t<id>__` namespace).
    pub tenant: u16,
    /// Unit name (for diagnostics).
    pub name: &'a str,
    /// NetCL-C source.
    pub source: &'a str,
}

/// One tenant's view of the merged deployment.
#[derive(Clone, Debug)]
pub struct TenantSlice {
    /// Tenant id.
    pub tenant: u16,
    /// The tenant's semantic model (kernel specs for its hosts). Kernel
    /// computation ids here are the tenant's *original* ids; translate
    /// through [`TenantSlice::map`] when talking to the merged switch.
    pub model: Model,
    /// Original → merged computation ids and the tenant's global range.
    pub map: TenantMapEntry,
    /// The dedicated-switch baseline: this tenant's module alone,
    /// namespaced and carrying the merged computation ids.
    pub solo: CompiledDevice,
}

/// The output of [`compile_tenants`].
#[derive(Clone, Debug)]
pub struct MergedCompilation {
    /// Target device id.
    pub device: u16,
    /// The merged switch program (all tenants behind one comp dispatch).
    pub merged: CompiledDevice,
    /// Per-tenant maps, models, and solo baselines, in input order.
    pub tenants: Vec<TenantSlice>,
    /// The merged TNA program's fit, with per-tenant resource attribution
    /// (`None` when only v1model was emitted).
    pub report: Option<AllocationReport>,
}

impl MergedCompilation {
    /// The slice for a tenant id.
    pub fn tenant(&self, id: u16) -> Option<&TenantSlice> {
        self.tenants.iter().find(|t| t.tenant == id)
    }
}

/// Compiles `sources` for `device` and merges them onto one switch,
/// enforcing `budgets` on the merged TNA fit. See the module docs.
pub fn compile_tenants(
    sources: &[TenantSource<'_>],
    device: u16,
    options: &CompileOptions,
    budgets: &TenantBudgets,
) -> Result<MergedCompilation, CompileError> {
    compile_tenants_on(sources, device, options, budgets, &TofinoSpec::tofino1())
}

/// [`compile_tenants`] against an explicit pipeline spec (tests use
/// [`TofinoSpec::tiny`] to exercise rejection without giant programs).
pub fn compile_tenants_on(
    sources: &[TenantSource<'_>],
    device: u16,
    options: &CompileOptions,
    budgets: &TenantBudgets,
    spec: &TofinoSpec,
) -> Result<MergedCompilation, CompileError> {
    // Frontend per tenant: parse, analyze, lower the base module.
    let mut units = Vec::new();
    let mut models = Vec::new();
    for ts in sources {
        let (base, model) = frontend(ts, device)?;
        models.push((ts.tenant, model));
        units.push(TenantUnit { tenant: ts.tenant, module: base });
    }

    // Compose. Merge errors are definitional (duplicate tenant, device
    // mismatch, comp-space exhaustion) — report them as E0501.
    let merged: MergedTenants = merge::merge(&units).map_err(|e| CompileError {
        message: format!("tenant merge failed: {e}"),
        codes: vec!["E0501".into()],
    })?;
    if let Err(errs) = netcl_ir::verify::verify_module(&merged.module) {
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        return Err(CompileError {
            message: format!("internal: merged IR fails verification:\n{}", msgs.join("\n")),
            codes: vec!["E0399".into()],
        });
    }

    let merged_dev = build_device(merged.module.clone(), options)?;

    // Budget enforcement on the merged TNA fit: the allocator attributes
    // every namespaced table and register to its tenant and rejects
    // overuse with tenant + resource in the diagnostic.
    let report =
        if options.target != EmitTarget::V1Model {
            Some(netcl_tofino::allocate_with_budgets(&merged_dev.tna_p4, spec, budgets).map_err(
                |e| CompileError { message: e.to_string(), codes: vec!["E0502".into()] },
            )?)
        } else {
            None
        };

    // Solo baselines: one dedicated-switch artifact per tenant, compiled
    // from the merged module's namespaced slice (wire-compatible comps).
    let mut tenants = Vec::new();
    for (tenant, model) in models {
        let map = merged.tenant(tenant).expect("merge returns every input tenant").clone();
        let solo_module = merged.solo(tenant).expect("merge returns every input tenant");
        let solo = build_device(solo_module, options)?;
        tenants.push(TenantSlice { tenant, model, map, solo });
    }

    Ok(MergedCompilation { device, merged: merged_dev, tenants, report })
}

/// Parse → analyze → lower one tenant's unit for `device`.
fn frontend(ts: &TenantSource<'_>, device: u16) -> Result<(Module, Model), CompileError> {
    let (unit, mut diags) = netcl_lang::parse(ts.name, ts.source);
    if diags.has_errors() {
        return Err(render_for(ts.tenant, &diags, &unit.source_map));
    }
    let (analysis, sema_diags) = netcl_sema::analyze(&unit);
    diags.absorb(sema_diags);
    if diags.has_errors() {
        return Err(render_for(ts.tenant, &diags, &unit.source_map));
    }
    let base = lower::lower_device(&unit, &analysis, device, &mut diags);
    if diags.has_errors() {
        return Err(render_for(ts.tenant, &diags, &unit.source_map));
    }
    if let Err(errs) = netcl_ir::verify::verify_module(&base) {
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        return Err(CompileError {
            message: format!(
                "internal: tenant {} lowered IR fails verification:\n{}",
                ts.tenant,
                msgs.join("\n")
            ),
            codes: vec!["E0399".into()],
        });
    }
    Ok((base, analysis.model))
}

/// Pass pipeline + codegen for one (merged or solo) base module. The
/// merged module has no source map, so pipeline rejections render bare.
fn build_device(base: Module, options: &CompileOptions) -> Result<CompiledDevice, CompileError> {
    let device = base.device;
    let want_tna = options.target != EmitTarget::V1Model;
    let want_v1 = options.target != EmitTarget::Tna;
    let map = SourceMap::new();
    let mut diags = DiagnosticSink::new();

    let mut tna_ir = base.clone();
    if want_tna
        && netcl_passes::run_pipeline(
            &mut tna_ir,
            PipelineTarget::Tofino,
            &options.flags,
            &mut diags,
        )
        .is_err()
    {
        return Err(render_for(u16::MAX, &diags, &map));
    }
    let mut v1_ir = base;
    if want_v1
        && netcl_passes::run_pipeline(
            &mut v1_ir,
            PipelineTarget::V1Model,
            &options.flags,
            &mut diags,
        )
        .is_err()
    {
        return Err(render_for(u16::MAX, &diags, &map));
    }

    let gen_err = |e: codegen::CodegenError| CompileError {
        message: e.to_string(),
        codes: vec![e.code.to_string()],
    };
    let empty = P4Program::default();
    let tna_p4 = if want_tna {
        codegen::generate(&tna_ir, Target::Tna).map_err(gen_err)?
    } else {
        empty.clone()
    };
    let v1_p4 =
        if want_v1 { codegen::generate(&v1_ir, Target::V1Model).map_err(gen_err)? } else { empty };

    Ok(CompiledDevice {
        device,
        tna_ir,
        v1_ir,
        tna_p4,
        v1_p4,
        tna_pass_report: None,
        v1_pass_report: None,
    })
}

fn render_for(tenant: u16, diags: &DiagnosticSink, map: &SourceMap) -> CompileError {
    let rendered = diags.render_all(map);
    let message =
        if tenant == u16::MAX { rendered } else { format!("tenant {tenant}: {rendered}") };
    CompileError {
        message,
        codes: diags.diagnostics().iter().map(|d| d.code.to_string()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcl_tofino::{AllocError, TenantBudget};

    /// A Fig. 7-flavored aggregation tenant.
    pub(crate) const AGG_SRC: &str = r#"
_managed_ unsigned Acc[256];
_kernel(1) _at(1) void agg(unsigned slot, unsigned v, unsigned &sum) {
  sum = ncl::atomic_add_new(&Acc[slot], v);
}
"#;

    /// A Fig. 4-flavored cache tenant.
    pub(crate) const CACHE_SRC: &str = r#"
_managed_ unsigned Freq[1024];
_net_ _lookup_ ncl::kv<unsigned, unsigned> kv[] = {{1,11}, {2,22}, {3,33}};
_kernel(1) _at(1) void query(unsigned k, unsigned &v, char &hit, unsigned &n) {
  hit = ncl::lookup(kv, k, v);
  if (!hit) n = ncl::atomic_sadd_new(&Freq[ncl::crc16(k)], 1);
  if (hit) return ncl::reflect();
}
"#;

    fn sources() -> Vec<TenantSource<'static>> {
        vec![
            TenantSource { tenant: 0, name: "agg.ncl", source: AGG_SRC },
            TenantSource { tenant: 1, name: "cache.ncl", source: CACHE_SRC },
        ]
    }

    #[test]
    fn agg_and_cache_merge_onto_one_switch() {
        let m =
            compile_tenants(&sources(), 1, &CompileOptions::default(), &TenantBudgets::default())
                .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(m.device, 1);
        assert_eq!(m.tenants.len(), 2);
        // Comp dispatch: agg keeps comp 1 → 1, cache's comp 1 → 2.
        assert_eq!(m.tenant(0).unwrap().map.comp(1), Some(1));
        assert_eq!(m.tenant(1).unwrap().map.comp(1), Some(2));
        // The merged P4 carries both tenants' namespaced state.
        let ig = m.merged.tna_p4.control("Ig").unwrap();
        assert!(ig.registers.iter().any(|r| r.name.starts_with("t0__Acc")));
        assert!(ig.registers.iter().any(|r| r.name.starts_with("t1__Freq")));
        assert!(ig.tables.iter().any(|t| t.name.starts_with("lu_t1__kv")));
        assert!(!ig.tables.iter().any(|t| t.name.starts_with("lu_kv")), "un-namespaced MAT");
        // The fit attributes resources to both tenants.
        let rep = m.report.as_ref().unwrap();
        assert_eq!(rep.tenants.iter().map(|t| t.tenant).collect::<Vec<_>>(), vec![0, 1]);
        assert!(rep.tenants.iter().all(|t| t.salus >= 1));
        // Solo baselines carry only their own state, with merged comps.
        let solo1 = &m.tenant(1).unwrap().solo;
        assert_eq!(solo1.tna_ir.kernels.len(), 1);
        assert_eq!(solo1.tna_ir.kernels[0].computation, 2);
        let sig = solo1.tna_p4.control("Ig").unwrap();
        assert!(sig.registers.iter().all(|r| r.name.starts_with("t1__")));
    }

    #[test]
    fn over_budget_tenant_set_rejected_structurally() {
        // Tenant 1 (cache: register + MAT) capped to zero tables.
        let budgets = TenantBudgets {
            per_tenant: vec![(
                1,
                TenantBudget { stages: 12, sram_bits: u64::MAX, salus: 4, tables: 0 },
            )],
            default_budget: None,
        };
        let err = compile_tenants(&sources(), 1, &CompileOptions::default(), &budgets).unwrap_err();
        assert_eq!(err.codes, vec!["E0502".to_string()]);
        assert!(err.message.contains("tenant 1"), "{err}");
        assert!(err.message.contains("tables"), "{err}");
        // The same rejection is typed at the allocator level.
        let m =
            compile_tenants(&sources(), 1, &CompileOptions::default(), &TenantBudgets::default())
                .unwrap();
        let typed =
            netcl_tofino::allocate_with_budgets(&m.merged.tna_p4, &TofinoSpec::tofino1(), &budgets)
                .unwrap_err();
        assert!(matches!(typed, AllocError::TenantBudget { tenant: 1, resource: "tables", .. }));
    }

    #[test]
    fn duplicate_tenants_rejected() {
        let dup = vec![
            TenantSource { tenant: 3, name: "a.ncl", source: AGG_SRC },
            TenantSource { tenant: 3, name: "b.ncl", source: CACHE_SRC },
        ];
        let err = compile_tenants(&dup, 1, &CompileOptions::default(), &TenantBudgets::default())
            .unwrap_err();
        assert_eq!(err.codes, vec!["E0501".to_string()]);
        assert!(err.message.contains("tenant 3"), "{err}");
    }
}
