//! Per-pass telemetry for the §VI-B pipeline (DESIGN.md §12).
//!
//! The paper's pipeline makes the mapping decisions programmers otherwise
//! debug blind — speculation, memory duplication, stage fitting. A
//! [`PassReport`] records, per pass (aggregated over kernels and fixpoint
//! iterations): wall time, the IR delta it caused (instructions and blocks
//! added/removed), and how many rewrites fired. `ncc --emit-pass-report`
//! prints the rendered table; [`PassReport::to_events`] exports the same
//! data as JSONL through `netcl-obs`.

use netcl_ir::{Function, Module};
use netcl_obs::{Event, Stopwatch};
use std::fmt::Write as _;

/// What a pass entry point reports back, normalized to "rewrites fired".
pub trait PassOutcome {
    /// Number of rewrites/changes this run applied.
    fn rewrites(&self) -> u64;
}

impl PassOutcome for bool {
    fn rewrites(&self) -> u64 {
        *self as u64
    }
}

impl PassOutcome for usize {
    fn rewrites(&self) -> u64 {
        *self as u64
    }
}

impl PassOutcome for () {
    fn rewrites(&self) -> u64 {
        0
    }
}

/// Aggregated statistics for one named pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStat {
    /// Pass name as it appears in the pipeline.
    pub name: &'static str,
    /// Invocations (per kernel × per fixpoint iteration).
    pub runs: u64,
    /// Total wall time across runs, nanoseconds.
    pub wall_ns: u64,
    /// Net instructions added (negative: removed).
    pub insts_delta: i64,
    /// Net blocks added (negative: removed).
    pub blocks_delta: i64,
    /// Rewrites fired (pass-reported change count).
    pub rewrites: u64,
}

/// Sizes of a function or module: `(instructions, blocks)`.
fn fn_size(f: &Function) -> (u64, u64) {
    (f.blocks.iter().map(|b| b.insts.len() as u64).sum(), f.blocks.len() as u64)
}

fn module_size(m: &Module) -> (u64, u64) {
    m.kernels.iter().map(fn_size).fold((0, 0), |(i, b), (fi, fb)| (i + fi, b + fb))
}

/// The pipeline telemetry for one `run_pipeline` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassReport {
    /// Target label (`"tna"` or `"v1model"`).
    pub target: &'static str,
    /// Kernel count in the module.
    pub kernels: u64,
    /// Instructions before the first pass.
    pub insts_start: u64,
    /// Instructions after the last pass.
    pub insts_end: u64,
    /// Blocks before the first pass.
    pub blocks_start: u64,
    /// Blocks after the last pass.
    pub blocks_end: u64,
    /// Per-pass aggregates, in first-execution order.
    pub passes: Vec<PassStat>,
    /// Whether this report was served from the incremental-compile cache
    /// instead of a fresh pipeline run: the per-pass numbers then describe
    /// the *original* run whose artifacts were reused (DESIGN.md §16).
    pub from_cache: bool,
}

impl PassReport {
    /// Starts a report by snapshotting the module.
    pub fn begin(target: &'static str, module: &Module) -> PassReport {
        let (insts, blocks) = module_size(module);
        PassReport {
            target,
            kernels: module.kernels.len() as u64,
            insts_start: insts,
            insts_end: insts,
            blocks_start: blocks,
            blocks_end: blocks,
            passes: Vec::new(),
            from_cache: false,
        }
    }

    /// Final module snapshot (call once the pipeline is done).
    pub fn finish(&mut self, module: &Module) {
        let (insts, blocks) = module_size(module);
        self.insts_end = insts;
        self.blocks_end = blocks;
    }

    /// Total pipeline wall time, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.passes.iter().map(|p| p.wall_ns).sum()
    }

    /// The aggregate entry for `name`, if that pass ran.
    pub fn pass(&self, name: &str) -> Option<&PassStat> {
        self.passes.iter().find(|p| p.name == name)
    }

    fn stat_mut(&mut self, name: &'static str) -> &mut PassStat {
        if let Some(i) = self.passes.iter().position(|p| p.name == name) {
            return &mut self.passes[i];
        }
        self.passes.push(PassStat {
            name,
            runs: 0,
            wall_ns: 0,
            insts_delta: 0,
            blocks_delta: 0,
            rewrites: 0,
        });
        self.passes.last_mut().expect("just pushed")
    }

    fn record(
        &mut self,
        name: &'static str,
        wall_ns: u64,
        before: (u64, u64),
        after: (u64, u64),
        rewrites: u64,
    ) {
        let s = self.stat_mut(name);
        s.runs += 1;
        s.wall_ns += wall_ns;
        s.insts_delta += after.0 as i64 - before.0 as i64;
        s.blocks_delta += after.1 as i64 - before.1 as i64;
        s.rewrites += rewrites;
    }

    /// Runs a function pass under measurement.
    pub fn on_fn<R: PassOutcome>(
        &mut self,
        name: &'static str,
        f: &mut Function,
        run: impl FnOnce(&mut Function) -> R,
    ) -> R {
        let before = fn_size(f);
        let sw = Stopwatch::start();
        let r = run(f);
        let wall = sw.elapsed_ns();
        self.record(name, wall, before, fn_size(f), r.rewrites());
        r
    }

    /// Runs a module pass under measurement.
    pub fn on_module<R: PassOutcome>(
        &mut self,
        name: &'static str,
        m: &mut Module,
        run: impl FnOnce(&mut Module) -> R,
    ) -> R {
        let before = module_size(m);
        let sw = Stopwatch::start();
        let r = run(m);
        let wall = sw.elapsed_ns();
        self.record(name, wall, before, module_size(m), r.rewrites());
        r
    }

    /// The human-readable table `ncc --emit-pass-report` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pass report{} — target {}, {} kernel(s): {} insts → {}, {} blocks → {}, {:.2} ms total",
            if self.from_cache { " (cached)" } else { "" },
            self.target,
            self.kernels,
            self.insts_start,
            self.insts_end,
            self.blocks_start,
            self.blocks_end,
            self.total_ns() as f64 / 1e6,
        );
        let _ = writeln!(
            out,
            "{:<18} {:>5} {:>11} {:>8} {:>8} {:>9}",
            "PASS", "RUNS", "WALL(µs)", "ΔINSTS", "ΔBLOCKS", "REWRITES"
        );
        for p in &self.passes {
            let _ = writeln!(
                out,
                "{:<18} {:>5} {:>11.1} {:>+8} {:>+8} {:>9}",
                p.name,
                p.runs,
                p.wall_ns as f64 / 1e3,
                p.insts_delta,
                p.blocks_delta,
                p.rewrites
            );
        }
        out
    }

    /// JSONL export: one `pass` event per pass plus a `pipeline` summary.
    pub fn to_events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.passes.len() + 1);
        for p in &self.passes {
            out.push(
                Event::new(format!("pass.{}", p.name), 0)
                    .field("runs", p.runs)
                    .field("wall_ns", p.wall_ns)
                    .field("insts", p.insts_delta)
                    .field("blocks", p.blocks_delta)
                    .field("rewrites", p.rewrites),
            );
        }
        out.push(
            Event::new("pipeline", 0)
                .field("wall_ns", self.total_ns())
                .field("insts", self.insts_end)
                .field("blocks", self.blocks_end)
                .field("runs", self.kernels)
                .field("from_cache", self.from_cache as u64),
        );
        out
    }
}

/// An optional-report recorder: measures through a `Some` report, runs the
/// pass bare through `None` — so the pipeline has a single set of call
/// sites and pays nothing when telemetry is off.
pub struct Recorder<'a>(pub Option<&'a mut PassReport>);

impl Recorder<'_> {
    /// Function-pass dispatch.
    pub fn on_fn<R: PassOutcome>(
        &mut self,
        name: &'static str,
        f: &mut Function,
        run: impl FnOnce(&mut Function) -> R,
    ) -> R {
        match self.0.as_deref_mut() {
            Some(rep) => rep.on_fn(name, f, run),
            None => run(f),
        }
    }

    /// Module-pass dispatch.
    pub fn on_module<R: PassOutcome>(
        &mut self,
        name: &'static str,
        m: &mut Module,
        run: impl FnOnce(&mut Module) -> R,
    ) -> R {
        match self.0.as_deref_mut() {
            Some(rep) => rep.on_module(name, m, run),
            None => run(m),
        }
    }
}
