//! Writes every application's generated and handwritten P4 to
//! `artifacts/{generated,handwritten}_p4/` so the compiler output can be
//! inspected as text (these are the files Table III measures).
use netcl::{CompileOptions, Compiler};
use netcl_p4::print::print_program;

fn main() {
    std::fs::create_dir_all("artifacts/generated_p4").unwrap();
    std::fs::create_dir_all("artifacts/handwritten_p4").unwrap();
    std::fs::create_dir_all("artifacts/netcl_src").unwrap();
    for app in netcl_apps::all_apps() {
        let name = app.name.to_lowercase();
        std::fs::write(format!("artifacts/netcl_src/{name}.ncl"), &app.netcl_source).unwrap();
        std::fs::write(
            format!("artifacts/handwritten_p4/{name}.p4"),
            print_program(&app.handwritten),
        )
        .unwrap();
        let unit =
            Compiler::new(CompileOptions::default()).compile(app.name, &app.netcl_source).unwrap();
        let dev = unit.device(app.device).unwrap();
        std::fs::write(format!("artifacts/generated_p4/{name}_tna.p4"), print_program(&dev.tna_p4))
            .unwrap();
        std::fs::write(
            format!("artifacts/generated_p4/{name}_v1model.p4"),
            print_program(&dev.v1_p4),
        )
        .unwrap();
        eprintln!("wrote artifacts for {}", app.name);
    }
}
