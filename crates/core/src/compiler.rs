//! The `ncc` compiler driver (paper Fig. 3, steps 1–2).
//!
//! Orchestrates the full pipeline — parse, semantic analysis, per-device
//! lowering, the §VI-B pass pipeline, and P4 code generation — and reports
//! per-phase timings (the `ncc` rows of Table IV).

use std::time::{Duration, Instant};

use netcl_ir::Module;
use netcl_p4::ast::{P4Program, Target};
use netcl_passes::{PassFlags, PassReport, PipelineTarget};
use netcl_sema::Model;
use netcl_util::DiagnosticSink;

use crate::cache::{self, CompileCache, ReuseStats};
use crate::codegen;
use crate::lower;

/// Which P4 dialects to emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EmitTarget {
    /// Intel Tofino (TNA) only.
    Tna,
    /// v1model only.
    V1Model,
    /// Both (default) — the paper develops backends for both extremes.
    #[default]
    Both,
}

/// Compiler configuration.
#[derive(Clone, Debug, Default)]
pub struct CompileOptions {
    /// Emitted dialects.
    pub target: EmitTarget,
    /// Pass pipeline flags (§VI-B transformation toggles).
    pub flags: PassFlags,
    /// Devices to compile for; defaults to every device mentioned in an
    /// `_at(...)` (or device 0 for location-less programs).
    pub devices: Option<Vec<u16>>,
    /// Collect per-pass telemetry (wall time, IR deltas, rewrite counts)
    /// into [`CompiledDevice::tna_pass_report`] / `v1_pass_report`
    /// (DESIGN.md §12; surfaced by `ncc --emit-pass-report`).
    pub pass_report: bool,
}

/// Per-phase wall-clock timings.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileTimings {
    /// Preprocess + lex + parse.
    pub frontend: Duration,
    /// Semantic analysis.
    pub sema: Duration,
    /// Lowering (all devices).
    pub lower: Duration,
    /// Pass pipelines (all devices, both targets).
    pub passes: Duration,
    /// P4 code generation (all devices, both targets).
    pub codegen: Duration,
}

impl CompileTimings {
    /// Total `ncc` time.
    pub fn total(&self) -> Duration {
        self.frontend + self.sema + self.lower + self.passes + self.codegen
    }
}

/// The output for one device.
#[derive(Clone, Debug)]
pub struct CompiledDevice {
    /// Device id.
    pub device: u16,
    /// Tofino-legal IR (post Tofino pipeline) — the allocator's input.
    pub tna_ir: Module,
    /// v1model-legal IR (common pipeline only).
    pub v1_ir: Module,
    /// Generated TNA P4.
    pub tna_p4: P4Program,
    /// Generated v1model P4.
    pub v1_p4: P4Program,
    /// Per-pass telemetry for the Tofino pipeline (when
    /// [`CompileOptions::pass_report`] is set).
    pub tna_pass_report: Option<PassReport>,
    /// Per-pass telemetry for the v1model pipeline.
    pub v1_pass_report: Option<PassReport>,
}

/// A fully compiled translation unit.
#[derive(Clone, Debug)]
pub struct CompiledUnit {
    /// The semantic model (kernel specifications for the host runtime).
    pub model: Model,
    /// Per-device outputs.
    pub devices: Vec<CompiledDevice>,
    /// Phase timings. On a cache hit these are the *original* run's
    /// timings — wall-clock savings show up in the caller's clock, not
    /// here.
    pub timings: CompileTimings,
    /// Warnings (rendered).
    pub warnings: Vec<String>,
    /// What the incremental cache contributed (all-zero for cold
    /// [`Compiler::compile`] calls).
    pub reuse: ReuseStats,
}

impl CompiledUnit {
    /// The output for a specific device id.
    pub fn device(&self, id: u16) -> Option<&CompiledDevice> {
        self.devices.iter().find(|d| d.device == id)
    }
}

/// Compilation failure: rendered diagnostics.
#[derive(Debug, Clone)]
pub struct CompileError {
    /// Human-readable diagnostics, one per line group.
    pub message: String,
    /// Machine-readable codes in order of emission.
    pub codes: Vec<String>,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// The NetCL compiler.
pub struct Compiler {
    options: CompileOptions,
}

impl Compiler {
    /// Creates a compiler with the given options.
    pub fn new(options: CompileOptions) -> Compiler {
        Compiler { options }
    }

    /// Compiles one NetCL-C translation unit (no caching).
    pub fn compile(&self, name: &str, source: &str) -> Result<CompiledUnit, CompileError> {
        self.compile_with(name, source, None)
    }

    /// Compiles one unit through the incremental cache (DESIGN.md §16):
    /// unchanged units are served whole, and devices whose post-sema base
    /// IR is unchanged skip the pass pipeline and codegen. Served
    /// artifacts carry [`ReuseStats`] and `from_cache` pass reports.
    pub fn compile_incremental(
        &self,
        name: &str,
        source: &str,
        cache: &mut CompileCache,
    ) -> Result<CompiledUnit, CompileError> {
        self.compile_with(name, source, Some(cache))
    }

    /// The single compile path: `cache = None` is a cold compile.
    pub fn compile_with(
        &self,
        name: &str,
        source: &str,
        mut cache: Option<&mut CompileCache>,
    ) -> Result<CompiledUnit, CompileError> {
        let fingerprint = cache::options_fingerprint(&self.options);
        let ukey = cache::unit_key(fingerprint, name, source);
        if let Some(c) = cache.as_deref_mut() {
            if let Some(mut unit) = c.unit(ukey) {
                unit.reuse = ReuseStats {
                    unit_hit: true,
                    devices_total: unit.devices.len(),
                    devices_reused: unit.devices.len(),
                    kernels_total: unit.reuse.kernels_total,
                    kernels_reused: unit.reuse.kernels_total,
                };
                for d in &mut unit.devices {
                    mark_cached(d);
                }
                return Ok(unit);
            }
        }

        let mut timings = CompileTimings::default();

        let t0 = Instant::now();
        let (unit, mut diags) = netcl_lang::parse(name, source);
        timings.frontend = t0.elapsed();
        if diags.has_errors() {
            return Err(render(&diags, &unit.source_map));
        }

        let t0 = Instant::now();
        let (analysis, sema_diags) = netcl_sema::analyze(&unit);
        timings.sema = t0.elapsed();
        diags.absorb(sema_diags);
        if diags.has_errors() {
            return Err(render(&diags, &unit.source_map));
        }

        let devices =
            self.options.devices.clone().unwrap_or_else(|| analysis.model.mentioned_devices());

        let mut out_devices = Vec::new();
        let mut reuse = ReuseStats::default();
        for dev in devices {
            let t0 = Instant::now();
            let base = lower::lower_device(&unit, &analysis, dev, &mut diags);
            timings.lower += t0.elapsed();
            if diags.has_errors() {
                return Err(render(&diags, &unit.source_map));
            }
            if let Err(errs) = netcl_ir::verify::verify_module(&base) {
                let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
                return Err(CompileError {
                    message: format!(
                        "internal: lowered IR fails verification:\n{}",
                        msgs.join("\n")
                    ),
                    codes: vec!["E0399".into()],
                });
            }
            reuse.devices_total += 1;

            // Kernel-level attribution: record each kernel's IR hash so
            // the reuse stats show *which* edits caused a device miss — a
            // one-kernel edit reports one cold kernel, and its siblings'
            // devices stay served from the device cache below.
            if let Some(c) = cache.as_deref_mut() {
                for f in &base.kernels {
                    reuse.kernels_total += 1;
                    if c.kernel(cache::kernel_key(fingerprint, dev, f)) {
                        reuse.kernels_reused += 1;
                    }
                }
            }

            // Device-level reuse: the pass pipeline and codegen are pure
            // functions of (base IR, flags, target), so an unchanged base
            // IR means the cached artifact is byte-identical to what a
            // fresh run would produce.
            let dkey = cache.as_ref().map(|_| cache::device_key(fingerprint, &base));
            if let (Some(c), Some(k)) = (cache.as_deref_mut(), dkey) {
                if let Some(mut d) = c.device(k) {
                    d.device = dev;
                    mark_cached(&mut d);
                    reuse.devices_reused += 1;
                    out_devices.push(d);
                    continue;
                }
            }

            let want_tna = self.options.target != EmitTarget::V1Model;
            let want_v1 = self.options.target != EmitTarget::Tna;

            // One pipeline runner for both targets: telemetry-collecting
            // when requested, bare otherwise.
            let pipeline = |ir: &mut Module,
                            target: PipelineTarget,
                            diags: &mut DiagnosticSink|
             -> (Result<(), ()>, Option<PassReport>) {
                if self.options.pass_report {
                    let (r, rep) = netcl_passes::run_pipeline_with_report(
                        ir,
                        target,
                        &self.options.flags,
                        diags,
                    );
                    (r, Some(rep))
                } else {
                    (netcl_passes::run_pipeline(ir, target, &self.options.flags, diags), None)
                }
            };

            let t0 = Instant::now();
            let mut tna_ir = base.clone();
            let mut tna_pass_report = None;
            if want_tna {
                let (r, rep) = pipeline(&mut tna_ir, PipelineTarget::Tofino, &mut diags);
                tna_pass_report = rep;
                if r.is_err() {
                    return Err(render(&diags, &unit.source_map));
                }
            }
            let mut v1_ir = base;
            let mut v1_pass_report = None;
            if want_v1 {
                let (r, rep) = pipeline(&mut v1_ir, PipelineTarget::V1Model, &mut diags);
                v1_pass_report = rep;
                if r.is_err() {
                    return Err(render(&diags, &unit.source_map));
                }
            }
            timings.passes += t0.elapsed();

            let t0 = Instant::now();
            let empty = P4Program::default();
            let tna_p4 = if want_tna {
                codegen::generate(&tna_ir, Target::Tna).map_err(|e| CompileError {
                    message: e.to_string(),
                    codes: vec![e.code.to_string()],
                })?
            } else {
                empty.clone()
            };
            let v1_p4 = if want_v1 {
                codegen::generate(&v1_ir, Target::V1Model).map_err(|e| CompileError {
                    message: e.to_string(),
                    codes: vec![e.code.to_string()],
                })?
            } else {
                empty
            };
            timings.codegen += t0.elapsed();

            let compiled = CompiledDevice {
                device: dev,
                tna_ir,
                v1_ir,
                tna_p4,
                v1_p4,
                tna_pass_report,
                v1_pass_report,
            };
            if let (Some(c), Some(k)) = (cache.as_deref_mut(), dkey) {
                c.put_device(k, compiled.clone());
            }
            out_devices.push(compiled);
        }

        let warnings = diags
            .diagnostics()
            .iter()
            .filter(|d| d.severity == netcl_util::Severity::Warning)
            .map(|d| d.render(&unit.source_map))
            .collect();
        let out =
            CompiledUnit { model: analysis.model, devices: out_devices, timings, warnings, reuse };
        if let Some(c) = cache {
            c.put_unit(ukey, out.clone());
        }
        Ok(out)
    }
}

/// Flags every embedded pass report as cache-served so telemetry
/// consumers don't mistake a replayed report for a live pipeline run.
fn mark_cached(d: &mut CompiledDevice) {
    if let Some(r) = d.tna_pass_report.as_mut() {
        r.from_cache = true;
    }
    if let Some(r) = d.v1_pass_report.as_mut() {
        r.from_cache = true;
    }
}

fn render(diags: &DiagnosticSink, map: &netcl_util::SourceMap) -> CompileError {
    CompileError {
        message: diags.render_all(map),
        codes: diags.diagnostics().iter().map(|d| d.code.to_string()).collect(),
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use netcl_ir::interp::{execute, DeviceState, ExecEnv};
    use netcl_sema::builtins::ActionKind;

    pub const FIG4_CACHE: &str = r#"
#define CMS_HASHES 3
#define THRESH 512
#define GET_REQ 1
_managed_ unsigned cms[CMS_HASHES][65536];

_net_ void sketch(unsigned k, unsigned &hot) {
  unsigned c[CMS_HASHES];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k)], 1);
  for (auto i = 1; i < CMS_HASHES; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  hot = c[0] > THRESH ? c[0] : 0;
}

_net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42}, {2,42},
                                                      {3,42}, {4,42}};

_kernel(1) _at(1) void query(char op, unsigned k, unsigned &v,
                             char &hit, unsigned &hot) {
  if (op == GET_REQ) {
    hit = ncl::lookup(cache, k, v);
    return hit ? ncl::reflect() : sketch(k, hot);
  }
}
"#;

    #[test]
    fn compiles_figure4_cache() {
        let unit = Compiler::new(CompileOptions::default())
            .compile("fig4.ncl", FIG4_CACHE)
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(unit.devices.len(), 1);
        let dev = &unit.devices[0];
        assert_eq!(dev.device, 1);
        // TNA P4 carries the cache MAT and three CMS registers (partitioned).
        let ig = dev.tna_p4.control("Ig").unwrap();
        assert!(ig.tables.iter().any(|t| t.name.starts_with("lu_cache")), "cache MAT missing");
        let cms_regs = ig.registers.iter().filter(|r| r.name.starts_with("cms__")).count();
        assert_eq!(cms_regs, 3, "partitioning should split cms into 3 registers");
        assert_eq!(ig.register_actions.len(), 3);
        assert!(ig.register_actions.iter().all(|ra| ra.op.name() == "atomic_sadd_new"));
        // Hash engines for xor16/crc32<16>/crc16.
        assert_eq!(ig.hashes.len(), 3);
        // v1model P4 also generated.
        assert!(!dev.v1_p4.controls.is_empty());
    }

    /// Execute the compiled cache kernel on the IR interpreter:
    /// hit → reflect + value written; miss → pass + CMS counted.
    #[test]
    fn figure4_semantics_hit_and_miss() {
        let unit =
            Compiler::new(CompileOptions::default()).compile("fig4.ncl", FIG4_CACHE).unwrap();
        let dev = &unit.devices[0];
        let module = &dev.tna_ir;
        let kernel = &module.kernels[0];
        let mut st = DeviceState::new(module);
        let mut env = ExecEnv::default();

        // args: op, k, v, hit, hot
        let mut args = vec![vec![1u64], vec![2u64], vec![0u64], vec![0u64], vec![0u64]];
        let r = execute(kernel, module, &mut st, &mut args, &mut env).unwrap();
        assert_eq!(r.action, ActionKind::Reflect);
        assert_eq!(args[2][0], 42, "cache value written to v");
        assert_eq!(args[3][0], 1, "hit flag set");

        // Miss: key 99 → pass, sketch counts it (hot still 0 below THRESH).
        let mut args = vec![vec![1u64], vec![99u64], vec![0u64], vec![0u64], vec![0u64]];
        let r = execute(kernel, module, &mut st, &mut args, &mut env).unwrap();
        assert_eq!(r.action, ActionKind::Pass);
        assert_eq!(args[3][0], 0);
        // One CMS row counted once in each of the three partitions.
        let total: u64 = (0..3)
            .map(|p| {
                let (mem, g) =
                    module.global_by_name(&format!("cms__{p}")).expect("partitioned cms");
                (0..g.element_count()).map(|i| st.read(mem, i)).sum::<u64>()
            })
            .sum();
        assert_eq!(total, 3, "each hash partition counted the miss once");

        // Non-GET op: implicit pass, nothing written.
        let mut args = vec![vec![0u64], vec![1u64], vec![0u64], vec![0u64], vec![0u64]];
        let r = execute(kernel, module, &mut st, &mut args, &mut env).unwrap();
        assert_eq!(r.action, ActionKind::Pass);
        assert_eq!(args[2][0], 0);
    }

    /// Hot detection: drive the same key past THRESH misses.
    #[test]
    fn figure4_hot_key_detection() {
        let unit =
            Compiler::new(CompileOptions::default()).compile("fig4.ncl", FIG4_CACHE).unwrap();
        let dev = &unit.devices[0];
        let module = &dev.tna_ir;
        let kernel = &module.kernels[0];
        let mut st = DeviceState::new(module);
        let mut env = ExecEnv::default();
        let mut last_hot = 0u64;
        for _ in 0..520 {
            let mut args = vec![vec![1u64], vec![77u64], vec![0u64], vec![0u64], vec![0u64]];
            execute(kernel, module, &mut st, &mut args, &mut env).unwrap();
            last_hot = args[4][0];
        }
        assert!(last_hot > 512, "key should be reported hot after 520 misses, got {last_hot}");
    }

    #[test]
    fn unrollable_loop_limits() {
        let src = r#"
_net_ unsigned Acc[8];
_kernel(1) void k(unsigned x) {
  for (auto i = 0; i < x; ++i)
    ncl::atomic_add(&Acc[0], 1);
}
"#;
        let err = Compiler::new(CompileOptions::default()).compile("t.ncl", src).unwrap_err();
        assert!(err.codes.iter().any(|c| c == "E0306"), "{err}");
    }

    #[test]
    fn while_rejected() {
        let src = "_kernel(1) void k(unsigned &x) { while (x > 0) { x = x - 1; } }";
        let err = Compiler::new(CompileOptions::default()).compile("t.ncl", src).unwrap_err();
        assert!(err.codes.iter().any(|c| c == "E0306"), "{err}");
    }

    #[test]
    fn same_path_double_access_rejected_for_tofino_only() {
        let src = r#"
_net_ int m[42];
_kernel(2) void a(int x, int &o) { o = m[0] + m[1]; }
"#;
        // Tofino target rejects (§V-D)...
        let err = Compiler::new(CompileOptions { target: EmitTarget::Tna, ..Default::default() })
            .compile("t.ncl", src)
            .unwrap_err();
        assert!(err.codes.iter().any(|c| c == "E0302"), "{err}");
        // ...while the v1model software switch accepts.
        let ok =
            Compiler::new(CompileOptions { target: EmitTarget::V1Model, ..Default::default() })
                .compile("t.ncl", src);
        assert!(ok.is_ok(), "{:?}", ok.err().map(|e| e.message));
    }

    #[test]
    fn multi_device_compilation() {
        let src = r#"
_net_ _at(1,2) int m[42];
_kernel(1) _at(1,2) void a(int x, int &o) {
  if (device.id == 1) { o = ncl::atomic_add(&m[0], x); }
  else { o = ncl::atomic_add(&m[1], x); }
}
"#;
        let unit = Compiler::new(CompileOptions::default()).compile("t.ncl", src).unwrap();
        assert_eq!(unit.devices.len(), 2);
        // device.id materialization folds each device's branch away: each
        // module's kernel has exactly one atomic.
        for d in &unit.devices {
            let atomics: usize = d.tna_ir.kernels[0]
                .blocks
                .iter()
                .map(|b| {
                    b.insts
                        .iter()
                        .filter(|i| matches!(i.kind, netcl_ir::InstKind::AtomicRmw { .. }))
                        .count()
                })
                .sum();
            assert_eq!(atomics, 1, "device {} kept both branches", d.device);
        }
    }

    #[test]
    fn timings_populated() {
        let unit =
            Compiler::new(CompileOptions::default()).compile("fig4.ncl", FIG4_CACHE).unwrap();
        assert!(unit.timings.total() > Duration::ZERO);
    }
}
