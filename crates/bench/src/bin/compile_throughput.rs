//! Compiler throughput, cold vs incremental — the DESIGN.md §16 cache at
//! workload scale.
//!
//! The workload is 1000 generated kernel variants (250 per app family:
//! CALC-like arithmetic, AGG-like sketch aggregation, CACHE-like lookup,
//! PACC-like threshold accumulators), derived deterministically from
//! [`GEN_SEED`] so every run and every machine compiles byte-identical
//! sources. Three measurements:
//!
//! - **cold**: every unit through `Compiler::compile`, no cache;
//! - **incremental**: one variant mutated, the whole workload re-driven
//!   through `Compiler::compile_incremental` against a warm
//!   [`CompileCache`] — the 999 unchanged units are served whole;
//! - **multi-device**: a two-device unit where only one device's kernel
//!   changes, showing device-level artifact reuse inside a unit miss.
//!
//! Run `cargo run --release -p netcl-bench --bin compile_throughput` to
//! merge a `compile_throughput` section into `BENCH_switch.json` (placed
//! before `sim_sharded`, which always keeps the last slot). Two other
//! modes:
//!
//! - `--smoke`: a seconds-scale CI run that prints results without
//!   touching the file;
//! - `--gate`: fails (exit 1) if the 1-of-N mutation run does not serve
//!   exactly N−1 unit hits from the cache (a silent cache miss), if any
//!   served artifact differs from its cold compile, or if the incremental
//!   row is less than 5x the cold row.
//!
//! In every mode the binary cross-checks the mutated unit byte-for-byte
//! (printed P4, both dialects) against a cold compile of the same source,
//! so the speed row can never come from serving stale artifacts.
//!
//! Per-pass wall time is aggregated from the [`PassReport`]s of the cold
//! run and printed as JSONL (`netcl-obs` events), mirroring what
//! `ncc --emit-pass-report` exports per unit.

use std::collections::BTreeMap;
use std::time::Instant;

use netcl::passes::PassReport;
use netcl::{CompileCache, CompileOptions, CompiledUnit, Compiler};
use netcl_obs::Event;

/// The variant-generator seed (splitmix64 stream). Recorded in
/// EXPERIMENTS.md so the workload is reproducible from the number alone.
const GEN_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

const FAMILIES: [&str; 4] = ["calc", "agg", "cache", "pacc"];

/// splitmix64: one well-mixed word per (family, index, salt) triple.
fn mix(i: u64) -> u64 {
    let mut z = GEN_SEED.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One generated translation unit. `salt` perturbs the embedded constants:
/// the bench mutates a kernel by bumping its salt, exactly what an editor
/// changing one literal would produce.
fn variant(family: usize, i: usize, salt: u64) -> (String, String) {
    let r = mix((family as u64) << 32 | (i as u64) << 8 | salt);
    let name = format!("{}_{i}.ncl", FAMILIES[family]);
    let source = match family {
        0 => {
            let ops = ["+", "^", "&"];
            let op1 = ops[(r % 3) as usize];
            let op2 = ops[((r >> 2) % 3) as usize];
            let c1 = (r >> 8) & 0xFFFF;
            let c2 = (r >> 24) & 0xFFFF;
            format!(
                "_kernel(1) _at(1) void calc{i}(unsigned a, unsigned b, unsigned &r) {{\n\
                 \x20 r = (a {op1} {c1}) {op2} (b ^ {c2});\n}}\n"
            )
        }
        1 => {
            let step = 1 + (r % 7);
            format!(
                "_net_ unsigned tally{i}[65536];\n\
                 _kernel(1) _at(1) void agg{i}(unsigned k, unsigned &c) {{\n\
                 \x20 c = ncl::atomic_sadd_new(&tally{i}[ncl::crc16(k)], {step});\n}}\n"
            )
        }
        2 => {
            let v: Vec<u64> = (0..4).map(|j| (r >> (8 * j)) & 0xFF).collect();
            format!(
                "_net_ _lookup_ ncl::kv<unsigned, unsigned> t{i}[] = \
                 {{{{1,{}}}, {{2,{}}}, {{3,{}}}, {{4,{}}}}};\n\
                 _kernel(1) _at(1) void get{i}(char op, unsigned k, unsigned &v, char &hit) {{\n\
                 \x20 if (op == 1) {{\n\
                 \x20   hit = ncl::lookup(t{i}, k, v);\n\
                 \x20   if (hit) return ncl::reflect();\n\
                 \x20 }}\n}}\n",
                v[0], v[1], v[2], v[3]
            )
        }
        _ => {
            let thresh = 16 + (r % 1000);
            format!(
                "_net_ unsigned seq{i}[65536];\n\
                 _kernel(1) _at(1) void acc{i}(unsigned inst, unsigned rnd, unsigned &o) {{\n\
                 \x20 unsigned cur = ncl::atomic_sadd_new(&seq{i}[ncl::crc16(inst)], rnd);\n\
                 \x20 o = cur > {thresh} ? cur : 0;\n}}\n"
            )
        }
    };
    (name, source)
}

/// A two-device unit for the within-unit reuse row; `salt` perturbs only
/// the device-2 kernel, so device 1's base IR is unchanged by a mutation.
fn multi_device_source(salt: u64) -> String {
    let c = 1 + (mix(0xdead << 8 | salt) % 255);
    format!(
        "_net_ _at(1) unsigned sa[65536];\n\
         _net_ _at(2) unsigned sb[65536];\n\
         _kernel(1) _at(1) void ka(unsigned k, unsigned &o) {{\n\
         \x20 o = ncl::atomic_sadd_new(&sa[ncl::crc16(k)], 1);\n}}\n\
         _kernel(2) _at(2) void kb(unsigned k, unsigned &o) {{\n\
         \x20 o = ncl::atomic_sadd_new(&sb[ncl::crc16(k)], {c});\n}}\n"
    )
}

/// Folds a unit's pass reports into the per-pass aggregate.
fn aggregate_passes(agg: &mut BTreeMap<&'static str, (u64, u64)>, unit: &CompiledUnit) {
    let mut fold = |rep: &Option<PassReport>| {
        if let Some(rep) = rep {
            for p in &rep.passes {
                let e = agg.entry(p.name).or_insert((0, 0));
                e.0 += p.runs;
                e.1 += p.wall_ns;
            }
        }
    };
    for d in &unit.devices {
        fold(&d.tna_pass_report);
        fold(&d.v1_pass_report);
    }
}

/// Printed P4 for both dialects — the byte-identity observable.
fn rendered(unit: &CompiledUnit) -> String {
    let mut out = String::new();
    for d in &unit.devices {
        out.push_str(&netcl_p4::print::print_program(&d.tna_p4));
        out.push_str(&netcl_p4::print::print_program(&d.v1_p4));
    }
    out
}

fn main() {
    let mut smoke = false;
    let mut gate = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--gate" => gate = true,
            other => {
                eprintln!("error: unknown argument `{other}` (expected `--smoke` or `--gate`)");
                std::process::exit(2);
            }
        }
    }
    let per_family = if smoke {
        10
    } else if gate {
        30
    } else {
        250
    };
    let variants: Vec<(usize, usize, String, String)> = (0..FAMILIES.len())
        .flat_map(|f| {
            (0..per_family).map(move |i| {
                let (name, src) = variant(f, i, 0);
                (f, i, name, src)
            })
        })
        .collect();
    let n = variants.len();
    let opts = CompileOptions { pass_report: true, ..Default::default() };
    let cc = Compiler::new(opts);

    // Cold row: every unit compiled from scratch, per-pass telemetry
    // aggregated across the workload.
    let mut pass_agg: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    let t0 = Instant::now();
    for (_, _, name, src) in &variants {
        let unit = cc.compile(name, src).unwrap_or_else(|e| panic!("{name}: {e}"));
        aggregate_passes(&mut pass_agg, &unit);
    }
    let cold_s = t0.elapsed().as_secs_f64();
    let cold_kps = n as f64 / cold_s;
    println!("cold        {n:>5} kernels in {cold_s:>7.3} s   {cold_kps:>9.0} kernels/s");

    // Warm the cache with the unmutated workload.
    let mut cache = CompileCache::new();
    for (_, _, name, src) in &variants {
        cc.compile_incremental(name, src, &mut cache).expect("warms");
    }

    // Incremental row: mutate one kernel, re-drive the whole workload.
    let mutated_at = n / 2;
    let (mf, mi, _, _) = variants[mutated_at];
    let (mname, msrc) = variant(mf, mi, 1);
    let before = cache.stats();
    let mut mutated_unit = None;
    let t0 = Instant::now();
    for (at, (_, _, name, src)) in variants.iter().enumerate() {
        let (name, src) = if at == mutated_at { (&mname, &msrc) } else { (name, src) };
        let unit = cc.compile_incremental(name, src, &mut cache).expect("recompiles");
        if at == mutated_at {
            mutated_unit = Some(unit);
        }
    }
    let incr_s = t0.elapsed().as_secs_f64();
    let incr_kps = n as f64 / incr_s;
    let speedup = incr_kps / cold_kps;
    let d = cache.stats();
    let unit_hits = d.unit_hits - before.unit_hits;
    println!(
        "incremental {n:>5} kernels in {incr_s:>7.3} s   {incr_kps:>9.0} kernels/s   \
         ({speedup:.1}x cold, {unit_hits} unit hits, 1 recompiled)"
    );

    // The served speed must not come from stale artifacts: the mutated
    // unit's output is byte-identical to its own cold compile.
    let mutated_unit = mutated_unit.expect("mutated unit compiled");
    assert!(!mutated_unit.reuse.unit_hit, "mutated source must miss the unit cache");
    let cold_mutated = cc.compile(&mname, &msrc).expect("cold compile of mutated source");
    if rendered(&cold_mutated) != rendered(&mutated_unit) {
        eprintln!("error: incrementally compiled mutated unit differs from cold compile");
        std::process::exit(1);
    }
    println!("mutated unit `{mname}` byte-identical to cold compile (both dialects)");

    // Within-unit device reuse: mutate only the device-2 kernel of a
    // two-device unit; device 1's backend is served from the cache.
    let mut md_cache = CompileCache::new();
    let t0 = Instant::now();
    let md_cold = cc
        .compile_incremental("md.ncl", &multi_device_source(0), &mut md_cache)
        .expect("multi-device cold");
    let md_cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let md_warm = cc
        .compile_incremental("md.ncl", &multi_device_source(1), &mut md_cache)
        .expect("multi-device warm");
    let md_warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(md_cold.reuse.devices_total, 2);
    println!(
        "multi-device mutation: {}/{} devices reused, {md_cold_ms:.2} ms cold → \
         {md_warm_ms:.2} ms incremental",
        md_warm.reuse.devices_reused, md_warm.reuse.devices_total
    );

    // Per-pass aggregate from the cold run, as netcl-obs JSONL.
    for (name, (runs, wall_ns)) in &pass_agg {
        let e = Event::new(format!("compile.pass.{name}"), 0)
            .field("runs", *runs)
            .field("wall_ns", *wall_ns);
        println!("{}", e.to_json());
    }

    if gate {
        let mut failures = 0;
        if unit_hits != (n - 1) as u64 {
            eprintln!(
                "gate FAIL: expected {} unit hits for a 1-of-{n} change, got {unit_hits} \
                 (silent cache miss)",
                n - 1
            );
            failures += 1;
        }
        if md_warm.reuse.devices_reused != 1 {
            eprintln!(
                "gate FAIL: multi-device mutation reused {} devices, expected 1",
                md_warm.reuse.devices_reused
            );
            failures += 1;
        }
        if speedup < 5.0 {
            eprintln!("gate FAIL: incremental only {speedup:.1}x cold (needs ≥5x)");
            failures += 1;
        }
        if failures == 0 {
            println!("compile_throughput gate: pass ({speedup:.1}x, {unit_hits}/{n} served)");
        }
        std::process::exit(if failures == 0 { 0 } else { 1 });
    }
    if smoke {
        println!("smoke run: not writing BENCH_switch.json");
        return;
    }

    let mut section = String::from("{\n");
    section.push_str(&format!(
        "    \"kernels\": {n}, \"families\": {}, \"generator_seed\": \"{GEN_SEED:#x}\",\n",
        FAMILIES.len()
    ));
    section.push_str("    \"rows\": [\n");
    section.push_str(&format!(
        "      {{\"mode\": \"cold\", \"wall_s\": {cold_s:.3}, \"kernels_per_s\": {cold_kps:.0}}},\n"
    ));
    section.push_str(&format!(
        "      {{\"mode\": \"incremental_1_change\", \"wall_s\": {incr_s:.3}, \
         \"kernels_per_s\": {incr_kps:.0}, \"speedup_vs_cold\": {speedup:.1}, \
         \"unit_hits\": {unit_hits}, \"recompiled\": 1}}\n"
    ));
    section.push_str("    ],\n");
    section.push_str(&format!(
        "    \"multi_device\": {{\"devices\": 2, \"devices_reused\": {}, \
         \"cold_ms\": {md_cold_ms:.2}, \"incremental_ms\": {md_warm_ms:.2}}},\n",
        md_warm.reuse.devices_reused
    ));
    section.push_str("    \"passes\": [\n");
    let rows: Vec<String> = pass_agg
        .iter()
        .map(|(name, (runs, wall_ns))| {
            format!(
                "      {{\"pass\": \"{name}\", \"runs\": {runs}, \"wall_ms\": {:.2}}}",
                *wall_ns as f64 / 1e6
            )
        })
        .collect();
    section.push_str(&rows.join(",\n"));
    section.push_str("\n    ]\n  }");

    let path = "BENCH_switch.json";
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {path} (run the throughput binary first): {e}"));
    // Drop any previous compile_throughput section: it spans from its key
    // to the next top-level key (sim_sharded) or the closing brace.
    let json = match json.find(",\n  \"compile_throughput\":") {
        Some(start) => {
            let rest = &json[start + 1..];
            let end = rest
                .find(",\n  \"sim_sharded\":")
                .map(|i| start + 1 + i)
                .unwrap_or_else(|| json.rfind("\n}").expect("closing brace"));
            format!("{}{}", &json[..start], &json[end..])
        }
        None => json,
    };
    // Insert before sim_sharded (which keeps the last slot) or at the end.
    let insert_at = json
        .find(",\n  \"sim_sharded\":")
        .unwrap_or_else(|| json.rfind("\n}").expect("closing brace"));
    let out = format!(
        "{},\n  \"compile_throughput\": {section}{}",
        &json[..insert_at],
        &json[insert_at..]
    );
    std::fs::write(path, out).expect("write BENCH_switch.json");
    println!("merged compile_throughput section into {path}");
}
