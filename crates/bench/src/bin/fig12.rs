//! Prints the fig12 reproduction (see EXPERIMENTS.md).
fn main() {
    print!("{}", netcl_bench::report_fig12());
}
