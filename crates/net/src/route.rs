//! Dense routing cache for the simulator's forwarding hot path.
//!
//! [`Topology::next_hop_avoiding`] answers one `(source, target)` query
//! with one BFS over `HashMap` adjacency — fine for a handful of nodes,
//! ruinous for a 10⁴-host fat-tree where a Zipf workload routes to
//! thousands of distinct destinations over millions of hops. This cache
//! indexes the topology densely once and then answers every hop toward a
//! destination from one reverse BFS over that index: a *routing tree* of
//! `u32` parent pointers, ~4 bytes per node instead of a `HashMap` entry.
//! Trees are memoized per destination, capped ([`TREE_CAP`]) so a scan
//! over every host cannot hold the whole forest, and invalidated when the
//! downed-link set changes.
//!
//! Adjacency is stored in CSR form — one flat offsets array and one flat
//! targets array, with `LinkSpec`s in a parallel array touched only to
//! answer a query. A tree build is a BFS over the two `u32` arrays
//! (~300 KB of sequential traffic on a k=36 fat-tree instead of ~5 MB of
//! nested-`Vec` pointer chasing). Profiling showed builds, not lookups,
//! dominate sharded runs — each shard lazily rebuilding the same trees —
//! so the fault-free case is served by a switch-level [`Forest`]
//! precomputed once and shared across shards; the lazy per-destination
//! path here remains for degraded states, whose trees depend on the
//! downed-link set.
//!
//! Determinism: tree contents are a pure function of (topology, downed
//! set) — BFS expands in neighbor-list insertion order, which `clone()`
//! preserves, so every shard of a sharded run computes identical trees.
//! Cache hits and evictions change only where time is spent.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use crate::topo::{link_key, LinkSpec, NodeId, Topology};

/// Maximum memoized routing trees before the forest is reset. At the cap
/// a k=36 fat-tree's forest is ~50 MB; a reset only costs rebuilds.
pub(crate) const TREE_CAP: usize = 1024;

/// Sentinel parent index: unreachable (or the destination itself).
const NONE: u32 = u32::MAX;

/// Every switch-to-switch routing tree of a connected topology, built once
/// at network construction and shared immutably across shards (`Arc`).
/// Trees are a pure function of the topology, so per-shard rebuilds were
/// pure duplicated work — profiling showed them dominating sharded busy
/// time. Leaves stay out of the domain: degree-1 sources are answered
/// structurally and degree-1 targets are aliased to their uplink.
#[derive(Debug)]
pub(crate) struct Forest {
    /// Dense node index → switch slot (`NONE` for leaves).
    slot: Vec<u32>,
    /// Switch slots count.
    n_sw: usize,
    /// `parents[t_slot * n_sw + f_slot]`: dense node index of the next hop
    /// from slot `f_slot`'s node toward slot `t_slot`'s node (`NONE` on
    /// the diagonal).
    parents: Vec<u32>,
}

#[derive(Debug, Clone)]
pub(crate) struct RouteCache {
    /// Node → dense index.
    idx: HashMap<NodeId, u32>,
    /// Dense index → node (insertion order of [`Topology::nodes`]).
    nodes: Vec<NodeId>,
    /// CSR offsets: node i's neighbors are `adj_to[adj_off[i]..adj_off[i+1]]`,
    /// preserving the topology's neighbor-list order.
    adj_off: Vec<u32>,
    /// CSR neighbor indices, flat.
    adj_to: Vec<u32>,
    /// Link specs parallel to `adj_to`, touched only to answer a query —
    /// never during a tree build.
    adj_spec: Vec<LinkSpec>,
    /// destination → parent-pointer tree (`tree[i]` is the dense index of
    /// node i's next hop toward the destination).
    trees: HashMap<NodeId, Vec<u32>>,
    /// Degree-1 marks, parallel to `nodes` (fits L1 even at 10⁴ hosts).
    leaf: Vec<bool>,
    /// Whether the topology is one connected component. On a connected
    /// fault-free topology every node can reach every other, which
    /// licenses the degree-1 shortcuts below without a reachability check.
    connected: bool,
    /// Precomputed switch forest, shared across shard clones; present iff
    /// the topology is connected. Valid only while no links are down — the
    /// lazy `trees` path serves degraded states.
    forest: Option<Arc<Forest>>,
    /// BFS scratch, reused across builds (visited marks, by generation).
    seen: Vec<u32>,
    /// Current scratch generation; `seen[i] == gen` means visited.
    gen: u32,
}

impl RouteCache {
    /// Indexes `topo`. The topology must not gain links afterwards (the
    /// simulator's is fixed at build time).
    pub fn new(topo: &Topology) -> RouteCache {
        let nodes = topo.nodes();
        let idx: HashMap<NodeId, u32> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i as u32)).collect();
        let mut adj_off = Vec::with_capacity(nodes.len() + 1);
        let mut adj_to = Vec::new();
        let mut adj_spec = Vec::new();
        adj_off.push(0);
        for &n in &nodes {
            for &(m, spec) in topo.neighbors(n) {
                adj_to.push(idx[&m]);
                adj_spec.push(spec);
            }
            adj_off.push(adj_to.len() as u32);
        }
        let leaf: Vec<bool> = (0..nodes.len()).map(|i| adj_off[i + 1] - adj_off[i] == 1).collect();
        // One forward BFS answers connectivity (the graph is undirected).
        let mut visited = vec![false; nodes.len()];
        let mut reached = 0usize;
        if !nodes.is_empty() {
            visited[0] = true;
            reached = 1;
            let mut queue = VecDeque::from([0u32]);
            while let Some(n) = queue.pop_front() {
                for &m in &adj_to[adj_off[n as usize] as usize..adj_off[n as usize + 1] as usize] {
                    if !visited[m as usize] {
                        visited[m as usize] = true;
                        reached += 1;
                        queue.push_back(m);
                    }
                }
            }
        }
        let connected = reached == nodes.len();
        let forest = connected.then(|| {
            let sw: Vec<u32> = (0..nodes.len() as u32).filter(|&i| !leaf[i as usize]).collect();
            let n_sw = sw.len();
            let mut slot = vec![NONE; nodes.len()];
            for (s, &i) in sw.iter().enumerate() {
                slot[i as usize] = s as u32;
            }
            let mut parents = vec![NONE; n_sw * n_sw];
            let mut queue = VecDeque::new();
            for (t, &ti) in sw.iter().enumerate() {
                // Reverse BFS over the switch subgraph only; same expansion
                // order as the lazy builder, so identical tie-breaks.
                let row = &mut parents[t * n_sw..(t + 1) * n_sw];
                visited.fill(false);
                visited[ti as usize] = true;
                queue.clear();
                queue.push_back(ti);
                while let Some(n) = queue.pop_front() {
                    for &m in
                        &adj_to[adj_off[n as usize] as usize..adj_off[n as usize + 1] as usize]
                    {
                        if !leaf[m as usize] && !visited[m as usize] {
                            visited[m as usize] = true;
                            row[slot[m as usize] as usize] = n;
                            queue.push_back(m);
                        }
                    }
                }
            }
            Arc::new(Forest { slot, n_sw, parents })
        });
        let seen = vec![0; nodes.len()];
        RouteCache {
            idx,
            nodes,
            adj_off,
            adj_to,
            adj_spec,
            trees: HashMap::new(),
            leaf,
            connected,
            forest,
            seen,
            gen: 0,
        }
    }

    /// Node i's neighbor indices.
    fn neigh(&self, i: u32) -> &[u32] {
        &self.adj_to[self.adj_off[i as usize] as usize..self.adj_off[i as usize + 1] as usize]
    }

    /// Drops every memoized tree — call when the downed-link set changes.
    pub fn invalidate(&mut self) {
        self.trees.clear();
    }

    /// The next hop (and link) from `from` toward `target`, avoiding the
    /// links in `down`. `None` when unreachable. Equivalent to
    /// [`Topology::routing_tree`] on every query, just cheaper.
    ///
    /// Leaf aliasing: a degree-1 target (a host on its access switch) is
    /// answered from its sole neighbor's tree — every shortest path to a
    /// leaf runs through its uplink, and a reverse BFS from the leaf
    /// expands identically to one from the uplink (same tie-breaks, +1
    /// distance). This collapses "one tree per host" (10⁴ for a big
    /// fat-tree, far past [`TREE_CAP`] and thrashing) into one tree per
    /// switch.
    pub fn hop(
        &mut self,
        from: NodeId,
        target: NodeId,
        down: &HashSet<(NodeId, NodeId)>,
    ) -> Option<(NodeId, LinkSpec)> {
        let &fi = self.idx.get(&from)?;
        let &ti = self.idx.get(&target)?;
        // Degree-1 source on a connected fault-free topology: the only
        // egress is the uplink, and the target is reachable through it by
        // connectivity — no tree needed. This keeps 10⁴ hosts out of the
        // tree domain entirely (paired with the leaf-skipping build).
        if fi != ti && self.connected && down.is_empty() {
            if let [ei] = *self.neigh(fi) {
                let spec = self.adj_spec[self.adj_off[fi as usize] as usize];
                return Some((self.nodes[ei as usize], spec));
            }
        }
        if let [ei] = *self.neigh(ti) {
            if down.contains(&link_key(self.nodes[ei as usize], target)) {
                return None;
            }
            if fi == ei {
                let spec = self.adj_spec[self.adj_off[ti as usize] as usize];
                return Some((target, spec));
            }
            // Guard against two-node topologies where the uplink is
            // itself a leaf (mutual aliasing would recurse forever).
            if self.neigh(ei).len() > 1 {
                let uplink = self.nodes[ei as usize];
                return self.hop(from, uplink, down);
            }
        }
        // Fault-free fast path: the precomputed shared forest. Leaf
        // sources and targets were peeled off above, so both endpoints
        // have switch slots (the guard covers degenerate all-leaf graphs).
        let pi = match (&self.forest, down.is_empty()) {
            (Some(f), true) if f.slot[ti as usize] != NONE && f.slot[fi as usize] != NONE => {
                f.parents[f.slot[ti as usize] as usize * f.n_sw + f.slot[fi as usize] as usize]
            }
            _ => {
                if !self.trees.contains_key(&target) {
                    if self.trees.len() >= TREE_CAP {
                        self.trees.clear();
                    }
                    let tree = self.build_tree(target, down);
                    self.trees.insert(target, tree);
                }
                self.trees[&target][fi as usize]
            }
        };
        if pi == NONE {
            return None;
        }
        let range = self.adj_off[fi as usize] as usize..self.adj_off[fi as usize + 1] as usize;
        let k = range.clone().find(|&k| self.adj_to[k] == pi)?;
        Some((self.nodes[pi as usize], self.adj_spec[k]))
    }

    /// Reverse BFS from `target`: each discovered node's parent is one
    /// step closer to the destination — its next hop. Pure `u32` CSR
    /// traversal; `LinkSpec`s are never touched here.
    ///
    /// On a connected fault-free topology the BFS never descends into
    /// degree-1 nodes: sources there are answered by the shortcut in
    /// [`Self::hop`] and targets there are leaf-aliased, so their entries
    /// are never read — and skipping them shrinks a fat-tree build from
    /// every host to just the switch core (~8× on k=36).
    fn build_tree(&mut self, target: NodeId, down: &HashSet<(NodeId, NodeId)>) -> Vec<u32> {
        let mut parent = vec![NONE; self.nodes.len()];
        let Some(&ti) = self.idx.get(&target) else { return parent };
        let check_down = !down.is_empty();
        let skip_leaves = self.connected && !check_down;
        self.gen += 1;
        if self.gen == u32::MAX {
            self.seen.fill(0);
            self.gen = 1;
        }
        self.seen[ti as usize] = self.gen;
        let mut queue = VecDeque::from([ti]);
        while let Some(n) = queue.pop_front() {
            for &m in &self.adj_to
                [self.adj_off[n as usize] as usize..self.adj_off[n as usize + 1] as usize]
            {
                if (skip_leaves && self.leaf[m as usize]) || self.seen[m as usize] == self.gen {
                    continue;
                }
                if check_down
                    && down.contains(&link_key(self.nodes[m as usize], self.nodes[n as usize]))
                {
                    continue;
                }
                self.seen[m as usize] = self.gen;
                parent[m as usize] = n;
                queue.push_back(m);
            }
        }
        parent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Topology {
        // h1 — d1 — {d2, d3} — d4 — h2: two equal-length middles.
        let mut t = Topology::new();
        let s = LinkSpec::default();
        t.link(NodeId::Host(1), NodeId::Device(1), s);
        t.link(NodeId::Device(1), NodeId::Device(2), s);
        t.link(NodeId::Device(1), NodeId::Device(3), s);
        t.link(NodeId::Device(2), NodeId::Device(4), s);
        t.link(NodeId::Device(3), NodeId::Device(4), s);
        t.link(NodeId::Device(4), NodeId::Host(2), s);
        t
    }

    /// The dense cache agrees exactly with the reference
    /// [`Topology::routing_tree`] — same hops, same tie-breaks — for every
    /// (source, target) pair, with and without downed links.
    #[test]
    fn cache_matches_reference_routing_tree() {
        let topo = diamond();
        let downs = [
            HashSet::new(),
            HashSet::from([link_key(NodeId::Device(1), NodeId::Device(2))]),
            HashSet::from([
                link_key(NodeId::Device(1), NodeId::Device(2)),
                link_key(NodeId::Device(1), NodeId::Device(3)),
            ]),
        ];
        for down in &downs {
            let mut cache = RouteCache::new(&topo);
            for target in topo.nodes() {
                let reference = topo.routing_tree(target, down);
                for from in topo.nodes() {
                    if from == target {
                        continue;
                    }
                    assert_eq!(
                        cache.hop(from, target, down).map(|(h, _)| h),
                        reference.get(&from).map(|&(h, _)| h),
                        "hop {from:?} → {target:?} with {} downed links",
                        down.len()
                    );
                }
            }
        }
    }

    /// Reachability agrees with `next_hop_avoiding`, and both routes have
    /// equal length (tie-breaks may differ between forward and reverse
    /// BFS; distances cannot).
    #[test]
    fn cache_reachability_matches_next_hop_avoiding() {
        let topo = diamond();
        let down = HashSet::from([
            link_key(NodeId::Device(1), NodeId::Device(2)),
            link_key(NodeId::Device(1), NodeId::Device(3)),
        ]);
        let mut cache = RouteCache::new(&topo);
        assert!(cache.hop(NodeId::Host(1), NodeId::Host(2), &down).is_none());
        assert!(topo.next_hop_avoiding(NodeId::Host(1), NodeId::Host(2), &down).is_none());
        assert_eq!(
            cache.hop(NodeId::Device(2), NodeId::Host(2), &down).map(|(h, _)| h),
            Some(NodeId::Device(4)),
            "the severed cut only isolates d1's side"
        );
    }

    /// Evicting at the cap only costs rebuilds: answers are identical
    /// before and after a reset.
    #[test]
    fn eviction_preserves_answers() {
        let topo = diamond();
        let mut cache = RouteCache::new(&topo);
        let none = HashSet::new();
        let before = cache.hop(NodeId::Host(1), NodeId::Host(2), &none).map(|(h, _)| h);
        cache.invalidate();
        assert_eq!(cache.hop(NodeId::Host(1), NodeId::Host(2), &none).map(|(h, _)| h), before);
    }
}
