//! Per-pass telemetry for the §VI-B pipeline (DESIGN.md §12).
//!
//! The paper's pipeline makes the mapping decisions programmers otherwise
//! debug blind — speculation, memory duplication, stage fitting. A
//! [`PassReport`] records, per pass (aggregated over kernels and fixpoint
//! iterations): wall time, the IR delta it caused (instructions and blocks
//! added/removed), and how many rewrites fired. `ncc --emit-pass-report`
//! prints the rendered table; [`PassReport::to_events`] exports the same
//! data as JSONL through `netcl-obs`.

use netcl_ir::{Function, Module};
use netcl_obs::{Event, Stopwatch};
use std::fmt::Write as _;

/// What a pass entry point reports back, normalized to "rewrites fired".
pub trait PassOutcome {
    /// Number of rewrites/changes this run applied.
    fn rewrites(&self) -> u64;
}

impl PassOutcome for bool {
    fn rewrites(&self) -> u64 {
        *self as u64
    }
}

impl PassOutcome for usize {
    fn rewrites(&self) -> u64 {
        *self as u64
    }
}

impl PassOutcome for () {
    fn rewrites(&self) -> u64 {
        0
    }
}

/// Aggregated statistics for one named pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStat {
    /// Pass name as it appears in the pipeline.
    pub name: &'static str,
    /// Invocations (per kernel × per fixpoint iteration).
    pub runs: u64,
    /// Total wall time across runs, nanoseconds.
    pub wall_ns: u64,
    /// Net instructions added (negative: removed).
    pub insts_delta: i64,
    /// Net blocks added (negative: removed).
    pub blocks_delta: i64,
    /// Rewrites fired (pass-reported change count).
    pub rewrites: u64,
}

/// Aggregated statistics for one kernel, across every pass that touched
/// it — the transpose of the per-pass table. Module-scope passes (layout,
/// partitioning) are attributed to the pseudo-kernel [`MODULE_KERNEL`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelStat {
    /// Kernel name (or [`MODULE_KERNEL`] for module-scope passes).
    pub kernel: String,
    /// Pass invocations attributed to this kernel.
    pub runs: u64,
    /// Total wall time across those invocations, nanoseconds.
    pub wall_ns: u64,
    /// Net instructions added to this kernel (negative: removed).
    pub insts_delta: i64,
    /// Net blocks added (negative: removed).
    pub blocks_delta: i64,
    /// Rewrites fired on this kernel.
    pub rewrites: u64,
}

/// The pseudo-kernel module-scope passes are attributed to: their deltas
/// span kernels, so they cannot be assigned to any single one.
pub const MODULE_KERNEL: &str = "<module>";

/// Sizes of a function or module: `(instructions, blocks)`.
fn fn_size(f: &Function) -> (u64, u64) {
    (f.blocks.iter().map(|b| b.insts.len() as u64).sum(), f.blocks.len() as u64)
}

fn module_size(m: &Module) -> (u64, u64) {
    m.kernels.iter().map(fn_size).fold((0, 0), |(i, b), (fi, fb)| (i + fi, b + fb))
}

/// The pipeline telemetry for one `run_pipeline` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassReport {
    /// Target label (`"tna"` or `"v1model"`).
    pub target: &'static str,
    /// Kernel count in the module.
    pub kernels: u64,
    /// Instructions before the first pass.
    pub insts_start: u64,
    /// Instructions after the last pass.
    pub insts_end: u64,
    /// Blocks before the first pass.
    pub blocks_start: u64,
    /// Blocks after the last pass.
    pub blocks_end: u64,
    /// Per-pass aggregates, in first-execution order.
    pub passes: Vec<PassStat>,
    /// Per-kernel aggregates, in first-touch order — the same measured
    /// runs as [`PassReport::passes`], partitioned by kernel instead of
    /// by pass ([`PassReport::reconcile`] checks the two views agree).
    pub per_kernel: Vec<KernelStat>,
    /// Whether this report was served from the incremental-compile cache
    /// instead of a fresh pipeline run: the per-pass numbers then describe
    /// the *original* run whose artifacts were reused (DESIGN.md §16).
    pub from_cache: bool,
}

impl PassReport {
    /// Starts a report by snapshotting the module.
    pub fn begin(target: &'static str, module: &Module) -> PassReport {
        let (insts, blocks) = module_size(module);
        PassReport {
            target,
            kernels: module.kernels.len() as u64,
            insts_start: insts,
            insts_end: insts,
            blocks_start: blocks,
            blocks_end: blocks,
            passes: Vec::new(),
            per_kernel: Vec::new(),
            from_cache: false,
        }
    }

    /// Final module snapshot (call once the pipeline is done).
    pub fn finish(&mut self, module: &Module) {
        let (insts, blocks) = module_size(module);
        self.insts_end = insts;
        self.blocks_end = blocks;
    }

    /// Total pipeline wall time, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.passes.iter().map(|p| p.wall_ns).sum()
    }

    /// The aggregate entry for `name`, if that pass ran.
    pub fn pass(&self, name: &str) -> Option<&PassStat> {
        self.passes.iter().find(|p| p.name == name)
    }

    /// The aggregate entry for kernel `name` (or [`MODULE_KERNEL`]), if
    /// any measured pass touched it.
    pub fn kernel(&self, name: &str) -> Option<&KernelStat> {
        self.per_kernel.iter().find(|k| k.kernel == name)
    }

    fn stat_mut(&mut self, name: &'static str) -> &mut PassStat {
        if let Some(i) = self.passes.iter().position(|p| p.name == name) {
            return &mut self.passes[i];
        }
        self.passes.push(PassStat {
            name,
            runs: 0,
            wall_ns: 0,
            insts_delta: 0,
            blocks_delta: 0,
            rewrites: 0,
        });
        self.passes.last_mut().expect("just pushed")
    }

    fn kernel_mut(&mut self, kernel: &str) -> &mut KernelStat {
        if let Some(i) = self.per_kernel.iter().position(|k| k.kernel == kernel) {
            return &mut self.per_kernel[i];
        }
        self.per_kernel.push(KernelStat {
            kernel: kernel.to_string(),
            runs: 0,
            wall_ns: 0,
            insts_delta: 0,
            blocks_delta: 0,
            rewrites: 0,
        });
        self.per_kernel.last_mut().expect("just pushed")
    }

    /// Every measured run lands in both partitions: once under its pass,
    /// once under its kernel.
    fn record(
        &mut self,
        name: &'static str,
        kernel: &str,
        wall_ns: u64,
        before: (u64, u64),
        after: (u64, u64),
        rewrites: u64,
    ) {
        let insts = after.0 as i64 - before.0 as i64;
        let blocks = after.1 as i64 - before.1 as i64;
        let s = self.stat_mut(name);
        s.runs += 1;
        s.wall_ns += wall_ns;
        s.insts_delta += insts;
        s.blocks_delta += blocks;
        s.rewrites += rewrites;
        let k = self.kernel_mut(kernel);
        k.runs += 1;
        k.wall_ns += wall_ns;
        k.insts_delta += insts;
        k.blocks_delta += blocks;
        k.rewrites += rewrites;
    }

    /// Runs a function pass under measurement, attributed to the kernel.
    pub fn on_fn<R: PassOutcome>(
        &mut self,
        name: &'static str,
        f: &mut Function,
        run: impl FnOnce(&mut Function) -> R,
    ) -> R {
        let kernel = f.name.clone();
        let before = fn_size(f);
        let sw = Stopwatch::start();
        let r = run(f);
        let wall = sw.elapsed_ns();
        self.record(name, &kernel, wall, before, fn_size(f), r.rewrites());
        r
    }

    /// Runs a module pass under measurement, attributed to
    /// [`MODULE_KERNEL`].
    pub fn on_module<R: PassOutcome>(
        &mut self,
        name: &'static str,
        m: &mut Module,
        run: impl FnOnce(&mut Module) -> R,
    ) -> R {
        let before = module_size(m);
        let sw = Stopwatch::start();
        let r = run(m);
        let wall = sw.elapsed_ns();
        self.record(name, MODULE_KERNEL, wall, before, module_size(m), r.rewrites());
        r
    }

    /// Checks the per-pass and per-kernel views reconcile: they partition
    /// the same set of measured runs, so every aggregate must agree.
    /// Returns the first mismatching aggregate.
    pub fn reconcile(&self) -> Result<(), String> {
        let by_pass = self.passes.iter().fold((0u64, 0u64, 0i64, 0i64, 0u64), |a, p| {
            (
                a.0 + p.runs,
                a.1 + p.wall_ns,
                a.2 + p.insts_delta,
                a.3 + p.blocks_delta,
                a.4 + p.rewrites,
            )
        });
        let by_kernel = self.per_kernel.iter().fold((0u64, 0u64, 0i64, 0i64, 0u64), |a, k| {
            (
                a.0 + k.runs,
                a.1 + k.wall_ns,
                a.2 + k.insts_delta,
                a.3 + k.blocks_delta,
                a.4 + k.rewrites,
            )
        });
        for (label, p, k) in [
            ("runs", by_pass.0 as i64, by_kernel.0 as i64),
            ("wall_ns", by_pass.1 as i64, by_kernel.1 as i64),
            ("insts_delta", by_pass.2, by_kernel.2),
            ("blocks_delta", by_pass.3, by_kernel.3),
            ("rewrites", by_pass.4 as i64, by_kernel.4 as i64),
        ] {
            if p != k {
                return Err(format!("per-pass {label} {p} != per-kernel {label} {k}"));
            }
        }
        Ok(())
    }

    /// The human-readable table `ncc --emit-pass-report` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pass report{} — target {}, {} kernel(s): {} insts → {}, {} blocks → {}, {:.2} ms total",
            if self.from_cache { " (cached)" } else { "" },
            self.target,
            self.kernels,
            self.insts_start,
            self.insts_end,
            self.blocks_start,
            self.blocks_end,
            self.total_ns() as f64 / 1e6,
        );
        let _ = writeln!(
            out,
            "{:<18} {:>5} {:>11} {:>8} {:>8} {:>9}",
            "PASS", "RUNS", "WALL(µs)", "ΔINSTS", "ΔBLOCKS", "REWRITES"
        );
        for p in &self.passes {
            let _ = writeln!(
                out,
                "{:<18} {:>5} {:>11.1} {:>+8} {:>+8} {:>9}",
                p.name,
                p.runs,
                p.wall_ns as f64 / 1e3,
                p.insts_delta,
                p.blocks_delta,
                p.rewrites
            );
        }
        let _ = writeln!(
            out,
            "{:<18} {:>5} {:>11} {:>8} {:>8} {:>9}",
            "KERNEL", "RUNS", "WALL(µs)", "ΔINSTS", "ΔBLOCKS", "REWRITES"
        );
        for k in &self.per_kernel {
            let _ = writeln!(
                out,
                "{:<18} {:>5} {:>11.1} {:>+8} {:>+8} {:>9}",
                k.kernel,
                k.runs,
                k.wall_ns as f64 / 1e3,
                k.insts_delta,
                k.blocks_delta,
                k.rewrites
            );
        }
        out
    }

    /// JSONL export: one `pass` event per pass, one `kernel` event per
    /// kernel, plus a `pipeline` summary.
    pub fn to_events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.passes.len() + self.per_kernel.len() + 1);
        for p in &self.passes {
            out.push(
                Event::new(format!("pass.{}", p.name), 0)
                    .field("runs", p.runs)
                    .field("wall_ns", p.wall_ns)
                    .field("insts", p.insts_delta)
                    .field("blocks", p.blocks_delta)
                    .field("rewrites", p.rewrites),
            );
        }
        for k in &self.per_kernel {
            out.push(
                Event::new(format!("kernel.{}", k.kernel), 0)
                    .field("runs", k.runs)
                    .field("wall_ns", k.wall_ns)
                    .field("insts", k.insts_delta)
                    .field("blocks", k.blocks_delta)
                    .field("rewrites", k.rewrites),
            );
        }
        out.push(
            Event::new("pipeline", 0)
                .field("wall_ns", self.total_ns())
                .field("insts", self.insts_end)
                .field("blocks", self.blocks_end)
                .field("runs", self.kernels)
                .field("from_cache", self.from_cache as u64),
        );
        out
    }
}

/// An optional-report recorder: measures through a `Some` report, runs the
/// pass bare through `None` — so the pipeline has a single set of call
/// sites and pays nothing when telemetry is off.
pub struct Recorder<'a>(pub Option<&'a mut PassReport>);

impl Recorder<'_> {
    /// Function-pass dispatch.
    pub fn on_fn<R: PassOutcome>(
        &mut self,
        name: &'static str,
        f: &mut Function,
        run: impl FnOnce(&mut Function) -> R,
    ) -> R {
        match self.0.as_deref_mut() {
            Some(rep) => rep.on_fn(name, f, run),
            None => run(f),
        }
    }

    /// Module-pass dispatch.
    pub fn on_module<R: PassOutcome>(
        &mut self,
        name: &'static str,
        m: &mut Module,
        run: impl FnOnce(&mut Module) -> R,
    ) -> R {
        match self.0.as_deref_mut() {
            Some(rep) => rep.on_module(name, m, run),
            None => run(m),
        }
    }
}
