//! Chrome `trace_event` collection, exportable as Perfetto-loadable JSON.
//!
//! The simulator (and any other layer) records *complete* spans (`ph:"X"`),
//! *instant* markers (`ph:"i"`), *counter* samples (`ph:"C"`), and track
//! naming metadata (`ph:"M"`). [`Trace::to_json`] emits the JSON Object
//! Format (`{"traceEvents": [...]}`) that both `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev) open directly. Timestamps
//! are kept in nanoseconds internally and emitted as fractional
//! microseconds, the unit the format mandates.
//!
//! A trace is unbounded by default. [`Trace::bounded`] caps it to the
//! most recent N data events (a ring buffer): long chaos runs with
//! tracing enabled stay O(buffer) instead of O(run length). Track-naming
//! metadata (`ph:"M"`) is kept outside the ring — a truncated trace
//! still labels every process and thread — and [`Trace::dropped`]
//! reports how many events the ring evicted.

use crate::{write_json_string, Value};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (shown on the slice).
    pub name: String,
    /// Category (comma-separated tags; filterable in the UI).
    pub cat: &'static str,
    /// Phase: `X` complete, `i` instant, `C` counter, `M` metadata.
    pub ph: char,
    /// Start time, nanoseconds.
    pub ts_ns: u64,
    /// Duration, nanoseconds (complete events only).
    pub dur_ns: u64,
    /// Process id — we use one pid per subsystem (0 = network).
    pub pid: u32,
    /// Thread id — we use one tid per node (device/host).
    pub tid: u32,
    /// Extra arguments, shown in the UI's args panel.
    pub args: Vec<(&'static str, Value)>,
}

/// An in-memory trace: metadata records plus a (optionally ring-bounded)
/// list of data events.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Trace {
    /// Track-naming metadata (`ph:"M"`), always kept.
    meta: Vec<TraceEvent>,
    /// Data events in record order; a ring of the most recent `capacity`
    /// when bounded.
    data: VecDeque<TraceEvent>,
    /// Ring capacity; `None` grows without bound.
    capacity: Option<usize>,
    /// Data events evicted by the ring.
    dropped: u64,
}

impl Trace {
    /// An empty, unbounded trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// An empty trace that keeps only the most recent `capacity` data
    /// events (metadata is exempt). `capacity` 0 records metadata only.
    pub fn bounded(capacity: usize) -> Trace {
        Trace { capacity: Some(capacity), ..Trace::default() }
    }

    /// Number of recorded events (metadata + retained data).
    pub fn len(&self) -> usize {
        self.meta.len() + self.data.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty() && self.data.is_empty()
    }

    /// The ring capacity, if this trace is bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Data events evicted by the ring (0 for unbounded traces).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// All retained events: metadata first, then data in record order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.meta.iter().chain(self.data.iter())
    }

    fn push(&mut self, e: TraceEvent) {
        if e.ph == 'M' {
            self.meta.push(e);
            return;
        }
        if let Some(c) = self.capacity {
            if c == 0 {
                self.dropped += 1;
                return;
            }
            if self.data.len() >= c {
                self.data.pop_front();
                self.dropped += 1;
            }
        }
        self.data.push_back(e);
    }

    /// Appends every event from `other` — how per-shard traces are merged
    /// into one timeline after a sharded run. Metadata records (track
    /// names) may repeat; the Perfetto UI tolerates duplicates. The
    /// receiver's bound (if any) keeps applying, and evictions carry over.
    pub fn absorb(&mut self, other: Trace) {
        self.dropped += other.dropped;
        self.meta.extend(other.meta);
        for e in other.data {
            self.push(e);
        }
    }

    /// Records a complete span (`ph:"X"`).
    #[allow(clippy::too_many_arguments)] // mirrors the trace_event field list
    pub fn complete(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        pid: u32,
        tid: u32,
        ts_ns: u64,
        dur_ns: u64,
        args: Vec<(&'static str, Value)>,
    ) {
        self.push(TraceEvent { name: name.into(), cat, ph: 'X', ts_ns, dur_ns, pid, tid, args });
    }

    /// Records an instant marker (`ph:"i"`, thread scope).
    pub fn instant(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        pid: u32,
        tid: u32,
        ts_ns: u64,
        args: Vec<(&'static str, Value)>,
    ) {
        self.push(TraceEvent { name: name.into(), cat, ph: 'i', ts_ns, dur_ns: 0, pid, tid, args });
    }

    /// Records a counter sample (`ph:"C"`): the UI draws one stacked area
    /// chart per counter name from these.
    pub fn counter(&mut self, name: impl Into<String>, pid: u32, ts_ns: u64, value: u64) {
        self.push(TraceEvent {
            name: name.into(),
            cat: "counter",
            ph: 'C',
            ts_ns,
            dur_ns: 0,
            pid,
            tid: 0,
            args: vec![("value", Value::U64(value))],
        });
    }

    /// Names a thread track (`ph:"M"`, `thread_name`).
    pub fn name_thread(&mut self, pid: u32, tid: u32, name: impl Into<String>) {
        self.push(TraceEvent {
            name: "thread_name".into(),
            cat: "__metadata",
            ph: 'M',
            ts_ns: 0,
            dur_ns: 0,
            pid,
            tid,
            args: vec![("name", Value::Str(name.into()))],
        });
    }

    /// Names a process track (`ph:"M"`, `process_name`).
    pub fn name_process(&mut self, pid: u32, name: impl Into<String>) {
        self.push(TraceEvent {
            name: "process_name".into(),
            cat: "__metadata",
            ph: 'M',
            ts_ns: 0,
            dur_ns: 0,
            pid,
            tid: 0,
            args: vec![("name", Value::Str(name.into()))],
        });
    }

    /// Serializes to the Chrome JSON Object Format. The result loads in
    /// Perfetto / `chrome://tracing` as-is.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, e) in self.events().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":");
            write_json_string(&mut out, &e.name);
            out.push_str(",\"cat\":");
            write_json_string(&mut out, e.cat);
            let _ = write!(
                out,
                ",\"ph\":\"{}\",\"ts\":{}.{:03},\"pid\":{},\"tid\":{}",
                e.ph,
                e.ts_ns / 1_000,
                e.ts_ns % 1_000,
                e.pid,
                e.tid
            );
            if e.ph == 'X' {
                let _ = write!(out, ",\"dur\":{}.{:03}", e.dur_ns / 1_000, e.dur_ns % 1_000);
            }
            if e.ph == 'i' {
                out.push_str(",\"s\":\"t\"");
            }
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in e.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    write_json_string(&mut out, k);
                    out.push(':');
                    v.write_json(&mut out);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_json_shape() {
        let mut t = Trace::new();
        t.name_process(0, "network");
        t.name_thread(0, 1, "device 1");
        t.complete("kernel", "device", 0, 1, 1_500, 700, vec![("recircs", Value::U64(0))]);
        t.instant("deliver", "host", 0, 10_001, 2_200, vec![]);
        t.counter("queue_depth", 0, 2_300, 4);
        let json = t.to_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        // ns → µs conversion keeps sub-µs precision.
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":0.700"));
        // Counter and metadata shapes.
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"process_name\""));
        // Every record is a complete object; the list is comma-separated.
        assert_eq!(json.matches("\"ph\":\"").count(), t.len());
    }

    #[test]
    fn empty_trace_still_valid() {
        let json = Trace::new().to_json();
        assert!(json.contains("\"traceEvents\":["));
    }

    #[test]
    fn bounded_trace_keeps_most_recent_and_all_metadata() {
        let mut t = Trace::bounded(3);
        t.name_process(0, "network");
        for i in 0..10u64 {
            t.instant(format!("ev{i}"), "host", 0, 1, i * 100, vec![]);
            // Metadata interleaved with data never enters the ring.
            t.name_thread(0, i as u32, format!("node {i}"));
        }
        assert_eq!(t.capacity(), Some(3));
        assert_eq!(t.dropped(), 7);
        // 11 metadata records + the 3 newest data events.
        assert_eq!(t.len(), 11 + 3);
        let data: Vec<&str> = t.events().filter(|e| e.ph != 'M').map(|e| e.name.as_str()).collect();
        assert_eq!(data, ["ev7", "ev8", "ev9"], "ring keeps the tail, in order");
        assert_eq!(t.events().filter(|e| e.ph == 'M').count(), 11);
        // The truncated trace still serializes to well-formed JSON.
        let json = t.to_json();
        assert_eq!(json.matches("\"ph\":\"").count(), t.len());
    }

    #[test]
    fn capacity_zero_records_metadata_only() {
        let mut t = Trace::bounded(0);
        t.name_process(0, "network");
        t.instant("deliver", "host", 0, 1, 100, vec![]);
        t.counter("queue_depth", 0, 200, 4);
        assert_eq!(t.len(), 1);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn absorb_respects_receiver_bound() {
        let mut donor = Trace::new();
        donor.name_thread(0, 1, "device 1");
        for i in 0..5u64 {
            donor.instant(format!("d{i}"), "host", 0, 1, i, vec![]);
        }
        let mut t = Trace::bounded(2);
        t.instant("local", "host", 0, 1, 0, vec![]);
        t.absorb(donor);
        assert_eq!(t.dropped(), 4, "local + d0..d2 evicted");
        let data: Vec<&str> = t.events().filter(|e| e.ph != 'M').map(|e| e.name.as_str()).collect();
        assert_eq!(data, ["d3", "d4"]);
        assert_eq!(t.events().filter(|e| e.ph == 'M').count(), 1);
    }

    #[test]
    fn unbounded_trace_never_drops() {
        let mut t = Trace::new();
        for i in 0..100u64 {
            t.counter("queue_depth", 0, i, i);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.capacity(), None);
    }
}
