// CACHE_dev1 — generated for v1model
#include <core.p4>
#include <v1model.p4>

header ncl_t {
    bit<16> src;
    bit<16> dst;
    bit<16> from;
    bit<16> to;
    bit<8> comp;
    bit<8> action;
    bit<16> target;
}

header arr_c1_a4_t {
    bit<32> value;
}

header args_c1_t {
    bit<8> a0_op;
    bit<64> a1_k;
    bit<8> a2_hit;
    bit<32> a3_hot;
}

header k1_loc7_t {
    bit<32> value;
}

parser IgParser(packet_in pkt, out headers_t hdr) {
    state start {
        pkt.extract(hdr.ncl);
        transition select(hdr.ncl.comp) {
            1: parse_c1;
            default: accept;
        }
    }
    state parse_c1 {
        pkt.extract(hdr.args_c1);
        pkt.extract(hdr.arr_c1_a4);
        transition accept;
    }
}

control Ig(inout headers_t hdr, inout metadata_t meta) {
    bit<16> egress_port;
    bit<8> k1_t200;
    bit<64> k1_t201;
    bit<1> k1_t202;
    bit<16> k1_t203;
    bit<16> k1_t204;
    bit<8> k1_t205;
    bit<32> k1_t206;
    bit<1> k1_t207;
    bit<32> k1_t208;
    bit<16> k1_t209;
    bit<32> k1_t210;
    bit<8> k1_t211;
    bit<1> k1_t212;
    bit<1> k1_t213;
    bit<32> k1_t214;
    bit<32> k1_t215;
    bit<32> k1_t216;
    bit<32> k1_t217;
    bit<1> k1_t218;
    bit<32> k1_t219;
    bit<32> k1_t220;
    bit<32> k1_t221;
    bit<1> k1_t222;
    bit<32> k1_t223;
    bit<32> k1_t224;
    bit<32> k1_t225;
    bit<1> k1_t226;
    bit<32> k1_t227;
    bit<32> k1_t228;
    bit<32> k1_t229;
    bit<1> k1_t230;
    bit<32> k1_t231;
    bit<32> k1_t232;
    bit<32> k1_t233;
    bit<1> k1_t234;
    bit<32> k1_t235;
    bit<32> k1_t236;
    bit<32> k1_t237;
    bit<1> k1_t238;
    bit<32> k1_t239;
    bit<32> k1_t240;
    bit<32> k1_t241;
    bit<1> k1_t242;
    bit<32> k1_t243;
    bit<32> k1_t244;
    bit<32> k1_t245;
    bit<1> k1_t246;
    bit<32> k1_t247;
    bit<32> k1_t249;
    bit<32> k1_t251;
    bit<32> k1_t253;
    bit<32> k1_t255;
    bit<32> k1_t257;
    bit<32> k1_t259;
    bit<32> k1_t261;
    bit<32> k1_t263;
    bit<16> k1_t264;
    bit<32> k1_t265;
    bit<32> k1_t266;
    bit<32> k1_t267;
    bit<16> k1_t268;
    bit<32> k1_t269;
    bit<32> k1_t270;
    bit<32> k1_t271;
    bit<16> k1_t272;
    bit<32> k1_t273;
    bit<32> k1_t274;
    bit<32> k1_t275;
    bit<32> k1_t276;
    bit<32> k1_t277;
    bit<1> k1_t278;
    bit<32> k1_t279;
    bit<32> k1_t280;
    bit<1> k1_t281;
    bit<32> k1_t282;
    bit<1> k1_t283;
    bit<16> k1_t284;
    bit<32> k1_t285;
    bit<32> k1_t286;
    bit<8> k1_t287;
    bit<16> k1_t288;
    bit<32> k1_t289;
    bit<32> k1_t290;
    bit<8> k1_t291;
    bit<32> k1_t292;
    bit<1> k1_t293;
    bit<32> k1_t294;
    bit<1> k1_t295;
    bit<1> k1_t296;
    bit<32> k1_t297;
    bit<32> k1_t298;
    bit<32> k1_t299;
    bit<32> k1_t300;
    bit<16> k1_t301;
    bit<32> k1_t302;
    bit<32> k1_t303;
    bit<32> k1_t304;
    bit<16> k1_t305;
    bit<32> k1_t306;
    bit<32> k1_t307;
    bit<32> k1_t308;
    bit<16> k1_t309;
    bit<32> k1_t310;
    bit<32> k1_t311;
    bit<32> k1_t312;
    bit<32> k1_t313;
    bit<32> k1_t314;
    bit<1> k1_t315;
    bit<32> k1_t316;
    bit<32> k1_t317;
    bit<1> k1_t318;
    bit<32> k1_t319;
    bit<1> k1_t320;
    bit<16> k1_t321;
    bit<32> k1_t322;
    bit<32> k1_t323;
    bit<8> k1_t324;
    bit<16> k1_t325;
    bit<32> k1_t326;
    bit<32> k1_t327;
    bit<8> k1_t328;
    bit<32> k1_t329;
    bit<1> k1_t330;
    bit<32> k1_t331;
    bit<1> k1_t332;
    bit<1> k1_t333;
    bit<32> k1_t334;
    bit<32> k1_t335;
    bit<32> k1_t336;
    bit<32> k1_t337;
    bit<1> k1_t338;
    bit<1> k1_t339;
    bit<32> k1_t340;
    bit<16> k1_t341;
    bit<32> k1_t342;
    bit<8> k1_t343;
    bit<32> k1_t344;
    bit<32> k1_t346;
    bit<32> k1_t347;
    bit<32> k1_t349;
    bit<32> k1_t350;
    bit<32> k1_t352;
    bit<32> k1_t353;
    bit<32> k1_t355;
    bit<32> k1_t356;
    bit<32> k1_t358;
    bit<32> k1_t359;
    bit<32> k1_t361;
    bit<32> k1_t362;
    bit<32> k1_t364;
    bit<32> k1_t365;
    bit<32> k1_t367;
    bit<32> k1_t368;
    bit<1> k1_t369;
    bit<1> k1_t370;
    bit<32> k1_t371;
    bit<8> k1_t372;
    bit<8> k1_l0_op;
    bit<64> k1_l1_k;
    bit<16> k1_l2_idx;
    bit<8> k1_l3_cached;
    bit<16> k1_l4_share;
    bit<8> k1_l5_valid;
    bit<32> k1_l6_kh;
    bit<8> k1_l8_b0;
    bit<8> k1_l9_b1;
    bit<16> k1_l10_idx_ph;
    bit<64> k1_lk0;
    register<bit<16>>(64) Share;
    register<bit<8>>(64) Valid;
    register<bit<32>>(64) HitCount;
    register<bit<32>>(512) Val;
    register<bit<32>>(12288) cms;
    register<bit<8>>(8192) Bloom;
    /* RegisterAction ra_Share_0 on Share: atomic_read */
    /* RegisterAction ra_Valid_1 on Valid: atomic_read */
    /* RegisterAction ra_HitCount_2 on HitCount: atomic_inc */
    /* RegisterAction ra_Val_3 on Val: atomic_read */
    /* RegisterAction ra_Val_4 on Val: atomic_read */
    /* RegisterAction ra_Val_5 on Val: atomic_read */
    /* RegisterAction ra_Val_6 on Val: atomic_read */
    /* RegisterAction ra_Val_7 on Val: atomic_read */
    /* RegisterAction ra_Val_8 on Val: atomic_read */
    /* RegisterAction ra_Val_9 on Val: atomic_read */
    /* RegisterAction ra_Val_10 on Val: atomic_read */
    /* RegisterAction ra_cms_11 on cms: atomic_sadd_new */
    /* RegisterAction ra_cms_12 on cms: atomic_sadd_new */
    /* RegisterAction ra_cms_13 on cms: atomic_sadd_new */
    /* RegisterAction ra_Bloom_14 on Bloom: atomic_swap */
    /* RegisterAction ra_Bloom_15 on Bloom: atomic_swap */
    /* RegisterAction ra_cms_16 on cms: atomic_sadd_new */
    /* RegisterAction ra_cms_17 on cms: atomic_sadd_new */
    /* RegisterAction ra_cms_18 on cms: atomic_sadd_new */
    /* RegisterAction ra_Bloom_19 on Bloom: atomic_swap */
    /* RegisterAction ra_Bloom_20 on Bloom: atomic_swap */
    /* RegisterAction ra_Share_21 on Share: atomic_swap */
    /* RegisterAction ra_Valid_22 on Valid: atomic_swap */
    /* RegisterAction ra_Val_23 on Val: atomic_swap */
    /* RegisterAction ra_Val_24 on Val: atomic_swap */
    /* RegisterAction ra_Val_25 on Val: atomic_swap */
    /* RegisterAction ra_Val_26 on Val: atomic_swap */
    /* RegisterAction ra_Val_27 on Val: atomic_swap */
    /* RegisterAction ra_Val_28 on Val: atomic_swap */
    /* RegisterAction ra_Val_29 on Val: atomic_swap */
    /* RegisterAction ra_Val_30 on Val: atomic_swap */
    /* RegisterAction ra_Valid_31 on Valid: atomic_swap */
    Hash<bit<32>>(HashAlgorithm_t.CRC32) hash_0;
    Hash<bit<16>>(HashAlgorithm_t.XOR16) hash_1;
    Hash<bit<16>>(HashAlgorithm_t.CRC32) hash_2;
    Hash<bit<16>>(HashAlgorithm_t.CRC16) hash_3;
    Hash<bit<16>>(HashAlgorithm_t.XOR16) hash_4;
    Hash<bit<16>>(HashAlgorithm_t.CRC16) hash_5;
    Hash<bit<32>>(HashAlgorithm_t.CRC32) hash_6;
    Hash<bit<16>>(HashAlgorithm_t.XOR16) hash_7;
    Hash<bit<16>>(HashAlgorithm_t.CRC32) hash_8;
    Hash<bit<16>>(HashAlgorithm_t.CRC16) hash_9;
    Hash<bit<16>>(HashAlgorithm_t.XOR16) hash_10;
    Hash<bit<16>>(HashAlgorithm_t.CRC16) hash_11;
    action set_egress(bit<16> port) {
        meta.egress_port = port;
    }
    action lu_hit_index_0(bit<16> v) {
        meta.k1_t203 = v;
    }
    table l2_fwd {
        key = { hdr.ncl.dst : exact }
        actions = { set_egress; NoAction; }
        default_action = NoAction();
        size = 64;
    }
    table lu_index_0 {
        key = { meta.k1_lk0 : exact }
        actions = { lu_hit_index_0; NoAction; }
        default_action = NoAction();
        size = 64;
    }
    apply {
        if ((hdr.ncl.isValid() && (hdr.ncl.to == 16w1))) {
            if ((hdr.ncl.comp == 8w1)) {
                meta.k1_t200 = hdr.args_c1.a0_op;
                meta.k1_t201 = hdr.args_c1.a1_k;
                meta.k1_lk0 = meta.k1_t201;
                meta.k1_t202 = 1w0;
                meta.k1_t203 = 16w0;
                if (lu_index_0.apply().hit) {
                    meta.k1_t202 = 1w1;
                }
                meta.k1_l10_idx_ph = 16w0;
                if ((meta.k1_t202 == 1w1)) {
                    meta.k1_l10_idx_ph = meta.k1_t203;
                }
                meta.k1_t204 = meta.k1_l10_idx_ph;
                meta.k1_t205 = (bit<8>)(meta.k1_t202);
                meta.k1_t206 = (bit<32>)(meta.k1_t200);
                meta.k1_t207 = (bit<1>)((meta.k1_t206 == 32w1));
                if ((meta.k1_t207 == 1w1)) {
                    meta.k1_t208 = (bit<32>)(meta.k1_t204);
                    meta.k1_t209 = ra_Share_0.execute((bit<32>)(meta.k1_t208));
                    meta.k1_t210 = (bit<32>)(meta.k1_t204);
                    meta.k1_t211 = ra_Valid_1.execute((bit<32>)(meta.k1_t210));
                    meta.k1_t212 = (bit<1>)((meta.k1_t205 != 8w0));
                    if ((meta.k1_t212 == 1w1)) {
                        meta.k1_t213 = (bit<1>)((meta.k1_t211 != 8w0));
                        if ((meta.k1_t213 == 1w1)) {
                            meta.k1_t214 = (bit<32>)(meta.k1_t204);
                            meta.k1_t215 = ra_HitCount_2.execute((bit<32>)(meta.k1_t214));
                            meta.k1_t216 = (bit<32>)(meta.k1_t209);
                            meta.k1_t217 = (meta.k1_t216 & 32w1);
                            meta.k1_t218 = (bit<1>)((meta.k1_t217 != 32w0));
                            if ((meta.k1_t218 == 1w1)) {
                                meta.k1_t261 = (bit<32>)(meta.k1_t204);
                                hdr.arr_c1_a4[0].value = ra_Val_3.execute((((bit<32>)(32w0) * 32w64) + (bit<32>)(meta.k1_t261)));
                            }
                            meta.k1_t219 = (bit<32>)(meta.k1_t209);
                            meta.k1_t220 = (meta.k1_t219 >> 32w1);
                            meta.k1_t221 = (meta.k1_t220 & 32w1);
                            meta.k1_t222 = (bit<1>)((meta.k1_t221 != 32w0));
                            if ((meta.k1_t222 == 1w1)) {
                                meta.k1_t259 = (bit<32>)(meta.k1_t204);
                                hdr.arr_c1_a4[1].value = ra_Val_4.execute((((bit<32>)(32w1) * 32w64) + (bit<32>)(meta.k1_t259)));
                            }
                            meta.k1_t223 = (bit<32>)(meta.k1_t209);
                            meta.k1_t224 = (meta.k1_t223 >> 32w2);
                            meta.k1_t225 = (meta.k1_t224 & 32w1);
                            meta.k1_t226 = (bit<1>)((meta.k1_t225 != 32w0));
                            if ((meta.k1_t226 == 1w1)) {
                                meta.k1_t257 = (bit<32>)(meta.k1_t204);
                                hdr.arr_c1_a4[2].value = ra_Val_5.execute((((bit<32>)(32w2) * 32w64) + (bit<32>)(meta.k1_t257)));
                            }
                            meta.k1_t227 = (bit<32>)(meta.k1_t209);
                            meta.k1_t228 = (meta.k1_t227 >> 32w3);
                            meta.k1_t229 = (meta.k1_t228 & 32w1);
                            meta.k1_t230 = (bit<1>)((meta.k1_t229 != 32w0));
                            if ((meta.k1_t230 == 1w1)) {
                                meta.k1_t255 = (bit<32>)(meta.k1_t204);
                                hdr.arr_c1_a4[3].value = ra_Val_6.execute((((bit<32>)(32w3) * 32w64) + (bit<32>)(meta.k1_t255)));
                            }
                            meta.k1_t231 = (bit<32>)(meta.k1_t209);
                            meta.k1_t232 = (meta.k1_t231 >> 32w4);
                            meta.k1_t233 = (meta.k1_t232 & 32w1);
                            meta.k1_t234 = (bit<1>)((meta.k1_t233 != 32w0));
                            if ((meta.k1_t234 == 1w1)) {
                                meta.k1_t253 = (bit<32>)(meta.k1_t204);
                                hdr.arr_c1_a4[4].value = ra_Val_7.execute((((bit<32>)(32w4) * 32w64) + (bit<32>)(meta.k1_t253)));
                            }
                            meta.k1_t235 = (bit<32>)(meta.k1_t209);
                            meta.k1_t236 = (meta.k1_t235 >> 32w5);
                            meta.k1_t237 = (meta.k1_t236 & 32w1);
                            meta.k1_t238 = (bit<1>)((meta.k1_t237 != 32w0));
                            if ((meta.k1_t238 == 1w1)) {
                                meta.k1_t251 = (bit<32>)(meta.k1_t204);
                                hdr.arr_c1_a4[5].value = ra_Val_8.execute((((bit<32>)(32w5) * 32w64) + (bit<32>)(meta.k1_t251)));
                            }
                            meta.k1_t239 = (bit<32>)(meta.k1_t209);
                            meta.k1_t240 = (meta.k1_t239 >> 32w6);
                            meta.k1_t241 = (meta.k1_t240 & 32w1);
                            meta.k1_t242 = (bit<1>)((meta.k1_t241 != 32w0));
                            if ((meta.k1_t242 == 1w1)) {
                                meta.k1_t249 = (bit<32>)(meta.k1_t204);
                                hdr.arr_c1_a4[6].value = ra_Val_9.execute((((bit<32>)(32w6) * 32w64) + (bit<32>)(meta.k1_t249)));
                            }
                            meta.k1_t243 = (bit<32>)(meta.k1_t209);
                            meta.k1_t244 = (meta.k1_t243 >> 32w7);
                            meta.k1_t245 = (meta.k1_t244 & 32w1);
                            meta.k1_t246 = (bit<1>)((meta.k1_t245 != 32w0));
                            if ((meta.k1_t246 == 1w1)) {
                                meta.k1_t247 = (bit<32>)(meta.k1_t204);
                                hdr.arr_c1_a4[7].value = ra_Val_10.execute((((bit<32>)(32w7) * 32w64) + (bit<32>)(meta.k1_t247)));
                            }
                            hdr.args_c1.a2_hit = 8w1;
                            hdr.ncl.action = 8w5;
                        } else {
                            meta.k1_t263 = hash_0.get({(bit<64>)(meta.k1_t201)});
                            meta.k1_t264 = hash_1.get({(bit<32>)(meta.k1_t263)});
                            meta.k1_t265 = (bit<32>)(meta.k1_t264);
                            meta.k1_t266 = (meta.k1_t265 & 32w4095);
                            meta.k1_t267 = ra_cms_11.execute((((bit<32>)(32w0) * 32w4096) + (bit<32>)(meta.k1_t266)));
                            hdr.k1_loc7[0].value = meta.k1_t267;
                            meta.k1_t268 = hash_2.get({(bit<32>)(meta.k1_t263)});
                            meta.k1_t269 = (bit<32>)(meta.k1_t268);
                            meta.k1_t270 = (meta.k1_t269 & 32w4095);
                            meta.k1_t271 = ra_cms_12.execute((((bit<32>)(32w1) * 32w4096) + (bit<32>)(meta.k1_t270)));
                            hdr.k1_loc7[1].value = meta.k1_t271;
                            meta.k1_t272 = hash_3.get({(bit<32>)(meta.k1_t263)});
                            meta.k1_t273 = (bit<32>)(meta.k1_t272);
                            meta.k1_t274 = (meta.k1_t273 & 32w4095);
                            meta.k1_t275 = ra_cms_13.execute((((bit<32>)(32w2) * 32w4096) + (bit<32>)(meta.k1_t274)));
                            hdr.k1_loc7[2].value = meta.k1_t275;
                            meta.k1_t276 = hdr.k1_loc7[1].value;
                            meta.k1_t277 = hdr.k1_loc7[0].value;
                            meta.k1_t278 = (bit<1>)((meta.k1_t276 < meta.k1_t277));
                            if ((meta.k1_t278 == 1w1)) {
                                meta.k1_t299 = hdr.k1_loc7[1].value;
                                hdr.k1_loc7[0].value = meta.k1_t299;
                            }
                            meta.k1_t279 = hdr.k1_loc7[2].value;
                            meta.k1_t280 = hdr.k1_loc7[0].value;
                            meta.k1_t281 = (bit<1>)((meta.k1_t279 < meta.k1_t280));
                            if ((meta.k1_t281 == 1w1)) {
                                meta.k1_t298 = hdr.k1_loc7[2].value;
                                hdr.k1_loc7[0].value = meta.k1_t298;
                            }
                            meta.k1_t282 = hdr.k1_loc7[0].value;
                            meta.k1_t283 = (bit<1>)((meta.k1_t282 > 32w64));
                            if ((meta.k1_t283 == 1w1)) {
                                meta.k1_t284 = hash_4.get({(bit<32>)(meta.k1_t263)});
                                meta.k1_t285 = (bit<32>)(meta.k1_t284);
                                meta.k1_t286 = (meta.k1_t285 & 32w4095);
                                meta.k1_t287 = ra_Bloom_14.execute((((bit<32>)(32w0) * 32w4096) + (bit<32>)(meta.k1_t286)));
                                meta.k1_t288 = hash_5.get({(bit<32>)(meta.k1_t263)});
                                meta.k1_t289 = (bit<32>)(meta.k1_t288);
                                meta.k1_t290 = (meta.k1_t289 & 32w4095);
                                meta.k1_t291 = ra_Bloom_15.execute((((bit<32>)(32w1) * 32w4096) + (bit<32>)(meta.k1_t290)));
                                meta.k1_t292 = (bit<32>)(meta.k1_t287);
                                meta.k1_t293 = (bit<1>)((meta.k1_t292 == 32w0));
                                meta.k1_t294 = (bit<32>)(meta.k1_t291);
                                meta.k1_t295 = (bit<1>)((meta.k1_t294 == 32w0));
                                meta.k1_t296 = (meta.k1_t293 | meta.k1_t295);
                                if ((meta.k1_t296 == 1w1)) {
                                    meta.k1_t297 = hdr.k1_loc7[0].value;
                                    hdr.args_c1.a3_hot = meta.k1_t297;
                                }
                            }
                            hdr.ncl.action = 8w0;
                        }
                    } else {
                        meta.k1_t300 = hash_6.get({(bit<64>)(meta.k1_t201)});
                        meta.k1_t301 = hash_7.get({(bit<32>)(meta.k1_t300)});
                        meta.k1_t302 = (bit<32>)(meta.k1_t301);
                        meta.k1_t303 = (meta.k1_t302 & 32w4095);
                        meta.k1_t304 = ra_cms_16.execute((((bit<32>)(32w0) * 32w4096) + (bit<32>)(meta.k1_t303)));
                        hdr.k1_loc7[0].value = meta.k1_t304;
                        meta.k1_t305 = hash_8.get({(bit<32>)(meta.k1_t300)});
                        meta.k1_t306 = (bit<32>)(meta.k1_t305);
                        meta.k1_t307 = (meta.k1_t306 & 32w4095);
                        meta.k1_t308 = ra_cms_17.execute((((bit<32>)(32w1) * 32w4096) + (bit<32>)(meta.k1_t307)));
                        hdr.k1_loc7[1].value = meta.k1_t308;
                        meta.k1_t309 = hash_9.get({(bit<32>)(meta.k1_t300)});
                        meta.k1_t310 = (bit<32>)(meta.k1_t309);
                        meta.k1_t311 = (meta.k1_t310 & 32w4095);
                        meta.k1_t312 = ra_cms_18.execute((((bit<32>)(32w2) * 32w4096) + (bit<32>)(meta.k1_t311)));
                        hdr.k1_loc7[2].value = meta.k1_t312;
                        meta.k1_t313 = hdr.k1_loc7[1].value;
                        meta.k1_t314 = hdr.k1_loc7[0].value;
                        meta.k1_t315 = (bit<1>)((meta.k1_t313 < meta.k1_t314));
                        if ((meta.k1_t315 == 1w1)) {
                            meta.k1_t336 = hdr.k1_loc7[1].value;
                            hdr.k1_loc7[0].value = meta.k1_t336;
                        }
                        meta.k1_t316 = hdr.k1_loc7[2].value;
                        meta.k1_t317 = hdr.k1_loc7[0].value;
                        meta.k1_t318 = (bit<1>)((meta.k1_t316 < meta.k1_t317));
                        if ((meta.k1_t318 == 1w1)) {
                            meta.k1_t335 = hdr.k1_loc7[2].value;
                            hdr.k1_loc7[0].value = meta.k1_t335;
                        }
                        meta.k1_t319 = hdr.k1_loc7[0].value;
                        meta.k1_t320 = (bit<1>)((meta.k1_t319 > 32w64));
                        if ((meta.k1_t320 == 1w1)) {
                            meta.k1_t321 = hash_10.get({(bit<32>)(meta.k1_t300)});
                            meta.k1_t322 = (bit<32>)(meta.k1_t321);
                            meta.k1_t323 = (meta.k1_t322 & 32w4095);
                            meta.k1_t324 = ra_Bloom_19.execute((((bit<32>)(32w0) * 32w4096) + (bit<32>)(meta.k1_t323)));
                            meta.k1_t325 = hash_11.get({(bit<32>)(meta.k1_t300)});
                            meta.k1_t326 = (bit<32>)(meta.k1_t325);
                            meta.k1_t327 = (meta.k1_t326 & 32w4095);
                            meta.k1_t328 = ra_Bloom_20.execute((((bit<32>)(32w1) * 32w4096) + (bit<32>)(meta.k1_t327)));
                            meta.k1_t329 = (bit<32>)(meta.k1_t324);
                            meta.k1_t330 = (bit<1>)((meta.k1_t329 == 32w0));
                            meta.k1_t331 = (bit<32>)(meta.k1_t328);
                            meta.k1_t332 = (bit<1>)((meta.k1_t331 == 32w0));
                            meta.k1_t333 = (meta.k1_t330 | meta.k1_t332);
                            if ((meta.k1_t333 == 1w1)) {
                                meta.k1_t334 = hdr.k1_loc7[0].value;
                                hdr.args_c1.a3_hot = meta.k1_t334;
                            }
                        }
                        hdr.ncl.action = 8w0;
                    }
                } else {
                    meta.k1_t337 = (bit<32>)(meta.k1_t200);
                    meta.k1_t338 = (bit<1>)((meta.k1_t337 == 32w2));
                    if ((meta.k1_t338 == 1w1)) {
                        meta.k1_t339 = (bit<1>)((meta.k1_t205 != 8w0));
                        if ((meta.k1_t339 == 1w1)) {
                            meta.k1_t340 = (bit<32>)(meta.k1_t204);
                            meta.k1_t341 = ra_Share_21.execute((bit<32>)(meta.k1_t340));
                            meta.k1_t342 = (bit<32>)(meta.k1_t204);
                            meta.k1_t343 = ra_Valid_22.execute((bit<32>)(meta.k1_t342));
                            meta.k1_t344 = (bit<32>)(meta.k1_t204);
                            meta.k1_t346 = ra_Val_23.execute((((bit<32>)(32w0) * 32w64) + (bit<32>)(meta.k1_t344)));
                            meta.k1_t347 = (bit<32>)(meta.k1_t204);
                            meta.k1_t349 = ra_Val_24.execute((((bit<32>)(32w1) * 32w64) + (bit<32>)(meta.k1_t347)));
                            meta.k1_t350 = (bit<32>)(meta.k1_t204);
                            meta.k1_t352 = ra_Val_25.execute((((bit<32>)(32w2) * 32w64) + (bit<32>)(meta.k1_t350)));
                            meta.k1_t353 = (bit<32>)(meta.k1_t204);
                            meta.k1_t355 = ra_Val_26.execute((((bit<32>)(32w3) * 32w64) + (bit<32>)(meta.k1_t353)));
                            meta.k1_t356 = (bit<32>)(meta.k1_t204);
                            meta.k1_t358 = ra_Val_27.execute((((bit<32>)(32w4) * 32w64) + (bit<32>)(meta.k1_t356)));
                            meta.k1_t359 = (bit<32>)(meta.k1_t204);
                            meta.k1_t361 = ra_Val_28.execute((((bit<32>)(32w5) * 32w64) + (bit<32>)(meta.k1_t359)));
                            meta.k1_t362 = (bit<32>)(meta.k1_t204);
                            meta.k1_t364 = ra_Val_29.execute((((bit<32>)(32w6) * 32w64) + (bit<32>)(meta.k1_t362)));
                            meta.k1_t365 = (bit<32>)(meta.k1_t204);
                            meta.k1_t367 = ra_Val_30.execute((((bit<32>)(32w7) * 32w64) + (bit<32>)(meta.k1_t365)));
                        }
                    } else {
                        meta.k1_t368 = (bit<32>)(meta.k1_t200);
                        meta.k1_t369 = (bit<1>)((meta.k1_t368 == 32w3));
                        if ((meta.k1_t369 == 1w1)) {
                            meta.k1_t370 = (bit<1>)((meta.k1_t205 != 8w0));
                            if ((meta.k1_t370 == 1w1)) {
                                meta.k1_t371 = (bit<32>)(meta.k1_t204);
                                meta.k1_t372 = ra_Valid_31.execute((bit<32>)(meta.k1_t371));
                            }
                        }
                    }
                    hdr.ncl.action = 8w0;
                }
            }
        }
        l2_fwd.apply();
    }
}

