//! Property-based tests over core invariants (proptest).

use netcl::sema::model::{SpecItem, Specification};
use netcl::sema::Ty;
use netcl::{CompileOptions, Compiler};
use netcl_bmv2::{Engine, Switch};
use netcl_runtime::message::{pack, unpack, Message};
use proptest::prelude::*;

fn arb_ty() -> impl Strategy<Value = Ty> {
    prop_oneof![Just(Ty::U8), Just(Ty::U16), Just(Ty::U32), Just(Ty::U64), Just(Ty::Bool),]
}

fn arb_spec() -> impl Strategy<Value = Specification> {
    proptest::collection::vec((arb_ty(), 1u32..5), 1..6).prop_map(|items| Specification {
        items: items.into_iter().map(|(ty, count)| SpecItem { count, ty }).collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// pack ∘ unpack is the identity for any specification and payload.
    #[test]
    fn pack_unpack_roundtrip(spec in arb_spec(), seed in any::<u64>()) {
        let mut rng = seed;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rng >> 16
        };
        let payload: Vec<Vec<u64>> = spec
            .items
            .iter()
            .map(|item| (0..item.count).map(|_| item.ty.wrap(next())).collect())
            .collect();
        let m = Message::new(1, 2, 7, 3);
        let refs: Vec<Option<&[u64]>> = payload.iter().map(|v| Some(v.as_slice())).collect();
        let bytes = pack(&m, &spec, &refs).unwrap();
        prop_assert_eq!(bytes.len(), Message::size(&spec));

        let mut outs: Vec<Vec<u64>> = vec![Vec::new(); spec.items.len()];
        {
            let mut refs: Vec<Option<&mut Vec<u64>>> = outs.iter_mut().map(Some).collect();
            let hdr = unpack(&bytes, &spec, &mut refs).unwrap();
            prop_assert_eq!(hdr, m);
        }
        prop_assert_eq!(outs, payload);
    }

    /// The compiled calculator agrees with the reference semantics on
    /// arbitrary operands — through the full pipeline and the switch.
    #[test]
    fn calculator_differential(a in any::<u32>(), b in any::<u32>(), op_idx in 0usize..5) {
        use netcl_apps::calc;
        let ops = [calc::OP_ADD, calc::OP_SUB, calc::OP_AND, calc::OP_OR, calc::OP_XOR];
        let op = ops[op_idx];
        // Compile once per process.
        use std::sync::OnceLock;
        static PROGRAM: OnceLock<netcl_p4::P4Program> = OnceLock::new();
        let program = PROGRAM.get_or_init(|| {
            Compiler::new(CompileOptions::default())
                .compile("calc.ncl", &calc::netcl_source())
                .unwrap()
                .devices[0]
                .tna_p4
                .clone()
        });
        let mut sw = Switch::new(program.clone());
        let (_, reply) = sw.process(&calc::request(7, op, a as u64, b as u64)).unwrap();
        prop_assert_eq!(calc::result_of(&reply).unwrap(), calc::reference(op, a as u64, b as u64));
    }

    /// For every Table III application, the compiled fast path and the
    /// tree-walking interpreter oracle agree packet-for-packet on random
    /// wire bytes: same output bytes, same error (drop) decisions, and the
    /// same final register state.
    #[test]
    fn compiled_matches_interpreter_all_apps(seed in any::<u64>()) {
        static PROGRAMS: std::sync::OnceLock<Vec<(String, netcl_p4::P4Program)>> =
            std::sync::OnceLock::new();
        let programs = PROGRAMS.get_or_init(|| {
            netcl_apps::all_apps()
                .into_iter()
                .map(|app| {
                    let unit = Compiler::new(CompileOptions::default())
                        .compile(app.name, &app.netcl_source)
                        .unwrap();
                    let p4 = unit.device(app.device).expect("kernel device").tna_p4.clone();
                    (app.name.to_string(), p4)
                })
                .collect()
        });
        let mut rng = seed;
        let mut next = move || {
            rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for (name, program) in programs {
            let mut fast = Switch::new(program.clone());
            fast.set_engine(Engine::Compiled);
            let mut oracle = Switch::new(program.clone());
            oracle.set_interpreted(true);
            for _ in 0..6 {
                let len = (next() % 160) as usize;
                let wire: Vec<u8> = (0..len).map(|_| next() as u8).collect();
                match (fast.process(&wire), oracle.process(&wire)) {
                    (Ok((_, of)), Ok((_, oo))) => {
                        prop_assert_eq!(&of, &oo, "{name}: output bytes diverge on {wire:?}")
                    }
                    (Err(ef), Err(eo)) => {
                        prop_assert_eq!(&ef, &eo, "{name}: errors diverge on {wire:?}")
                    }
                    (rf, ro) => prop_assert!(
                        false,
                        "{name}: only one engine errored on {wire:?}: {rf:?} vs {ro:?}"
                    ),
                }
            }
            let fr: Vec<(String, Vec<u64>)> =
                fast.registers().map(|(n, c)| (n.to_string(), c.to_vec())).collect();
            let or: Vec<(String, Vec<u64>)> =
                oracle.registers().map(|(n, c)| (n.to_string(), c.to_vec())).collect();
            prop_assert_eq!(fr, or, "{name}: register state diverges");
        }
    }

    /// For every Table III application (plus a synthetic recirculating
    /// kernel), `Switch::process_batch` over a batch of random wires —
    /// valid, truncated, and garbage alike — produces exactly the outcomes,
    /// output bytes, `SwitchCounters`, and register state of a scalar
    /// `process_into` loop over the same wires.
    #[test]
    fn process_batch_matches_scalar_loop_all_apps(seed in any::<u64>()) {
        use netcl_bmv2::PacketBatch;
        static PROGRAMS: std::sync::OnceLock<Vec<(String, netcl_p4::P4Program)>> =
            std::sync::OnceLock::new();
        let programs = PROGRAMS.get_or_init(|| {
            let mut ps: Vec<(String, netcl_p4::P4Program)> = netcl_apps::all_apps()
                .into_iter()
                .map(|app| {
                    let unit = Compiler::new(CompileOptions::default())
                        .compile(app.name, &app.netcl_source)
                        .unwrap();
                    let p4 = unit.device(app.device).expect("kernel device").tna_p4.clone();
                    (app.name.to_string(), p4)
                })
                .collect();
            // `ncl::repeat()` coverage: no Table III app recirculates.
            let spin = Compiler::new(CompileOptions::default())
                .compile(
                    "spin.ncl",
                    "_kernel(1) _at(1) void spin(unsigned k, unsigned &n) {\n\
                       n = n + 1;\n\
                       if (n < 3) return ncl::repeat();\n\
                       return ncl::reflect();\n\
                     }\n",
                )
                .unwrap();
            ps.push(("spin".to_string(), spin.devices[0].tna_p4.clone()));
            ps
        });
        let mut rng = seed;
        let mut next = move || {
            rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for (name, program) in programs {
            // Both fast engines must hold batched ≡ scalar (the threaded
            // default takes the phase-split path; so does compiled).
            for engine in [Engine::Threaded, Engine::Compiled] {
                let mut scalar = Switch::new(program.clone());
                scalar.set_engine(engine);
                let mut batched = Switch::new(program.clone());
                batched.set_engine(engine);
                let wires: Vec<Vec<u8>> = (0..8)
                    .map(|_| {
                        let len = (next() % 160) as usize;
                        (0..len).map(|_| next() as u8).collect()
                    })
                    .collect();
                let mut batch = PacketBatch::new();
                for w in &wires {
                    batch.push(w);
                }
                batched.process_batch(&mut batch);
                let mut pkt = scalar.new_packet();
                for (i, w) in wires.iter().enumerate() {
                    let mut out = Vec::new();
                    let r = scalar.process_into(w, &mut pkt, &mut out);
                    prop_assert_eq!(
                        &r, batch.outcome(i),
                        "{} [{}]: outcome diverges on packet {} ({:?})",
                        name, engine.name(), i, w
                    );
                    if r.is_ok() {
                        prop_assert_eq!(
                            out.as_slice(), batch.output(i),
                            "{} [{}]: output bytes diverge on packet {}", name, engine.name(), i
                        );
                    }
                }
                prop_assert_eq!(
                    scalar.counters(), batched.counters(),
                    "{} [{}]: SwitchCounters diverge", name, engine.name()
                );
                let sr: Vec<(String, Vec<u64>)> =
                    scalar.registers().map(|(n, c)| (n.to_string(), c.to_vec())).collect();
                let br: Vec<(String, Vec<u64>)> =
                    batched.registers().map(|(n, c)| (n.to_string(), c.to_vec())).collect();
                prop_assert_eq!(sr, br, "{} [{}]: register state diverges", name, engine.name());
            }
        }
    }

    /// The direct-threaded backend ≡ the compiled pc-loop ≡ the
    /// tree-walking interpreter, packet for packet, for every Table III
    /// application plus a recirculating `ncl::repeat` kernel, on random
    /// wires (valid, truncated, and garbage alike): same output bytes,
    /// same error values, same `SwitchCounters`, same final registers.
    #[test]
    fn threaded_matches_compiled_and_interpreter_all_apps(seed in any::<u64>()) {
        static PROGRAMS: std::sync::OnceLock<Vec<(String, netcl_p4::P4Program)>> =
            std::sync::OnceLock::new();
        let programs = PROGRAMS.get_or_init(|| {
            let mut ps: Vec<(String, netcl_p4::P4Program)> = netcl_apps::all_apps()
                .into_iter()
                .map(|app| {
                    let unit = Compiler::new(CompileOptions::default())
                        .compile(app.name, &app.netcl_source)
                        .unwrap();
                    let p4 = unit.device(app.device).expect("kernel device").tna_p4.clone();
                    (app.name.to_string(), p4)
                })
                .collect();
            // `ncl::repeat()` coverage: no Table III app recirculates.
            let spin = Compiler::new(CompileOptions::default())
                .compile(
                    "spin.ncl",
                    "_kernel(1) _at(1) void spin(unsigned k, unsigned &n) {\n\
                       n = n + 1;\n\
                       if (n < 3) return ncl::repeat();\n\
                       return ncl::reflect();\n\
                     }\n",
                )
                .unwrap();
            ps.push(("spin".to_string(), spin.devices[0].tna_p4.clone()));
            ps
        });
        let mut rng = seed;
        let mut next = move || {
            rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for (name, program) in programs {
            let mut threaded = Switch::new(program.clone());
            prop_assert_eq!(threaded.engine(), Engine::Threaded, "threaded is the default");
            let mut compiled = Switch::new(program.clone());
            compiled.set_engine(Engine::Compiled);
            let mut oracle = Switch::new(program.clone());
            oracle.set_engine(Engine::Interpreted);
            for _ in 0..6 {
                let len = (next() % 160) as usize;
                let wire: Vec<u8> = (0..len).map(|_| next() as u8).collect();
                let rt = threaded.process(&wire);
                let rc = compiled.process(&wire);
                let ro = oracle.process(&wire);
                match (&rt, &rc, &ro) {
                    (Ok((_, ot)), Ok((_, oc)), Ok((_, oo))) => {
                        prop_assert_eq!(ot, oc, "{name}: threaded/compiled outputs on {wire:?}");
                        prop_assert_eq!(ot, oo, "{name}: threaded/oracle outputs on {wire:?}");
                    }
                    (Err(et), Err(ec), Err(eo)) => {
                        prop_assert_eq!(et, ec, "{name}: threaded/compiled errors on {wire:?}");
                        prop_assert_eq!(et, eo, "{name}: threaded/oracle errors on {wire:?}");
                    }
                    _ => prop_assert!(
                        false,
                        "{name}: engines disagree about failing {wire:?}: \
                         {rt:?} vs {rc:?} vs {ro:?}"
                    ),
                }
            }
            prop_assert_eq!(
                threaded.counters(), compiled.counters(),
                "{}: threaded/compiled counters diverge", name
            );
            prop_assert_eq!(
                threaded.counters(), oracle.counters(),
                "{}: threaded/oracle counters diverge", name
            );
            // The backend label is the one field that must differ.
            prop_assert_eq!(threaded.counters().backend, "threaded");
            prop_assert_eq!(compiled.counters().backend, "compiled");
            prop_assert_eq!(oracle.counters().backend, "interpreted");
            let tr: Vec<(String, Vec<u64>)> =
                threaded.registers().map(|(n, c)| (n.to_string(), c.to_vec())).collect();
            let cr: Vec<(String, Vec<u64>)> =
                compiled.registers().map(|(n, c)| (n.to_string(), c.to_vec())).collect();
            let orr: Vec<(String, Vec<u64>)> =
                oracle.registers().map(|(n, c)| (n.to_string(), c.to_vec())).collect();
            prop_assert_eq!(&tr, &cr, "{}: threaded/compiled registers diverge", name);
            prop_assert_eq!(&tr, &orr, "{}: threaded/oracle registers diverge", name);
        }
    }

    /// Wire parsing is total: `Message::read_header` and `unpack` never
    /// panic on arbitrary byte strings — the input path the simulator's
    /// corruption fault exercises — and report `Truncated` exactly when the
    /// buffer is shorter than the specification demands.
    #[test]
    fn unpack_is_total_on_arbitrary_bytes(
        spec in arb_spec(),
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        use netcl_runtime::message::{MessageError, NCL_HEADER_BYTES};
        let header = Message::read_header(&bytes);
        if bytes.len() < NCL_HEADER_BYTES {
            prop_assert_eq!(header, Err(MessageError::Truncated));
        } else {
            prop_assert!(header.is_ok());
        }
        let mut outs: Vec<Vec<u64>> = vec![Vec::new(); spec.items.len()];
        let mut refs: Vec<Option<&mut Vec<u64>>> = outs.iter_mut().map(Some).collect();
        match unpack(&bytes, &spec, &mut refs) {
            Ok(hdr) => {
                prop_assert!(bytes.len() >= Message::size(&spec));
                prop_assert_eq!(Ok(hdr), header);
            }
            Err(e) => {
                prop_assert!(bytes.len() < Message::size(&spec));
                prop_assert_eq!(e, MessageError::Truncated);
            }
        }
    }

    /// Any strict prefix of a well-formed packet is rejected as truncated,
    /// and a single flipped bit never breaks parsing (there is no checksum:
    /// the corrupted packet decodes, just to different field values).
    #[test]
    fn truncation_errs_and_bit_flips_parse(
        spec in arb_spec(),
        cut in any::<u64>(),
        flip in any::<u64>(),
    ) {
        use netcl_runtime::message::MessageError;
        let zeros: Vec<Option<&[u64]>> = spec.items.iter().map(|_| None).collect();
        let m = Message::new(3, 4, 9, 1);
        let bytes = pack(&m, &spec, &zeros).unwrap();

        let cut = (cut % bytes.len() as u64) as usize;
        let mut none: Vec<Option<&mut Vec<u64>>> = spec.items.iter().map(|_| None).collect();
        prop_assert_eq!(
            unpack(&bytes[..cut], &spec, &mut none),
            Err(MessageError::Truncated)
        );

        let mut flipped = bytes.clone();
        let bit = (flip % (bytes.len() as u64 * 8)) as usize;
        flipped[bit / 8] ^= 1 << (bit % 8);
        let mut outs: Vec<Vec<u64>> = vec![Vec::new(); spec.items.len()];
        let mut refs: Vec<Option<&mut Vec<u64>>> = outs.iter_mut().map(Some).collect();
        prop_assert!(unpack(&flipped, &spec, &mut refs).is_ok());
        prop_assert!(Message::read_header(&flipped).is_ok());
    }

    /// Every lookup-table state the host installs is observed exactly by
    /// the data plane (managed memory coherence).
    #[test]
    fn managed_lookup_coherent(keys in proptest::collection::btree_set(1u64..1000, 1..8)) {
        use netcl_runtime::managed::ManagedMemory;
        use netcl::sema::model::LookupEntry;
        static UNIT: std::sync::OnceLock<netcl::CompiledUnit> = std::sync::OnceLock::new();
        let unit = UNIT.get_or_init(|| {
            Compiler::new(CompileOptions::default())
                .compile(
                    "t.ncl",
                    "_managed_ _lookup_ ncl::kv<unsigned, unsigned> t[64];\n\
                     _kernel(1) _at(1) void k(unsigned key, unsigned &v, char &hit) {\n\
                       hit = ncl::lookup(t, key, v);\n\
                     }\n",
                )
                .unwrap()
        });
        let spec = unit.model.kernels[0].specification();
        let mut sw = Switch::new(unit.devices[0].tna_p4.clone());
        let mm = ManagedMemory::new(&unit.devices[0].tna_ir);
        for &k in &keys {
            mm.lookup_insert(&mut sw, "t", LookupEntry::Exact { key: k, value: k * 7 }).unwrap();
        }
        for probe in 0u64..1000 {
            if probe % 97 != 0 && !keys.contains(&probe) {
                continue; // subsample misses
            }
            let m = Message::new(1, 2, 1, 1);
            let req = pack(&m, &spec, &[Some(&[probe]), None, None]).unwrap();
            let (_, reply) = sw.process(&req).unwrap();
            let mut v = Vec::new();
            let mut hit = Vec::new();
            unpack(&reply, &spec, &mut [None, Some(&mut v), Some(&mut hit)]).unwrap();
            if keys.contains(&probe) {
                prop_assert_eq!((hit[0], v[0]), (1, probe * 7));
            } else {
                prop_assert_eq!(hit[0], 0);
            }
        }
    }
}

/// AllReduce correctness under randomized loss rates (failure injection).
#[test]
fn allreduce_correct_under_random_loss() {
    use netcl_apps::agg;
    let cfg = agg::AggConfig { num_workers: 3, num_slots: 4, slot_size: 8 };
    let unit = Compiler::new(CompileOptions::default())
        .compile("agg.ncl", &agg::netcl_source(&cfg))
        .unwrap();
    for loss_pct in [0u32, 2, 5, 10] {
        let r = agg::run_allreduce(&unit.devices[0].tna_p4, &cfg, 8, 500, loss_pct as f64 / 100.0);
        assert!(r.all_correct, "loss {loss_pct}%: {r:?}");
    }
}
