//! P4-16 program representation, printer, parser, and construct classifier.
//!
//! This crate is the interchange format between the NetCL code generator,
//! the Tofino resource allocator (`netcl-tofino`), and the behavioral-model
//! interpreter (`netcl-bmv2`):
//!
//! * [`ast`] — a typed P4-16 subset: headers, parsers, controls,
//!   `Register`/`RegisterAction`/`Hash` externs (TNA style), match-action
//!   tables with const entries, actions, and apply blocks. The subset is
//!   exactly what the NetCL backend emits (paper Fig. 9) plus what our
//!   handwritten P4 baselines use.
//! * [`mod@print`] — renders a program to P4-16 text (TNA or v1model dialect).
//! * [`parse`] — parses that same subset back; `print ∘ parse` is a
//!   fixpoint, and the handwritten baselines in `netcl-apps` are stored as
//!   `.p4` files parsed through this module.
//! * [`classify`] — assigns each line of a program to a construct category
//!   (headers, parsers, MATs, RegisterActions, control, declarations),
//!   regenerating the paper's Figure 12 breakdown.
//!
//! DESIGN.md §2 places this interchange format in the system inventory.

pub mod ast;
pub mod classify;
pub mod parse;
pub mod print;

pub use ast::{
    ActionDef, ControlDef, Expr, HeaderDef, MatchKind, P4Program, ParserDef, ParserState,
    RegisterActionDef, RegisterDef, Stmt, TableDef, TableEntry, Target,
};
