//! A hermetic, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the real proptest cannot be fetched. This shim implements the subset of
//! the API this repository's property tests use — `Strategy`, `Just`,
//! ranges, tuples, `prop_oneof!`, `proptest::collection::{vec, btree_set}`,
//! `any::<T>()`, the `proptest!` macro, and `prop_assert*!` — with a
//! deterministic SplitMix64 case generator. There is no shrinking: a failing
//! case reports its case index and seed so it can be replayed.

use std::ops::Range;

/// Deterministic per-test RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator. Object-safe so `prop_oneof!` can box alternatives.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (API parity with proptest's `boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds from alternatives (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Uniform floats in `[start, end)`.
impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + frac * (self.end - self.start)
    }
}

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64 + 1;
                self.start() + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained values of `T` (proptest's `any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// `Vec` of `size` elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector strategy with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `BTreeSet` strategy with target size in `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Ordered-set strategy; duplicates are redrawn (bounded attempts).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.clone().sample(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts: small element domains may not reach `n`.
            for _ in 0..n * 16 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Runs one property over `config.cases` deterministic cases.
///
/// The per-case closure returns `Err(reason)` on `prop_assert*!` failure;
/// the runner panics with the case index and seed for replay.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    for i in 0..config.cases {
        // Derive a distinct, reproducible seed per case.
        let seed = 0xC0FF_EE00_0000_0000u64 ^ ((i as u64) << 16) ^ i as u64;
        let mut rng = TestRng::new(seed);
        if let Err(msg) = case(&mut rng) {
            panic!("property `{name}` failed at case {i} (seed {seed:#x}):\n{msg}");
        }
    }
}

/// Declares property tests. Supported grammar (subset of proptest's):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(a in strategy_a, b in strategy_b) { ...body... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts inside a property body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn union_samples_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8)];
        let mut rng = TestRng::new(7);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_compiles(x in 0u64..10, v in crate::collection::vec(0u8..4, 1..5)) {
            prop_assert!(x < 10);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
