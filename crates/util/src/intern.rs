//! String interning.
//!
//! Identifiers appear everywhere in the AST and IR; interning them lets the
//! rest of the compiler compare names with a `u32` comparison and keeps AST
//! nodes `Copy`-friendly.

use std::collections::HashMap;
use std::fmt;

/// Handle to an interned string.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Owning intern table. One per compilation session.
#[derive(Default, Debug)]
pub struct Interner {
    map: HashMap<String, Symbol>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing symbol if already present.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), sym);
        sym
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was produced by a different interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("cache");
        let b = i.intern("cache");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("Agg");
        let b = i.intern("Bitmap");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "Agg");
        assert_eq!(i.resolve(b), "Bitmap");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }
}
