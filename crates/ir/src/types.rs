//! IR value types, operands, and operator enums.
//!
//! Like LLVM, types carry only width; signedness lives in the operations
//! (`udiv`/`sdiv`, `lshr`/`ashr`, `ult`/`slt`). `i1` is the boolean type.

use std::fmt;

/// An IR value type: an integer of the given bit width (1 = bool).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct IrTy {
    /// Bit width: 1, 8, 16, 32, or 64.
    pub bits: u8,
}

impl IrTy {
    /// Boolean.
    pub const I1: IrTy = IrTy { bits: 1 };
    /// Byte.
    pub const I8: IrTy = IrTy { bits: 8 };
    /// 16-bit.
    pub const I16: IrTy = IrTy { bits: 16 };
    /// 32-bit.
    pub const I32: IrTy = IrTy { bits: 32 };
    /// 64-bit.
    pub const I64: IrTy = IrTy { bits: 64 };

    /// Constructs from a width.
    pub fn int(bits: u8) -> IrTy {
        debug_assert!(matches!(bits, 1 | 8 | 16 | 32 | 64), "unsupported width {bits}");
        IrTy { bits }
    }

    /// Mask with the low `bits` set (all ones for 64).
    pub fn mask(self) -> u64 {
        if self.bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    /// Truncates a value to this width.
    pub fn wrap(self, v: u64) -> u64 {
        v & self.mask()
    }

    /// Sign-extends `v` (assumed `self.bits` wide) to 64 bits.
    pub fn sext(self, v: u64) -> u64 {
        let v = self.wrap(v);
        if self.bits < 64 && v >> (self.bits - 1) & 1 == 1 {
            v | !self.mask()
        } else {
            v
        }
    }
}

impl fmt::Debug for IrTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.bits)
    }
}

impl fmt::Display for IrTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.bits)
    }
}

netcl_util::define_index!(RawValueId, "%");

/// An instruction operand: an SSA value or an immediate constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Reference to a defined value.
    Value(super::func::ValueId),
    /// Immediate with explicit width.
    Const(u64, IrTy),
}

impl Operand {
    /// Immediate constant helper.
    pub fn imm(v: u64, ty: IrTy) -> Operand {
        Operand::Const(ty.wrap(v), ty)
    }

    /// The constant value, if this is an immediate.
    pub fn as_const(self) -> Option<u64> {
        match self {
            Operand::Const(v, _) => Some(v),
            _ => None,
        }
    }

    /// The value id, if this is a value reference.
    pub fn as_value(self) -> Option<super::func::ValueId> {
        match self {
            Operand::Value(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Debug for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Value(v) => write!(f, "{v}"),
            Operand::Const(c, ty) => write!(f, "{ty} {c}"),
        }
    }
}

/// Binary integer operations. Signedness is explicit where it matters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IrBinOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Unsigned divide.
    UDiv,
    /// Signed divide.
    SDiv,
    /// Unsigned remainder.
    URem,
    /// Signed remainder.
    SRem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    /// Unsigned saturating add (`ncl::sadd`, SALU-native on Tofino).
    UAddSat,
    /// Unsigned saturating subtract (`ncl::ssub`).
    USubSat,
    /// Unsigned minimum.
    UMin,
    /// Unsigned maximum.
    UMax,
    /// Signed minimum.
    SMin,
    /// Signed maximum.
    SMax,
}

impl IrBinOp {
    /// Evaluates the op at width `ty` (operands already canonical).
    pub fn eval(self, a: u64, b: u64, ty: IrTy) -> Option<u64> {
        let m = |v: u64| ty.wrap(v);
        Some(match self {
            IrBinOp::Add => m(a.wrapping_add(b)),
            IrBinOp::Sub => m(a.wrapping_sub(b)),
            IrBinOp::Mul => m(a.wrapping_mul(b)),
            IrBinOp::UDiv => m(a.checked_div(b)?),
            IrBinOp::SDiv => {
                let (sa, sb) = (ty.sext(a) as i64, ty.sext(b) as i64);
                m(sa.checked_div(sb)? as u64)
            }
            IrBinOp::URem => m(a.checked_rem(b)?),
            IrBinOp::SRem => {
                let (sa, sb) = (ty.sext(a) as i64, ty.sext(b) as i64);
                m(sa.checked_rem(sb)? as u64)
            }
            IrBinOp::And => a & b,
            IrBinOp::Or => a | b,
            IrBinOp::Xor => a ^ b,
            IrBinOp::Shl => {
                if b >= ty.bits as u64 {
                    0
                } else {
                    m(a << b)
                }
            }
            IrBinOp::LShr => {
                if b >= ty.bits as u64 {
                    0
                } else {
                    m(a >> b)
                }
            }
            IrBinOp::AShr => {
                let sa = ty.sext(a) as i64;
                let sh = (b as u32).min(63);
                m((sa >> sh) as u64)
            }
            IrBinOp::UAddSat => {
                let s = a.saturating_add(b);
                if s > ty.mask() {
                    ty.mask()
                } else {
                    s
                }
            }
            IrBinOp::USubSat => a.saturating_sub(b),
            IrBinOp::UMin => a.min(b),
            IrBinOp::UMax => a.max(b),
            IrBinOp::SMin => {
                if ty.sext(a) as i64 <= ty.sext(b) as i64 {
                    a
                } else {
                    b
                }
            }
            IrBinOp::SMax => {
                if ty.sext(a) as i64 >= ty.sext(b) as i64 {
                    a
                } else {
                    b
                }
            }
        })
    }

    /// True for `+ * & | ^ min max` — operand order irrelevant.
    pub fn commutative(self) -> bool {
        use IrBinOp::*;
        matches!(self, Add | Mul | And | Or | Xor | UAddSat | UMin | UMax | SMin | SMax)
    }

    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use IrBinOp::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            UDiv => "udiv",
            SDiv => "sdiv",
            URem => "urem",
            SRem => "srem",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            LShr => "lshr",
            AShr => "ashr",
            UAddSat => "uadd.sat",
            USubSat => "usub.sat",
            UMin => "umin",
            UMax => "umax",
            SMin => "smin",
            SMax => "smax",
        }
    }
}

/// Unary operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IrUnOp {
    /// Byte swap (width must be a multiple of 16).
    Bswap,
    /// Count leading zeros.
    Clz,
}

impl IrUnOp {
    /// Evaluates at width `ty`.
    pub fn eval(self, a: u64, ty: IrTy) -> u64 {
        match self {
            IrUnOp::Bswap => {
                let bytes = (ty.bits / 8).max(1) as usize;
                let le = a.to_le_bytes();
                let mut out = 0u64;
                for &b in le.iter().take(bytes) {
                    out = (out << 8) | b as u64;
                }
                ty.wrap(out)
            }
            IrUnOp::Clz => {
                let shifted = ty.wrap(a);
                if shifted == 0 {
                    ty.bits as u64
                } else {
                    (shifted.leading_zeros() - (64 - ty.bits as u32)) as u64
                }
            }
        }
    }

    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IrUnOp::Bswap => "bswap",
            IrUnOp::Clz => "ctlz",
        }
    }
}

/// Integer comparison predicates (LLVM `icmp`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IcmpPred {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// unsigned `<`
    Ult,
    /// unsigned `<=`
    Ule,
    /// unsigned `>`
    Ugt,
    /// unsigned `>=`
    Uge,
    /// signed `<`
    Slt,
    /// signed `<=`
    Sle,
    /// signed `>`
    Sgt,
    /// signed `>=`
    Sge,
}

impl IcmpPred {
    /// Evaluates the predicate at width `ty`.
    pub fn eval(self, a: u64, b: u64, ty: IrTy) -> bool {
        let (sa, sb) = (ty.sext(a) as i64, ty.sext(b) as i64);
        match self {
            IcmpPred::Eq => a == b,
            IcmpPred::Ne => a != b,
            IcmpPred::Ult => a < b,
            IcmpPred::Ule => a <= b,
            IcmpPred::Ugt => a > b,
            IcmpPred::Uge => a >= b,
            IcmpPred::Slt => sa < sb,
            IcmpPred::Sle => sa <= sb,
            IcmpPred::Sgt => sa > sb,
            IcmpPred::Sge => sa >= sb,
        }
    }

    /// The predicate with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> IcmpPred {
        match self {
            IcmpPred::Eq => IcmpPred::Eq,
            IcmpPred::Ne => IcmpPred::Ne,
            IcmpPred::Ult => IcmpPred::Ugt,
            IcmpPred::Ule => IcmpPred::Uge,
            IcmpPred::Ugt => IcmpPred::Ult,
            IcmpPred::Uge => IcmpPred::Ule,
            IcmpPred::Slt => IcmpPred::Sgt,
            IcmpPred::Sle => IcmpPred::Sge,
            IcmpPred::Sgt => IcmpPred::Slt,
            IcmpPred::Sge => IcmpPred::Sle,
        }
    }

    /// Logical negation (`!(a < b)` ⇔ `a >= b`).
    pub fn inverted(self) -> IcmpPred {
        match self {
            IcmpPred::Eq => IcmpPred::Ne,
            IcmpPred::Ne => IcmpPred::Eq,
            IcmpPred::Ult => IcmpPred::Uge,
            IcmpPred::Ule => IcmpPred::Ugt,
            IcmpPred::Ugt => IcmpPred::Ule,
            IcmpPred::Uge => IcmpPred::Ult,
            IcmpPred::Slt => IcmpPred::Sge,
            IcmpPred::Sle => IcmpPred::Sgt,
            IcmpPred::Sgt => IcmpPred::Sle,
            IcmpPred::Sge => IcmpPred::Slt,
        }
    }

    /// True for predicates with dynamic-operand forms Tofino ALUs cannot
    /// evaluate directly (§VI-B rewrites them to `sub` + MSB check).
    pub fn needs_sub_msb_rewrite(self) -> bool {
        !matches!(self, IcmpPred::Eq | IcmpPred::Ne)
    }

    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IcmpPred::Eq => "eq",
            IcmpPred::Ne => "ne",
            IcmpPred::Ult => "ult",
            IcmpPred::Ule => "ule",
            IcmpPred::Ugt => "ugt",
            IcmpPred::Uge => "uge",
            IcmpPred::Slt => "slt",
            IcmpPred::Sle => "sle",
            IcmpPred::Sgt => "sgt",
            IcmpPred::Sge => "sge",
        }
    }
}

/// Cast kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CastKind {
    /// Zero extension.
    Zext,
    /// Sign extension.
    Sext,
    /// Truncation.
    Trunc,
}

impl CastKind {
    /// Evaluates the cast from `from` width to `to` width.
    pub fn eval(self, v: u64, from: IrTy, to: IrTy) -> u64 {
        match self {
            CastKind::Zext => from.wrap(v),
            CastKind::Sext => to.wrap(from.sext(v)),
            CastKind::Trunc => to.wrap(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_and_wrap() {
        assert_eq!(IrTy::I8.mask(), 0xFF);
        assert_eq!(IrTy::I64.mask(), u64::MAX);
        assert_eq!(IrTy::I16.wrap(0x1_2345), 0x2345);
        assert_eq!(IrTy::I1.wrap(3), 1);
    }

    #[test]
    fn sext() {
        assert_eq!(IrTy::I8.sext(0x80), 0xFFFF_FFFF_FFFF_FF80);
        assert_eq!(IrTy::I8.sext(0x7F), 0x7F);
    }

    #[test]
    fn binop_eval_semantics() {
        let t = IrTy::I8;
        assert_eq!(IrBinOp::Add.eval(250, 10, t), Some(4));
        assert_eq!(IrBinOp::UAddSat.eval(250, 10, t), Some(255));
        assert_eq!(IrBinOp::USubSat.eval(3, 10, t), Some(0));
        assert_eq!(IrBinOp::UDiv.eval(7, 0, t), None);
        assert_eq!(IrBinOp::SDiv.eval(t.wrap(-6i64 as u64), 2, t), Some(t.wrap(-3i64 as u64)));
        assert_eq!(IrBinOp::Shl.eval(1, 9, t), Some(0));
        assert_eq!(IrBinOp::LShr.eval(0x80, 7, t), Some(1));
        assert_eq!(IrBinOp::AShr.eval(0x80, 7, t), Some(0xFF));
        assert_eq!(IrBinOp::SMin.eval(0xFF, 1, t), Some(0xFF)); // -1 < 1
        assert_eq!(IrBinOp::UMin.eval(0xFF, 1, t), Some(1));
    }

    #[test]
    fn unop_eval() {
        assert_eq!(IrUnOp::Bswap.eval(0x1234, IrTy::I16), 0x3412);
        assert_eq!(IrUnOp::Bswap.eval(0x1234_5678, IrTy::I32), 0x7856_3412);
        assert_eq!(IrUnOp::Clz.eval(0, IrTy::I16), 16);
        assert_eq!(IrUnOp::Clz.eval(1, IrTy::I16), 15);
        assert_eq!(IrUnOp::Clz.eval(0x8000, IrTy::I16), 0);
    }

    #[test]
    fn icmp_eval_signed_vs_unsigned() {
        let t = IrTy::I8;
        assert!(IcmpPred::Ult.eval(1, 0xFF, t));
        assert!(!IcmpPred::Slt.eval(1, 0xFF, t)); // 1 < -1 is false
        assert!(IcmpPred::Sgt.eval(1, 0xFF, t));
    }

    #[test]
    fn icmp_swap_invert() {
        assert_eq!(IcmpPred::Ult.swapped(), IcmpPred::Ugt);
        assert_eq!(IcmpPred::Ult.inverted(), IcmpPred::Uge);
        assert_eq!(IcmpPred::Eq.swapped(), IcmpPred::Eq);
        for p in [IcmpPred::Ult, IcmpPred::Sge, IcmpPred::Eq] {
            // double inversion is identity
            assert_eq!(p.inverted().inverted(), p);
        }
    }

    #[test]
    fn cast_eval() {
        assert_eq!(CastKind::Zext.eval(0x80, IrTy::I8, IrTy::I32), 0x80);
        assert_eq!(CastKind::Sext.eval(0x80, IrTy::I8, IrTy::I32), 0xFFFF_FF80);
        assert_eq!(CastKind::Trunc.eval(0x1234, IrTy::I16, IrTy::I8), 0x34);
    }
}
