//! A hermetic, dependency-free stand-in for the `rand` crate.
//!
//! Provides the small API surface workspace code may reach for — `Rng`
//! (`gen`, `gen_range`), `SeedableRng`, `rngs::StdRng`, `thread_rng()` —
//! backed by SplitMix64. Deterministic per process unless seeded.

use std::ops::Range;

/// Sampleable primitive types.
pub trait Standard: Sized {
    /// Draws from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_bits(bits: u64) -> $t { bits as $t }
        }
    )*};
}

impl_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        bits as f64 / u64::MAX as f64
    }
}

/// Random number generator interface.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Uniform `u64` in `range`.
    fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.next_u64() % (range.end - range.start)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// RNG implementations.
pub mod rngs {
    /// The standard RNG (SplitMix64 here).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// A process-global generator (not actually thread-local; deterministic).
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x5DEE_CE66_D000_0001);
    rngs::StdRng { state: COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed) }
}

/// One-off uniform value.
pub fn random<T: Standard>() -> T {
    use Rng as _;
    thread_rng().gen()
}

/// Commonly imported names.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{random, thread_rng, Rng, SeedableRng};
}
