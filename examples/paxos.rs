//! In-network Paxos (P4xos, paper Fig. 11): client → leader → three
//! acceptors → learner → replica, with every kernel compiled from NetCL
//! and placed at its own device.
//!
//! ```text
//! cargo run --example paxos
//! ```

use netcl_apps::paxos::*;
use netcl_bmv2::Switch;
use netcl_net::{LinkSpec, NetworkBuilder, NodeId, Topology};

fn main() {
    let unit = netcl_apps::compile("paxos.ncl", &full_source());
    println!("compiled {} devices (leader, 3 acceptors, learner)", unit.devices.len());

    let mut topo = Topology::new();
    topo.link(NodeId::Host(1), NodeId::Device(LEADER_DEV), LinkSpec::default());
    for a in 0..NUM_ACCEPTORS {
        topo.link(
            NodeId::Device(LEADER_DEV),
            NodeId::Device(ACCEPTOR_DEV + a),
            LinkSpec::default(),
        );
        topo.link(
            NodeId::Device(ACCEPTOR_DEV + a),
            NodeId::Device(LEARNER_DEV),
            LinkSpec::default(),
        );
    }
    topo.link(NodeId::Device(LEARNER_DEV), NodeId::Host(2), LinkSpec::default());
    topo.multicast_group(
        ACCEPTOR_GROUP,
        (0..NUM_ACCEPTORS).map(|a| NodeId::Device(ACCEPTOR_DEV + a)).collect(),
    );

    let mut builder = NetworkBuilder::new(topo);
    for dev in &unit.devices {
        builder = builder.device(dev.device, Switch::new(dev.tna_p4.clone()), 600);
    }
    let mut net = builder.sink_host(1).sink_host(2).build();

    for p in 0..8u64 {
        let value = [p, p * 2, p * 3, 0, 0, 0, 0, 0xFF];
        net.send_from_host(1, p * 50_000, proposal(1, 2, 1, &value));
    }
    net.run(1_000_000);

    let mut delivered: Vec<(u64, Vec<u64>)> =
        net.host_received(2).iter().filter_map(|(_, b)| parse_delivery(b)).collect();
    delivered.sort();
    for (inst, val) in &delivered {
        println!("decided instance {inst}: value[0..3] = {:?}", &val[..3]);
    }
    assert_eq!(delivered.len(), 8, "all proposals decided exactly once");
    println!("consensus reached on all {} proposals", delivered.len());
}
