// AGG_dev1 — generated for Intel Tofino (TNA)
#include <core.p4>
#include <tna.p4>

header ncl_t {
    bit<16> src;
    bit<16> dst;
    bit<16> from;
    bit<16> to;
    bit<8> comp;
    bit<8> action;
    bit<16> target;
}

header arr_c1_a5_t {
    bit<32> value;
}

header args_c1_t {
    bit<8> a0_ver;
    bit<16> a1_bmp_idx;
    bit<16> a2_agg_idx;
    bit<16> a3_mask;
    bit<8> a4_exp;
}

parser IgParser(packet_in pkt, out headers_t hdr) {
    state start {
        pkt.extract(hdr.ncl);
        transition select(hdr.ncl.comp) {
            1: parse_c1;
            default: accept;
        }
    }
    state parse_c1 {
        pkt.extract(hdr.args_c1);
        pkt.extract(hdr.arr_c1_a5);
        transition accept;
    }
}

control Ig(inout headers_t hdr, inout metadata_t meta) {
    bit<16> egress_port;
    bit<16> k1_t393;
    bit<32> k1_t394;
    bit<1> k1_t395;
    bit<32> k1_t396;
    bit<32> k1_t397;
    bit<32> k1_t398;
    bit<16> k1_t399;
    bit<32> k1_t400;
    bit<16> k1_t401;
    bit<32> k1_t402;
    bit<16> k1_t403;
    bit<32> k1_t404;
    bit<1> k1_t405;
    bit<32> k1_t406;
    bit<1> k1_t407;
    bit<1> k1_t408;
    bit<1> k1_t409;
    bit<1> k1_t410;
    bit<1> k1_t411;
    bit<1> k1_t412;
    bit<1> k1_t413;
    bit<1> k1_t414;
    bit<1> k1_t415;
    bit<1> k1_t416;
    bit<1> k1_t417;
    bit<1> k1_t418;
    bit<1> k1_t419;
    bit<1> k1_t420;
    bit<1> k1_t421;
    bit<1> k1_t422;
    bit<1> k1_t423;
    bit<1> k1_t424;
    bit<1> k1_t425;
    bit<1> k1_t426;
    bit<1> k1_t427;
    bit<1> k1_t428;
    bit<1> k1_t429;
    bit<1> k1_t430;
    bit<1> k1_t431;
    bit<1> k1_t432;
    bit<1> k1_t433;
    bit<1> k1_t434;
    bit<1> k1_t435;
    bit<1> k1_t436;
    bit<1> k1_t437;
    bit<1> k1_t438;
    bit<1> k1_t439;
    bit<1> k1_t440;
    bit<1> k1_t441;
    bit<8> k1_t443;
    bit<8> k1_t476;
    bit<32> k1_t543;
    bit<1> k1_t544;
    bit<1> k1_t545;
    bit<16> k1_t546;
    bit<16> k1_t547;
    bit<16> k1_t548;
    bit<16> k1_t549;
    bit<8> k1_l0_ver;
    bit<16> k1_l1_bmp_idx;
    bit<16> k1_l2_agg_idx;
    bit<16> k1_l3_mask;
    bit<16> k1_l4_bitmap;
    bit<32> k1_l5_seen;
    bit<8> k1_l6_cnt;
    bit<16> k1_l7_bitmap_ph;
    bit<1> k1_rc38;
    bit<1> k1_rc39;
    bit<1> k1_rc40;
    bit<1> k1_rc41;
    bit<1> k1_rc42;
    bit<1> k1_rc43;
    bit<1> k1_rc44;
    bit<1> k1_rc45;
    bit<1> k1_rc46;
    bit<1> k1_rc47;
    bit<1> k1_rc48;
    bit<1> k1_rc49;
    bit<1> k1_rc50;
    bit<1> k1_rc51;
    bit<1> k1_rc52;
    bit<1> k1_rc53;
    bit<1> k1_rc54;
    bit<1> k1_rc55;
    bit<1> k1_rc56;
    bit<1> k1_rc57;
    bit<1> k1_rc58;
    bit<1> k1_rc59;
    bit<1> k1_rc60;
    bit<1> k1_rc61;
    bit<1> k1_rc62;
    bit<1> k1_rc63;
    bit<1> k1_rc64;
    bit<1> k1_rc65;
    bit<1> k1_rc66;
    bit<1> k1_rc67;
    bit<1> k1_rc68;
    bit<1> k1_rc69;
    bit<1> k1_rc70;
    bit<1> k1_rc71;
    Register<bit<8>, bit<32>>(32) Count;
    Register<bit<8>, bit<32>>(32) Exp;
    Register<bit<16>, bit<32>>(16) Bitmap__0;
    Register<bit<16>, bit<32>>(16) Bitmap__1;
    Register<bit<32>, bit<32>>(32) Agg__0;
    Register<bit<32>, bit<32>>(32) Agg__1;
    Register<bit<32>, bit<32>>(32) Agg__2;
    Register<bit<32>, bit<32>>(32) Agg__3;
    Register<bit<32>, bit<32>>(32) Agg__4;
    Register<bit<32>, bit<32>>(32) Agg__5;
    Register<bit<32>, bit<32>>(32) Agg__6;
    Register<bit<32>, bit<32>>(32) Agg__7;
    Register<bit<32>, bit<32>>(32) Agg__8;
    Register<bit<32>, bit<32>>(32) Agg__9;
    Register<bit<32>, bit<32>>(32) Agg__10;
    Register<bit<32>, bit<32>>(32) Agg__11;
    Register<bit<32>, bit<32>>(32) Agg__12;
    Register<bit<32>, bit<32>>(32) Agg__13;
    Register<bit<32>, bit<32>>(32) Agg__14;
    Register<bit<32>, bit<32>>(32) Agg__15;
    Register<bit<32>, bit<32>>(32) Agg__16;
    Register<bit<32>, bit<32>>(32) Agg__17;
    Register<bit<32>, bit<32>>(32) Agg__18;
    Register<bit<32>, bit<32>>(32) Agg__19;
    Register<bit<32>, bit<32>>(32) Agg__20;
    Register<bit<32>, bit<32>>(32) Agg__21;
    Register<bit<32>, bit<32>>(32) Agg__22;
    Register<bit<32>, bit<32>>(32) Agg__23;
    Register<bit<32>, bit<32>>(32) Agg__24;
    Register<bit<32>, bit<32>>(32) Agg__25;
    Register<bit<32>, bit<32>>(32) Agg__26;
    Register<bit<32>, bit<32>>(32) Agg__27;
    Register<bit<32>, bit<32>>(32) Agg__28;
    Register<bit<32>, bit<32>>(32) Agg__29;
    Register<bit<32>, bit<32>>(32) Agg__30;
    Register<bit<32>, bit<32>>(32) Agg__31;
    RegisterAction<bit<16>, bit<32>, bit<16>>(Bitmap__0) ra_Bitmap__0_0 = {
        void apply(inout bit<16> m, out bit<16> o) {
            o = m;
            m = m | meta.k1_t393;
        }
    };
    RegisterAction<bit<16>, bit<32>, bit<16>>(Bitmap__1) ra_Bitmap__1_1 = {
        void apply(inout bit<16> m, out bit<16> o) {
            o = m;
            m = m & meta.k1_t401;
        }
    };
    RegisterAction<bit<16>, bit<32>, bit<16>>(Bitmap__0) ra_Bitmap__0_2 = {
        void apply(inout bit<16> m, out bit<16> o) {
            o = m;
            m = m & meta.k1_t399;
        }
    };
    RegisterAction<bit<16>, bit<32>, bit<16>>(Bitmap__1) ra_Bitmap__1_3 = {
        void apply(inout bit<16> m, out bit<16> o) {
            o = m;
            m = m | meta.k1_t393;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(Count) ra_Count_4 = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            m = 8w5;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(Exp) ra_Exp_5 = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            m = hdr.args_c1.a4_exp;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__0) ra_Agg__0_6 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[0].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__1) ra_Agg__1_7 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[1].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__2) ra_Agg__2_8 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[2].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__3) ra_Agg__3_9 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[3].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__4) ra_Agg__4_10 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[4].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__5) ra_Agg__5_11 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[5].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__6) ra_Agg__6_12 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[6].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__7) ra_Agg__7_13 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[7].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__8) ra_Agg__8_14 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[8].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__9) ra_Agg__9_15 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[9].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__10) ra_Agg__10_16 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[10].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__11) ra_Agg__11_17 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[11].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__12) ra_Agg__12_18 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[12].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__13) ra_Agg__13_19 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[13].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__14) ra_Agg__14_20 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[14].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__15) ra_Agg__15_21 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[15].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__16) ra_Agg__16_22 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[16].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__17) ra_Agg__17_23 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[17].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__18) ra_Agg__18_24 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[18].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__19) ra_Agg__19_25 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[19].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__20) ra_Agg__20_26 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[20].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__21) ra_Agg__21_27 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[21].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__22) ra_Agg__22_28 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[22].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__23) ra_Agg__23_29 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[23].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__24) ra_Agg__24_30 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[24].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__25) ra_Agg__25_31 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[25].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__26) ra_Agg__26_32 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[26].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__27) ra_Agg__27_33 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[27].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__28) ra_Agg__28_34 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[28].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__29) ra_Agg__29_35 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[29].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__30) ra_Agg__30_36 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[30].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__31) ra_Agg__31_37 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[31].value;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(Count) ra_Count_38 = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            if ((meta.k1_rc38 == 1w1)) {
                m = m |-| 1;
            }
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(Exp) ra_Exp_39 = {
        void apply(inout bit<8> m, out bit<8> o) {
            if ((meta.k1_rc39 == 1w1)) {
                m = max(m, hdr.args_c1.a4_exp);
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__0) ra_Agg__0_40 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc40 == 1w1)) {
                m = m + hdr.arr_c1_a5[0].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__1) ra_Agg__1_41 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc41 == 1w1)) {
                m = m + hdr.arr_c1_a5[1].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__2) ra_Agg__2_42 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc42 == 1w1)) {
                m = m + hdr.arr_c1_a5[2].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__3) ra_Agg__3_43 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc43 == 1w1)) {
                m = m + hdr.arr_c1_a5[3].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__4) ra_Agg__4_44 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc44 == 1w1)) {
                m = m + hdr.arr_c1_a5[4].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__5) ra_Agg__5_45 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc45 == 1w1)) {
                m = m + hdr.arr_c1_a5[5].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__6) ra_Agg__6_46 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc46 == 1w1)) {
                m = m + hdr.arr_c1_a5[6].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__7) ra_Agg__7_47 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc47 == 1w1)) {
                m = m + hdr.arr_c1_a5[7].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__8) ra_Agg__8_48 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc48 == 1w1)) {
                m = m + hdr.arr_c1_a5[8].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__9) ra_Agg__9_49 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc49 == 1w1)) {
                m = m + hdr.arr_c1_a5[9].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__10) ra_Agg__10_50 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc50 == 1w1)) {
                m = m + hdr.arr_c1_a5[10].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__11) ra_Agg__11_51 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc51 == 1w1)) {
                m = m + hdr.arr_c1_a5[11].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__12) ra_Agg__12_52 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc52 == 1w1)) {
                m = m + hdr.arr_c1_a5[12].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__13) ra_Agg__13_53 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc53 == 1w1)) {
                m = m + hdr.arr_c1_a5[13].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__14) ra_Agg__14_54 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc54 == 1w1)) {
                m = m + hdr.arr_c1_a5[14].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__15) ra_Agg__15_55 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc55 == 1w1)) {
                m = m + hdr.arr_c1_a5[15].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__16) ra_Agg__16_56 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc56 == 1w1)) {
                m = m + hdr.arr_c1_a5[16].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__17) ra_Agg__17_57 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc57 == 1w1)) {
                m = m + hdr.arr_c1_a5[17].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__18) ra_Agg__18_58 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc58 == 1w1)) {
                m = m + hdr.arr_c1_a5[18].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__19) ra_Agg__19_59 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc59 == 1w1)) {
                m = m + hdr.arr_c1_a5[19].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__20) ra_Agg__20_60 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc60 == 1w1)) {
                m = m + hdr.arr_c1_a5[20].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__21) ra_Agg__21_61 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc61 == 1w1)) {
                m = m + hdr.arr_c1_a5[21].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__22) ra_Agg__22_62 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc62 == 1w1)) {
                m = m + hdr.arr_c1_a5[22].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__23) ra_Agg__23_63 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc63 == 1w1)) {
                m = m + hdr.arr_c1_a5[23].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__24) ra_Agg__24_64 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc64 == 1w1)) {
                m = m + hdr.arr_c1_a5[24].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__25) ra_Agg__25_65 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc65 == 1w1)) {
                m = m + hdr.arr_c1_a5[25].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__26) ra_Agg__26_66 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc66 == 1w1)) {
                m = m + hdr.arr_c1_a5[26].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__27) ra_Agg__27_67 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc67 == 1w1)) {
                m = m + hdr.arr_c1_a5[27].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__28) ra_Agg__28_68 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc68 == 1w1)) {
                m = m + hdr.arr_c1_a5[28].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__29) ra_Agg__29_69 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc69 == 1w1)) {
                m = m + hdr.arr_c1_a5[29].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__30) ra_Agg__30_70 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc70 == 1w1)) {
                m = m + hdr.arr_c1_a5[30].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg__31) ra_Agg__31_71 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.k1_rc71 == 1w1)) {
                m = m + hdr.arr_c1_a5[31].value;
            }
            o = m;
        }
    };
    action set_egress(bit<16> port) {
        meta.egress_port = port;
    }
    table l2_fwd {
        key = { hdr.ncl.dst : exact }
        actions = { set_egress; NoAction; }
        default_action = NoAction();
        size = 64;
    }
    apply {
        if ((hdr.ncl.isValid() && (hdr.ncl.to == 16w1))) {
            if ((hdr.ncl.comp == 8w1)) {
                meta.k1_t393 = hdr.args_c1.a3_mask;
                meta.k1_t394 = (bit<32>)(hdr.args_c1.a0_ver);
                meta.k1_t395 = (bit<1>)((meta.k1_t394 == 32w0));
                meta.k1_t396 = (bit<32>)(hdr.args_c1.a1_bmp_idx);
                meta.k1_t397 = (bit<32>)(meta.k1_t393);
                meta.k1_t398 = (meta.k1_t397 ^ 32w4294967295);
                meta.k1_t399 = (bit<16>)(meta.k1_t398);
                meta.k1_t400 = (meta.k1_t397 ^ 32w4294967295);
                meta.k1_t401 = (bit<16>)(meta.k1_t400);
                meta.k1_t402 = (bit<32>)(hdr.args_c1.a2_agg_idx);
                if ((meta.k1_t395 == 1w1)) {
                    meta.k1_t546 = ra_Bitmap__0_0.execute((bit<32>)(meta.k1_t396));
                    meta.k1_t547 = ra_Bitmap__1_1.execute((bit<32>)(meta.k1_t396));
                    meta.k1_l7_bitmap_ph = meta.k1_t546;
                } else {
                    meta.k1_t548 = ra_Bitmap__0_2.execute((bit<32>)(meta.k1_t396));
                    meta.k1_t549 = ra_Bitmap__1_3.execute((bit<32>)(meta.k1_t396));
                    meta.k1_l7_bitmap_ph = meta.k1_t549;
                }
                meta.k1_t403 = meta.k1_l7_bitmap_ph;
                meta.k1_t404 = (bit<32>)(meta.k1_t403);
                meta.k1_t405 = (bit<1>)((meta.k1_t404 == 32w0));
                meta.k1_t406 = (meta.k1_t404 & meta.k1_t397);
                meta.k1_t407 = (bit<1>)((meta.k1_t406 != 32w0));
                meta.k1_t408 = (meta.k1_t407 ^ 1w1);
                meta.k1_t409 = (meta.k1_t407 ^ 1w1);
                meta.k1_t410 = (meta.k1_t407 ^ 1w1);
                meta.k1_t411 = (meta.k1_t407 ^ 1w1);
                meta.k1_t412 = (meta.k1_t407 ^ 1w1);
                meta.k1_t413 = (meta.k1_t407 ^ 1w1);
                meta.k1_t414 = (meta.k1_t407 ^ 1w1);
                meta.k1_t415 = (meta.k1_t407 ^ 1w1);
                meta.k1_t416 = (meta.k1_t407 ^ 1w1);
                meta.k1_t417 = (meta.k1_t407 ^ 1w1);
                meta.k1_t418 = (meta.k1_t407 ^ 1w1);
                meta.k1_t419 = (meta.k1_t407 ^ 1w1);
                meta.k1_t420 = (meta.k1_t407 ^ 1w1);
                meta.k1_t421 = (meta.k1_t407 ^ 1w1);
                meta.k1_t422 = (meta.k1_t407 ^ 1w1);
                meta.k1_t423 = (meta.k1_t407 ^ 1w1);
                meta.k1_t424 = (meta.k1_t407 ^ 1w1);
                meta.k1_t425 = (meta.k1_t407 ^ 1w1);
                meta.k1_t426 = (meta.k1_t407 ^ 1w1);
                meta.k1_t427 = (meta.k1_t407 ^ 1w1);
                meta.k1_t428 = (meta.k1_t407 ^ 1w1);
                meta.k1_t429 = (meta.k1_t407 ^ 1w1);
                meta.k1_t430 = (meta.k1_t407 ^ 1w1);
                meta.k1_t431 = (meta.k1_t407 ^ 1w1);
                meta.k1_t432 = (meta.k1_t407 ^ 1w1);
                meta.k1_t433 = (meta.k1_t407 ^ 1w1);
                meta.k1_t434 = (meta.k1_t407 ^ 1w1);
                meta.k1_t435 = (meta.k1_t407 ^ 1w1);
                meta.k1_t436 = (meta.k1_t407 ^ 1w1);
                meta.k1_t437 = (meta.k1_t407 ^ 1w1);
                meta.k1_t438 = (meta.k1_t407 ^ 1w1);
                meta.k1_t439 = (meta.k1_t407 ^ 1w1);
                meta.k1_t440 = (meta.k1_t407 ^ 1w1);
                meta.k1_t441 = (meta.k1_t407 ^ 1w1);
                if ((meta.k1_t405 == 1w1)) {
                    ra_Count_4.execute((bit<32>)(meta.k1_t402));
                    meta.k1_t443 = ra_Exp_5.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__0_6.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__1_7.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__2_8.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__3_9.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__4_10.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__5_11.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__6_12.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__7_13.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__8_14.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__9_15.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__10_16.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__11_17.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__12_18.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__13_19.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__14_20.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__15_21.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__16_22.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__17_23.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__18_24.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__19_25.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__20_26.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__21_27.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__22_28.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__23_29.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__24_30.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__25_31.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__26_32.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__27_33.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__28_34.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__29_35.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__30_36.execute((bit<32>)(meta.k1_t402));
                    ra_Agg__31_37.execute((bit<32>)(meta.k1_t402));
                    hdr.ncl.action = 8w1;
                } else {
                    meta.k1_rc38 = (bit<1>)((meta.k1_t441 == 1w1));
                    meta.k1_t476 = ra_Count_38.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc39 = (bit<1>)((meta.k1_t408 == 1w1));
                    hdr.args_c1.a4_exp = ra_Exp_39.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc40 = (bit<1>)((meta.k1_t409 == 1w1));
                    hdr.arr_c1_a5[0].value = ra_Agg__0_40.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc41 = (bit<1>)((meta.k1_t410 == 1w1));
                    hdr.arr_c1_a5[1].value = ra_Agg__1_41.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc42 = (bit<1>)((meta.k1_t411 == 1w1));
                    hdr.arr_c1_a5[2].value = ra_Agg__2_42.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc43 = (bit<1>)((meta.k1_t412 == 1w1));
                    hdr.arr_c1_a5[3].value = ra_Agg__3_43.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc44 = (bit<1>)((meta.k1_t413 == 1w1));
                    hdr.arr_c1_a5[4].value = ra_Agg__4_44.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc45 = (bit<1>)((meta.k1_t414 == 1w1));
                    hdr.arr_c1_a5[5].value = ra_Agg__5_45.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc46 = (bit<1>)((meta.k1_t415 == 1w1));
                    hdr.arr_c1_a5[6].value = ra_Agg__6_46.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc47 = (bit<1>)((meta.k1_t416 == 1w1));
                    hdr.arr_c1_a5[7].value = ra_Agg__7_47.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc48 = (bit<1>)((meta.k1_t417 == 1w1));
                    hdr.arr_c1_a5[8].value = ra_Agg__8_48.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc49 = (bit<1>)((meta.k1_t418 == 1w1));
                    hdr.arr_c1_a5[9].value = ra_Agg__9_49.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc50 = (bit<1>)((meta.k1_t419 == 1w1));
                    hdr.arr_c1_a5[10].value = ra_Agg__10_50.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc51 = (bit<1>)((meta.k1_t420 == 1w1));
                    hdr.arr_c1_a5[11].value = ra_Agg__11_51.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc52 = (bit<1>)((meta.k1_t421 == 1w1));
                    hdr.arr_c1_a5[12].value = ra_Agg__12_52.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc53 = (bit<1>)((meta.k1_t422 == 1w1));
                    hdr.arr_c1_a5[13].value = ra_Agg__13_53.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc54 = (bit<1>)((meta.k1_t423 == 1w1));
                    hdr.arr_c1_a5[14].value = ra_Agg__14_54.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc55 = (bit<1>)((meta.k1_t424 == 1w1));
                    hdr.arr_c1_a5[15].value = ra_Agg__15_55.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc56 = (bit<1>)((meta.k1_t425 == 1w1));
                    hdr.arr_c1_a5[16].value = ra_Agg__16_56.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc57 = (bit<1>)((meta.k1_t426 == 1w1));
                    hdr.arr_c1_a5[17].value = ra_Agg__17_57.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc58 = (bit<1>)((meta.k1_t427 == 1w1));
                    hdr.arr_c1_a5[18].value = ra_Agg__18_58.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc59 = (bit<1>)((meta.k1_t428 == 1w1));
                    hdr.arr_c1_a5[19].value = ra_Agg__19_59.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc60 = (bit<1>)((meta.k1_t429 == 1w1));
                    hdr.arr_c1_a5[20].value = ra_Agg__20_60.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc61 = (bit<1>)((meta.k1_t430 == 1w1));
                    hdr.arr_c1_a5[21].value = ra_Agg__21_61.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc62 = (bit<1>)((meta.k1_t431 == 1w1));
                    hdr.arr_c1_a5[22].value = ra_Agg__22_62.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc63 = (bit<1>)((meta.k1_t432 == 1w1));
                    hdr.arr_c1_a5[23].value = ra_Agg__23_63.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc64 = (bit<1>)((meta.k1_t433 == 1w1));
                    hdr.arr_c1_a5[24].value = ra_Agg__24_64.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc65 = (bit<1>)((meta.k1_t434 == 1w1));
                    hdr.arr_c1_a5[25].value = ra_Agg__25_65.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc66 = (bit<1>)((meta.k1_t435 == 1w1));
                    hdr.arr_c1_a5[26].value = ra_Agg__26_66.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc67 = (bit<1>)((meta.k1_t436 == 1w1));
                    hdr.arr_c1_a5[27].value = ra_Agg__27_67.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc68 = (bit<1>)((meta.k1_t437 == 1w1));
                    hdr.arr_c1_a5[28].value = ra_Agg__28_68.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc69 = (bit<1>)((meta.k1_t438 == 1w1));
                    hdr.arr_c1_a5[29].value = ra_Agg__29_69.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc70 = (bit<1>)((meta.k1_t439 == 1w1));
                    hdr.arr_c1_a5[30].value = ra_Agg__30_70.execute((bit<32>)(meta.k1_t402));
                    meta.k1_rc71 = (bit<1>)((meta.k1_t440 == 1w1));
                    hdr.arr_c1_a5[31].value = ra_Agg__31_71.execute((bit<32>)(meta.k1_t402));
                    meta.k1_t543 = (bit<32>)(meta.k1_t476);
                    meta.k1_t544 = (bit<1>)((meta.k1_t543 == 32w1));
                    meta.k1_t545 = (bit<1>)((meta.k1_t543 == 32w0));
                    if ((meta.k1_t407 == 1w1)) {
                        if ((meta.k1_t545 == 1w1)) {
                            hdr.ncl.action = 8w5;
                        } else {
                            hdr.ncl.action = 8w1;
                        }
                    } else {
                        if ((meta.k1_t544 == 1w1)) {
                            hdr.ncl.action = 8w4;
                            hdr.ncl.target = (bit<16>)(16w42);
                        } else {
                            hdr.ncl.action = 8w1;
                        }
                    }
                }
            }
        }
        l2_fwd.apply();
    }
}

