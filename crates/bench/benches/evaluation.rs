//! Criterion benches for the time-sensitive evaluation rows:
//! per-application compile times (Table IV) and the end-to-end experiments
//! (Fig. 14), plus the bmv2 per-packet processing cost.

use criterion::{criterion_group, criterion_main, Criterion};
use netcl::{CompileOptions, Compiler};
use netcl_apps::{agg, cache, calc};

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("ncc_compile");
    g.sample_size(10);
    for app in netcl_apps::all_apps() {
        g.bench_function(app.name, |b| {
            b.iter(|| {
                Compiler::new(CompileOptions::default())
                    .compile(app.name, &app.netcl_source)
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_tofino_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("tofino_fit");
    g.sample_size(10);
    for app in netcl_apps::all_apps() {
        let unit =
            Compiler::new(CompileOptions::default()).compile(app.name, &app.netcl_source).unwrap();
        let p4 = unit.device(app.device).unwrap().tna_p4.clone();
        g.bench_function(app.name, |b| b.iter(|| netcl_tofino::fit(&p4).unwrap()));
    }
    g.finish();
}

fn bench_switch_packet(c: &mut Criterion) {
    // Per-packet bmv2 cost on the CALC program (the smallest kernel).
    let unit = Compiler::new(CompileOptions::default())
        .compile("calc.ncl", &calc::netcl_source())
        .unwrap();
    let mut sw = netcl_bmv2::Switch::new(unit.devices[0].tna_p4.clone());
    let req = calc::request(7, calc::OP_ADD, 3, 4);
    c.bench_function("bmv2_packet_calc", |b| b.iter(|| sw.process(&req).unwrap()));
}

fn bench_e2e_agg(c: &mut Criterion) {
    let cfg = agg::AggConfig { num_workers: 4, num_slots: 4, slot_size: 8 };
    let unit = Compiler::new(CompileOptions::default())
        .compile("agg.ncl", &agg::netcl_source(&cfg))
        .unwrap();
    let p4 = unit.devices[0].tna_p4.clone();
    let mut g = c.benchmark_group("e2e_agg");
    g.sample_size(10);
    g.bench_function("allreduce_16_chunks", |b| {
        b.iter(|| {
            let r = agg::run_allreduce(&p4, &cfg, 16, 600, 0.0);
            assert!(r.all_correct);
            r.duration_ns
        })
    });
    g.finish();
}

fn bench_e2e_cache(c: &mut Criterion) {
    let cfg = cache::CacheConfig { slots: 16, words: 4, threshold: 64, sketch_cols: 256 };
    let unit = Compiler::new(CompileOptions::default())
        .compile("cache.ncl", &cache::netcl_source(&cfg))
        .unwrap();
    let p4 = unit.devices[0].tna_p4.clone();
    let mm = netcl_runtime::managed::ManagedMemory::new(&unit.devices[0].tna_ir);
    let mut g = c.benchmark_group("e2e_cache");
    g.sample_size(10);
    g.bench_function("queries_half_cached", |b| {
        b.iter(|| {
            let mm = mm.clone();
            cache::run_cache_experiment(
                &p4,
                move |sw| {
                    for k in 0..4u64 {
                        let v = cache::server_value(&cfg, k);
                        cache::populate(&mm, sw, &cfg, k as u16, k, &v);
                    }
                },
                &cfg,
                8,
                16,
            )
            .mean_response_ns
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_compile,
    bench_tofino_fit,
    bench_switch_packet,
    bench_e2e_agg,
    bench_e2e_cache
);
criterion_main!(benches);
