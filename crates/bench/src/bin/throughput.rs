//! Packets/sec throughput of the bmv2 software switch: the compiled fast
//! path versus the tree-walking interpreter oracle, per application.
//!
//! Run `cargo run --release -p netcl-bench --bin throughput` to reproduce
//! `BENCH_switch.json` at the repository root. Pass `--smoke` for a
//! seconds-scale CI sanity run that prints results without writing the file.
//!
//! Each application processes a small rotating set of representative
//! packets through one long-lived `Switch`, reusing one packet and one
//! output buffer (`process_into`), so the measurement isolates per-packet
//! execution cost rather than allocation or setup.

use std::time::Instant;

use netcl_apps::{agg, cache, calc, paxos};
use netcl_bmv2::Switch;
use netcl_runtime::managed::ManagedMemory;
use netcl_runtime::message::{pack, Message};

struct BenchApp {
    name: &'static str,
    switch: Switch,
    packets: Vec<Vec<u8>>,
}

fn calc_app() -> BenchApp {
    let unit = netcl_apps::compile("calc.ncl", &calc::netcl_source());
    let switch = Switch::new(unit.devices[0].tna_p4.clone());
    let packets = vec![
        calc::request(7, calc::OP_ADD, 3, 4),
        calc::request(7, calc::OP_XOR, 0xAA, 0x55),
        calc::request(7, calc::OP_AND, 0xF0, 0x1F),
    ];
    BenchApp { name: "CALC", switch, packets }
}

fn agg_app() -> BenchApp {
    let cfg = agg::AggConfig::default();
    let unit = netcl_apps::compile("agg.ncl", &agg::netcl_source(&cfg));
    let switch = Switch::new(unit.devices[0].tna_p4.clone());
    let mut packets = Vec::new();
    for c in 0..4 {
        for w in 0..cfg.num_workers {
            packets.push(agg::chunk_packet(&cfg, w, c));
        }
    }
    BenchApp { name: "AGG", switch, packets }
}

fn cache_app() -> BenchApp {
    let cfg = cache::CacheConfig::default();
    let unit = netcl_apps::compile("cache.ncl", &cache::netcl_source(&cfg));
    let dev = &unit.devices[0];
    let mut switch = Switch::new(dev.tna_p4.clone());
    // Half the keys are cached so the workload exercises both the lookup
    // hit path and the miss path through the hot-key sketch.
    let mm = ManagedMemory::new(&dev.tna_ir);
    for k in 0..4u64 {
        let v = cache::server_value(&cfg, k);
        cache::populate(&mm, &mut switch, &cfg, k as u16, k, &v);
    }
    let packets = (0..8u64).map(|k| cache::request(&cfg, 1, 2, 1, k, None)).collect();
    BenchApp { name: "CACHE", switch, packets }
}

fn pacc_app() -> BenchApp {
    let unit = netcl_apps::compile("pacc.ncl", &paxos::acceptor_source());
    let dev = unit.device(paxos::ACCEPTOR_DEV).expect("acceptor device");
    let switch = Switch::new(dev.tna_p4.clone());
    let spec = paxos::spec();
    let value = [11u64, 22, 33, 44, 55, 66, 77, 88];
    let packets = (0..8u64)
        .map(|inst| {
            let m = Message::new(1, 2, 1, paxos::ACCEPTOR_DEV);
            pack(
                &m,
                &spec,
                &[
                    Some(&[paxos::T_PHASE2A]),
                    Some(&[inst]),
                    Some(&[1]),
                    Some(&[0]),
                    Some(&[0]),
                    Some(&value),
                ],
            )
            .expect("packs")
        })
        .collect();
    BenchApp { name: "PACC", switch, packets }
}

/// Processes `total` packets (cycling over the set) and returns packets/sec.
fn measure(sw: &mut Switch, packets: &[Vec<u8>], total: usize) -> f64 {
    let mut pkt = sw.new_packet();
    let mut out = Vec::new();
    // Warm up state, caches, and scratch buffers.
    for wire in packets {
        let _ = sw.process_into(wire, &mut pkt, &mut out);
    }
    let start = Instant::now();
    let mut done = 0usize;
    'outer: loop {
        for wire in packets {
            let _ = sw.process_into(wire, &mut pkt, &mut out);
            done += 1;
            if done >= total {
                break 'outer;
            }
        }
    }
    done as f64 / start.elapsed().as_secs_f64()
}

struct Row {
    name: &'static str,
    compiled_pps: f64,
    interpreted_pps: f64,
    /// Data-plane counters from the compiled measurement (warmup included),
    /// captured before the interpreter run so they describe the fast path.
    counters: netcl_bmv2::SwitchCounters,
    /// Per-table `(name, hits, misses)` for the same window.
    tables: Vec<(String, u64, u64)>,
}

fn main() {
    let mut smoke = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("error: unknown argument `{other}` (expected `--smoke`)");
                std::process::exit(2);
            }
        }
    }
    let (compiled_n, interp_n) = if smoke { (2_000, 200) } else { (400_000, 40_000) };

    let mut rows = Vec::new();
    for mut app in [calc_app(), agg_app(), cache_app(), pacc_app()] {
        app.switch.set_interpreted(false);
        app.switch.reset_counters();
        let compiled_pps = measure(&mut app.switch, &app.packets, compiled_n);
        let counters = app.switch.counters().clone();
        let tables: Vec<(String, u64, u64)> =
            app.switch.table_stats().map(|(n, h, m)| (n.to_string(), h, m)).collect();
        app.switch.set_interpreted(true);
        let interpreted_pps = measure(&mut app.switch, &app.packets, interp_n);
        println!(
            "{:<6} compiled {:>12.0} pps   interpreted {:>12.0} pps   speedup {:.2}x   \
             ({} pkts, {} hits, {} misses, {} reg-actions)",
            app.name,
            compiled_pps,
            interpreted_pps,
            compiled_pps / interpreted_pps,
            counters.packets,
            counters.total_hits(),
            counters.total_misses(),
            counters.reg_action_execs,
        );
        rows.push(Row { name: app.name, compiled_pps, interpreted_pps, counters, tables });
    }

    if smoke {
        println!("smoke run: not writing BENCH_switch.json");
        return;
    }
    let mut json = String::from("{\n  \"benchmark\": \"bmv2_throughput\",\n");
    json.push_str(&format!("  \"packets_per_measurement\": {compiled_n},\n"));
    json.push_str("  \"apps\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"app\": \"{}\", \"compiled_pps\": {:.0}, \"interpreted_pps\": {:.0}, \"speedup\": {:.2},\n",
            r.name,
            r.compiled_pps,
            r.interpreted_pps,
            r.compiled_pps / r.interpreted_pps,
        ));
        let c = &r.counters;
        json.push_str(&format!(
            "     \"breakdown\": {{\"packets\": {}, \"errors\": {}, \"table_hits\": {}, \
             \"table_misses\": {}, \"reg_action_execs\": {}, \"action_calls\": {}, \
             \"extern_calls\": {}, \"tables\": [",
            c.packets,
            c.errors,
            c.total_hits(),
            c.total_misses(),
            c.reg_action_execs,
            c.action_calls,
            c.extern_calls,
        ));
        for (j, (t, h, m)) in r.tables.iter().enumerate() {
            json.push_str(&format!(
                "{}{{\"table\": \"{t}\", \"hits\": {h}, \"misses\": {m}}}",
                if j > 0 { ", " } else { "" },
            ));
        }
        json.push_str(&format!("]}}}}{}\n", if i + 1 < rows.len() { "," } else { "" }));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_switch.json", &json).expect("write BENCH_switch.json");
    println!("wrote BENCH_switch.json");
}
