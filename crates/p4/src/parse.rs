//! Parser for the P4-16 subset this toolchain emits and consumes.
//!
//! `parse_program(print_program(p))` reproduces `p` up to layout — the
//! round-trip property is tested below and in the app baselines, which are
//! stored as `.p4` text files and parsed through here before execution on
//! the bmv2 model or allocation on the Tofino model.

use crate::ast::*;
use netcl_sema::builtins::{AtomicOp, AtomicRmw, HashKind};

/// Parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p4:{}: {}", self.line, self.message)
    }
}

/// Parses a P4 program from text.
pub fn parse_program(text: &str) -> Result<P4Program, ParseError> {
    let tokens = lex(text)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

// ---- lexer ---------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(u64),
    /// Width-tagged literal `16w5`.
    Wint(u32, u64),
    Punct(&'static str),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: u32,
}

const PUNCTS: &[&str] = &[
    "|+|", "|-|", "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "..", "(", ")",
    "{", "}", "[", "]", "<", ">", ";", ",", ".", ":", "=", "+", "-", "*", "/", "&", "|", "^", "~",
    "!", "@", "#",
];

fn lex(text: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 2).min(bytes.len());
            continue;
        }
        // Preprocessor-ish lines: `#include <...>` — skip whole line.
        if c == b'#' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut value: u64;
            if c == b'0' && matches!(bytes.get(i + 1), Some(b'x' | b'X')) {
                i += 2;
                value = 0;
                while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                    value = value * 16 + (bytes[i] as char).to_digit(16).unwrap() as u64;
                    i += 1;
                }
            } else {
                value = 0;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    value = value * 10 + (bytes[i] - b'0') as u64;
                    i += 1;
                }
                // Width-tagged literal `Ww V`.
                if i < bytes.len() && bytes[i] == b'w' {
                    i += 1;
                    let width = value as u32;
                    let mut v2 = 0u64;
                    if bytes.get(i) == Some(&b'0') && matches!(bytes.get(i + 1), Some(b'x' | b'X'))
                    {
                        i += 2;
                        while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                            v2 = v2 * 16 + (bytes[i] as char).to_digit(16).unwrap() as u64;
                            i += 1;
                        }
                    } else {
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            v2 = v2 * 10 + (bytes[i] - b'0') as u64;
                            i += 1;
                        }
                    }
                    out.push(Token { tok: Tok::Wint(width, v2), line });
                    continue;
                }
            }
            let _ = start;
            out.push(Token { tok: Tok::Int(value), line });
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(Token {
                tok: Tok::Ident(std::str::from_utf8(&bytes[start..i]).unwrap().to_string()),
                line,
            });
            continue;
        }
        let rest = &text[i..];
        let mut matched = false;
        for p in PUNCTS {
            if rest.starts_with(p) {
                out.push(Token { tok: Tok::Punct(p), line });
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(ParseError {
                line,
                message: format!("unexpected character `{}`", c as char),
            });
        }
    }
    Ok(out)
}

// ---- parser ----------------------------------------------------------------

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, n: usize) -> Option<&Tok> {
        self.tokens.get(self.pos + n).map(|t| &t.tok)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { line: self.line(), message: msg.into() })
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        // Split `>>` into two `>` when closing nested template argument
        // lists (`Register<bit<32>, bit<32>>`).
        if p == ">" && matches!(self.peek(), Some(Tok::Punct(">>"))) {
            self.tokens[self.pos].tok = Tok::Punct(">");
            return Ok(());
        }
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {:?}", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn expect_int(&mut self) -> Result<u64, ParseError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(v),
            Some(Tok::Wint(_, v)) => Ok(v),
            other => self.err(format!("expected integer, found {other:?}")),
        }
    }

    /// `bit<W>` — returns W.
    fn bit_type(&mut self) -> Result<u32, ParseError> {
        if !self.eat_kw("bit") {
            // `bool` is accepted as bit<1>.
            if self.eat_kw("bool") {
                return Ok(1);
            }
            return self.err("expected `bit<...>`");
        }
        self.expect_punct("<")?;
        let w = self.expect_int()? as u32;
        self.expect_punct(">")?;
        Ok(w)
    }

    /// Skips a balanced `( ... )` group (already past the opening paren).
    fn skip_parens(&mut self) -> Result<(), ParseError> {
        let mut depth = 1;
        while depth > 0 {
            match self.bump() {
                Some(Tok::Punct("(")) => depth += 1,
                Some(Tok::Punct(")")) => depth -= 1,
                Some(_) => {}
                None => return self.err("unbalanced parentheses"),
            }
        }
        Ok(())
    }

    fn program(&mut self) -> Result<P4Program, ParseError> {
        let mut p = P4Program { name: "parsed".into(), target: Target::Tna, ..Default::default() };
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Ident(kw) if kw == "header" => {
                    self.bump();
                    p.headers.push(self.header()?);
                }
                Tok::Ident(kw) if kw == "parser" => {
                    self.bump();
                    p.parser = Some(self.parser_def()?);
                }
                Tok::Ident(kw) if kw == "control" => {
                    self.bump();
                    p.controls.push(self.control()?);
                }
                Tok::Ident(kw) if kw == "struct" || kw == "typedef" => {
                    // struct defs are layout-only in our subset; skip body.
                    self.bump();
                    while !matches!(self.peek(), Some(Tok::Punct("{")) | None) {
                        self.bump();
                    }
                    self.skip_braces()?;
                }
                Tok::Ident(kw) if kw == "Pipeline" || kw == "Switch" || kw == "V1Switch" => {
                    // Instantiations at the end — consume to the `;`.
                    while !matches!(self.peek(), Some(Tok::Punct(";")) | None) {
                        self.bump();
                    }
                    self.eat_punct(";");
                }
                _ => return self.err(format!("unexpected top-level token {tok:?}")),
            }
        }
        Ok(p)
    }

    fn skip_braces(&mut self) -> Result<(), ParseError> {
        self.expect_punct("{")?;
        let mut depth = 1;
        while depth > 0 {
            match self.bump() {
                Some(Tok::Punct("{")) => depth += 1,
                Some(Tok::Punct("}")) => depth -= 1,
                Some(_) => {}
                None => return self.err("unbalanced braces"),
            }
        }
        Ok(())
    }

    fn header(&mut self) -> Result<HeaderDef, ParseError> {
        let name = self.expect_ident()?;
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        while !self.eat_punct("}") {
            let bits = self.bit_type()?;
            let fname = self.expect_ident()?;
            self.expect_punct(";")?;
            fields.push((fname, bits));
        }
        Ok(HeaderDef { name, fields, stack: 1 })
    }

    fn parser_def(&mut self) -> Result<ParserDef, ParseError> {
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        self.skip_parens()?;
        self.expect_punct("{")?;
        let mut states = Vec::new();
        while !self.eat_punct("}") {
            if !self.eat_kw("state") {
                return self.err("expected `state`");
            }
            let sname = self.expect_ident()?;
            self.expect_punct("{")?;
            let mut extracts = Vec::new();
            let mut transition = Transition::Accept;
            while !self.eat_punct("}") {
                if self.eat_kw("transition") {
                    if self.eat_kw("select") {
                        self.expect_punct("(")?;
                        let selector = self.expr()?;
                        self.expect_punct(")")?;
                        self.expect_punct("{")?;
                        let mut cases = Vec::new();
                        let mut default = "reject".to_string();
                        while !self.eat_punct("}") {
                            if self.eat_kw("default") {
                                self.expect_punct(":")?;
                                default = self.expect_ident()?;
                                self.expect_punct(";")?;
                            } else {
                                let v = self.expect_int()?;
                                self.expect_punct(":")?;
                                let target = self.expect_ident()?;
                                self.expect_punct(";")?;
                                cases.push((v, target));
                            }
                        }
                        transition = Transition::Select { selector, cases, default };
                    } else {
                        let target = self.expect_ident()?;
                        self.expect_punct(";")?;
                        transition = match target.as_str() {
                            "accept" => Transition::Accept,
                            "reject" => Transition::Reject,
                            other => Transition::Direct(other.to_string()),
                        };
                    }
                } else {
                    // `pkt.extract(hdr.x);`
                    let obj = self.expect_ident()?;
                    self.expect_punct(".")?;
                    let method = self.expect_ident()?;
                    if method != "extract" {
                        return self.err(format!("unsupported parser call `{obj}.{method}`"));
                    }
                    self.expect_punct("(")?;
                    let mut path = String::new();
                    loop {
                        match self.bump() {
                            Some(Tok::Ident(s)) => path.push_str(&s),
                            Some(Tok::Punct(".")) => path.push('.'),
                            Some(Tok::Punct(")")) => break,
                            other => return self.err(format!("bad extract path: {other:?}")),
                        }
                    }
                    self.expect_punct(";")?;
                    extracts.push(path);
                }
            }
            states.push(ParserState { name: sname, extracts, transition });
        }
        Ok(ParserDef { name, states })
    }

    fn control(&mut self) -> Result<ControlDef, ParseError> {
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        self.skip_parens()?;
        self.expect_punct("{")?;
        let mut c = ControlDef { name, ..Default::default() };
        while !self.eat_punct("}") {
            match self.peek() {
                Some(Tok::Ident(kw)) if kw == "bit" || kw == "bool" => {
                    let bits = self.bit_type()?;
                    let lname = self.expect_ident()?;
                    self.expect_punct(";")?;
                    c.locals.push((lname, bits));
                }
                Some(Tok::Ident(kw)) if kw == "Register" || kw == "register" => {
                    self.bump();
                    self.expect_punct("<")?;
                    let elem_bits = self.bit_type()?;
                    if self.eat_punct(",") {
                        let _idx = self.bit_type()?;
                    }
                    self.expect_punct(">")?;
                    self.expect_punct("(")?;
                    let size = self.expect_int()? as u32;
                    self.expect_punct(")")?;
                    let rname = self.expect_ident()?;
                    self.expect_punct(";")?;
                    c.registers.push(RegisterDef { name: rname, elem_bits, size });
                }
                Some(Tok::Ident(kw)) if kw == "RegisterAction" => {
                    self.bump();
                    let ra = self.register_action()?;
                    c.register_actions.push(ra);
                }
                Some(Tok::Ident(kw)) if kw == "Hash" => {
                    self.bump();
                    self.expect_punct("<")?;
                    let out_bits = self.bit_type()?;
                    self.expect_punct(">")?;
                    self.expect_punct("(")?;
                    // HashAlgorithm_t.CRC16
                    let _ns = self.expect_ident()?;
                    self.expect_punct(".")?;
                    let algo = match self.expect_ident()?.as_str() {
                        "CRC16" => HashKind::Crc16,
                        "CRC32" => HashKind::Crc32,
                        "XOR16" => HashKind::Xor16,
                        "IDENTITY" => HashKind::Identity,
                        other => return self.err(format!("unknown hash algorithm `{other}`")),
                    };
                    self.expect_punct(")")?;
                    let hname = self.expect_ident()?;
                    self.expect_punct(";")?;
                    c.hashes.push(HashDef { name: hname, algo, out_bits });
                }
                Some(Tok::Ident(kw)) if kw == "action" => {
                    self.bump();
                    let aname = self.expect_ident()?;
                    self.expect_punct("(")?;
                    let mut params = Vec::new();
                    while !self.eat_punct(")") {
                        let bits = self.bit_type()?;
                        let pname = self.expect_ident()?;
                        params.push((pname, bits));
                        self.eat_punct(",");
                    }
                    self.expect_punct("{")?;
                    let body = self.stmts_until_close()?;
                    c.actions.push(ActionDef { name: aname, params, body });
                }
                Some(Tok::Ident(kw)) if kw == "table" => {
                    self.bump();
                    c.tables.push(self.table()?);
                }
                Some(Tok::Ident(kw)) if kw == "apply" => {
                    self.bump();
                    self.expect_punct("{")?;
                    c.apply = self.stmts_until_close()?;
                }
                other => return self.err(format!("unexpected control member {other:?}")),
            }
        }
        Ok(c)
    }

    fn register_action(&mut self) -> Result<RegisterActionDef, ParseError> {
        self.expect_punct("<")?;
        // Type args; may be 2 or 3.
        let _ = self.bit_type()?;
        while self.eat_punct(",") {
            let _ = self.bit_type()?;
        }
        self.expect_punct(">")?;
        self.expect_punct("(")?;
        let register = self.expect_ident()?;
        self.expect_punct(")")?;
        let name = self.expect_ident()?;
        self.expect_punct("=")?;
        self.expect_punct("{")?;
        // void apply(inout bit<W> m, out bit<W> o) { ... }
        if !self.eat_kw("void") {
            return self.err("expected `void apply`");
        }
        if !self.eat_kw("apply") {
            return self.err("expected `apply`");
        }
        self.expect_punct("(")?;
        self.skip_parens()?;
        self.expect_punct("{")?;
        let body = self.stmts_until_close()?;
        self.expect_punct("}")?;
        self.expect_punct(";")?;
        let (op, cond, operands) = recover_salu(&body).ok_or_else(|| ParseError {
            line: self.line(),
            message: format!("unrecognized SALU microprogram in RegisterAction `{name}`"),
        })?;
        Ok(RegisterActionDef { name, register, op, cond, operands })
    }

    fn table(&mut self) -> Result<TableDef, ParseError> {
        let name = self.expect_ident()?;
        self.expect_punct("{")?;
        let mut t = TableDef {
            name,
            keys: vec![],
            actions: vec![],
            entries: vec![],
            default_action: "NoAction".into(),
            size: 1,
        };
        while !self.eat_punct("}") {
            if self.eat_kw("key") {
                self.expect_punct("=")?;
                self.expect_punct("{")?;
                while !self.eat_punct("}") {
                    let e = self.expr()?;
                    self.expect_punct(":")?;
                    let kind = match self.expect_ident()?.as_str() {
                        "exact" => MatchKind::Exact,
                        "range" => MatchKind::Range,
                        "ternary" => MatchKind::Ternary,
                        "lpm" => MatchKind::Lpm,
                        other => return self.err(format!("unknown match kind `{other}`")),
                    };
                    t.keys.push((e, kind));
                    self.eat_punct(";");
                }
                self.eat_punct(";");
            } else if self.eat_kw("actions") {
                self.expect_punct("=")?;
                self.expect_punct("{")?;
                while !self.eat_punct("}") {
                    let a = self.expect_ident()?;
                    if a != "NoAction" {
                        t.actions.push(a);
                    }
                    self.eat_punct(";");
                    self.eat_punct(",");
                }
                self.eat_punct(";");
            } else if self.eat_kw("default_action") {
                self.expect_punct("=")?;
                t.default_action = self.expect_ident()?;
                if self.eat_punct("(") {
                    self.skip_parens()?;
                }
                self.expect_punct(";")?;
            } else if self.eat_kw("const")
                || matches!(self.peek(), Some(Tok::Ident(k)) if k == "entries")
            {
                self.eat_kw("entries");
                self.expect_punct("=")?;
                self.expect_punct("{")?;
                while !self.eat_punct("}") {
                    t.entries.push(self.table_entry()?);
                }
                self.eat_punct(";");
            } else if self.eat_kw("size") {
                self.expect_punct("=")?;
                t.size = self.expect_int()? as u32;
                self.expect_punct(";")?;
            } else {
                return self.err(format!("unexpected table member {:?}", self.peek()));
            }
        }
        Ok(t)
    }

    fn table_entry(&mut self) -> Result<TableEntry, ParseError> {
        let mut keys = Vec::new();
        if self.eat_punct("(") {
            loop {
                keys.push(self.entry_key()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        } else {
            keys.push(self.entry_key()?);
        }
        self.expect_punct(":")?;
        let action = self.expect_ident()?;
        let mut args = Vec::new();
        if self.eat_punct("(") {
            while !self.eat_punct(")") {
                args.push(self.expect_int()?);
                self.eat_punct(",");
            }
        }
        self.expect_punct(";")?;
        Ok(TableEntry { keys, action, args })
    }

    fn entry_key(&mut self) -> Result<EntryKey, ParseError> {
        let lo = self.expect_int()?;
        if self.eat_punct("..") {
            let hi = self.expect_int()?;
            Ok(EntryKey::Range(lo, hi))
        } else {
            Ok(EntryKey::Value(lo))
        }
    }

    fn stmts_until_close(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct("{")?;
            let then = self.stmts_until_close()?;
            let els = if self.eat_kw("else") {
                if self.eat_kw("if") {
                    // `else if` — re-parse as nested if.
                    self.pos -= 1; // rewind the `if`
                    vec![self.stmt()?]
                } else {
                    self.expect_punct("{")?;
                    self.stmts_until_close()?
                }
            } else {
                vec![]
            };
            return Ok(Stmt::If { cond, then, els });
        }
        if self.eat_kw("exit") {
            self.expect_punct(";")?;
            return Ok(Stmt::Exit);
        }
        // `name();` / `func(args);` — bare call statements.
        if let (Some(Tok::Ident(_)), Some(Tok::Punct("("))) = (self.peek(), self.peek_at(1)) {
            let name = self.expect_ident()?;
            self.expect_punct("(")?;
            let mut args = Vec::new();
            while !self.eat_punct(")") {
                args.push(self.expr()?);
                self.eat_punct(",");
            }
            self.expect_punct(";")?;
            return Ok(if args.is_empty() {
                Stmt::CallAction(name)
            } else {
                Stmt::ExternCall { dst: None, func: name, args }
            });
        }
        // `table.apply();` / `hdr.x.setValid();` / assignment.
        let lhs = self.expr()?;
        if self.eat_punct(";") {
            // A bare expression statement: only valid for certain shapes.
            return match lhs {
                Expr::TableHit(t) | Expr::TableMiss(t) => Ok(Stmt::ApplyTable(t)),
                Expr::Field(segs) if segs.len() == 1 => Ok(Stmt::CallAction(segs[0].name.clone())),
                other => self.err(format!("expression `{other:?}` is not a statement")),
            };
        }
        self.expect_punct("=")?;
        // RHS: check for `.execute(` / `.get(` method forms.
        let save = self.pos;
        if let Ok(Some((obj, method, args))) = self.try_method_call() {
            self.expect_punct(";")?;
            return match method.as_str() {
                "execute" => Ok(Stmt::ExecuteRegisterAction {
                    dst: Some(lhs),
                    ra: obj,
                    index: args.into_iter().next().unwrap_or(Expr::val(0, 32)),
                }),
                "get" => Ok(Stmt::HashGet { dst: lhs, hash: obj, args }),
                other => self.err(format!("unknown method `{other}`")),
            };
        }
        self.pos = save;
        // `x = func(args);` extern call form.
        if let (Some(Tok::Ident(f)), Some(Tok::Punct("("))) = (self.peek(), self.peek_at(1)) {
            let func = f.clone();
            // Exclude table-hit expressions (`x = t.apply()...` never occurs).
            self.bump();
            self.expect_punct("(")?;
            let mut args = Vec::new();
            while !self.eat_punct(")") {
                args.push(self.expr()?);
                self.eat_punct(",");
            }
            self.expect_punct(";")?;
            return Ok(Stmt::ExternCall { dst: Some(lhs), func, args });
        }
        let rhs = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Assign(lhs, rhs))
    }

    /// Tries `ident.method({args})` / `ident.method(args)`; returns `None`
    /// (with position untouched by the caller) when the shape doesn't match.
    fn try_method_call(&mut self) -> Result<Option<(String, String, Vec<Expr>)>, ParseError> {
        let save = self.pos;
        let obj = match self.bump() {
            Some(Tok::Ident(s)) => s,
            _ => {
                self.pos = save;
                return Ok(None);
            }
        };
        if !self.eat_punct(".") {
            self.pos = save;
            return Ok(None);
        }
        let method = match self.bump() {
            Some(Tok::Ident(s)) if s == "execute" || s == "get" => s,
            _ => {
                self.pos = save;
                return Ok(None);
            }
        };
        self.expect_punct("(")?;
        let braced = self.eat_punct("{");
        let mut args = Vec::new();
        if braced {
            while !self.eat_punct("}") {
                args.push(self.expr()?);
                self.eat_punct(",");
            }
            self.expect_punct(")")?;
        } else if !self.eat_punct(")") {
            loop {
                args.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        Ok(Some((obj, method, args)))
    }

    // Expressions, precedence climbing.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Some(Tok::Punct("||")) => (P4BinOp::LOr, 1),
                Some(Tok::Punct("&&")) => (P4BinOp::LAnd, 2),
                Some(Tok::Punct("|")) => (P4BinOp::Or, 3),
                Some(Tok::Punct("^")) => (P4BinOp::Xor, 4),
                Some(Tok::Punct("&")) => (P4BinOp::And, 5),
                Some(Tok::Punct("==")) => (P4BinOp::Eq, 6),
                Some(Tok::Punct("!=")) => (P4BinOp::Ne, 6),
                Some(Tok::Punct("<")) => (P4BinOp::Lt, 7),
                Some(Tok::Punct("<=")) => (P4BinOp::Le, 7),
                Some(Tok::Punct(">")) => (P4BinOp::Gt, 7),
                Some(Tok::Punct(">=")) => (P4BinOp::Ge, 7),
                Some(Tok::Punct("<<")) => (P4BinOp::Shl, 8),
                Some(Tok::Punct(">>")) => (P4BinOp::Shr, 8),
                Some(Tok::Punct("+")) => (P4BinOp::Add, 9),
                Some(Tok::Punct("-")) => (P4BinOp::Sub, 9),
                Some(Tok::Punct("|+|")) => (P4BinOp::SatAdd, 9),
                Some(Tok::Punct("|-|")) => (P4BinOp::SatSub, 9),
                Some(Tok::Punct("*")) => (P4BinOp::Mul, 10),
                _ => return Ok(lhs),
            };
            if prec < min_prec {
                return Ok(lhs);
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("!") {
            let e = self.unary()?;
            // `!t.apply().hit` → TableMiss.
            if let Expr::TableHit(t) = e {
                return Ok(Expr::TableMiss(t));
            }
            return Ok(Expr::Not(Box::new(e)));
        }
        if self.eat_punct("~") {
            return Ok(Expr::BitNot(Box::new(self.unary()?)));
        }
        // Cast `(bit<w>)expr` vs parenthesized expr.
        if self.eat_punct("(") {
            if matches!(self.peek(), Some(Tok::Ident(k)) if k == "bit") {
                let bits = self.bit_type()?;
                self.expect_punct(")")?;
                return Ok(Expr::Cast(bits, Box::new(self.unary()?)));
            }
            let e = self.expr()?;
            self.expect_punct(")")?;
            return self.postfix(e);
        }
        let e = self.primary()?;
        self.postfix(e)
    }

    fn postfix(&mut self, mut e: Expr) -> Result<Expr, ParseError> {
        // Bit slice `[hi:lo]`.
        while self.eat_punct("[") {
            let hi = self.expect_int()? as u32;
            self.expect_punct(":")?;
            let lo = self.expect_int()? as u32;
            self.expect_punct("]")?;
            e = Expr::Slice(Box::new(e), hi, lo);
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::Const(v, 32)),
            Some(Tok::Wint(w, v)) => Ok(Expr::Const(v, w)),
            Some(Tok::Ident(s)) if s == "true" => Ok(Expr::Bool(true)),
            Some(Tok::Ident(s)) if s == "false" => Ok(Expr::Bool(false)),
            Some(Tok::Ident(first)) => {
                let mut segs = vec![self.seg(first)?];
                while matches!(self.peek(), Some(Tok::Punct(".")))
                    && matches!(self.peek_at(1), Some(Tok::Ident(_)))
                {
                    self.bump(); // .
                    let name = self.expect_ident()?;
                    // `t.apply().hit` / `.miss` / method calls.
                    if name == "apply" && matches!(self.peek(), Some(Tok::Punct("("))) {
                        self.bump();
                        self.expect_punct(")")?;
                        if self.eat_punct(".") {
                            let what = self.expect_ident()?;
                            return match what.as_str() {
                                "hit" => Ok(Expr::TableHit(segs[0].name.clone())),
                                "miss" => Ok(Expr::TableMiss(segs[0].name.clone())),
                                other => self.err(format!("unknown apply result `{other}`")),
                            };
                        }
                        return Ok(Expr::TableHit(segs[0].name.clone()));
                    }
                    if (name == "setValid" || name == "setInvalid" || name == "isValid")
                        && matches!(self.peek(), Some(Tok::Punct("(")))
                    {
                        self.bump();
                        self.expect_punct(")")?;
                        // Validity tests appear in conditions; model as a
                        // field read of a validity pseudo-field.
                        segs.push(PathSeg::new(&format!("${name}")));
                        return Ok(Expr::Field(segs));
                    }
                    segs.push(self.seg(name)?);
                }
                Ok(Expr::Field(segs))
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }

    /// A path segment with optional `[index]` (only constant stack indices
    /// appear in the printed subset; slices are handled in `postfix`, so a
    /// `[a:b]` here is left for postfix by not consuming).
    fn seg(&mut self, name: String) -> Result<PathSeg, ParseError> {
        if matches!(self.peek(), Some(Tok::Punct("[")))
            && matches!(self.peek_at(1), Some(Tok::Int(_) | Tok::Wint(..)))
            && matches!(self.peek_at(2), Some(Tok::Punct("]")))
        {
            self.bump();
            let idx = self.expect_int()? as u32;
            self.expect_punct("]")?;
            Ok(PathSeg { name, index: Some(idx) })
        } else {
            Ok(PathSeg { name, index: None })
        }
    }
}

/// Reconstructs the structured SALU descriptor from a parsed apply body —
/// the inverse of `print::salu_body`.
fn recover_salu(body: &[Stmt]) -> Option<(AtomicOp, Option<Expr>, Vec<Expr>)> {
    let is_out = |e: &Expr| matches!(e, Expr::Field(s) if s.len() == 1 && s[0].name == "o");
    let is_mem = |e: &Expr| matches!(e, Expr::Field(s) if s.len() == 1 && s[0].name == "m");
    // Recognize an RMW statement `m = ...`, returning (rmw, operands).
    let rmw_of = |s: &Stmt| -> Option<(AtomicRmw, Vec<Expr>)> {
        let Stmt::Assign(lhs, rhs) = s else { return None };
        if !is_mem(lhs) {
            return None;
        }
        match rhs {
            Expr::Bin(op, a, b) if is_mem(a) => {
                let rmw = match op {
                    P4BinOp::Add => AtomicRmw::Add,
                    P4BinOp::Sub => AtomicRmw::Sub,
                    P4BinOp::SatAdd => AtomicRmw::SAdd,
                    P4BinOp::SatSub => AtomicRmw::SSub,
                    P4BinOp::Or => AtomicRmw::Or,
                    P4BinOp::And => AtomicRmw::And,
                    P4BinOp::Xor => AtomicRmw::Xor,
                    _ => return None,
                };
                // `m + 1` with value one ⇒ inc; `m |-| 1` ⇒ dec.
                if let Expr::Const(1, _) = **b {
                    if rmw == AtomicRmw::Add {
                        return Some((AtomicRmw::Inc, vec![]));
                    }
                    if rmw == AtomicRmw::SSub {
                        return Some((AtomicRmw::Dec, vec![]));
                    }
                }
                Some((rmw, vec![(**b).clone()]))
            }
            other if !is_mem(other) => Some((AtomicRmw::Swap, vec![other.clone()])),
            _ => None,
        }
    };
    let out_stmt =
        |s: &Stmt| -> bool { matches!(s, Stmt::Assign(lhs, rhs) if is_out(lhs) && is_mem(rhs)) };

    match body {
        // o = m;                       → atomic_read
        [s] if out_stmt(s) => {
            Some((AtomicOp { rmw: AtomicRmw::Read, cond: false, ret_new: false }, None, vec![]))
        }
        // if (c) { m = RMW; } o = m;   → conditional, new-returning
        [Stmt::If { cond, then, els }, s2] if els.is_empty() && out_stmt(s2) => {
            let (rmw, ops) = rmw_of(then.first()?)?;
            Some((AtomicOp { rmw, cond: true, ret_new: true }, Some(cond.clone()), ops))
        }
        // if (m == e) { m = d; } with `o = m` first → compare-and-swap
        [s1, Stmt::If { cond: Expr::Bin(P4BinOp::Eq, a, b), then, els }]
            if els.is_empty() && out_stmt(s1) && is_mem(a) =>
        {
            let Stmt::Assign(lhs, rhs) = then.first()? else { return None };
            if !is_mem(lhs) {
                return None;
            }
            Some((
                AtomicOp { rmw: AtomicRmw::Cas, cond: false, ret_new: false },
                None,
                vec![(**b).clone(), rhs.clone()],
            ))
        }
        // o = m; if (c) { m = RMW; }   → conditional, old-returning
        [s1, Stmt::If { cond, then, els }] if els.is_empty() && out_stmt(s1) => {
            let (rmw, ops) = rmw_of(then.first()?)?;
            Some((AtomicOp { rmw, cond: true, ret_new: false }, Some(cond.clone()), ops))
        }
        // o = m; m = RMW;              → old-returning unconditional
        [s1, s2] if out_stmt(s1) => {
            let (rmw, ops) = rmw_of(s2)?;
            Some((AtomicOp { rmw, cond: false, ret_new: false }, None, ops))
        }
        // m = RMW; o = m;              → new-returning unconditional
        [s1, s2] if out_stmt(s2) => {
            let (rmw, ops) = rmw_of(s1)?;
            Some((AtomicOp { rmw, cond: false, ret_new: true }, None, ops))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::print_program;

    #[test]
    fn parses_header() {
        let p = parse_program("header cache_t { bit<8> Op; bit<32> K; }").unwrap();
        assert_eq!(p.headers.len(), 1);
        assert_eq!(p.headers[0].fields, vec![("Op".into(), 8), ("K".into(), 32)]);
    }

    #[test]
    fn parses_control_with_register_action() {
        let src = r#"
control C(inout headers_t hdr, inout metadata_t meta) {
    bit<32> c0;
    Register<bit<32>, bit<32>>(65536) Cnt0;
    RegisterAction<bit<32>, bit<32>, bit<32>>(Cnt0) Incr0 = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = m |+| 32w1;
            o = m;
        }
    };
    Hash<bit<16>>(HashAlgorithm_t.CRC16) Hash0;
    apply {
        meta.h0 = Hash0.get({hdr.ncl.K});
        meta.c0 = Incr0.execute(meta.h0);
    }
}
"#;
        let p = parse_program(src).unwrap();
        let c = &p.controls[0];
        assert_eq!(c.registers[0], RegisterDef { name: "Cnt0".into(), elem_bits: 32, size: 65536 });
        let ra = &c.register_actions[0];
        assert_eq!(ra.op.name(), "atomic_sadd_new");
        assert_eq!(c.hashes[0].algo, HashKind::Crc16);
        assert_eq!(c.apply.len(), 2);
        assert!(matches!(&c.apply[0], Stmt::HashGet { hash, .. } if hash == "Hash0"));
        assert!(matches!(&c.apply[1], Stmt::ExecuteRegisterAction { ra, .. } if ra == "Incr0"));
    }

    #[test]
    fn parses_table_with_entries() {
        let src = r#"
control C(inout headers_t hdr) {
    action CacheHit(bit<32> v) { hdr.cache.V = v; }
    table cache {
        key = { hdr.cache.K : exact }
        actions = { CacheHit; NoAction; }
        default_action = NoAction();
        const entries = {
            1 : CacheHit(42);
            2 : CacheHit(43);
        }
        size = 4;
    }
    apply { if (!cache.apply().hit) { hdr.cache.Hit = 8w0; } }
}
"#;
        let p = parse_program(src).unwrap();
        let t = &p.controls[0].tables[0];
        assert_eq!(t.entries.len(), 2);
        assert_eq!(t.entries[0].keys, vec![EntryKey::Value(1)]);
        assert_eq!(t.entries[0].args, vec![42]);
        match &p.controls[0].apply[0] {
            Stmt::If { cond: Expr::TableMiss(t), .. } => assert_eq!(t, "cache"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_parser_fsm() {
        let src = r#"
parser P(packet_in pkt, out headers_t hdr) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.ty) {
            2048: parse_ip;
            default: accept;
        }
    }
    state parse_ip {
        pkt.extract(hdr.ip);
        transition accept;
    }
}
"#;
        let p = parse_program(src).unwrap();
        let pd = p.parser.unwrap();
        assert_eq!(pd.states.len(), 2);
        assert_eq!(pd.states[0].extracts, vec!["hdr.eth".to_string()]);
        match &pd.states[0].transition {
            Transition::Select { cases, default, .. } => {
                assert_eq!(cases[0], (2048, "parse_ip".into()));
                assert_eq!(default, "accept");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn salu_recovery_all_variants() {
        for (body, expect) in [
            ("o = m;", "atomic_read"),
            ("o = m; m = m + meta.v;", "atomic_add"),
            ("m = m | meta.v; o = m;", "atomic_or_new"),
            ("o = m; m = m |-| 16w1;", "atomic_dec"),
            ("if (meta.c) { m = m |+| meta.v; } o = m;", "atomic_cond_sadd_new"),
            ("o = m; if (meta.c) { m = m & meta.v; }", "atomic_cond_and"),
            ("o = m; m = meta.v;", "atomic_swap"),
        ] {
            let src = format!(
                "control C(inout h x) {{ Register<bit<16>, bit<32>>(4) R;\n\
                 RegisterAction<bit<16>, bit<32>, bit<16>>(R) ra = {{\n\
                 void apply(inout bit<16> m, out bit<16> o) {{ {body} }}\n\
                 }};\napply {{ }} }}"
            );
            let p = parse_program(&src).unwrap_or_else(|e| panic!("{body}: {e}"));
            assert_eq!(p.controls[0].register_actions[0].op.name(), expect, "{body}");
        }
    }

    #[test]
    fn roundtrip_print_parse_print() {
        use crate::ast::*;
        use netcl_sema::builtins::AtomicOp;
        let prog = P4Program {
            name: "rt".into(),
            target: Target::Tna,
            headers: vec![HeaderDef {
                name: "ncl_t".into(),
                fields: vec![("src".into(), 16), ("dst".into(), 16)],
                stack: 1,
            }],
            parser: Some(ParserDef {
                name: "IgP".into(),
                states: vec![ParserState {
                    name: "start".into(),
                    extracts: vec!["hdr.ncl".into()],
                    transition: Transition::Accept,
                }],
            }),
            controls: vec![ControlDef {
                name: "Ig".into(),
                locals: vec![("t0".into(), 16)],
                registers: vec![RegisterDef { name: "R".into(), elem_bits: 16, size: 128 }],
                register_actions: vec![RegisterActionDef {
                    name: "bump".into(),
                    register: "R".into(),
                    op: AtomicOp { rmw: AtomicRmw::Or, cond: true, ret_new: true },
                    cond: Some(Expr::Bin(
                        P4BinOp::Ne,
                        Box::new(Expr::field(&["meta", "c"])),
                        Box::new(Expr::val(0, 16)),
                    )),
                    operands: vec![Expr::field(&["meta", "mask"])],
                }],
                hashes: vec![],
                actions: vec![ActionDef {
                    name: "set".into(),
                    params: vec![("v".into(), 16)],
                    body: vec![Stmt::Assign(
                        Expr::field(&["hdr", "ncl", "dst"]),
                        Expr::field(&["v"]),
                    )],
                }],
                tables: vec![TableDef {
                    name: "fwd".into(),
                    keys: vec![(Expr::field(&["hdr", "ncl", "dst"]), MatchKind::Exact)],
                    actions: vec!["set".into()],
                    entries: vec![TableEntry {
                        keys: vec![EntryKey::Value(7)],
                        action: "set".into(),
                        args: vec![9],
                    }],
                    default_action: "NoAction".into(),
                    size: 16,
                }],
                apply: vec![
                    Stmt::ApplyTable("fwd".into()),
                    Stmt::If {
                        cond: Expr::Bin(
                            P4BinOp::Eq,
                            Box::new(Expr::field(&["hdr", "ncl", "src"])),
                            Box::new(Expr::val(3, 16)),
                        ),
                        then: vec![Stmt::Assign(Expr::field(&["meta", "t0"]), Expr::val(1, 16))],
                        els: vec![],
                    },
                ],
            }],
        };
        let text1 = print_program(&prog);
        let parsed = parse_program(&text1).unwrap_or_else(|e| panic!("{e}\n{text1}"));
        let text2 = print_program(&parsed);
        // Compare modulo the program-name comment line.
        let body1: Vec<&str> = text1.lines().skip(1).collect();
        let body2: Vec<&str> = text2.lines().skip(1).collect();
        assert_eq!(body1, body2);
    }

    #[test]
    fn error_carries_line() {
        let err = parse_program("header X {\n bit<8> a;\n $$$ }").unwrap_err();
        assert_eq!(err.line, 3);
    }
}
