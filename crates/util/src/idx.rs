//! Typed index handles and index-keyed vectors.
//!
//! The IR, the P4 AST, and the Tofino allocator all use arena-style storage
//! where entities are referenced by dense integer indices. [`define_index!`](crate::define_index)
//! generates a newtype per entity kind so that a block index can never be
//! confused with an instruction index, and [`IndexVec`] provides a vector
//! indexed by such a newtype.

use std::marker::PhantomData;

/// Trait implemented by index newtypes created with [`define_index!`](crate::define_index).
pub trait Idx: Copy + Eq + std::hash::Hash + std::fmt::Debug + 'static {
    /// Constructs from a raw `usize`.
    fn from_usize(i: usize) -> Self;
    /// The raw index value.
    fn index(self) -> usize;
}

/// Defines a `Copy` index newtype implementing [`Idx`].
///
/// ```
/// netcl_util::define_index!(BlockId, "bb");
/// let b = BlockId::from_usize(3);
/// assert_eq!(format!("{b:?}"), "bb3");
/// # use netcl_util::idx::Idx;
/// assert_eq!(b.index(), 3);
/// ```
#[macro_export]
macro_rules! define_index {
    ($name:ident, $prefix:expr) => {
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $crate::idx::Idx for $name {
            fn from_usize(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                $name(i as u32)
            }
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

/// A vector indexed by a typed index instead of `usize`.
#[derive(Clone, PartialEq, Eq)]
pub struct IndexVec<I: Idx, T> {
    raw: Vec<T>,
    _marker: PhantomData<I>,
}

impl<I: Idx, T: std::fmt::Debug> std::fmt::Debug for IndexVec<I, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.raw.iter()).finish()
    }
}

impl<I: Idx, T> Default for IndexVec<I, T> {
    fn default() -> Self {
        IndexVec { raw: Vec::new(), _marker: PhantomData }
    }
}

impl<I: Idx, T> IndexVec<I, T> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an element, returning its typed index.
    pub fn push(&mut self, value: T) -> I {
        let idx = I::from_usize(self.raw.len());
        self.raw.push(value);
        idx
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The index the *next* push would return.
    pub fn next_index(&self) -> I {
        I::from_usize(self.raw.len())
    }

    /// Iterates over `(index, &element)` pairs.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (I, &T)> {
        self.raw.iter().enumerate().map(|(i, t)| (I::from_usize(i), t))
    }

    /// Iterates over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    /// Iterates mutably over elements.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.raw.iter_mut()
    }

    /// Iterates over all valid indices.
    pub fn indices(&self) -> impl Iterator<Item = I> + 'static {
        (0..self.raw.len()).map(I::from_usize)
    }

    /// Borrow element if in range.
    pub fn get(&self, i: I) -> Option<&T> {
        self.raw.get(i.index())
    }

    /// Borrow element mutably if in range.
    pub fn get_mut(&mut self, i: I) -> Option<&mut T> {
        self.raw.get_mut(i.index())
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &[T] {
        &self.raw
    }
}

impl<I: Idx, T> std::ops::Index<I> for IndexVec<I, T> {
    type Output = T;
    fn index(&self, i: I) -> &T {
        &self.raw[i.index()]
    }
}

impl<I: Idx, T> std::ops::IndexMut<I> for IndexVec<I, T> {
    fn index_mut(&mut self, i: I) -> &mut T {
        &mut self.raw[i.index()]
    }
}

impl<I: Idx, T> FromIterator<T> for IndexVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        IndexVec { raw: iter.into_iter().collect(), _marker: PhantomData }
    }
}

impl<'a, I: Idx, T> IntoIterator for &'a IndexVec<I, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.raw.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    define_index!(TestId, "t");

    #[test]
    fn push_returns_sequential_indices() {
        let mut v: IndexVec<TestId, &str> = IndexVec::new();
        let a = v.push("a");
        let b = v.push("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(v[a], "a");
        assert_eq!(v[b], "b");
    }

    #[test]
    fn next_index_predicts_push() {
        let mut v: IndexVec<TestId, u32> = IndexVec::new();
        let predicted = v.next_index();
        let actual = v.push(7);
        assert_eq!(predicted, actual);
    }

    #[test]
    fn iter_enumerated_pairs() {
        let v: IndexVec<TestId, u32> = [10, 20].into_iter().collect();
        let pairs: Vec<_> = v.iter_enumerated().map(|(i, &x)| (i.index(), x)).collect();
        assert_eq!(pairs, vec![(0, 10), (1, 20)]);
    }

    #[test]
    fn debug_format_uses_prefix() {
        assert_eq!(format!("{:?}", TestId(5)), "t5");
    }
}
