// CACHE_dev1 — generated for Intel Tofino (TNA)
#include <core.p4>
#include <tna.p4>

header ncl_t {
    bit<16> src;
    bit<16> dst;
    bit<16> from;
    bit<16> to;
    bit<8> comp;
    bit<8> action;
    bit<16> target;
}

header arr_c1_a4_t {
    bit<32> value;
}

header args_c1_t {
    bit<8> a0_op;
    bit<64> a1_k;
    bit<8> a2_hit;
    bit<32> a3_hot;
}

header k1_loc7_t {
    bit<32> value;
}

parser IgParser(packet_in pkt, out headers_t hdr) {
    state start {
        pkt.extract(hdr.ncl);
        transition select(hdr.ncl.comp) {
            1: parse_c1;
            default: accept;
        }
    }
    state parse_c1 {
        pkt.extract(hdr.args_c1);
        pkt.extract(hdr.arr_c1_a4);
        transition accept;
    }
}

control Ig(inout headers_t hdr, inout metadata_t meta) {
    bit<16> egress_port;
    bit<1> k1_t203;
    bit<16> k1_t204;
    bit<8> k1_t206;
    bit<32> k1_t207;
    bit<1> k1_t208;
    bit<1> k1_t209;
    bit<1> k1_t210;
    bit<1> k1_t211;
    bit<32> k1_t212;
    bit<16> k1_t213;
    bit<32> k1_t214;
    bit<32> k1_t215;
    bit<16> k1_t216;
    bit<32> k1_t217;
    bit<32> k1_t218;
    bit<16> k1_t219;
    bit<32> k1_t220;
    bit<32> k1_t221;
    bit<32> k1_t222;
    bit<32> k1_t223;
    bit<32> k1_t224;
    bit<32> k1_t225;
    bit<16> k1_t226;
    bit<32> k1_t227;
    bit<16> k1_t228;
    bit<8> k1_t229;
    bit<1> k1_t230;
    bit<32> k1_t231;
    bit<32> k1_t232;
    bit<1> k1_t233;
    bit<32> k1_t234;
    bit<32> k1_t235;
    bit<1> k1_t236;
    bit<32> k1_t237;
    bit<32> k1_t238;
    bit<1> k1_t239;
    bit<32> k1_t240;
    bit<32> k1_t241;
    bit<1> k1_t242;
    bit<32> k1_t243;
    bit<32> k1_t244;
    bit<1> k1_t245;
    bit<32> k1_t246;
    bit<32> k1_t247;
    bit<1> k1_t248;
    bit<32> k1_t249;
    bit<32> k1_t250;
    bit<1> k1_t251;
    bit<32> k1_t252;
    bit<32> k1_t253;
    bit<1> k1_t254;
    bit<32> k1_t255;
    bit<32> k1_t264;
    bit<32> k1_t265;
    bit<32> k1_t266;
    bit<32> k1_t267;
    bit<32> k1_t268;
    bit<32> k1_t269;
    bit<1> k1_t270;
    bit<32> k1_t271;
    bit<32> k1_t272;
    bit<32> k1_t273;
    bit<1> k1_t274;
    bit<32> k1_t275;
    bit<1> k1_t276;
    bit<8> k1_t277;
    bit<8> k1_t278;
    bit<32> k1_t279;
    bit<1> k1_t280;
    bit<32> k1_t281;
    bit<1> k1_t282;
    bit<1> k1_t283;
    bit<32> k1_t284;
    bit<32> k1_t285;
    bit<32> k1_t286;
    bit<32> k1_t287;
    bit<32> k1_t288;
    bit<32> k1_t289;
    bit<32> k1_t290;
    bit<32> k1_t291;
    bit<32> k1_t292;
    bit<1> k1_t293;
    bit<32> k1_t294;
    bit<32> k1_t295;
    bit<32> k1_t296;
    bit<1> k1_t297;
    bit<32> k1_t298;
    bit<1> k1_t299;
    bit<8> k1_t300;
    bit<8> k1_t301;
    bit<32> k1_t302;
    bit<1> k1_t303;
    bit<32> k1_t304;
    bit<1> k1_t305;
    bit<1> k1_t306;
    bit<32> k1_t307;
    bit<32> k1_t308;
    bit<32> k1_t309;
    bit<16> k1_t310;
    bit<8> k1_t311;
    bit<32> k1_t313;
    bit<32> k1_t315;
    bit<32> k1_t317;
    bit<32> k1_t319;
    bit<32> k1_t321;
    bit<32> k1_t323;
    bit<32> k1_t325;
    bit<32> k1_t327;
    bit<8> k1_t328;
    bit<8> k1_l0_op;
    bit<64> k1_l1_k;
    bit<16> k1_l2_idx;
    bit<8> k1_l3_cached;
    bit<16> k1_l4_share;
    bit<8> k1_l5_valid;
    bit<32> k1_l6_kh;
    bit<8> k1_l8_b0;
    bit<8> k1_l9_b1;
    bit<16> k1_l10_idx_ph;
    bit<64> k1_lk0;
    Register<bit<16>, bit<32>>(64) Share;
    Register<bit<8>, bit<32>>(64) Valid;
    Register<bit<32>, bit<32>>(64) HitCount;
    Register<bit<32>, bit<32>>(64) Val__0;
    Register<bit<32>, bit<32>>(64) Val__1;
    Register<bit<32>, bit<32>>(64) Val__2;
    Register<bit<32>, bit<32>>(64) Val__3;
    Register<bit<32>, bit<32>>(64) Val__4;
    Register<bit<32>, bit<32>>(64) Val__5;
    Register<bit<32>, bit<32>>(64) Val__6;
    Register<bit<32>, bit<32>>(64) Val__7;
    Register<bit<32>, bit<32>>(4096) cms__0;
    Register<bit<32>, bit<32>>(4096) cms__1;
    Register<bit<32>, bit<32>>(4096) cms__2;
    Register<bit<8>, bit<32>>(4096) Bloom__0;
    Register<bit<8>, bit<32>>(4096) Bloom__1;
    RegisterAction<bit<16>, bit<32>, bit<16>>(Share) ra_Share_0 = {
        void apply(inout bit<16> m, out bit<16> o) {
            o = m;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(Valid) ra_Valid_1 = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(HitCount) ra_HitCount_2 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = m + 1;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Val__0) ra_Val__0_3 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Val__1) ra_Val__1_4 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Val__2) ra_Val__2_5 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Val__3) ra_Val__3_6 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Val__4) ra_Val__4_7 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Val__5) ra_Val__5_8 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Val__6) ra_Val__6_9 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Val__7) ra_Val__7_10 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(cms__0) ra_cms__0_11 = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = m |+| 32w1;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(cms__1) ra_cms__1_12 = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = m |+| 32w1;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(cms__2) ra_cms__2_13 = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = m |+| 32w1;
            o = m;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(Bloom__0) ra_Bloom__0_14 = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            m = 8w1;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(Bloom__1) ra_Bloom__1_15 = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            m = 8w1;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(cms__0) ra_cms__0_16 = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = m |+| 32w1;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(cms__1) ra_cms__1_17 = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = m |+| 32w1;
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(cms__2) ra_cms__2_18 = {
        void apply(inout bit<32> m, out bit<32> o) {
            m = m |+| 32w1;
            o = m;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(Bloom__0) ra_Bloom__0_19 = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            m = 8w1;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(Bloom__1) ra_Bloom__1_20 = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            m = 8w1;
        }
    };
    RegisterAction<bit<16>, bit<32>, bit<16>>(Share) ra_Share_21 = {
        void apply(inout bit<16> m, out bit<16> o) {
            o = m;
            m = 16w255;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(Valid) ra_Valid_22 = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            m = 8w1;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Val__0) ra_Val__0_23 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a4[0].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Val__1) ra_Val__1_24 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a4[1].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Val__2) ra_Val__2_25 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a4[2].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Val__3) ra_Val__3_26 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a4[3].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Val__4) ra_Val__4_27 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a4[4].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Val__5) ra_Val__5_28 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a4[5].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Val__6) ra_Val__6_29 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a4[6].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Val__7) ra_Val__7_30 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a4[7].value;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(Valid) ra_Valid_31 = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            m = 8w0;
        }
    };
    Hash<bit<32>>(HashAlgorithm_t.CRC32) hash_0;
    Hash<bit<16>>(HashAlgorithm_t.XOR16) hash_1;
    Hash<bit<16>>(HashAlgorithm_t.CRC32) hash_2;
    Hash<bit<16>>(HashAlgorithm_t.CRC16) hash_3;
    action set_egress(bit<16> port) {
        meta.egress_port = port;
    }
    action lu_hit_index_0(bit<16> v) {
        meta.k1_t204 = v;
    }
    table l2_fwd {
        key = { hdr.ncl.dst : exact }
        actions = { set_egress; NoAction; }
        default_action = NoAction();
        size = 64;
    }
    table lu_index_0 {
        key = { meta.k1_lk0 : exact }
        actions = { lu_hit_index_0; NoAction; }
        default_action = NoAction();
        size = 64;
    }
    apply {
        if ((hdr.ncl.isValid() && (hdr.ncl.to == 16w1))) {
            if ((hdr.ncl.comp == 8w1)) {
                meta.k1_lk0 = hdr.args_c1.a1_k;
                meta.k1_t203 = 1w0;
                meta.k1_t204 = 16w0;
                if (lu_index_0.apply().hit) {
                    meta.k1_t203 = 1w1;
                }
                meta.k1_t206 = (bit<8>)(meta.k1_t203);
                meta.k1_t207 = (bit<32>)(hdr.args_c1.a0_op);
                meta.k1_t208 = (bit<1>)((meta.k1_t207 == 32w1));
                meta.k1_t209 = (bit<1>)((meta.k1_t206 != 8w0));
                meta.k1_t210 = (bit<1>)((meta.k1_t207 == 32w2));
                meta.k1_t211 = (bit<1>)((meta.k1_t207 == 32w3));
                meta.k1_t212 = hash_0.get({(bit<64>)(hdr.args_c1.a1_k)});
                meta.k1_t213 = hash_1.get({(bit<32>)(meta.k1_t212)});
                meta.k1_t214 = (bit<32>)(meta.k1_t213);
                meta.k1_t215 = (meta.k1_t214 & 32w4095);
                meta.k1_t216 = hash_2.get({(bit<32>)(meta.k1_t212)});
                meta.k1_t217 = (bit<32>)(meta.k1_t216);
                meta.k1_t218 = (meta.k1_t217 & 32w4095);
                meta.k1_t219 = hash_3.get({(bit<32>)(meta.k1_t212)});
                meta.k1_t220 = (bit<32>)(meta.k1_t219);
                meta.k1_t221 = (meta.k1_t220 & 32w4095);
                meta.k1_t222 = (bit<32>)(meta.k1_t213);
                meta.k1_t223 = (meta.k1_t222 & 32w4095);
                meta.k1_t224 = (bit<32>)(meta.k1_t219);
                meta.k1_t225 = (meta.k1_t224 & 32w4095);
                meta.k1_l10_idx_ph = 16w0;
                if ((meta.k1_t203 == 1w1)) {
                    meta.k1_l10_idx_ph = meta.k1_t204;
                }
                meta.k1_t226 = meta.k1_l10_idx_ph;
                meta.k1_t227 = (bit<32>)(meta.k1_t226);
                if ((meta.k1_t208 == 1w1)) {
                    meta.k1_t228 = ra_Share_0.execute((bit<32>)(meta.k1_t227));
                    meta.k1_t229 = ra_Valid_1.execute((bit<32>)(meta.k1_t227));
                    meta.k1_t230 = (bit<1>)((meta.k1_t229 != 8w0));
                    meta.k1_t231 = (bit<32>)(meta.k1_t228);
                    meta.k1_t232 = (meta.k1_t231 & 32w1);
                    meta.k1_t233 = (bit<1>)((meta.k1_t232 != 32w0));
                    meta.k1_t234 = (meta.k1_t231 >> 32w1);
                    meta.k1_t235 = (meta.k1_t234 & 32w1);
                    meta.k1_t236 = (bit<1>)((meta.k1_t235 != 32w0));
                    meta.k1_t237 = (meta.k1_t231 >> 32w2);
                    meta.k1_t238 = (meta.k1_t237 & 32w1);
                    meta.k1_t239 = (bit<1>)((meta.k1_t238 != 32w0));
                    meta.k1_t240 = (meta.k1_t231 >> 32w3);
                    meta.k1_t241 = (meta.k1_t240 & 32w1);
                    meta.k1_t242 = (bit<1>)((meta.k1_t241 != 32w0));
                    meta.k1_t243 = (meta.k1_t231 >> 32w4);
                    meta.k1_t244 = (meta.k1_t243 & 32w1);
                    meta.k1_t245 = (bit<1>)((meta.k1_t244 != 32w0));
                    meta.k1_t246 = (meta.k1_t231 >> 32w5);
                    meta.k1_t247 = (meta.k1_t246 & 32w1);
                    meta.k1_t248 = (bit<1>)((meta.k1_t247 != 32w0));
                    meta.k1_t249 = (meta.k1_t231 >> 32w6);
                    meta.k1_t250 = (meta.k1_t249 & 32w1);
                    meta.k1_t251 = (bit<1>)((meta.k1_t250 != 32w0));
                    meta.k1_t252 = (meta.k1_t231 >> 32w7);
                    meta.k1_t253 = (meta.k1_t252 & 32w1);
                    meta.k1_t254 = (bit<1>)((meta.k1_t253 != 32w0));
                    if ((meta.k1_t209 == 1w1)) {
                        if ((meta.k1_t230 == 1w1)) {
                            meta.k1_t255 = ra_HitCount_2.execute((bit<32>)(meta.k1_t227));
                            if ((meta.k1_t233 == 1w1)) {
                                hdr.arr_c1_a4[0].value = ra_Val__0_3.execute((bit<32>)(meta.k1_t227));
                            }
                            if ((meta.k1_t236 == 1w1)) {
                                hdr.arr_c1_a4[1].value = ra_Val__1_4.execute((bit<32>)(meta.k1_t227));
                            }
                            if ((meta.k1_t239 == 1w1)) {
                                hdr.arr_c1_a4[2].value = ra_Val__2_5.execute((bit<32>)(meta.k1_t227));
                            }
                            if ((meta.k1_t242 == 1w1)) {
                                hdr.arr_c1_a4[3].value = ra_Val__3_6.execute((bit<32>)(meta.k1_t227));
                            }
                            if ((meta.k1_t245 == 1w1)) {
                                hdr.arr_c1_a4[4].value = ra_Val__4_7.execute((bit<32>)(meta.k1_t227));
                            }
                            if ((meta.k1_t248 == 1w1)) {
                                hdr.arr_c1_a4[5].value = ra_Val__5_8.execute((bit<32>)(meta.k1_t227));
                            }
                            if ((meta.k1_t251 == 1w1)) {
                                hdr.arr_c1_a4[6].value = ra_Val__6_9.execute((bit<32>)(meta.k1_t227));
                            }
                            if ((meta.k1_t254 == 1w1)) {
                                hdr.arr_c1_a4[7].value = ra_Val__7_10.execute((bit<32>)(meta.k1_t227));
                            }
                            hdr.args_c1.a2_hit = 8w1;
                            hdr.ncl.action = 8w5;
                        } else {
                            meta.k1_t264 = ra_cms__0_11.execute((bit<32>)(meta.k1_t215));
                            meta.k1_t265 = ra_cms__1_12.execute((bit<32>)(meta.k1_t218));
                            meta.k1_t266 = ra_cms__2_13.execute((bit<32>)(meta.k1_t221));
                            hdr.k1_loc7[0].value = meta.k1_t264;
                            hdr.k1_loc7[1].value = meta.k1_t265;
                            hdr.k1_loc7[2].value = meta.k1_t266;
                            meta.k1_t267 = hdr.k1_loc7[1].value;
                            meta.k1_t268 = hdr.k1_loc7[0].value;
                            meta.k1_t269 = (meta.k1_t268 |-| meta.k1_t267);
                            meta.k1_t270 = (bit<1>)((meta.k1_t269 != 32w0));
                            if ((meta.k1_t270 == 1w1)) {
                                meta.k1_t286 = hdr.k1_loc7[1].value;
                                hdr.k1_loc7[0].value = meta.k1_t286;
                            }
                            meta.k1_t271 = hdr.k1_loc7[2].value;
                            meta.k1_t272 = hdr.k1_loc7[0].value;
                            meta.k1_t273 = (meta.k1_t272 |-| meta.k1_t271);
                            meta.k1_t274 = (bit<1>)((meta.k1_t273 != 32w0));
                            if ((meta.k1_t274 == 1w1)) {
                                meta.k1_t285 = hdr.k1_loc7[2].value;
                                hdr.k1_loc7[0].value = meta.k1_t285;
                            }
                            meta.k1_t275 = hdr.k1_loc7[0].value;
                            meta.k1_t276 = (bit<1>)((meta.k1_t275 > 32w64));
                            if ((meta.k1_t276 == 1w1)) {
                                meta.k1_t277 = ra_Bloom__0_14.execute((bit<32>)(meta.k1_t223));
                                meta.k1_t278 = ra_Bloom__1_15.execute((bit<32>)(meta.k1_t225));
                                meta.k1_t279 = (bit<32>)(meta.k1_t277);
                                meta.k1_t280 = (bit<1>)((meta.k1_t279 == 32w0));
                                meta.k1_t281 = (bit<32>)(meta.k1_t278);
                                meta.k1_t282 = (bit<1>)((meta.k1_t281 == 32w0));
                                meta.k1_t283 = (meta.k1_t280 | meta.k1_t282);
                                if ((meta.k1_t283 == 1w1)) {
                                    meta.k1_t284 = hdr.k1_loc7[0].value;
                                    hdr.args_c1.a3_hot = meta.k1_t284;
                                }
                            }
                            hdr.ncl.action = 8w0;
                        }
                    } else {
                        meta.k1_t287 = ra_cms__0_16.execute((bit<32>)(meta.k1_t215));
                        meta.k1_t288 = ra_cms__1_17.execute((bit<32>)(meta.k1_t218));
                        meta.k1_t289 = ra_cms__2_18.execute((bit<32>)(meta.k1_t221));
                        hdr.k1_loc7[0].value = meta.k1_t287;
                        hdr.k1_loc7[1].value = meta.k1_t288;
                        hdr.k1_loc7[2].value = meta.k1_t289;
                        meta.k1_t290 = hdr.k1_loc7[1].value;
                        meta.k1_t291 = hdr.k1_loc7[0].value;
                        meta.k1_t292 = (meta.k1_t291 |-| meta.k1_t290);
                        meta.k1_t293 = (bit<1>)((meta.k1_t292 != 32w0));
                        if ((meta.k1_t293 == 1w1)) {
                            meta.k1_t309 = hdr.k1_loc7[1].value;
                            hdr.k1_loc7[0].value = meta.k1_t309;
                        }
                        meta.k1_t294 = hdr.k1_loc7[2].value;
                        meta.k1_t295 = hdr.k1_loc7[0].value;
                        meta.k1_t296 = (meta.k1_t295 |-| meta.k1_t294);
                        meta.k1_t297 = (bit<1>)((meta.k1_t296 != 32w0));
                        if ((meta.k1_t297 == 1w1)) {
                            meta.k1_t308 = hdr.k1_loc7[2].value;
                            hdr.k1_loc7[0].value = meta.k1_t308;
                        }
                        meta.k1_t298 = hdr.k1_loc7[0].value;
                        meta.k1_t299 = (bit<1>)((meta.k1_t298 > 32w64));
                        if ((meta.k1_t299 == 1w1)) {
                            meta.k1_t300 = ra_Bloom__0_19.execute((bit<32>)(meta.k1_t223));
                            meta.k1_t301 = ra_Bloom__1_20.execute((bit<32>)(meta.k1_t225));
                            meta.k1_t302 = (bit<32>)(meta.k1_t300);
                            meta.k1_t303 = (bit<1>)((meta.k1_t302 == 32w0));
                            meta.k1_t304 = (bit<32>)(meta.k1_t301);
                            meta.k1_t305 = (bit<1>)((meta.k1_t304 == 32w0));
                            meta.k1_t306 = (meta.k1_t303 | meta.k1_t305);
                            if ((meta.k1_t306 == 1w1)) {
                                meta.k1_t307 = hdr.k1_loc7[0].value;
                                hdr.args_c1.a3_hot = meta.k1_t307;
                            }
                        }
                        hdr.ncl.action = 8w0;
                    }
                } else {
                    if ((meta.k1_t210 == 1w1)) {
                        if ((meta.k1_t209 == 1w1)) {
                            meta.k1_t310 = ra_Share_21.execute((bit<32>)(meta.k1_t227));
                            meta.k1_t311 = ra_Valid_22.execute((bit<32>)(meta.k1_t227));
                            meta.k1_t313 = ra_Val__0_23.execute((bit<32>)(meta.k1_t227));
                            meta.k1_t315 = ra_Val__1_24.execute((bit<32>)(meta.k1_t227));
                            meta.k1_t317 = ra_Val__2_25.execute((bit<32>)(meta.k1_t227));
                            meta.k1_t319 = ra_Val__3_26.execute((bit<32>)(meta.k1_t227));
                            meta.k1_t321 = ra_Val__4_27.execute((bit<32>)(meta.k1_t227));
                            meta.k1_t323 = ra_Val__5_28.execute((bit<32>)(meta.k1_t227));
                            meta.k1_t325 = ra_Val__6_29.execute((bit<32>)(meta.k1_t227));
                            meta.k1_t327 = ra_Val__7_30.execute((bit<32>)(meta.k1_t227));
                        }
                    } else {
                        if ((meta.k1_t211 == 1w1)) {
                            if ((meta.k1_t209 == 1w1)) {
                                meta.k1_t328 = ra_Valid_31.execute((bit<32>)(meta.k1_t227));
                            }
                        }
                    }
                    hdr.ncl.action = 8w0;
                }
            }
        }
        l2_fwd.apply();
    }
}

