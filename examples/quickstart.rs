//! Quickstart: compile the paper's Fig. 4 in-network cache, run it on the
//! software switch, and query it the way Fig. 6's host code does.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use netcl::{CompileOptions, Compiler};
use netcl_bmv2::Switch;
use netcl_runtime::message::{pack, unpack, Message};

const SOURCE: &str = r#"
// The complete NetCL device code of paper Fig. 4.
#define CMS_HASHES 3
#define THRESH 512
#define GET_REQ 1
_managed_ unsigned cms[CMS_HASHES][65536];

_net_ void sketch(unsigned k, unsigned &hot) {
  unsigned c[CMS_HASHES];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k)], 1);
  for (auto i = 1; i < CMS_HASHES; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  hot = c[0] > THRESH ? c[0] : 0;
}

_net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42}, {2,42},
                                                      {3,42}, {4,42}};

_kernel(1) _at(1) void query(char op, unsigned k, unsigned &v,
                             char &hit, unsigned &hot) {
  if (op == GET_REQ) {
    hit = ncl::lookup(cache, k, v);
    return hit ? ncl::reflect() : sketch(k, hot);
  }
}
"#;

fn main() {
    // 1. Compile (ncc): NetCL-C → P4 for TNA and v1model.
    let unit = Compiler::new(CompileOptions::default())
        .compile("fig4.ncl", SOURCE)
        .expect("Fig. 4 compiles");
    let dev = &unit.devices[0];
    println!(
        "compiled for device {}: {} P4 lines (TNA)",
        dev.device,
        netcl_p4::print::loc(&netcl_p4::print::print_program(&dev.tna_p4))
    );

    // 2. Check the Tofino fit (bf-p4c's role).
    let fitting = netcl_tofino::fit(&dev.tna_p4).expect("fits the 12-stage pipe");
    println!(
        "fits Tofino: {} stages, PHV {:.1}%, per-packet latency {:.0} ns",
        fitting.stages_used,
        fitting.phv.percent(),
        fitting.latency_ns
    );

    // 3. Run packets through the software switch, Fig. 6 style.
    let spec = unit.model.kernels[0].specification();
    let mut sw = Switch::new(dev.tna_p4.clone());
    for key in [2u64, 99, 2] {
        // ncl::message m(1, 2, 1, 1); ncl::pack(...)
        let m = Message::new(1, 2, 1, 1);
        let out = pack(&m, &spec, &[Some(&[1]), Some(&[key]), None, None, None]).unwrap();
        // sendto → switch → recvfrom
        let (pkt, reply) = sw.process(&out).unwrap();
        let mut val = Vec::new();
        let mut hit = Vec::new();
        unpack(&reply, &spec, &mut [None, None, Some(&mut val), Some(&mut hit), None]).unwrap();
        println!(
            "GET {key}: hit={} v={} action={}",
            hit[0],
            val[0],
            if pkt.get("ncl.action") == 5 {
                "reflect (answered in-network)"
            } else {
                "pass (to server)"
            }
        );
    }
}
