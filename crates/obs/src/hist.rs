//! Log₂-bucketed histograms for latencies, depths, and sizes.
//!
//! Bucket `i` covers `[2^(i-1), 2^i)` (bucket 0 holds exact zeros), so the
//! structure records any `u64` with 64 fixed buckets, no configuration,
//! and ≤ 2× relative quantile error — the right trade for "where does the
//! time go" instrumentation. All state is integer, so two deterministic
//! runs produce `Eq`-identical histograms (the same contract `NetStats`
//! gives counters).

/// A fixed-shape log₂ histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

/// Bucket index for a sample: 0 for 0, otherwise `floor(log2(v)) + 1`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Times `f` with a wall clock and records the elapsed nanoseconds.
    pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let sw = crate::Stopwatch::start();
        let r = f();
        self.record(sw.elapsed_ns());
        r
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the geometric midpoint of the
    /// bucket containing the `ceil(q·count)`-th sample, clamped to the
    /// observed min/max. Exact for single-bucket data; ≤ 2× error overall.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if i == 0 {
                    return 0;
                }
                let lo = 1u64 << (i - 1);
                let hi = lo.saturating_mul(2).saturating_sub(1);
                // Geometric midpoint ≈ lo·√2, without floats on huge values.
                let mid = lo + lo / 2;
                return mid.clamp(self.min, self.max).clamp(lo, hi).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram in (for aggregating over runs).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, upper_bound, count)` triples.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &n)| n > 0).map(|(i, &n)| {
            if i == 0 {
                (0, 0, n)
            } else {
                let lo = 1u64 << (i - 1);
                (lo, lo.saturating_mul(2).saturating_sub(1), n)
            }
        })
    }

    /// Summarizes into an [`crate::Event`] with count/sum/min/max/p50/p99
    /// fields — the JSONL export form.
    pub fn to_event(&self, name: impl Into<String>, ts_ns: u64) -> crate::Event {
        crate::Event::new(name, ts_ns)
            .field("count", self.count())
            .field("sum", self.sum())
            .field("min", self.min())
            .field("max", self.max())
            .field("p50", self.quantile(0.5))
            .field("p99", self.quantile(0.99))
    }

    /// One-line console summary.
    pub fn pretty(&self) -> String {
        format!(
            "n={} mean={:.1} min={} p50={} p99={} max={}",
            self.count(),
            self.mean(),
            self.min(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn stats_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.2).abs() < 1e-9);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        // True median is 500; bucket [256,511] midpoint estimate.
        assert!((256..=511).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((512..=1000).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(0.0), h.quantile(1e-9));
        let p100 = h.quantile(1.0);
        assert!((512..=1000).contains(&p100), "p100={p100}");
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [5u64, 17, 90000] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 2, 1 << 40] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn event_export() {
        let mut h = Histogram::new();
        h.record(7);
        let e = h.to_event("sim.queue_depth", 9);
        let line = e.to_json();
        assert!(line.contains("\"count\":1"));
        assert!(line.contains("\"sum\":7"));
    }
}
