//! PHV accounting (Table VI).
//!
//! Everything the pipeline carries between stages lives on the Packet
//! Header Vector: parsed header fields (including every header-stack
//! element) and compiler metadata (instruction-result temporaries, local
//! variables). Container granularity is modeled by rounding each field up
//! to the smallest 8/16/32-bit container — the dominant effect behind the
//! paper's "NetCL is within 2% of handwritten" observation.

use crate::report::PhvReport;
use crate::spec::TofinoSpec;
use netcl_p4::ast::P4Program;

/// Rounds a field width up to its PHV container size.
pub fn container_bits(width: u32) -> u32 {
    match width {
        0 => 0,
        1..=8 => 8,
        9..=16 => 16,
        17..=32 => 32,
        // Wide fields span multiple 32-bit containers.
        w => w.div_ceil(32) * 32,
    }
}

/// Accounts a program's PHV demand.
pub fn account(program: &P4Program, spec: &TofinoSpec) -> PhvReport {
    let mut header_bits = 0u32;
    for h in &program.headers {
        let one: u32 = h.fields.iter().map(|(_, w)| container_bits(*w)).sum();
        header_bits += one * h.stack.max(1);
        // Validity bit per header instance.
        header_bits += h.stack.max(1);
    }
    // Single-bit flags pack eight to a byte container; wider fields round
    // up to their own container.
    let mut metadata_bits = 0u32;
    let mut flags = 0u32;
    for c in &program.controls {
        for (_, w) in &c.locals {
            if *w == 1 {
                flags += 1;
            } else {
                metadata_bits += container_bits(*w);
            }
        }
    }
    metadata_bits += flags.div_ceil(8) * 8;
    PhvReport { header_bits, metadata_bits, capacity_bits: spec.phv_bits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcl_p4::ast::{ControlDef, HeaderDef, Target};

    #[test]
    fn container_rounding() {
        assert_eq!(container_bits(1), 8);
        assert_eq!(container_bits(8), 8);
        assert_eq!(container_bits(9), 16);
        assert_eq!(container_bits(32), 32);
        assert_eq!(container_bits(48), 64);
        assert_eq!(container_bits(0), 0);
    }

    #[test]
    fn accounts_stacks_and_metadata() {
        let p = P4Program {
            name: "t".into(),
            target: Target::Tna,
            headers: vec![HeaderDef {
                name: "v_t".into(),
                fields: vec![("value".into(), 32)],
                stack: 32,
            }],
            parser: None,
            controls: vec![ControlDef {
                name: "Ig".into(),
                locals: vec![("a".into(), 1), ("b".into(), 16)],
                ..Default::default()
            }],
        };
        let r = account(&p, &TofinoSpec::tofino1());
        // 32 × 32 bits + 32 validity bits.
        assert_eq!(r.header_bits, 32 * 32 + 32);
        // 1-bit local rounds to an 8-bit container.
        assert_eq!(r.metadata_bits, 8 + 16);
        assert!(r.percent() > 25.0);
    }
}
