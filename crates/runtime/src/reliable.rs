//! Host-side reliable delivery: sequence numbers, acks, and capped
//! exponential-backoff retransmission.
//!
//! The NetCL paper's applications each hand-roll loss recovery (the
//! aggregation host keeps a private in-flight map with a fixed RTO). This
//! module generalizes that logic so every app shares one implementation:
//! the application gives each logical message a *key*, [`Reliable::send`]
//! transmits it and arms a retransmission timer through the [`Transport`]
//! it is handed, and the application calls [`Reliable::ack_key`] when the
//! corresponding response arrives. Unacked messages are retransmitted with
//! exponentially growing timeouts (capped) until [`RetryPolicy::max_attempts`]
//! is exhausted.
//!
//! The helper owns no clock and no socket — it only emits sends and timer
//! arms relative to "now" via [`Transport`], which keeps it deterministic
//! under the simulator and portable to a real event loop.

use std::collections::HashMap;

/// The send/timer surface [`Reliable`] drives. In the simulator this is
/// implemented by `netcl-net`'s `Outbox`; a real host runtime would back it
/// with a socket and a timer wheel.
pub trait Transport {
    /// Transmits `bytes` after `delay_ns` (0 = immediately).
    fn send(&mut self, delay_ns: u64, bytes: Vec<u8>);
    /// Arms a timer that fires after `delay_ns` carrying `token`.
    fn set_timer(&mut self, delay_ns: u64, token: u64);
}

/// Timer-token namespace bit reserved for [`Reliable`]. Application timers
/// must keep this bit clear; [`Reliable::on_timer`] claims any token with
/// it set and ignores the rest, so one timer callback can serve both.
pub const RELIABLE_TOKEN: u64 = 1 << 63;

/// Retransmission policy: capped exponential backoff.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// First retransmission timeout.
    pub base_rto_ns: u64,
    /// Backoff cap: `rto(n) = min(base << n, max)`.
    pub max_rto_ns: u64,
    /// Total transmission attempts (including the first) before giving up.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // 400µs base RTO (the aggregation app's historical constant, a few
        // simulated RTTs), capped at 6.4ms, with enough attempts to push
        // through sustained 20% per-link loss on multi-hop paths.
        RetryPolicy { base_rto_ns: 400_000, max_rto_ns: 6_400_000, max_attempts: 64 }
    }
}

/// Delivery counters, exposed so applications can report them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// First transmissions.
    pub sent: u64,
    /// Retransmissions.
    pub retransmits: u64,
    /// Messages acked.
    pub acked: u64,
    /// Messages abandoned after `max_attempts`.
    pub gave_up: u64,
}

struct Pending {
    key: u64,
    bytes: Vec<u8>,
    /// Transmission attempts so far (≥1 once sent).
    attempts: u32,
}

/// Reliable-delivery state machine for one host endpoint.
pub struct Reliable {
    policy: RetryPolicy,
    next_seq: u64,
    /// Unacked messages by sequence number.
    pending: HashMap<u64, Pending>,
    /// Application key → sequence number, for ack lookup.
    by_key: HashMap<u64, u64>,
    /// Delivery counters.
    pub stats: ReliableStats,
}

impl Reliable {
    /// Creates a helper with the given policy.
    pub fn new(policy: RetryPolicy) -> Reliable {
        Reliable {
            policy,
            next_seq: 0,
            pending: HashMap::new(),
            by_key: HashMap::new(),
            stats: ReliableStats::default(),
        }
    }

    /// Sends `bytes` reliably under the application-chosen `key` (e.g. a
    /// chunk id or request id). If `key` is already in flight the old
    /// message is superseded. Returns the assigned sequence number.
    pub fn send(&mut self, key: u64, bytes: Vec<u8>, t: &mut impl Transport) -> u64 {
        if let Some(old_seq) = self.by_key.remove(&key) {
            self.pending.remove(&old_seq);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        t.send(0, bytes.clone());
        t.set_timer(self.policy.base_rto_ns, RELIABLE_TOKEN | seq);
        self.pending.insert(seq, Pending { key, bytes, attempts: 1 });
        self.by_key.insert(key, seq);
        self.stats.sent += 1;
        seq
    }

    /// Acknowledges the message sent under `key`. Returns `true` if it was
    /// still pending (i.e. this is the first ack, not a duplicate).
    pub fn ack_key(&mut self, key: u64) -> bool {
        let Some(seq) = self.by_key.remove(&key) else { return false };
        self.pending.remove(&seq);
        self.stats.acked += 1;
        true
    }

    /// Handles a timer token. Returns `true` if the token belonged to this
    /// helper (the caller should not interpret it further). Retransmits the
    /// message if still unacked, backing off exponentially; abandons it
    /// after [`RetryPolicy::max_attempts`].
    pub fn on_timer(&mut self, token: u64, t: &mut impl Transport) -> bool {
        if token & RELIABLE_TOKEN == 0 {
            return false;
        }
        let seq = token & !RELIABLE_TOKEN;
        let Some(p) = self.pending.get_mut(&seq) else {
            return true; // acked before the timer fired
        };
        if p.attempts >= self.policy.max_attempts {
            let key = p.key;
            self.pending.remove(&seq);
            self.by_key.remove(&key);
            self.stats.gave_up += 1;
            return true;
        }
        // rto(n) = min(base << n, max); shift saturates well before u64
        // overflow because max_attempts bounds n.
        let shift = p.attempts.min(32);
        let rto = (self.policy.base_rto_ns << shift).min(self.policy.max_rto_ns);
        p.attempts += 1;
        t.send(0, p.bytes.clone());
        t.set_timer(rto, RELIABLE_TOKEN | seq);
        self.stats.retransmits += 1;
        true
    }

    /// Whether `key` is still awaiting an ack.
    pub fn is_pending(&self, key: u64) -> bool {
        self.by_key.contains_key(&key)
    }

    /// Number of in-flight messages.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct MockTransport {
        sends: Vec<(u64, Vec<u8>)>,
        timers: Vec<(u64, u64)>,
    }

    impl Transport for MockTransport {
        fn send(&mut self, delay_ns: u64, bytes: Vec<u8>) {
            self.sends.push((delay_ns, bytes));
        }
        fn set_timer(&mut self, delay_ns: u64, token: u64) {
            self.timers.push((delay_ns, token));
        }
    }

    fn policy() -> RetryPolicy {
        RetryPolicy { base_rto_ns: 100, max_rto_ns: 400, max_attempts: 4 }
    }

    #[test]
    fn ack_stops_retransmission() {
        let mut t = MockTransport::default();
        let mut rel = Reliable::new(policy());
        let seq = rel.send(7, vec![1, 2, 3], &mut t);
        assert_eq!(t.sends.len(), 1);
        assert_eq!(t.timers, vec![(100, RELIABLE_TOKEN | seq)]);
        assert!(rel.is_pending(7));

        assert!(rel.ack_key(7));
        assert!(!rel.ack_key(7), "duplicate ack reports not-pending");
        assert!(!rel.is_pending(7));

        // The stale timer is a no-op.
        assert!(rel.on_timer(RELIABLE_TOKEN | seq, &mut t));
        assert_eq!(t.sends.len(), 1);
        assert_eq!(rel.stats, ReliableStats { sent: 1, retransmits: 0, acked: 1, gave_up: 0 });
    }

    #[test]
    fn backoff_grows_and_caps() {
        let mut t = MockTransport::default();
        let mut rel = Reliable::new(policy());
        let seq = rel.send(1, vec![9], &mut t);
        let token = RELIABLE_TOKEN | seq;
        // Attempts 2..4: backoff 200, 400, then capped at 400.
        rel.on_timer(token, &mut t);
        rel.on_timer(token, &mut t);
        rel.on_timer(token, &mut t);
        let rtos: Vec<u64> = t.timers.iter().map(|&(d, _)| d).collect();
        assert_eq!(rtos, vec![100, 200, 400, 400]);
        assert_eq!(t.sends.len(), 4);

        // Fifth timer exhausts max_attempts = 4: give up, no resend.
        rel.on_timer(token, &mut t);
        assert_eq!(t.sends.len(), 4);
        assert!(!rel.is_pending(1));
        assert_eq!(rel.stats.gave_up, 1);
        assert_eq!(rel.stats.retransmits, 3);
    }

    #[test]
    fn foreign_tokens_ignored() {
        let mut t = MockTransport::default();
        let mut rel = Reliable::new(policy());
        rel.send(1, vec![0], &mut t);
        assert!(!rel.on_timer(42, &mut t), "plain app token is not ours");
        assert_eq!(t.sends.len(), 1);
    }

    #[test]
    fn resend_same_key_supersedes() {
        let mut t = MockTransport::default();
        let mut rel = Reliable::new(policy());
        let s0 = rel.send(5, vec![1], &mut t);
        let s1 = rel.send(5, vec![2], &mut t);
        assert_ne!(s0, s1);
        assert_eq!(rel.pending_count(), 1);
        // Old seq's timer finds nothing; new seq retransmits payload [2].
        rel.on_timer(RELIABLE_TOKEN | s0, &mut t);
        assert_eq!(t.sends.len(), 2);
        rel.on_timer(RELIABLE_TOKEN | s1, &mut t);
        assert_eq!(t.sends.last().unwrap().1, vec![2]);
    }
}
