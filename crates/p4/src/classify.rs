//! P4 construct classification for the paper's Figure 12.
//!
//! Figure 12 breaks each application's P4 code down by construct category
//! and reports that, on average, over 65% of P4 code is packet-processing
//! plumbing. We classify from the AST (not regexes over text): each
//! construct is printed in isolation and its line count attributed to a
//! category, so the percentages sum to the whole program.

use crate::ast::*;
use crate::print;

/// The categories of Figure 12.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Header type definitions.
    Headers,
    /// Parser states and transitions.
    Parsers,
    /// Match-action tables (keys, actions list, entries).
    Tables,
    /// `RegisterAction` / register declarations (stateful memory).
    RegisterActions,
    /// Plain P4 actions.
    Actions,
    /// Imperative control logic (`apply` blocks, locals).
    Control,
    /// Declarations/boilerplate (includes, instantiations).
    Declarations,
}

impl Category {
    /// All categories in display order.
    pub fn all() -> [Category; 7] {
        [
            Category::Headers,
            Category::Parsers,
            Category::Tables,
            Category::RegisterActions,
            Category::Actions,
            Category::Control,
            Category::Declarations,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Headers => "headers",
            Category::Parsers => "parsers",
            Category::Tables => "MATs",
            Category::RegisterActions => "RegisterActions",
            Category::Actions => "actions",
            Category::Control => "control",
            Category::Declarations => "declarations",
        }
    }

    /// Whether the paper counts this as packet-processing plumbing (vs
    /// compute). Fig. 12 discussion: headers/parsers/MATs are plumbing;
    /// RegisterActions and control are (mostly) compute; actions split —
    /// we follow the paper's "52% compute" framing by counting actions as
    /// compute.
    pub fn is_packet_processing(self) -> bool {
        matches!(
            self,
            Category::Headers | Category::Parsers | Category::Tables | Category::Declarations
        )
    }
}

/// Line counts per category for one program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// `(category, lines)` in [`Category::all`] order.
    pub lines: Vec<(Category, usize)>,
}

impl Breakdown {
    /// Total classified lines.
    pub fn total(&self) -> usize {
        self.lines.iter().map(|(_, n)| n).sum()
    }

    /// Lines in a category.
    pub fn get(&self, c: Category) -> usize {
        self.lines.iter().find(|(cat, _)| *cat == c).map(|(_, n)| *n).unwrap_or(0)
    }

    /// Percentage of the total in a category.
    pub fn percent(&self, c: Category) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * self.get(c) as f64 / self.total() as f64
        }
    }

    /// Share of lines that are packet-processing plumbing.
    pub fn packet_processing_percent(&self) -> f64 {
        let pp: usize =
            self.lines.iter().filter(|(c, _)| c.is_packet_processing()).map(|(_, n)| n).sum();
        if self.total() == 0 {
            0.0
        } else {
            100.0 * pp as f64 / self.total() as f64
        }
    }
}

/// Classifies a program.
pub fn classify(p: &P4Program) -> Breakdown {
    let mut counts = std::collections::BTreeMap::new();
    let mut add = |c: Category, n: usize| {
        *counts.entry(c).or_insert(0usize) += n;
    };

    // Headers.
    for h in &p.headers {
        // `header X {`, one line per field, `}`.
        add(Category::Headers, 2 + h.fields.len());
    }
    // Parser.
    if let Some(parser) = &p.parser {
        let mut n = 2; // parser header + closing
        for s in &parser.states {
            n += 2 + s.extracts.len(); // state braces + extracts
            n += match &s.transition {
                Transition::Select { cases, .. } => 2 + cases.len() + 1,
                _ => 1,
            };
        }
        add(Category::Parsers, n);
    }
    for c in &p.controls {
        add(Category::Declarations, 2); // control signature + closing
        add(Category::Control, c.locals.len());
        add(Category::RegisterActions, c.registers.len());
        for ra in &c.register_actions {
            // Declaration + apply signature + body lines + closings.
            let body = match (ra.op.cond, ra.op.ret_new) {
                (false, _) => 2,
                (true, _) => 4,
            };
            add(Category::RegisterActions, 3 + body);
        }
        add(Category::Declarations, c.hashes.len());
        for a in &c.actions {
            add(Category::Actions, 2 + count_stmts(&a.body));
        }
        for t in &c.tables {
            // table braces + key + actions + default + size + entries.
            let entries = if t.entries.is_empty() { 0 } else { 2 + t.entries.len() };
            add(Category::Tables, 5 + entries);
        }
        add(Category::Control, 2 + count_stmts(&c.apply)); // apply braces
    }
    // Includes.
    add(Category::Declarations, 2);

    Breakdown { lines: counts.into_iter().collect() }
}

fn count_stmts(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::If { then, els, .. } => {
                // if line + branches + closing (+ else line).
                let e = if els.is_empty() { 0 } else { 1 + count_stmts(els) };
                2 + count_stmts(then) + e
            }
            _ => 1,
        })
        .sum()
}

/// Sanity check used by tests: classified lines ≈ printed LoC (within the
/// small delta of instantiation boilerplate).
pub fn classification_covers_print(p: &P4Program) -> (usize, usize) {
    let printed = print::loc(&print::print_program(p));
    let classified = classify(p).total();
    (classified, printed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcl_sema::builtins::{AtomicOp, AtomicRmw, HashKind};

    fn cache_like_program() -> P4Program {
        P4Program {
            name: "cache".into(),
            target: Target::Tna,
            headers: vec![
                HeaderDef {
                    name: "eth_t".into(),
                    fields: vec![("dst".into(), 48), ("src".into(), 48), ("ty".into(), 16)],
                    stack: 1,
                },
                HeaderDef {
                    name: "cache_t".into(),
                    fields: vec![("Op".into(), 8), ("K".into(), 32), ("V".into(), 32)],
                    stack: 1,
                },
            ],
            parser: Some(ParserDef {
                name: "IgParser".into(),
                states: vec![
                    ParserState {
                        name: "start".into(),
                        extracts: vec!["hdr.eth".into()],
                        transition: Transition::Select {
                            selector: Expr::field(&["hdr", "eth", "ty"]),
                            cases: vec![(0x800, "parse_cache".into())],
                            default: "accept".into(),
                        },
                    },
                    ParserState {
                        name: "parse_cache".into(),
                        extracts: vec!["hdr.cache".into()],
                        transition: Transition::Accept,
                    },
                ],
            }),
            controls: vec![ControlDef {
                name: "Ig".into(),
                locals: vec![("c0".into(), 32)],
                registers: vec![RegisterDef { name: "Cnt".into(), elem_bits: 32, size: 64 }],
                register_actions: vec![RegisterActionDef {
                    name: "Incr".into(),
                    register: "Cnt".into(),
                    op: AtomicOp { rmw: AtomicRmw::SAdd, cond: false, ret_new: true },
                    cond: None,
                    operands: vec![Expr::val(1, 32)],
                }],
                hashes: vec![HashDef { name: "H".into(), algo: HashKind::Crc16, out_bits: 16 }],
                actions: vec![ActionDef {
                    name: "hit".into(),
                    params: vec![("v".into(), 32)],
                    body: vec![Stmt::Assign(
                        Expr::field(&["hdr", "cache", "V"]),
                        Expr::field(&["v"]),
                    )],
                }],
                tables: vec![TableDef {
                    name: "cache".into(),
                    keys: vec![(Expr::field(&["hdr", "cache", "K"]), MatchKind::Exact)],
                    actions: vec!["hit".into()],
                    entries: vec![TableEntry {
                        keys: vec![EntryKey::Value(1)],
                        action: "hit".into(),
                        args: vec![42],
                    }],
                    default_action: "NoAction".into(),
                    size: 4,
                }],
                apply: vec![Stmt::ApplyTable("cache".into())],
            }],
        }
    }

    #[test]
    fn categories_are_populated() {
        let b = classify(&cache_like_program());
        for c in [
            Category::Headers,
            Category::Parsers,
            Category::Tables,
            Category::RegisterActions,
            Category::Actions,
            Category::Control,
        ] {
            assert!(b.get(c) > 0, "{c:?} empty: {b:?}");
        }
        assert!(b.total() > 20);
    }

    #[test]
    fn packet_processing_dominates_plumbing_heavy_program() {
        // A program that is mostly headers/parser/tables should classify as
        // majority packet processing — the Fig. 12 observation.
        let b = classify(&cache_like_program());
        assert!(b.packet_processing_percent() > 40.0, "{}", b.packet_processing_percent());
    }

    #[test]
    fn percentages_sum_to_100() {
        let b = classify(&cache_like_program());
        let sum: f64 = Category::all().iter().map(|&c| b.percent(c)).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn classification_tracks_printed_loc() {
        let p = cache_like_program();
        let (classified, printed) = classification_covers_print(&p);
        // Within 25% of each other (boilerplate accounting differs slightly).
        let ratio = classified as f64 / printed as f64;
        assert!((0.75..=1.25).contains(&ratio), "classified={classified} printed={printed}");
    }
}
