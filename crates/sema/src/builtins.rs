//! The NetCL device library (paper Table I and Table II).
//!
//! Resolves `ncl::...` paths into a typed [`Builtin`] descriptor: forwarding
//! actions, RMW atomics (with their `cond`/`_new` variants, §V-B), lookup,
//! hashes, math helpers, and target-specific intrinsics. The checker uses
//! the descriptor for signature validation; lowering maps it onto IR
//! operations; the interpreter and codegen share the same enum.

use crate::types::Ty;

/// Forwarding actions (paper Table II).
///
/// The paper's table lists `reflect_long()` twice by mistake; the three
/// behaviours it describes are `repeat` (execute the kernel again),
/// `reflect` (send the message back to the previous node), and
/// `reflect_host` (send it back to its source host). Figure 4 uses
/// `reflect()` for "return the cache hit to the sender", matching the
/// previous-node reading.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// `ncl::drop()` — message exits the network immediately.
    Drop,
    /// `ncl::send_to_host(h)`.
    SendToHost,
    /// `ncl::send_to_device(d)`.
    SendToDevice,
    /// `ncl::multicast(gid)` — to an (adjacent-node) multicast group.
    Multicast,
    /// `ncl::reflect()` — back to the previous hop.
    Reflect,
    /// `ncl::repeat()` — execute the kernel again on this device.
    Repeat,
    /// `ncl::reflect_host()` — back to the message's source host.
    ReflectHost,
    /// `ncl::pass()` — continue to the original destination (the implicit
    /// action on paths that do not return one).
    Pass,
}

impl ActionKind {
    /// Number of arguments the action takes.
    pub fn arg_count(self) -> usize {
        match self {
            ActionKind::SendToHost | ActionKind::SendToDevice | ActionKind::Multicast => 1,
            _ => 0,
        }
    }

    /// The `ncl::` function name.
    pub fn name(self) -> &'static str {
        match self {
            ActionKind::Drop => "drop",
            ActionKind::SendToHost => "send_to_host",
            ActionKind::SendToDevice => "send_to_device",
            ActionKind::Multicast => "multicast",
            ActionKind::Reflect => "reflect",
            ActionKind::Repeat => "repeat",
            ActionKind::ReflectHost => "reflect_host",
            ActionKind::Pass => "pass",
        }
    }

    /// Wire encoding of the action in the NetCL header (shared by codegen,
    /// the device runtime, and the bmv2 interpreter).
    pub fn code(self) -> u8 {
        match self {
            ActionKind::Pass => 0,
            ActionKind::Drop => 1,
            ActionKind::SendToHost => 2,
            ActionKind::SendToDevice => 3,
            ActionKind::Multicast => 4,
            ActionKind::Reflect => 5,
            ActionKind::Repeat => 6,
            ActionKind::ReflectHost => 7,
        }
    }

    /// Decodes a wire action code.
    pub fn from_code(code: u8) -> Option<ActionKind> {
        ActionKind::all().into_iter().find(|a| a.code() == code)
    }

    /// All actions, for table-driven tests.
    pub fn all() -> [ActionKind; 8] {
        [
            ActionKind::Drop,
            ActionKind::SendToHost,
            ActionKind::SendToDevice,
            ActionKind::Multicast,
            ActionKind::Reflect,
            ActionKind::Repeat,
            ActionKind::ReflectHost,
            ActionKind::Pass,
        ]
    }
}

/// The read-modify-write core of an atomic (§V-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtomicRmw {
    /// Wrapping add.
    Add,
    /// Saturating add (`sadd`).
    SAdd,
    /// Wrapping subtract.
    Sub,
    /// Saturating subtract (`ssub`).
    SSub,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
    /// Bitwise xor.
    Xor,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Increment by one (no value operand).
    Inc,
    /// Decrement by one, saturating at zero (no value operand).
    Dec,
    /// Unconditional store, returning the old value.
    Swap,
    /// Compare-and-swap (expected, desired operands).
    Cas,
    /// Plain atomic read (no modification).
    Read,
}

impl AtomicRmw {
    /// Number of value operands after the address (and after the condition
    /// for `_cond` forms).
    pub fn value_operands(self) -> usize {
        match self {
            AtomicRmw::Inc | AtomicRmw::Dec | AtomicRmw::Read => 0,
            AtomicRmw::Cas => 2,
            _ => 1,
        }
    }

    /// Applies the RMW to `old` with operands `ops`, at width `ty`, returning
    /// the new memory value. (Shared by the IR interpreter and bmv2's
    /// RegisterAction evaluation, so semantics are defined exactly once.)
    #[inline]
    pub fn apply(self, old: u64, ops: &[u64], ty: Ty) -> u64 {
        let m = |v: u64| ty.wrap(v);
        match self {
            AtomicRmw::Add => m(old.wrapping_add(ops[0])),
            AtomicRmw::SAdd => {
                let sum = old.saturating_add(ops[0]);
                if sum > ty.max_value() {
                    ty.max_value()
                } else {
                    sum
                }
            }
            AtomicRmw::Sub => m(old.wrapping_sub(ops[0])),
            AtomicRmw::SSub => old.saturating_sub(ops[0]),
            AtomicRmw::Or => m(old | ops[0]),
            AtomicRmw::And => m(old & ops[0]),
            AtomicRmw::Xor => m(old ^ ops[0]),
            AtomicRmw::Min => m(old.min(ops[0])),
            AtomicRmw::Max => m(old.max(ops[0])),
            AtomicRmw::Inc => m(old.wrapping_add(1)),
            AtomicRmw::Dec => old.saturating_sub(1),
            AtomicRmw::Swap => m(ops[0]),
            AtomicRmw::Cas => {
                if old == ops[0] {
                    m(ops[1])
                } else {
                    old
                }
            }
            AtomicRmw::Read => old,
        }
    }

    fn from_str(s: &str) -> Option<AtomicRmw> {
        Some(match s {
            "add" => AtomicRmw::Add,
            "sadd" => AtomicRmw::SAdd,
            "sub" => AtomicRmw::Sub,
            "ssub" => AtomicRmw::SSub,
            "or" => AtomicRmw::Or,
            "and" => AtomicRmw::And,
            "xor" => AtomicRmw::Xor,
            "min" => AtomicRmw::Min,
            "max" => AtomicRmw::Max,
            "inc" => AtomicRmw::Inc,
            "dec" => AtomicRmw::Dec,
            "swap" => AtomicRmw::Swap,
            "cas" => AtomicRmw::Cas,
            "read" => AtomicRmw::Read,
            _ => return None,
        })
    }
}

/// A fully-specified atomic operation: `atomic_[cond_]<op>[_new]`.
///
/// `cond` adds a boolean operand after the address: the RMW executes only
/// when it is true. `ret_new` returns the value *after* the operation
/// instead of the old one — and, crucially for the paper's AGG kernel
/// (§V-E), a conditional `_new` atomic whose condition is false returns the
/// *old* value, which is what makes one SALU execution serve both the
/// aggregation and retransmission paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AtomicOp {
    /// The RMW core.
    pub rmw: AtomicRmw,
    /// Conditional form.
    pub cond: bool,
    /// Return new value instead of old.
    pub ret_new: bool,
}

impl AtomicOp {
    /// Total operand count including address and condition.
    pub fn arg_count(self) -> usize {
        1 + self.cond as usize + self.rmw.value_operands()
    }

    /// Executes against `old`, returning `(new_memory, returned_value)`.
    #[inline]
    pub fn execute(self, old: u64, cond: bool, ops: &[u64], ty: Ty) -> (u64, u64) {
        let enabled = !self.cond || cond;
        let new = if enabled { self.rmw.apply(old, ops, ty) } else { old };
        let ret = if self.ret_new && enabled { new } else { old };
        (new, ret)
    }

    /// The `ncl::` spelling, e.g. `atomic_cond_add_new`.
    pub fn name(self) -> String {
        let mut s = String::from("atomic_");
        if self.cond {
            s.push_str("cond_");
        }
        s.push_str(match self.rmw {
            AtomicRmw::Add => "add",
            AtomicRmw::SAdd => "sadd",
            AtomicRmw::Sub => "sub",
            AtomicRmw::SSub => "ssub",
            AtomicRmw::Or => "or",
            AtomicRmw::And => "and",
            AtomicRmw::Xor => "xor",
            AtomicRmw::Min => "min",
            AtomicRmw::Max => "max",
            AtomicRmw::Inc => "inc",
            AtomicRmw::Dec => "dec",
            AtomicRmw::Swap => "swap",
            AtomicRmw::Cas => "cas",
            AtomicRmw::Read => "read",
        });
        if self.ret_new {
            s.push_str("_new");
        }
        s
    }

    fn parse(name: &str) -> Option<AtomicOp> {
        let rest = name.strip_prefix("atomic_")?;
        let (rest, cond) = match rest.strip_prefix("cond_") {
            Some(r) => (r, true),
            None => (rest, false),
        };
        let (core, ret_new) = match rest.strip_suffix("_new") {
            Some(r) => (r, true),
            None => (rest, false),
        };
        Some(AtomicOp { rmw: AtomicRmw::from_str(core)?, cond, ret_new })
    }
}

/// Hash algorithms available to device code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HashKind {
    /// `ncl::crc16` — CRC-16/ARC.
    Crc16,
    /// `ncl::crc32` / `ncl::crc32<N>`.
    Crc32,
    /// `ncl::xor16`.
    Xor16,
    /// `ncl::identity` — no mixing, truncation only.
    Identity,
}

impl HashKind {
    /// Natural output width before folding.
    pub fn native_bits(self) -> u8 {
        match self {
            HashKind::Crc16 | HashKind::Xor16 => 16,
            HashKind::Crc32 | HashKind::Identity => 32,
        }
    }

    /// Computes the hash of a key's little-endian bytes, folded to `bits`.
    #[inline]
    pub fn compute(self, key: u64, key_bytes: u32, bits: u8) -> u64 {
        let le = key.to_le_bytes();
        let data = &le[..key_bytes.min(8) as usize];
        let full = match self {
            HashKind::Crc16 => netcl_util::hash::crc16(data) as u32,
            HashKind::Crc32 => netcl_util::hash::crc32(data),
            HashKind::Xor16 => netcl_util::hash::xor16(data) as u32,
            HashKind::Identity => key as u32,
        };
        netcl_util::hash::fold_to_bits(full, bits as u32) as u64
    }
}

/// A resolved `ncl::` library call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Builtin {
    /// A forwarding action (Table II).
    Action(ActionKind),
    /// A global-memory atomic.
    Atomic(AtomicOp),
    /// `ncl::lookup(table, key [, out])`.
    Lookup,
    /// A hash with explicit output width.
    Hash(HashKind, u8),
    /// `ncl::sadd(a, b)` — saturating add (non-atomic).
    SAdd,
    /// `ncl::ssub(a, b)` — saturating subtract (non-atomic).
    SSub,
    /// `ncl::min(a, b)`.
    Min,
    /// `ncl::max(a, b)`.
    Max,
    /// `ncl::bit_chk(x, i)` — test bit `i`.
    BitChk,
    /// `ncl::bswap(x)` — byte swap (maps to bit-slice concatenation).
    Bswap,
    /// `ncl::clz(x)` — count leading zeros (maps to an LPM table).
    Clz,
    /// `ncl::rand<uN>()` — uniform random of the given width.
    Rand(u8),
    /// A target-specific intrinsic, e.g. `ncl::tna::crc64`. Carries the
    /// target namespace and intrinsic name; per-target backends validate.
    TargetIntrinsic {
        /// `tna` or `v1`.
        target: String,
        /// Intrinsic name within the namespace.
        name: String,
    },
}

/// Resolution errors distinguished for diagnostics.
#[derive(Debug, PartialEq, Eq)]
pub enum ResolveError {
    /// Not an `ncl::` path at all.
    NotNcl,
    /// `ncl::` path but unknown function.
    Unknown(String),
    /// Known function, malformed template arguments.
    BadTemplateArgs(String),
}

/// Resolves path segments + template constants into a [`Builtin`].
///
/// `targs` carries template *widths*: for `crc32<16>` it is `[16]`; for
/// `rand<u8>` the frontend passes the type's bit width.
pub fn resolve(segments: &[&str], targs: &[u64]) -> Result<Builtin, ResolveError> {
    if segments.first() != Some(&"ncl") {
        return Err(ResolveError::NotNcl);
    }
    match segments {
        ["ncl", name] => resolve_simple(name, targs),
        ["ncl", target @ ("tna" | "v1"), name] => {
            Ok(Builtin::TargetIntrinsic { target: target.to_string(), name: name.to_string() })
        }
        _ => Err(ResolveError::Unknown(segments.join("::"))),
    }
}

fn resolve_simple(name: &str, targs: &[u64]) -> Result<Builtin, ResolveError> {
    if let Some(op) = AtomicOp::parse(name) {
        return Ok(Builtin::Atomic(op));
    }
    for ak in ActionKind::all() {
        if ak.name() == name {
            return Ok(Builtin::Action(ak));
        }
    }
    let width_arg = |default: u8| -> Result<u8, ResolveError> {
        match targs {
            [] => Ok(default),
            [w] if (1..=64).contains(w) => Ok(*w as u8),
            _ => Err(ResolveError::BadTemplateArgs(name.to_string())),
        }
    };
    Ok(match name {
        "lookup" => Builtin::Lookup,
        "crc16" => Builtin::Hash(HashKind::Crc16, width_arg(16)?),
        "crc32" => Builtin::Hash(HashKind::Crc32, width_arg(32)?),
        "xor16" => Builtin::Hash(HashKind::Xor16, width_arg(16)?),
        "identity" => Builtin::Hash(HashKind::Identity, width_arg(32)?),
        "sadd" => Builtin::SAdd,
        "ssub" => Builtin::SSub,
        "min" => Builtin::Min,
        "max" => Builtin::Max,
        "bit_chk" => Builtin::BitChk,
        "bswap" => Builtin::Bswap,
        "clz" => Builtin::Clz,
        "rand" => Builtin::Rand(width_arg(32)?),
        other => return Err(ResolveError::Unknown(format!("ncl::{other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_name_grammar() {
        let op = AtomicOp::parse("atomic_sadd_new").unwrap();
        assert_eq!(op.rmw, AtomicRmw::SAdd);
        assert!(!op.cond);
        assert!(op.ret_new);
        assert_eq!(op.name(), "atomic_sadd_new");

        let op = AtomicOp::parse("atomic_cond_add_new").unwrap();
        assert!(op.cond && op.ret_new);
        assert_eq!(op.arg_count(), 3); // addr, cond, value

        let op = AtomicOp::parse("atomic_cond_dec").unwrap();
        assert_eq!(op.rmw, AtomicRmw::Dec);
        assert_eq!(op.arg_count(), 2); // addr, cond

        assert!(AtomicOp::parse("atomic_frob").is_none());
        assert!(AtomicOp::parse("atomicadd").is_none());
    }

    #[test]
    fn atomic_execute_semantics() {
        let ty = Ty::U8;
        // sadd_new saturates and returns new.
        let op = AtomicOp::parse("atomic_sadd_new").unwrap();
        assert_eq!(op.execute(250, true, &[10], ty), (255, 255));
        // cond=false leaves memory and returns old even for _new (paper §V-E:
        // retransmissions read the previous result).
        let op = AtomicOp::parse("atomic_cond_add_new").unwrap();
        assert_eq!(op.execute(7, false, &[5], ty), (7, 7));
        assert_eq!(op.execute(7, true, &[5], ty), (12, 12));
        // plain add returns old.
        let op = AtomicOp::parse("atomic_add").unwrap();
        assert_eq!(op.execute(7, true, &[5], ty), (12, 7));
        // dec saturates at 0.
        let op = AtomicOp::parse("atomic_dec").unwrap();
        assert_eq!(op.execute(0, true, &[], ty), (0, 0));
        // cas.
        let op = AtomicOp::parse("atomic_cas").unwrap();
        assert_eq!(op.execute(5, true, &[5, 9], ty), (9, 5));
        assert_eq!(op.execute(6, true, &[5, 9], ty), (6, 6));
    }

    #[test]
    fn rmw_wraps_at_width() {
        assert_eq!(AtomicRmw::Add.apply(255, &[1], Ty::U8), 0);
        assert_eq!(AtomicRmw::SAdd.apply(255, &[1], Ty::U8), 255);
        assert_eq!(AtomicRmw::Sub.apply(0, &[1], Ty::U8), 255);
        assert_eq!(AtomicRmw::SSub.apply(0, &[1], Ty::U8), 0);
    }

    #[test]
    fn resolve_actions() {
        assert_eq!(resolve(&["ncl", "drop"], &[]), Ok(Builtin::Action(ActionKind::Drop)));
        assert_eq!(resolve(&["ncl", "multicast"], &[]), Ok(Builtin::Action(ActionKind::Multicast)));
        assert_eq!(resolve(&["ncl", "pass"], &[]), Ok(Builtin::Action(ActionKind::Pass)));
    }

    #[test]
    fn resolve_hashes_with_widths() {
        assert_eq!(resolve(&["ncl", "crc32"], &[16]), Ok(Builtin::Hash(HashKind::Crc32, 16)));
        assert_eq!(resolve(&["ncl", "crc16"], &[]), Ok(Builtin::Hash(HashKind::Crc16, 16)));
        assert!(matches!(resolve(&["ncl", "crc32"], &[99]), Err(ResolveError::BadTemplateArgs(_))));
    }

    #[test]
    fn resolve_target_intrinsics() {
        match resolve(&["ncl", "tna", "crc64"], &[]) {
            Ok(Builtin::TargetIntrinsic { target, name }) => {
                assert_eq!(target, "tna");
                assert_eq!(name, "crc64");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn resolve_unknown() {
        assert!(matches!(resolve(&["ncl", "frobnicate"], &[]), Err(ResolveError::Unknown(_))));
        assert_eq!(resolve(&["std", "min"], &[]), Err(ResolveError::NotNcl));
    }

    #[test]
    fn hash_compute_matches_util() {
        let k = 0xDEAD_BEEFu64;
        assert_eq!(
            HashKind::Crc16.compute(k, 4, 16),
            netcl_util::hash::crc16(&(k as u32).to_le_bytes()) as u64
        );
        assert_eq!(
            HashKind::Crc32.compute(k, 4, 16),
            (netcl_util::hash::crc32(&(k as u32).to_le_bytes()) & 0xFFFF) as u64
        );
    }
}
