//! Recursive-descent parser for NetCL-C.
//!
//! Grammar follows C expression precedence exactly; statements are the C
//! subset §V admits plus the NetCL specifiers on declarations. The parser is
//! error-tolerant: on a syntax error it emits a diagnostic, synchronizes to
//! the next `;` or `}`, and keeps going, so a single pass reports as many
//! problems as possible.

use crate::ast::*;
use crate::token::{Keyword, Token, TokenKind};
use netcl_util::{DiagnosticSink, Interner, Span, Symbol};

/// Parses a full translation unit from a token stream.
pub fn parse_tokens(
    tokens: &[Token],
    interner: &mut Interner,
    diags: &mut DiagnosticSink,
) -> Program {
    let mut parser = Parser { tokens, pos: 0, interner, diags, next_id: 0 };
    parser.parse_program()
}

/// Library function names that accept template arguments in expression
/// position (`ncl::crc32<16>(k)`, `ncl::rand<u8>()`): anywhere else `<` is
/// the less-than operator.
const TEMPLATED_FNS: &[&str] = &["crc16", "crc32", "xor16", "rand", "identity", "csum16r"];

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    interner: &'a mut Interner,
    diags: &'a mut DiagnosticSink,
    next_id: u32,
}

impl<'a> Parser<'a> {
    // ---- token helpers -------------------------------------------------

    fn peek(&self) -> TokenKind {
        self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_ahead(&self, n: usize) -> TokenKind {
        self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)];
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Span {
        if self.at(kind) {
            self.bump().span
        } else {
            self.diags.error(
                "E0100",
                format!("expected {}, found {}", kind.describe(), self.peek().describe()),
                self.span(),
            );
            self.span()
        }
    }

    fn expect_ident(&mut self) -> (Symbol, Span) {
        match self.peek() {
            TokenKind::Ident(sym) => {
                let span = self.bump().span;
                (sym, span)
            }
            other => {
                self.diags.error(
                    "E0101",
                    format!("expected identifier, found {}", other.describe()),
                    self.span(),
                );
                (self.interner.intern("<error>"), self.span())
            }
        }
    }

    fn node_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn mk(&mut self, kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span, id: self.node_id() }
    }

    /// Skips tokens until a likely statement/item boundary.
    fn synchronize(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::Eof => return,
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- top level -----------------------------------------------------

    fn parse_program(&mut self) -> Program {
        let mut items = Vec::new();
        while !self.at(TokenKind::Eof) {
            let before = self.pos;
            match self.parse_item() {
                Some(item) => items.push(item),
                None => {
                    if self.pos == before {
                        self.synchronize();
                        if self.pos == before {
                            self.bump();
                        }
                    }
                }
            }
        }
        Program { items }
    }

    fn parse_item(&mut self) -> Option<Item> {
        let specs = self.parse_specifiers();
        let start = if specs.span.is_dummy() { self.span() } else { specs.span };
        let ty = self.parse_type()?;
        let (name, _) = self.expect_ident();
        if self.at(TokenKind::LParen) {
            self.parse_function_rest(specs, ty, name, start).map(Item::Function)
        } else {
            self.parse_global_rest(specs, ty, name, start).map(Item::Global)
        }
    }

    fn parse_specifiers(&mut self) -> Specifiers {
        let mut specs = Specifiers { span: Span::DUMMY, ..Default::default() };
        loop {
            let span = self.span();
            match self.peek() {
                TokenKind::Keyword(Keyword::KernelSpec) => {
                    self.bump();
                    self.expect(TokenKind::LParen);
                    let e = self.parse_expr();
                    let end = self.expect(TokenKind::RParen);
                    if specs.kernel.is_some() {
                        self.diags.error("E0102", "duplicate `_kernel` specifier", span);
                    }
                    specs.kernel = Some((Box::new(e), span.to(end)));
                }
                TokenKind::Keyword(Keyword::AtSpec) => {
                    self.bump();
                    self.expect(TokenKind::LParen);
                    let mut locs = Vec::new();
                    if !self.at(TokenKind::RParen) {
                        locs.push(self.parse_expr());
                        while self.eat(TokenKind::Comma) {
                            locs.push(self.parse_expr());
                        }
                    }
                    let end = self.expect(TokenKind::RParen);
                    if specs.at.is_some() {
                        self.diags.error("E0103", "duplicate `_at` specifier", span);
                    }
                    specs.at = Some((locs, span.to(end)));
                }
                TokenKind::Keyword(Keyword::NetSpec) => {
                    self.bump();
                    specs.is_net = true;
                }
                TokenKind::Keyword(Keyword::ManagedSpec) => {
                    self.bump();
                    specs.is_managed = true;
                }
                TokenKind::Keyword(Keyword::LookupSpec) => {
                    self.bump();
                    specs.is_lookup = true;
                }
                TokenKind::Keyword(Keyword::Const) => {
                    self.bump();
                    specs.is_const = true;
                }
                TokenKind::Keyword(Keyword::Static) => {
                    self.bump();
                    specs.is_static = true;
                }
                _ => break,
            }
            specs.span = specs.span.to(span).to(self.prev_span());
        }
        specs
    }

    fn parse_function_rest(
        &mut self,
        specs: Specifiers,
        ret: TypeExpr,
        name: Symbol,
        start: Span,
    ) -> Option<FunctionDecl> {
        self.expect(TokenKind::LParen);
        let mut params = Vec::new();
        if !self.at(TokenKind::RParen) {
            loop {
                if let Some(p) = self.parse_param() {
                    params.push(p);
                }
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen);
        let body = if self.at(TokenKind::LBrace) {
            Some(self.parse_block())
        } else {
            self.expect(TokenKind::Semi);
            None
        };
        let span = start.to(self.prev_span());
        Some(FunctionDecl { name, specs, ret, params, body, span })
    }

    fn parse_param(&mut self) -> Option<Param> {
        let start = self.span();
        // `const` on parameters is accepted and ignored.
        while self.eat(TokenKind::Keyword(Keyword::Const)) {}
        let ty = self.parse_type()?;
        // `_spec(n)` may appear between type and declarator (paper Fig. 7).
        let mut spec = None;
        if self.eat(TokenKind::Keyword(Keyword::SpecSpec)) {
            self.expect(TokenKind::LParen);
            spec = Some(self.parse_expr());
            self.expect(TokenKind::RParen);
        }
        let mode = if self.eat(TokenKind::Star) {
            PassMode::Pointer
        } else if self.eat(TokenKind::Amp) {
            PassMode::Reference
        } else {
            PassMode::Value
        };
        let (name, _) = self.expect_ident();
        let mut dims = Vec::new();
        while self.eat(TokenKind::LBracket) {
            dims.push(self.parse_expr());
            self.expect(TokenKind::RBracket);
        }
        if spec.is_some() && mode != PassMode::Pointer {
            self.diags.error("E0104", "`_spec` only applies to pointer parameters", start);
        }
        Some(Param { name, ty, mode, dims, spec, span: start.to(self.prev_span()) })
    }

    fn parse_global_rest(
        &mut self,
        specs: Specifiers,
        ty: TypeExpr,
        name: Symbol,
        start: Span,
    ) -> Option<GlobalDecl> {
        let mut dims = Vec::new();
        while self.eat(TokenKind::LBracket) {
            if self.eat(TokenKind::RBracket) {
                dims.push(None);
            } else {
                dims.push(Some(self.parse_expr()));
                self.expect(TokenKind::RBracket);
            }
        }
        let init = if self.eat(TokenKind::Eq) { Some(self.parse_init()) } else { None };
        self.expect(TokenKind::Semi);
        let span = start.to(self.prev_span());
        Some(GlobalDecl { name, specs, ty, dims, init, span })
    }

    fn parse_init(&mut self) -> Init {
        if self.at(TokenKind::LBrace) {
            let start = self.bump().span;
            let mut items = Vec::new();
            if !self.at(TokenKind::RBrace) {
                loop {
                    items.push(self.parse_init());
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                    // Allow trailing comma.
                    if self.at(TokenKind::RBrace) {
                        break;
                    }
                }
            }
            let end = self.expect(TokenKind::RBrace);
            Init::List(items, start.to(end))
        } else {
            Init::Expr(self.parse_expr())
        }
    }

    // ---- types ---------------------------------------------------------

    /// Parses a type; returns `None` (with a diagnostic) if no type is here.
    fn parse_type(&mut self) -> Option<TypeExpr> {
        use Keyword as K;
        let t = self.peek();
        match t {
            TokenKind::Keyword(kw) => {
                let ty = match kw {
                    K::Void => {
                        self.bump();
                        TypeExpr::Void
                    }
                    K::Bool => {
                        self.bump();
                        TypeExpr::Bool
                    }
                    K::Auto => {
                        self.bump();
                        TypeExpr::Auto
                    }
                    K::Char => {
                        self.bump();
                        TypeExpr::U8
                    }
                    K::Int => {
                        self.bump();
                        TypeExpr::I32
                    }
                    K::Short => {
                        self.bump();
                        self.eat(TokenKind::Keyword(K::Int));
                        TypeExpr::Int { bits: 16, signed: true }
                    }
                    K::Long => {
                        self.bump();
                        self.eat(TokenKind::Keyword(K::Long));
                        self.eat(TokenKind::Keyword(K::Int));
                        TypeExpr::Int { bits: 64, signed: true }
                    }
                    K::Signed | K::Unsigned => {
                        let signed = kw == K::Signed;
                        self.bump();
                        let bits = match self.peek() {
                            TokenKind::Keyword(K::Char) => {
                                self.bump();
                                8
                            }
                            TokenKind::Keyword(K::Short) => {
                                self.bump();
                                self.eat(TokenKind::Keyword(K::Int));
                                16
                            }
                            TokenKind::Keyword(K::Long) => {
                                self.bump();
                                self.eat(TokenKind::Keyword(K::Long));
                                self.eat(TokenKind::Keyword(K::Int));
                                64
                            }
                            TokenKind::Keyword(K::Int) => {
                                self.bump();
                                32
                            }
                            _ => 32,
                        };
                        TypeExpr::Int { bits, signed }
                    }
                    K::Uint8T => {
                        self.bump();
                        TypeExpr::U8
                    }
                    K::Uint16T => {
                        self.bump();
                        TypeExpr::U16
                    }
                    K::Uint32T => {
                        self.bump();
                        TypeExpr::U32
                    }
                    K::Uint64T => {
                        self.bump();
                        TypeExpr::U64
                    }
                    K::Int8T => {
                        self.bump();
                        TypeExpr::Int { bits: 8, signed: true }
                    }
                    K::Int16T => {
                        self.bump();
                        TypeExpr::Int { bits: 16, signed: true }
                    }
                    K::Int32T => {
                        self.bump();
                        TypeExpr::I32
                    }
                    K::Int64T => {
                        self.bump();
                        TypeExpr::Int { bits: 64, signed: true }
                    }
                    K::Const => {
                        self.bump();
                        return self.parse_type();
                    }
                    _ => {
                        self.diags.error(
                            "E0105",
                            format!("expected type, found {}", t.describe()),
                            self.span(),
                        );
                        return None;
                    }
                };
                Some(ty)
            }
            TokenKind::Ident(sym) => {
                // Could be `ncl::kv<K,V>` / `ncl::rv<R,V>` or an unknown name.
                if self.interner.resolve(sym) == "ncl"
                    && self.peek_ahead(1) == TokenKind::ColonColon
                {
                    self.bump(); // ncl
                    self.bump(); // ::
                    let (seg, seg_span) = self.expect_ident();
                    let seg_name = self.interner.resolve(seg).to_string();
                    match seg_name.as_str() {
                        "kv" | "rv" => {
                            self.expect(TokenKind::Lt);
                            let a = self.parse_type()?;
                            self.expect(TokenKind::Comma);
                            let b = self.parse_type()?;
                            self.close_template_angle();
                            Some(if seg_name == "kv" {
                                TypeExpr::Kv(Box::new(a), Box::new(b))
                            } else {
                                TypeExpr::Rv(Box::new(a), Box::new(b))
                            })
                        }
                        other => {
                            self.diags.error(
                                "E0106",
                                format!("unknown ncl type `ncl::{other}`"),
                                seg_span,
                            );
                            None
                        }
                    }
                } else {
                    // Unknown named type: consume and let sema report usage.
                    self.bump();
                    Some(TypeExpr::Named(sym))
                }
            }
            _ => {
                self.diags.error(
                    "E0105",
                    format!("expected type, found {}", t.describe()),
                    self.span(),
                );
                None
            }
        }
    }

    /// Consumes a closing `>` of a template list, splitting `>>` if needed.
    fn close_template_angle(&mut self) {
        match self.peek() {
            TokenKind::Gt => {
                self.bump();
            }
            TokenKind::Shr => {
                // Split `>>` into two `>`: rewrite in place by shrinking span.
                let tok = self.tokens[self.pos];
                self.pos += 1;
                // The second `>` is synthesized by *not* requiring another
                // close: callers nesting two levels call this twice, so we
                // push a marker by rewinding onto a virtual Gt. Since token
                // storage is borrowed, emulate by treating the next close as
                // already consumed via a flag... Simplest correct approach:
                // NetCL type grammar never nests template types (kv/rv take
                // scalar keys), so a bare `>>` here is an error.
                self.diags.error(
                    "E0107",
                    "nested template arguments are not supported in NetCL types",
                    tok.span,
                );
            }
            other => {
                self.diags.error(
                    "E0100",
                    format!("expected `>`, found {}", other.describe()),
                    self.span(),
                );
            }
        }
    }

    // ---- statements ------------------------------------------------------

    fn parse_block(&mut self) -> Block {
        let start = self.expect(TokenKind::LBrace);
        let mut stmts = Vec::new();
        while !self.at(TokenKind::RBrace) && !self.at(TokenKind::Eof) {
            let before = self.pos;
            if let Some(s) = self.parse_stmt() {
                stmts.push(s);
            } else if self.pos == before {
                self.synchronize();
                if self.pos == before {
                    self.bump();
                }
            }
        }
        let end = self.expect(TokenKind::RBrace);
        Block { stmts, span: start.to(end) }
    }

    /// Wraps a single statement into a block unless it already is one.
    fn parse_stmt_as_block(&mut self) -> Block {
        if self.at(TokenKind::LBrace) {
            self.parse_block()
        } else {
            match self.parse_stmt() {
                Some(s) => {
                    let span = s.span();
                    Block { stmts: vec![s], span }
                }
                None => Block::default(),
            }
        }
    }

    fn starts_decl(&self) -> bool {
        match self.peek() {
            TokenKind::Keyword(kw) => kw.starts_type(),
            TokenKind::Ident(sym) => {
                // `ncl::kv<...>` local declarations (rare but legal).
                // Heuristic: ident `ncl` followed by `::kv` or `::rv`.
                if self.peek_ahead(1) == TokenKind::ColonColon {
                    if let TokenKind::Ident(_) = self.peek_ahead(2) {
                        // Can't resolve without interner access here; handled
                        // in parse_stmt via lookahead on resolved names.
                        let _ = sym;
                        return false;
                    }
                }
                false
            }
            _ => false,
        }
    }

    fn parse_stmt(&mut self) -> Option<Stmt> {
        let start = self.span();
        match self.peek() {
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect(TokenKind::LParen);
                let cond = self.parse_expr();
                self.expect(TokenKind::RParen);
                let then = self.parse_stmt_as_block();
                let els = if self.eat(TokenKind::Keyword(Keyword::Else)) {
                    Some(self.parse_stmt_as_block())
                } else {
                    None
                };
                Some(Stmt::If { cond, then, els, span: start.to(self.prev_span()) })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect(TokenKind::LParen);
                let init = if self.at(TokenKind::Semi) {
                    self.bump();
                    None
                } else if self.starts_decl() {
                    let d = self.parse_local_decl()?;
                    Some(Box::new(Stmt::Decl(d)))
                } else {
                    let e = self.parse_expr();
                    self.expect(TokenKind::Semi);
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if self.at(TokenKind::Semi) { None } else { Some(self.parse_expr()) };
                self.expect(TokenKind::Semi);
                let step = if self.at(TokenKind::RParen) { None } else { Some(self.parse_expr()) };
                self.expect(TokenKind::RParen);
                let body = self.parse_stmt_as_block();
                Some(Stmt::For { init, cond, step, body, span: start.to(self.prev_span()) })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect(TokenKind::LParen);
                let cond = self.parse_expr();
                self.expect(TokenKind::RParen);
                let body = self.parse_stmt_as_block();
                Some(Stmt::While { cond, body, span: start.to(self.prev_span()) })
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.diags.error("E0108", "`do`/`while` loops are not supported in NetCL device code; use `for` or `while`", start);
                self.synchronize();
                None
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.at(TokenKind::Semi) { None } else { Some(self.parse_expr()) };
                self.expect(TokenKind::Semi);
                Some(Stmt::Return { value, span: start.to(self.prev_span()) })
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect(TokenKind::Semi);
                Some(Stmt::Break(start))
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect(TokenKind::Semi);
                Some(Stmt::Continue(start))
            }
            TokenKind::LBrace => Some(Stmt::Block(self.parse_block())),
            TokenKind::Semi => {
                self.bump();
                // Empty statement: normalized to an empty block.
                Some(Stmt::Block(Block { stmts: vec![], span: start }))
            }
            _ if self.starts_decl() => self.parse_local_decl().map(Stmt::Decl),
            _ => {
                let e = self.parse_expr();
                self.expect(TokenKind::Semi);
                Some(Stmt::Expr(e))
            }
        }
    }

    fn parse_local_decl(&mut self) -> Option<LocalDecl> {
        let start = self.span();
        let ty = self.parse_type()?;
        let (name, _) = self.expect_ident();
        let mut dims = Vec::new();
        while self.eat(TokenKind::LBracket) {
            dims.push(self.parse_expr());
            self.expect(TokenKind::RBracket);
        }
        let init = if self.eat(TokenKind::Eq) { Some(self.parse_init()) } else { None };
        // Comma-chained declarations (`int a, b;`) share the type.
        if self.at(TokenKind::Comma) {
            self.diags.error(
                "E0109",
                "multiple declarators per statement are not supported; declare each variable separately",
                self.span(),
            );
            while !self.at(TokenKind::Semi) && !self.at(TokenKind::Eof) {
                self.bump();
            }
        }
        self.expect(TokenKind::Semi);
        Some(LocalDecl { name, ty, dims, init, span: start.to(self.prev_span()) })
    }

    // ---- expressions -----------------------------------------------------

    fn parse_expr(&mut self) -> Expr {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> Expr {
        let lhs = self.parse_ternary();
        let op = match self.peek() {
            TokenKind::Eq => None,
            TokenKind::PlusEq => Some(BinOp::Add),
            TokenKind::MinusEq => Some(BinOp::Sub),
            TokenKind::StarEq => Some(BinOp::Mul),
            TokenKind::SlashEq => Some(BinOp::Div),
            TokenKind::PercentEq => Some(BinOp::Rem),
            TokenKind::AmpEq => Some(BinOp::And),
            TokenKind::PipeEq => Some(BinOp::Or),
            TokenKind::CaretEq => Some(BinOp::Xor),
            TokenKind::ShlEq => Some(BinOp::Shl),
            TokenKind::ShrEq => Some(BinOp::Shr),
            _ => return lhs,
        };
        self.bump();
        let rhs = self.parse_assign();
        let span = lhs.span.to(rhs.span);
        self.mk(ExprKind::Assign { op, target: Box::new(lhs), value: Box::new(rhs) }, span)
    }

    fn parse_ternary(&mut self) -> Expr {
        let cond = self.parse_binary(0);
        if self.eat(TokenKind::Question) {
            let then = self.parse_expr();
            self.expect(TokenKind::Colon);
            let els = self.parse_ternary();
            let span = cond.span.to(els.span);
            self.mk(ExprKind::Ternary(Box::new(cond), Box::new(then), Box::new(els)), span)
        } else {
            cond
        }
    }

    /// Precedence-climbing binary expression parser.
    fn parse_binary(&mut self, min_prec: u8) -> Expr {
        let mut lhs = self.parse_unary();
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::PipePipe => (BinOp::LogicalOr, 1),
                TokenKind::AmpAmp => (BinOp::LogicalAnd, 2),
                TokenKind::Pipe => (BinOp::Or, 3),
                TokenKind::Caret => (BinOp::Xor, 4),
                TokenKind::Amp => (BinOp::And, 5),
                TokenKind::EqEq => (BinOp::Eq, 6),
                TokenKind::Ne => (BinOp::Ne, 6),
                TokenKind::Lt => (BinOp::Lt, 7),
                TokenKind::Le => (BinOp::Le, 7),
                TokenKind::Gt => (BinOp::Gt, 7),
                TokenKind::Ge => (BinOp::Ge, 7),
                TokenKind::Shl => (BinOp::Shl, 8),
                TokenKind::Shr => (BinOp::Shr, 8),
                TokenKind::Plus => (BinOp::Add, 9),
                TokenKind::Minus => (BinOp::Sub, 9),
                TokenKind::Star => (BinOp::Mul, 10),
                TokenKind::Slash => (BinOp::Div, 10),
                TokenKind::Percent => (BinOp::Rem, 10),
                _ => return lhs,
            };
            if prec < min_prec {
                return lhs;
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1);
            let span = lhs.span.to(rhs.span);
            lhs = self.mk(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
    }

    fn parse_unary(&mut self) -> Expr {
        let start = self.span();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let e = self.parse_unary();
                let span = start.to(e.span);
                self.mk(ExprKind::Unary(UnOp::Neg, Box::new(e)), span)
            }
            TokenKind::Bang => {
                self.bump();
                let e = self.parse_unary();
                let span = start.to(e.span);
                self.mk(ExprKind::Unary(UnOp::Not, Box::new(e)), span)
            }
            TokenKind::Tilde => {
                self.bump();
                let e = self.parse_unary();
                let span = start.to(e.span);
                self.mk(ExprKind::Unary(UnOp::BitNot, Box::new(e)), span)
            }
            TokenKind::Amp => {
                self.bump();
                let e = self.parse_unary();
                let span = start.to(e.span);
                self.mk(ExprKind::Unary(UnOp::AddrOf, Box::new(e)), span)
            }
            TokenKind::Star => {
                self.bump();
                let e = self.parse_unary();
                let span = start.to(e.span);
                self.mk(ExprKind::Unary(UnOp::Deref, Box::new(e)), span)
            }
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                let inc = self.peek() == TokenKind::PlusPlus;
                self.bump();
                let e = self.parse_unary();
                let span = start.to(e.span);
                self.mk(ExprKind::IncDec { inc, postfix: false, expr: Box::new(e) }, span)
            }
            TokenKind::Keyword(Keyword::Sizeof) => {
                self.bump();
                self.expect(TokenKind::LParen);
                let ty = self.parse_type().unwrap_or(TypeExpr::I32);
                let end = self.expect(TokenKind::RParen);
                self.mk(ExprKind::Sizeof(ty), start.to(end))
            }
            TokenKind::LParen if self.is_cast_paren() => {
                self.bump();
                let ty = self.parse_type().unwrap_or(TypeExpr::I32);
                self.expect(TokenKind::RParen);
                let e = self.parse_unary();
                let span = start.to(e.span);
                self.mk(ExprKind::Cast(ty, Box::new(e)), span)
            }
            _ => self.parse_postfix(),
        }
    }

    /// Whether `(` begins a C-style cast: `(` followed by a type keyword.
    fn is_cast_paren(&self) -> bool {
        matches!(self.peek_ahead(1), TokenKind::Keyword(kw) if kw.starts_type())
    }

    fn parse_postfix(&mut self) -> Expr {
        let mut e = self.parse_primary();
        loop {
            let start = e.span;
            match self.peek() {
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expr());
                            if !self.eat(TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(TokenKind::RParen);
                    e = self.mk(ExprKind::Call { callee: Box::new(e), args }, start.to(end));
                }
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.parse_expr();
                    let end = self.expect(TokenKind::RBracket);
                    e = self.mk(ExprKind::Index(Box::new(e), Box::new(idx)), start.to(end));
                }
                TokenKind::Dot => {
                    self.bump();
                    let (field, fspan) = self.expect_ident();
                    e = self.mk(ExprKind::Member(Box::new(e), field), start.to(fspan));
                }
                TokenKind::PlusPlus | TokenKind::MinusMinus => {
                    let inc = self.peek() == TokenKind::PlusPlus;
                    let end = self.bump().span;
                    e = self.mk(
                        ExprKind::IncDec { inc, postfix: true, expr: Box::new(e) },
                        start.to(end),
                    );
                }
                _ => return e,
            }
        }
    }

    fn parse_primary(&mut self) -> Expr {
        let start = self.span();
        match self.peek() {
            TokenKind::Int(v) => {
                self.bump();
                self.mk(ExprKind::Int(v), start)
            }
            TokenKind::Char(c) => {
                self.bump();
                self.mk(ExprKind::Char(c), start)
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                self.mk(ExprKind::Bool(true), start)
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                self.mk(ExprKind::Bool(false), start)
            }
            TokenKind::Ident(sym) => {
                self.bump();
                if self.at(TokenKind::ColonColon) {
                    self.parse_path_rest(sym, start)
                } else {
                    self.mk(ExprKind::Ident(sym), start)
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr();
                self.expect(TokenKind::RParen);
                e
            }
            other => {
                self.diags.error(
                    "E0110",
                    format!("expected expression, found {}", other.describe()),
                    start,
                );
                self.bump();
                self.mk(ExprKind::Error, start)
            }
        }
    }

    fn parse_path_rest(&mut self, first: Symbol, start: Span) -> Expr {
        let mut segments = vec![first];
        while self.eat(TokenKind::ColonColon) {
            let (seg, _) = self.expect_ident();
            segments.push(seg);
        }
        let mut targs = Vec::new();
        let last = *segments.last().unwrap();
        let last_name = self.interner.resolve(last).to_string();
        if self.at(TokenKind::Lt) && TEMPLATED_FNS.contains(&last_name.as_str()) {
            self.bump();
            loop {
                match self.peek() {
                    TokenKind::Int(v) => {
                        self.bump();
                        targs.push(TemplateArg::Const(v));
                    }
                    TokenKind::Keyword(kw) if kw.starts_type() => {
                        if let Some(ty) = self.parse_type() {
                            targs.push(TemplateArg::Type(ty));
                        }
                    }
                    TokenKind::Ident(s)
                        if matches!(
                            self.interner.resolve(s),
                            "u8" | "u16" | "u32" | "u64" | "i8" | "i16" | "i32" | "i64"
                        ) =>
                    {
                        let name = self.interner.resolve(s).to_string();
                        self.bump();
                        let bits: u8 = name[1..].parse().unwrap();
                        let signed = name.starts_with('i');
                        targs.push(TemplateArg::Type(TypeExpr::Int { bits, signed }));
                    }
                    other => {
                        self.diags.error(
                            "E0111",
                            format!("expected template argument, found {}", other.describe()),
                            self.span(),
                        );
                        break;
                    }
                }
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            self.close_template_angle();
        }
        self.mk(ExprKind::Path { segments, targs }, start.to(self.prev_span()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> (Program, Interner) {
        let mut interner = Interner::new();
        let mut diags = DiagnosticSink::new();
        let toks = lex(src, &mut interner, &mut diags);
        let prog = parse_tokens(&toks, &mut interner, &mut diags);
        assert!(!diags.has_errors(), "unexpected errors: {:?}", diags.diagnostics());
        (prog, interner)
    }

    fn parse_err(src: &str) -> DiagnosticSink {
        let mut interner = Interner::new();
        let mut diags = DiagnosticSink::new();
        let toks = lex(src, &mut interner, &mut diags);
        let _ = parse_tokens(&toks, &mut interner, &mut diags);
        assert!(diags.has_errors(), "expected errors for {src}");
        diags
    }

    #[test]
    fn parses_global_array() {
        let (p, i) = parse_ok("_managed_ unsigned cms[3][65536];");
        let g = p.globals().next().unwrap();
        assert!(g.specs.is_managed);
        assert_eq!(i.resolve(g.name), "cms");
        assert_eq!(g.ty, TypeExpr::U32);
        assert_eq!(g.dims.len(), 2);
    }

    #[test]
    fn parses_kernel_with_refs() {
        let (p, i) = parse_ok(
            "_kernel(1) _at(1) void query(char op, unsigned k, unsigned &v, char &hit) { }",
        );
        let f = p.functions().next().unwrap();
        assert!(f.is_kernel());
        assert_eq!(i.resolve(f.name), "query");
        assert_eq!(f.params.len(), 4);
        assert_eq!(f.params[0].mode, PassMode::Value);
        assert_eq!(f.params[2].mode, PassMode::Reference);
        assert!(f.specs.at.is_some());
    }

    #[test]
    fn parses_spec_pointer_param() {
        let (p, _) = parse_ok("_kernel(1) void f(uint32_t _spec(32) *v) {}");
        let f = p.functions().next().unwrap();
        assert_eq!(f.params[0].mode, PassMode::Pointer);
        assert!(f.params[0].spec.is_some());
    }

    #[test]
    fn parses_array_param_no_decay() {
        let (p, _) = parse_ok("_kernel(1) void a(int x[3]) {}");
        let f = p.functions().next().unwrap();
        assert_eq!(f.params[0].dims.len(), 1);
        assert_eq!(f.params[0].mode, PassMode::Value);
    }

    #[test]
    fn parses_lookup_kv_initializer() {
        let (p, _) =
            parse_ok("_net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42},{2,42}};");
        let g = p.globals().next().unwrap();
        assert!(g.specs.is_lookup);
        assert!(matches!(g.ty, TypeExpr::Kv(_, _)));
        assert_eq!(g.dims.len(), 1);
        assert!(g.dims[0].is_none());
        match &g.init {
            Some(Init::List(items, _)) => assert_eq!(items.len(), 2),
            other => panic!("expected list init, got {other:?}"),
        }
    }

    #[test]
    fn parses_figure4_sketch() {
        let src = r#"
#define CMS_HASHES 3
#define THRESH 512
_managed_ unsigned cms[CMS_HASHES][65536];
_net_ void sketch(unsigned k, unsigned &hot) {
  unsigned c[CMS_HASHES];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k)], 1);
  for (auto i = 1; i < CMS_HASHES; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  hot = c[0] > THRESH ? c[0] : 0;
}
"#;
        let (unit, diags) = crate::parse("fig4.ncl", src);
        assert!(!diags.has_errors(), "{}", diags.render_all(&unit.source_map));
        assert_eq!(unit.program.items.len(), 2);
        let f = unit.program.functions().next().unwrap();
        assert!(f.is_net());
        assert_eq!(f.params.len(), 2);
        let body = f.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 6);
        assert!(matches!(body.stmts[5], Stmt::Expr(_))); // hot = ...
        assert!(matches!(body.stmts[4], Stmt::For { .. }));
    }

    #[test]
    fn parses_return_action() {
        let (p, _) = parse_ok(
            "_kernel(1) void k(unsigned x) { if (x) return ncl::reflect(); return ncl::drop(); }",
        );
        let f = p.functions().next().unwrap();
        let body = f.body.as_ref().unwrap();
        assert!(matches!(&body.stmts[1], Stmt::Return { value: Some(_), .. }));
    }

    #[test]
    fn parses_ternary_and_shift() {
        let (p, _) =
            parse_ok("_net_ void f(unsigned x, unsigned &o) { o = x > 2 ? x << 1 : x >> 1; }");
        let f = p.functions().next().unwrap();
        match &f.body.as_ref().unwrap().stmts[0] {
            Stmt::Expr(e) => match &e.kind {
                ExprKind::Assign { value, .. } => {
                    assert!(matches!(value.kind, ExprKind::Ternary(..)))
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_device_id_member() {
        let (p, i) = parse_ok("_kernel(1) void k(unsigned &x) { x = device.id; }");
        let f = p.functions().next().unwrap();
        match &f.body.as_ref().unwrap().stmts[0] {
            Stmt::Expr(e) => match &e.kind {
                ExprKind::Assign { value, .. } => match &value.kind {
                    ExprKind::Member(base, field) => {
                        assert!(matches!(base.kind, ExprKind::Ident(_)));
                        assert_eq!(i.resolve(*field), "id");
                    }
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_cast() {
        let (p, _) = parse_ok("_net_ void f(unsigned x, uint16_t &o) { o = (uint16_t)x; }");
        let f = p.functions().next().unwrap();
        match &f.body.as_ref().unwrap().stmts[0] {
            Stmt::Expr(e) => match &e.kind {
                ExprKind::Assign { value, .. } => {
                    assert!(matches!(value.kind, ExprKind::Cast(TypeExpr::Int { bits: 16, .. }, _)))
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let (p, _) = parse_ok("_net_ void f(int a, int b, int c, int &o) { o = a + b * c; }");
        let f = p.functions().next().unwrap();
        match &f.body.as_ref().unwrap().stmts[0] {
            Stmt::Expr(e) => match &e.kind {
                ExprKind::Assign { value, .. } => match &value.kind {
                    ExprKind::Binary(BinOp::Add, _, rhs) => {
                        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)))
                    }
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiple_declarators_rejected() {
        let d = parse_err("_net_ void f() { int a, b; }");
        assert!(d.has_code("E0109"));
    }

    #[test]
    fn do_while_rejected() {
        let d = parse_err("_net_ void f() { do { } while (1); }");
        assert!(d.has_code("E0108"));
    }

    #[test]
    fn recovery_continues_after_error() {
        let mut interner = Interner::new();
        let mut diags = DiagnosticSink::new();
        let toks =
            lex("_net_ void f() { int x = $$; } _net_ void g() {}", &mut interner, &mut diags);
        let p = parse_tokens(&toks, &mut interner, &mut diags);
        assert!(diags.has_errors());
        // g still parsed.
        assert_eq!(p.functions().count(), 2);
    }

    #[test]
    fn allreduce_figure7_parses() {
        let src = r#"
#define NUM_SLOTS 2048
#define SLOT_SIZE 32
#define NUM_WORKERS 6
_net_ uint16_t Bitmap[2][NUM_SLOTS];
_net_ uint32_t Agg[SLOT_SIZE][NUM_SLOTS * 2];
_net_ uint8_t Count[NUM_SLOTS * 2];

_kernel(1) void allreduce( uint8_t ver, uint16_t bmp_idx,
                           uint16_t agg_idx, uint16_t mask,
                           uint32_t _spec(SLOT_SIZE) *v) {
  uint16_t bitmap;
  if (ver == 0) {
    bitmap = ncl::atomic_or(&Bitmap[0][bmp_idx], mask);
    ncl::atomic_and(&Bitmap[1][bmp_idx], ~mask);
  } else {
    ncl::atomic_and(&Bitmap[0][bmp_idx], ~mask);
    bitmap = ncl::atomic_or(&Bitmap[1][bmp_idx], mask);
  }
  if (bitmap == 0) {
    for (auto i = 0; i < SLOT_SIZE; ++i)
      Agg[i][agg_idx] = v[i];
    Count[agg_idx] = NUM_WORKERS - 1;
  } else {
    auto seen = bitmap & mask;
    for (auto i = 0; i < SLOT_SIZE; ++i)
      v[i] = ncl::atomic_cond_add_new(&Agg[i][agg_idx], !seen, v[i]);
    auto cnt = ncl::atomic_cond_dec(&Count[agg_idx], !seen);
    if (cnt == 0)
      return ncl::reflect();
    if (cnt == 1)
      return ncl::multicast(42);
  }
  return ncl::drop();
}
"#;
        let (unit, diags) = crate::parse("agg.ncl", src);
        assert!(!diags.has_errors(), "{}", diags.render_all(&unit.source_map));
        assert_eq!(unit.program.globals().count(), 3);
        let k = unit.program.functions().next().unwrap();
        assert_eq!(k.params.len(), 5);
        assert!(k.params[4].spec.is_some());
    }
}
