//! The hash functions exposed by the NetCL device library (Table I) and used
//! by the Tofino hash engines.
//!
//! These are bit-exact implementations of the algorithms a TNA `Hash` extern
//! can be configured with: CRC-16 (ARC polynomial, as `HashAlgorithm_t.CRC16`),
//! CRC-32 (IEEE 802.3, as `HashAlgorithm_t.CRC32`), and a 16-bit XOR fold
//! (`HashAlgorithm_t.XOR16`). The compiler maps `ncl::crc16`, `ncl::crc32<N>`
//! and `ncl::xor16` calls onto these, and the bmv2 interpreter evaluates
//! generated `Hash.apply` nodes with the same code, so host-side sketches and
//! in-switch sketches agree exactly.

/// CRC-16/ARC: polynomial 0x8005 (reflected 0xA001), init 0, no final xor.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0;
    for &b in data {
        crc ^= b as u16;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0xA001;
            } else {
                crc >>= 1;
            }
        }
    }
    crc
}

/// CRC-32/IEEE (zlib): polynomial 0x04C11DB7 (reflected 0xEDB88320).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0xEDB8_8320;
            } else {
                crc >>= 1;
            }
        }
    }
    !crc
}

/// XOR-fold of the input into 16 bits, processing little-endian 16-bit lanes.
///
/// Odd trailing bytes contribute as the low half of a lane.
pub fn xor16(data: &[u8]) -> u16 {
    let mut acc: u16 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc ^= u16::from_le_bytes([c[0], c[1]]);
    }
    if let [last] = chunks.remainder() {
        acc ^= *last as u16;
    }
    acc
}

/// Truncates/folds a hash to `bits` output bits (1..=32), as the TNA `Hash`
/// extern does when its output type is narrower than the algorithm width.
pub fn fold_to_bits(value: u32, bits: u32) -> u32 {
    assert!((1..=32).contains(&bits), "hash output width out of range");
    if bits == 32 {
        value
    } else {
        value & ((1u32 << bits) - 1)
    }
}

/// Hashes a `u32` key the way NetCL device code does: over its LE bytes.
pub fn crc16_u32(key: u32) -> u16 {
    crc16(&key.to_le_bytes())
}

/// See [`crc16_u32`].
pub fn crc32_u32(key: u32) -> u32 {
    crc32(&key.to_le_bytes())
}

/// See [`crc16_u32`].
pub fn xor16_u32(key: u32) -> u16 {
    xor16(&key.to_le_bytes())
}

/// Hashes a 64-bit key over its LE bytes with CRC-32 (used by CACHE's 8-byte
/// keys).
pub fn crc32_u64(key: u64) -> u32 {
    crc32(&key.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Check-values from the CRC catalogue (input "123456789").
    const CHECK_INPUT: &[u8] = b"123456789";

    #[test]
    fn crc16_arc_check_value() {
        assert_eq!(crc16(CHECK_INPUT), 0xBB3D);
    }

    #[test]
    fn crc32_ieee_check_value() {
        assert_eq!(crc32(CHECK_INPUT), 0xCBF4_3926);
    }

    #[test]
    fn crc_empty_input() {
        assert_eq!(crc16(&[]), 0);
        assert_eq!(crc32(&[]), 0);
        assert_eq!(xor16(&[]), 0);
    }

    #[test]
    fn xor16_folds_pairs() {
        // 0x0201 ^ 0x0403 = 0x0602
        assert_eq!(xor16(&[0x01, 0x02, 0x03, 0x04]), 0x0602);
        // odd tail contributes low byte
        assert_eq!(xor16(&[0x01, 0x02, 0xFF]), 0x0201 ^ 0x00FF);
    }

    #[test]
    fn fold_masks_low_bits() {
        assert_eq!(fold_to_bits(0xDEAD_BEEF, 16), 0xBEEF);
        assert_eq!(fold_to_bits(0xDEAD_BEEF, 32), 0xDEAD_BEEF);
        assert_eq!(fold_to_bits(0xFF, 4), 0xF);
        assert_eq!(fold_to_bits(0xFF, 1), 1);
    }

    #[test]
    #[should_panic(expected = "hash output width")]
    fn fold_rejects_zero_bits() {
        fold_to_bits(1, 0);
    }

    #[test]
    fn u32_helpers_match_byte_forms() {
        let k = 0x1234_5678u32;
        assert_eq!(crc16_u32(k), crc16(&k.to_le_bytes()));
        assert_eq!(crc32_u32(k), crc32(&k.to_le_bytes()));
        assert_eq!(xor16_u32(k), xor16(&k.to_le_bytes()));
    }

    #[test]
    fn different_keys_rarely_collide_in_16_bits() {
        // Smoke-test distribution: 1000 sequential keys, expect near-unique
        // CRC16 images (collisions allowed but bounded).
        let mut seen = std::collections::HashSet::new();
        for k in 0u32..1000 {
            seen.insert(crc16_u32(k));
        }
        assert!(seen.len() > 980, "too many CRC16 collisions: {}", 1000 - seen.len());
    }
}
