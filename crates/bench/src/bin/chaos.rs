//! Prints the chaos fault-injection report (see EXPERIMENTS.md). An optional
//! argument sets the seeds per row (default 8).
fn main() {
    let seeds = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    print!("{}", netcl_bench::report_chaos(seeds));
}
