//! P4-16 text rendering.
//!
//! Produces compilable-looking P4-16 in the TNA dialect (Register /
//! RegisterAction / Hash externs) or the v1model dialect (register extern
//! with read/write, hash function call). The output is what `ncc --emit-p4`
//! writes and what the LoC measurements of Table III count.

use crate::ast::*;

/// Prints a full program.
pub fn print_program(p: &P4Program) -> String {
    let mut w = Writer { out: String::new(), indent: 0 };
    w.line(&format!(
        "// {} — generated for {}",
        p.name,
        match p.target {
            Target::Tna => "Intel Tofino (TNA)",
            Target::V1Model => "v1model",
        }
    ));
    w.line("#include <core.p4>");
    w.line(match p.target {
        Target::Tna => "#include <tna.p4>",
        Target::V1Model => "#include <v1model.p4>",
    });
    w.blank();
    for h in &p.headers {
        w.header(h);
    }
    if let Some(parser) = &p.parser {
        w.parser(parser);
    }
    for c in &p.controls {
        w.control(c, p.target);
    }
    w.out
}

struct Writer {
    out: String,
    indent: usize,
}

impl Writer {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn blank(&mut self) {
        self.out.push('\n');
    }

    fn header(&mut self, h: &HeaderDef) {
        self.line(&format!("header {} {{", h.name));
        self.indent += 1;
        for (name, bits) in &h.fields {
            self.line(&format!("bit<{bits}> {name};"));
        }
        self.indent -= 1;
        self.line("}");
        self.blank();
    }

    fn parser(&mut self, p: &ParserDef) {
        self.line(&format!("parser {}(packet_in pkt, out headers_t hdr) {{", p.name));
        self.indent += 1;
        for s in &p.states {
            self.line(&format!("state {} {{", s.name));
            self.indent += 1;
            for e in &s.extracts {
                self.line(&format!("pkt.extract({e});"));
            }
            match &s.transition {
                Transition::Accept => self.line("transition accept;"),
                Transition::Reject => self.line("transition reject;"),
                Transition::Direct(t) => self.line(&format!("transition {t};")),
                Transition::Select { selector, cases, default } => {
                    self.line(&format!("transition select({}) {{", print_expr(selector)));
                    self.indent += 1;
                    for (v, t) in cases {
                        self.line(&format!("{v}: {t};"));
                    }
                    self.line(&format!("default: {default};"));
                    self.indent -= 1;
                    self.line("}");
                }
            }
            self.indent -= 1;
            self.line("}");
        }
        self.indent -= 1;
        self.line("}");
        self.blank();
    }

    fn control(&mut self, c: &ControlDef, target: Target) {
        self.line(&format!("control {}(inout headers_t hdr, inout metadata_t meta) {{", c.name));
        self.indent += 1;
        for (name, bits) in &c.locals {
            self.line(&format!("bit<{bits}> {name};"));
        }
        for r in &c.registers {
            match target {
                Target::Tna => self.line(&format!(
                    "Register<bit<{}>, bit<32>>({}) {};",
                    r.elem_bits, r.size, r.name
                )),
                Target::V1Model => {
                    self.line(&format!("register<bit<{}>>({}) {};", r.elem_bits, r.size, r.name))
                }
            }
        }
        for ra in &c.register_actions {
            self.register_action(ra, c, target);
        }
        for h in &c.hashes {
            let algo = match h.algo {
                netcl_sema::builtins::HashKind::Crc16 => "CRC16",
                netcl_sema::builtins::HashKind::Crc32 => "CRC32",
                netcl_sema::builtins::HashKind::Xor16 => "XOR16",
                netcl_sema::builtins::HashKind::Identity => "IDENTITY",
            };
            self.line(&format!("Hash<bit<{}>>(HashAlgorithm_t.{algo}) {};", h.out_bits, h.name));
        }
        for a in &c.actions {
            let params: Vec<String> =
                a.params.iter().map(|(n, b)| format!("bit<{b}> {n}")).collect();
            self.line(&format!("action {}({}) {{", a.name, params.join(", ")));
            self.indent += 1;
            for s in &a.body {
                self.stmt(s);
            }
            self.indent -= 1;
            self.line("}");
        }
        for t in &c.tables {
            self.table(t);
        }
        self.line("apply {");
        self.indent += 1;
        for s in &c.apply {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("}");
        self.blank();
    }

    fn register_action(&mut self, ra: &RegisterActionDef, c: &ControlDef, target: Target) {
        let bits = c.register(&ra.register).map(|r| r.elem_bits).unwrap_or(32);
        match target {
            Target::Tna => {
                self.line(&format!(
                    "RegisterAction<bit<{bits}>, bit<32>, bit<{bits}>>({}) {} = {{",
                    ra.register, ra.name
                ));
                self.indent += 1;
                self.line(&format!("void apply(inout bit<{bits}> m, out bit<{bits}> o) {{"));
                self.indent += 1;
                self.salu_body(ra);
                self.indent -= 1;
                self.line("}");
                self.indent -= 1;
                self.line("};");
            }
            Target::V1Model => {
                // v1model has no RegisterAction; the printer documents the
                // equivalent read-modify-write sequence it expands to.
                self.line(&format!(
                    "/* RegisterAction {} on {}: {} */",
                    ra.name,
                    ra.register,
                    ra.op.name()
                ));
            }
        }
    }

    fn salu_body(&mut self, ra: &RegisterActionDef) {
        use netcl_sema::builtins::AtomicRmw as R;
        let operand = |i: usize| -> String {
            ra.operands.get(i).map(print_expr).unwrap_or_else(|| "0".into())
        };
        let rmw = match ra.op.rmw {
            R::Add => format!("m = m + {};", operand(0)),
            R::SAdd => format!("m = m |+| {};", operand(0)),
            R::Sub => format!("m = m - {};", operand(0)),
            R::SSub => format!("m = m |-| {};", operand(0)),
            R::Or => format!("m = m | {};", operand(0)),
            R::And => format!("m = m & {};", operand(0)),
            R::Xor => format!("m = m ^ {};", operand(0)),
            R::Min => format!("m = min(m, {});", operand(0)),
            R::Max => format!("m = max(m, {});", operand(0)),
            R::Inc => "m = m + 1;".to_string(),
            R::Dec => "m = m |-| 1;".to_string(),
            R::Swap => format!("m = {};", operand(0)),
            R::Cas => format!("if (m == {}) {{ m = {}; }}", operand(0), operand(1)),
            R::Read => String::new(),
        };
        let ret_old = "o = m;";
        match (ra.op.cond, ra.op.ret_new) {
            (false, false) => {
                self.line(ret_old);
                if !rmw.is_empty() {
                    self.line(&rmw);
                }
            }
            (false, true) => {
                if !rmw.is_empty() {
                    self.line(&rmw);
                }
                self.line("o = m;");
            }
            (true, ret_new) => {
                let cond = ra.cond.as_ref().map(print_expr).unwrap_or_else(|| "true".into());
                if ret_new {
                    self.line(&format!("if ({cond}) {{"));
                    self.indent += 1;
                    if !rmw.is_empty() {
                        self.line(&rmw);
                    }
                    self.indent -= 1;
                    self.line("}");
                    self.line("o = m;");
                } else {
                    self.line(ret_old);
                    self.line(&format!("if ({cond}) {{"));
                    self.indent += 1;
                    if !rmw.is_empty() {
                        self.line(&rmw);
                    }
                    self.indent -= 1;
                    self.line("}");
                }
            }
        }
    }

    fn table(&mut self, t: &TableDef) {
        self.line(&format!("table {} {{", t.name));
        self.indent += 1;
        if !t.keys.is_empty() {
            let keys: Vec<String> = t
                .keys
                .iter()
                .map(|(e, mk)| format!("{} : {}", print_expr(e), mk.keyword()))
                .collect();
            self.line(&format!("key = {{ {} }}", keys.join("; ")));
        }
        let mut actions = t.actions.clone();
        if !actions.iter().any(|a| a == "NoAction") {
            actions.push("NoAction".into());
        }
        self.line(&format!("actions = {{ {}; }}", actions.join("; ")));
        self.line(&format!("default_action = {}();", t.default_action));
        if !t.entries.is_empty() {
            self.line("const entries = {");
            self.indent += 1;
            for e in &t.entries {
                let keys: Vec<String> = e
                    .keys
                    .iter()
                    .map(|k| match k {
                        EntryKey::Value(v) => format!("{v}"),
                        EntryKey::Range(lo, hi) => format!("{lo} .. {hi}"),
                    })
                    .collect();
                let args: Vec<String> = e.args.iter().map(|a| a.to_string()).collect();
                let key_part = if keys.len() == 1 {
                    keys[0].clone()
                } else {
                    format!("({})", keys.join(", "))
                };
                self.line(&format!("{key_part} : {}({});", e.action, args.join(", ")));
            }
            self.indent -= 1;
            self.line("}");
        }
        self.line(&format!("size = {};", t.size.max(1)));
        self.indent -= 1;
        self.line("}");
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign(lhs, rhs) => {
                self.line(&format!("{} = {};", print_expr(lhs), print_expr(rhs)))
            }
            Stmt::CallAction(name) => self.line(&format!("{name}();")),
            Stmt::ApplyTable(name) => self.line(&format!("{name}.apply();")),
            Stmt::ExecuteRegisterAction { dst, ra, index } => match dst {
                Some(d) => self.line(&format!(
                    "{} = {}.execute({});",
                    print_expr(d),
                    ra,
                    print_expr(index)
                )),
                None => self.line(&format!("{}.execute({});", ra, print_expr(index))),
            },
            Stmt::HashGet { dst, hash, args } => {
                let args: Vec<String> = args.iter().map(print_expr).collect();
                self.line(&format!("{} = {}.get({{{}}});", print_expr(dst), hash, args.join(", ")));
            }
            Stmt::If { cond, then, els } => {
                self.line(&format!("if ({}) {{", print_expr(cond)));
                self.indent += 1;
                for s in then {
                    self.stmt(s);
                }
                self.indent -= 1;
                if els.is_empty() {
                    self.line("}");
                } else {
                    self.line("} else {");
                    self.indent += 1;
                    for s in els {
                        self.stmt(s);
                    }
                    self.indent -= 1;
                    self.line("}");
                }
            }
            Stmt::ExternCall { dst, func, args } => {
                let args: Vec<String> = args.iter().map(print_expr).collect();
                match dst {
                    Some(d) => {
                        self.line(&format!("{} = {}({});", print_expr(d), func, args.join(", ")))
                    }
                    None => self.line(&format!("{}({});", func, args.join(", "))),
                }
            }
            Stmt::SetValid(e) => self.line(&format!("{}.setValid();", print_expr(e))),
            Stmt::SetInvalid(e) => self.line(&format!("{}.setInvalid();", print_expr(e))),
            Stmt::Exit => self.line("exit;"),
        }
    }
}

/// Prints an expression.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Field(segs) => segs
            .iter()
            .map(|s| match (s.index, s.name.as_str()) {
                // Validity pseudo-field prints as the isValid() method.
                (None, "$isValid") => "isValid()".to_string(),
                (Some(i), _) => format!("{}[{i}]", s.name),
                (None, _) => s.name.clone(),
            })
            .collect::<Vec<_>>()
            .join("."),
        Expr::Const(v, bits) => format!("{bits}w{v}"),
        Expr::Bool(b) => b.to_string(),
        Expr::Bin(op, a, b) => {
            format!("({} {} {})", print_expr(a), op.symbol(), print_expr(b))
        }
        Expr::Not(x) => format!("!({})", print_expr(x)),
        Expr::BitNot(x) => format!("~({})", print_expr(x)),
        Expr::Cast(bits, x) => format!("(bit<{bits}>)({})", print_expr(x)),
        Expr::Slice(x, hi, lo) => format!("({})[{hi}:{lo}]", print_expr(x)),
        Expr::TableHit(t) => format!("{t}.apply().hit"),
        Expr::TableMiss(t) => format!("!{t}.apply().hit"),
    }
}

/// Counts the non-blank, non-comment lines of rendered P4 — the Table III
/// LoC metric.
pub fn loc(text: &str) -> usize {
    text.lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with("//") && !l.starts_with("/*") && !l.starts_with('*')
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcl_sema::builtins::{AtomicOp, AtomicRmw, HashKind};

    fn sample_control() -> ControlDef {
        ControlDef {
            name: "Cache".into(),
            locals: vec![("tmp0".into(), 32)],
            registers: vec![RegisterDef { name: "Cnt0".into(), elem_bits: 32, size: 65536 }],
            register_actions: vec![RegisterActionDef {
                name: "Incr0".into(),
                register: "Cnt0".into(),
                op: AtomicOp { rmw: AtomicRmw::SAdd, cond: false, ret_new: true },
                cond: None,
                operands: vec![Expr::val(1, 32)],
            }],
            hashes: vec![HashDef { name: "Hash0".into(), algo: HashKind::Crc16, out_bits: 16 }],
            actions: vec![ActionDef {
                name: "CacheHit".into(),
                params: vec![("v".into(), 32)],
                body: vec![Stmt::Assign(Expr::field(&["hdr", "cache", "V"]), Expr::field(&["v"]))],
            }],
            tables: vec![TableDef {
                name: "cache".into(),
                keys: vec![(Expr::field(&["hdr", "cache", "K"]), MatchKind::Exact)],
                actions: vec!["CacheHit".into()],
                entries: vec![TableEntry {
                    keys: vec![EntryKey::Value(1)],
                    action: "CacheHit".into(),
                    args: vec![42],
                }],
                default_action: "NoAction".into(),
                size: 4,
            }],
            apply: vec![Stmt::If {
                cond: Expr::TableMiss("cache".into()),
                then: vec![Stmt::ExecuteRegisterAction {
                    dst: Some(Expr::field(&["meta", "tmp0"])),
                    ra: "Incr0".into(),
                    index: Expr::field(&["meta", "h0"]),
                }],
                els: vec![],
            }],
        }
    }

    #[test]
    fn prints_tna_dialect() {
        let p = P4Program {
            name: "cache".into(),
            target: Target::Tna,
            headers: vec![HeaderDef {
                name: "cache_t".into(),
                fields: vec![("Op".into(), 8), ("K".into(), 32)],
                stack: 1,
            }],
            parser: None,
            controls: vec![sample_control()],
        };
        let text = print_program(&p);
        assert!(text.contains("#include <tna.p4>"));
        assert!(text.contains("header cache_t {"));
        assert!(text.contains("Register<bit<32>, bit<32>>(65536) Cnt0;"));
        assert!(text.contains("RegisterAction<bit<32>, bit<32>, bit<32>>(Cnt0) Incr0 = {"));
        assert!(text.contains("m = m |+| 32w1;"));
        assert!(text.contains("Hash<bit<16>>(HashAlgorithm_t.CRC16) Hash0;"));
        assert!(text.contains("key = { hdr.cache.K : exact }"));
        assert!(text.contains("1 : CacheHit(42);"));
        assert!(text.contains("if (!cache.apply().hit) {"));
        assert!(text.contains("meta.tmp0 = Incr0.execute(meta.h0);"));
    }

    #[test]
    fn salu_bodies_cover_variants() {
        let mk = |cond: bool, ret_new: bool| RegisterActionDef {
            name: "ra".into(),
            register: "R".into(),
            op: AtomicOp { rmw: AtomicRmw::Add, cond, ret_new },
            cond: if cond { Some(Expr::field(&["meta", "c"])) } else { None },
            operands: vec![Expr::field(&["meta", "v"])],
        };
        let ctrl = ControlDef {
            name: "C".into(),
            registers: vec![RegisterDef { name: "R".into(), elem_bits: 8, size: 4 }],
            register_actions: vec![mk(false, false), mk(true, true), mk(true, false)],
            ..Default::default()
        };
        let p = P4Program {
            name: "t".into(),
            target: Target::Tna,
            controls: vec![ctrl],
            ..Default::default()
        };
        let text = print_program(&p);
        // old-returning: output first, then modify.
        let i_old = text.find("o = m;\n            m = m + meta.v;").unwrap_or(usize::MAX);
        assert_ne!(i_old, usize::MAX, "{text}");
        // conditional new-returning: guard then output.
        assert!(text.contains("if (meta.c) {"));
    }

    #[test]
    fn loc_counts_code_lines_only() {
        let text = "// comment\n\ncontrol C() {\n    apply { }\n}\n";
        assert_eq!(loc(text), 3);
    }

    #[test]
    fn expr_printing() {
        let e =
            Expr::Bin(P4BinOp::SatAdd, Box::new(Expr::field(&["m"])), Box::new(Expr::val(1, 32)));
        assert_eq!(print_expr(&e), "(m |+| 32w1)");
        let s = Expr::Slice(Box::new(Expr::field(&["meta", "x"])), 15, 8);
        assert_eq!(print_expr(&s), "(meta.x)[15:8]");
        let idx =
            Expr::Field(vec![PathSeg::new("hdr"), PathSeg::indexed("v", 3), PathSeg::new("value")]);
        assert_eq!(print_expr(&idx), "hdr.v[3].value");
    }
}
