//! CFG simplification and the DAG check.
//!
//! §VI-B: "The main goal is for the CFG to become a DAG; otherwise, a
//! relevant error is issued" — P4 pipelines are feed-forward, so any
//! remaining loop (a `while` the unroller could not remove, or irreducible
//! flow) rejects the program.

use netcl_ir::dom::reverse_postorder;
use netcl_ir::func::{BlockId, Function, InstKind, Terminator};
use netcl_util::idx::Idx;
use std::collections::HashMap;

/// Simplifies the CFG: forwards branches through empty blocks, merges
/// single-pred/single-succ straight lines, and collapses condbr with equal
/// targets. Returns whether anything changed.
pub fn simplify(f: &mut Function) -> bool {
    let mut changed = false;
    changed |= collapse_trivial_condbr(f);
    changed |= thread_empty_blocks(f);
    changed |= merge_straight_lines(f);
    changed
}

fn collapse_trivial_condbr(f: &mut Function) -> bool {
    let mut changed = false;
    for b in f.blocks.iter_mut() {
        if let Terminator::CondBr { then_bb, else_bb, .. } = b.term {
            if then_bb == else_bb {
                b.term = Terminator::Br(then_bb);
                changed = true;
            }
        }
    }
    changed
}

/// Redirects branches whose target is an empty block that just branches on.
fn thread_empty_blocks(f: &mut Function) -> bool {
    // target → final destination, skipping chains of empty forwarders. A
    // block with φ-nodes is not skippable (the edge identity matters).
    let mut forward: HashMap<BlockId, BlockId> = HashMap::new();
    for (bid, b) in f.blocks.iter_enumerated() {
        if b.insts.is_empty() {
            if let Terminator::Br(t) = b.term {
                if t != bid && !has_phis(f, t) {
                    forward.insert(bid, t);
                }
            }
        }
    }
    if forward.is_empty() {
        return false;
    }
    let resolve = |mut b: BlockId| {
        for _ in 0..forward.len() + 1 {
            match forward.get(&b) {
                Some(&n) if n != b => b = n,
                _ => break,
            }
        }
        b
    };
    let mut changed = false;
    for b in f.blocks.iter_mut() {
        match &mut b.term {
            Terminator::Br(t) => {
                let n = resolve(*t);
                if n != *t {
                    *t = n;
                    changed = true;
                }
            }
            Terminator::CondBr { then_bb, else_bb, .. } => {
                let nt = resolve(*then_bb);
                let ne = resolve(*else_bb);
                if nt != *then_bb || ne != *else_bb {
                    *then_bb = nt;
                    *else_bb = ne;
                    changed = true;
                }
            }
            _ => {}
        }
    }
    changed
}

fn has_phis(f: &Function, b: BlockId) -> bool {
    f.blocks[b].insts.iter().any(|i| matches!(i.kind, InstKind::Phi { .. }))
}

/// Merges `a → b` when `a` ends in an unconditional branch to `b` and `b`
/// has exactly one predecessor.
fn merge_straight_lines(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let reachable: std::collections::HashSet<BlockId> =
            reverse_postorder(f).into_iter().collect();
        let preds = f.predecessors();
        let mut merged = false;
        for a in f.blocks.indices().collect::<Vec<_>>() {
            if !reachable.contains(&a) {
                continue;
            }
            let Terminator::Br(b) = f.blocks[a].term else { continue };
            // Unreachable predecessors don't block merging.
            let live_preds = preds[b].iter().filter(|p| reachable.contains(p)).count();
            if b == a || live_preds != 1 || b == f.entry || has_phis(f, b) {
                continue;
            }
            // Splice b into a.
            let mut b_insts = std::mem::take(&mut f.blocks[b].insts);
            let b_term = std::mem::replace(&mut f.blocks[b].term, Terminator::Br(b));
            f.blocks[a].insts.append(&mut b_insts);
            f.blocks[a].term = b_term;
            // φ-nodes in b's successors must re-home their incoming edge.
            for s in f.blocks[a].term.successors() {
                for inst in &mut f.blocks[s].insts {
                    if let InstKind::Phi { incoming } = &mut inst.kind {
                        for (p, _) in incoming {
                            if *p == b {
                                *p = a;
                            }
                        }
                    }
                }
            }
            merged = true;
            changed = true;
            break; // preds are stale; recompute
        }
        if !merged {
            return changed;
        }
    }
}

/// Checks that the reachable CFG is a DAG. Returns a description of the
/// offending cycle otherwise.
pub fn check_dag(f: &Function) -> Result<(), String> {
    // A back edge in DFS ⇔ a cycle.
    let n = f.blocks.len();
    let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry, 0)];
    color[f.entry.index()] = 1;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = f.blocks[b].term.successors();
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            match color.get(s.index()).copied().unwrap_or(2) {
                0 => {
                    color[s.index()] = 1;
                    stack.push((s, 0));
                }
                1 => {
                    return Err(format!(
                        "kernel `{}` contains a loop the compiler could not fully unroll \
                         ({b:?} → {s:?}); P4 pipelines are feed-forward (§V-D)",
                        f.name
                    ));
                }
                _ => {}
            }
        } else {
            color[b.index()] = 2;
            stack.pop();
        }
    }
    Ok(())
}

/// Number of reachable blocks (handy in tests).
pub fn reachable_block_count(f: &Function) -> usize {
    reverse_postorder(f).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcl_ir::func::{ActionRef, FuncBuilder};
    use netcl_ir::types::{IrBinOp, IrTy, Operand as Op};

    #[test]
    fn threads_empty_blocks() {
        let mut b = FuncBuilder::new("k", 1);
        let mid = b.new_block();
        let end = b.new_block();
        b.terminate(Terminator::Br(mid));
        b.switch_to(mid);
        b.terminate(Terminator::Br(end));
        b.switch_to(end);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut f = b.finish();
        assert!(simplify(&mut f));
        // After threading + merging, the entry returns directly.
        assert!(matches!(f.blocks[f.entry].term, Terminator::Ret(_)));
        assert_eq!(reachable_block_count(&f), 1);
    }

    #[test]
    fn merges_straight_line_with_instructions() {
        let mut b = FuncBuilder::new("k", 1);
        let out = b.add_arg("o", IrTy::I32, 1, true);
        let next = b.new_block();
        let x = b.bin(IrBinOp::Add, Op::imm(1, IrTy::I32), Op::imm(2, IrTy::I32), IrTy::I32);
        b.terminate(Terminator::Br(next));
        b.switch_to(next);
        b.emit(InstKind::ArgWrite { arg: out, index: Op::imm(0, IrTy::I32), value: x }, IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut f = b.finish();
        assert!(simplify(&mut f));
        assert_eq!(f.blocks[f.entry].insts.len(), 2);
        assert!(matches!(f.blocks[f.entry].term, Terminator::Ret(_)));
    }

    #[test]
    fn collapses_equal_target_condbr() {
        let mut b = FuncBuilder::new("k", 1);
        let t = b.new_block();
        b.terminate(Terminator::CondBr { cond: Op::imm(1, IrTy::I1), then_bb: t, else_bb: t });
        b.switch_to(t);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut f = b.finish();
        assert!(simplify(&mut f));
        assert!(matches!(f.blocks[f.entry].term, Terminator::Ret(_)));
    }

    #[test]
    fn dag_check_accepts_diamond() {
        let mut b = FuncBuilder::new("k", 1);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.terminate(Terminator::CondBr { cond: Op::imm(1, IrTy::I1), then_bb: t, else_bb: e });
        b.switch_to(t);
        b.terminate(Terminator::Br(j));
        b.switch_to(e);
        b.terminate(Terminator::Br(j));
        b.switch_to(j);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let f = b.finish();
        assert!(check_dag(&f).is_ok());
    }

    #[test]
    fn dag_check_rejects_loop() {
        let mut b = FuncBuilder::new("spin", 1);
        let body = b.new_block();
        b.terminate(Terminator::Br(body));
        b.switch_to(body);
        b.terminate(Terminator::CondBr {
            cond: Op::imm(1, IrTy::I1),
            then_bb: body,
            else_bb: b.func.entry,
        });
        let f = b.finish();
        let err = check_dag(&f).unwrap_err();
        assert!(err.contains("feed-forward"));
        assert!(err.contains("spin"));
    }
}
