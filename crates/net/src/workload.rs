//! Flow-level workload generation for large-scale runs (DESIGN.md §15).
//!
//! The paper evaluates its four apps on a six-server testbed (§VII); the
//! ROADMAP's north star is traffic from millions of users. This module
//! makes such runs *expressible*: a k-ary fat-tree topology builder
//! (k³/4 hosts — k=36 is 11 664, k=48 is 27 648), a Zipf key sampler for
//! CACHE-style skewed access, a straggler delay model for AGG-style
//! synchronized workers, and a deterministic flow generator tying them
//! together. Everything is a pure function of its seed: the same seed
//! yields the same flows, which the proptest suite (`tests/workload.rs`)
//! pins down.

use std::collections::HashSet;

use crate::shard::Partition;
use crate::topo::{LinkSpec, NodeId, Topology};

/// A small deterministic RNG (splitmix64) for workload generation —
/// deliberately separate from the simulator's per-node chaos streams so
/// generating a workload never perturbs a run's fault draws.
#[derive(Debug, Clone)]
pub struct WorkloadRng {
    state: u64,
}

impl WorkloadRng {
    /// A stream fully determined by `seed`.
    pub fn new(seed: u64) -> WorkloadRng {
        WorkloadRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Zipf(n, s) sampler over ranks `1..=n`: `P(r) ∝ r⁻ˢ`. Samples by
/// binary-searching a precomputed CDF, so a draw is O(log n).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    s: f64,
}

impl Zipf {
    /// A sampler over `n ≥ 1` ranks with skew `s ≥ 0` (s = 0 is uniform;
    /// CACHE-style key popularity is usually s ≈ 0.9–1.1).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += (r as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf, s }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The configured skew parameter.
    pub fn skew(&self) -> f64 {
        self.s
    }

    /// The model probability of rank `r` (1-based) — what the proptest
    /// suite checks empirical frequencies against.
    pub fn prob(&self, r: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&r));
        let lo = if r == 1 { 0.0 } else { self.cdf[r - 2] };
        self.cdf[r - 1] - lo
    }

    /// Draws a rank in `1..=n`.
    pub fn sample(&self, rng: &mut WorkloadRng) -> u64 {
        let u = rng.next_f64();
        let idx = self.cdf.partition_point(|&c| c <= u);
        (idx.min(self.cdf.len() - 1) + 1) as u64
    }
}

/// Straggler delay model for AGG-style synchronized workers: every
/// response takes `base_ns` plus uniform jitter, and with probability
/// `prob` a worker straggles for `straggle_ns` extra — the tail that
/// in-network aggregation is meant to hide.
#[derive(Debug, Clone, Copy)]
pub struct Straggler {
    /// Common-case processing time.
    pub base_ns: u64,
    /// Uniform extra delay in `[0, jitter_ns)` on every response.
    pub jitter_ns: u64,
    /// Probability a response straggles.
    pub prob: f64,
    /// Extra delay when it does.
    pub straggle_ns: u64,
}

impl Straggler {
    /// One worker's response delay.
    pub fn delay_ns(&self, rng: &mut WorkloadRng) -> u64 {
        let mut d = self.base_ns;
        if self.jitter_ns > 0 {
            d += rng.below(self.jitter_ns);
        }
        if self.prob > 0.0 && rng.next_f64() < self.prob {
            d += self.straggle_ns;
        }
        d
    }
}

/// One generated request: injected at `src` at `at_ns`, targeting `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Absolute injection time.
    pub at_ns: u64,
    /// Source host id.
    pub src: u32,
    /// Application key (a Zipf rank for CACHE-style workloads).
    pub key: u64,
}

/// Generates `count` flows: sources drawn uniformly from `hosts`, keys
/// from `zipf`, injection times spaced by uniform gaps in
/// `[0, 2·mean_gap_ns)` so the long-run rate is one flow per
/// `mean_gap_ns`. Deterministic per seed.
pub fn zipf_flows(
    seed: u64,
    hosts: &[u32],
    zipf: &Zipf,
    count: usize,
    mean_gap_ns: u64,
) -> Vec<Flow> {
    assert!(!hosts.is_empty(), "need at least one source host");
    let mut rng = WorkloadRng::new(seed);
    let mut at = 0u64;
    let mut flows = Vec::with_capacity(count);
    for _ in 0..count {
        at += rng.below(2 * mean_gap_ns.max(1)) + 1;
        flows.push(Flow {
            at_ns: at,
            src: hosts[rng.below(hosts.len() as u64) as usize],
            key: zipf.sample(&mut rng),
        });
    }
    flows
}

/// The lazy twin of [`zipf_flows`]: an iterator yielding the *identical*
/// flow sequence — same RNG, same per-flow draw order (gap, source, key) —
/// one flow at a time. Feeding it through a
/// [`crate::sim::FlowSource`] gives runs byte-identical to materializing
/// the schedule, with memory O(live events): the enabling piece for
/// 10⁶-flow drives of the 10⁵-host fat-tree.
#[derive(Debug, Clone)]
pub struct FlowStream {
    rng: WorkloadRng,
    hosts: Vec<u32>,
    zipf: Zipf,
    remaining: usize,
    mean_gap_ns: u64,
    at: u64,
}

impl FlowStream {
    /// A stream equivalent to `zipf_flows(seed, hosts, zipf, count,
    /// mean_gap_ns)`.
    pub fn new(
        seed: u64,
        hosts: &[u32],
        zipf: &Zipf,
        count: usize,
        mean_gap_ns: u64,
    ) -> FlowStream {
        assert!(!hosts.is_empty(), "need at least one source host");
        FlowStream {
            rng: WorkloadRng::new(seed),
            hosts: hosts.to_vec(),
            zipf: zipf.clone(),
            remaining: count,
            mean_gap_ns,
            at: 0,
        }
    }
}

impl Iterator for FlowStream {
    type Item = Flow;

    fn next(&mut self) -> Option<Flow> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Draw order must match zipf_flows exactly: gap, then source,
        // then key — the equivalence tests diff the two schedules.
        self.at += self.rng.below(2 * self.mean_gap_ns.max(1)) + 1;
        Some(Flow {
            at_ns: self.at,
            src: self.hosts[self.rng.below(self.hosts.len() as u64) as usize],
            key: self.zipf.sample(&mut self.rng),
        })
    }
}

/// A k-ary fat-tree (Al-Fares et al.): k pods, each with k/2 edge and k/2
/// agg switches; (k/2)² core switches; k³/4 hosts. Hosts and switches get
/// dense ids, and [`FatTree::partition`] shards the tree by pod — the
/// natural cut, since pods only meet at the core.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// Arity (even, ≥ 2).
    pub k: u16,
    /// The built topology.
    pub topology: Topology,
    /// All host ids, pod-major.
    pub hosts: Vec<u32>,
    /// Host ids grouped by pod.
    pub hosts_by_pod: Vec<Vec<u32>>,
    /// Edge-switch device ids by pod.
    pub edge_by_pod: Vec<Vec<u16>>,
    /// Agg-switch device ids by pod.
    pub agg_by_pod: Vec<Vec<u16>>,
    /// Core-switch device ids.
    pub core: Vec<u16>,
}

impl FatTree {
    /// Builds the k-ary tree with `spec` on every link. `k` must be even,
    /// ≥ 2, and small enough for dense u16 *device* ids (k ≤ 228 — host
    /// ids are u32, so k=74's 101 306 hosts fit; its 6 845 switches are
    /// the binding resource).
    pub fn new(k: u16, spec: LinkSpec) -> Result<FatTree, String> {
        if k < 2 || !k.is_multiple_of(2) {
            return Err(format!("fat-tree arity must be even and ≥ 2, got {k}"));
        }
        let half = (k / 2) as usize;
        let nhosts = half * half * k as usize;
        let ndevs = half * half + k as usize * k as usize;
        if ndevs > u16::MAX as usize {
            return Err(format!("fat-tree k={k} needs {ndevs} device ids; max is {}", u16::MAX));
        }
        let mut topology = Topology::new();
        // Core switches take device ids 0..(k/2)².
        let core: Vec<u16> = (0..(half * half) as u16).collect();
        let mut next_dev = core.len() as u16;
        let mut next_host = 0u32;
        let mut hosts = Vec::with_capacity(nhosts);
        let mut hosts_by_pod = Vec::with_capacity(k as usize);
        let mut edge_by_pod = Vec::with_capacity(k as usize);
        let mut agg_by_pod = Vec::with_capacity(k as usize);
        for _pod in 0..k {
            let edge: Vec<u16> = (0..half).map(|i| next_dev + i as u16).collect();
            let agg: Vec<u16> = (0..half).map(|i| next_dev + (half + i) as u16).collect();
            next_dev += 2 * half as u16;
            // Edge ↔ agg: full bipartite within the pod.
            for &e in &edge {
                for &a in &agg {
                    topology.link(NodeId::Device(e), NodeId::Device(a), spec);
                }
            }
            // Agg ↔ core: agg j uplinks to core block j.
            for (j, &a) in agg.iter().enumerate() {
                for c in 0..half {
                    topology.link(NodeId::Device(a), NodeId::Device(core[j * half + c]), spec);
                }
            }
            // Hosts hang off edge switches, k/2 each.
            let mut pod_hosts = Vec::with_capacity(half * half);
            for &e in &edge {
                for _ in 0..half {
                    topology.link(NodeId::Host(next_host), NodeId::Device(e), spec);
                    pod_hosts.push(next_host);
                    next_host += 1;
                }
            }
            hosts.extend_from_slice(&pod_hosts);
            hosts_by_pod.push(pod_hosts);
            edge_by_pod.push(edge);
            agg_by_pod.push(agg);
        }
        Ok(FatTree { k, topology, hosts, hosts_by_pod, edge_by_pod, agg_by_pod, core })
    }

    /// Total host count (k³/4).
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Shards the tree by pod: pod `p`'s hosts, edge, and agg switches go
    /// to shard `p mod shards`; core switches are dealt round-robin. All
    /// inter-shard links are then agg↔core (or edge↔agg for co-resident
    /// pods), each with the tree's uniform link latency as lookahead.
    pub fn partition(&self, shards: usize) -> Partition {
        let shards = shards.max(1);
        let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); shards];
        for (p, pod_hosts) in self.hosts_by_pod.iter().enumerate() {
            let g = &mut groups[p % shards];
            g.extend(pod_hosts.iter().map(|&h| NodeId::Host(h)));
            g.extend(self.edge_by_pod[p].iter().map(|&d| NodeId::Device(d)));
            g.extend(self.agg_by_pod[p].iter().map(|&d| NodeId::Device(d)));
        }
        for (i, &c) in self.core.iter().enumerate() {
            groups[i % shards].push(NodeId::Device(c));
        }
        Partition::new(groups)
    }

    /// Shards the tree by *measured event weight* instead of pod index.
    ///
    /// [`Self::partition`] deals pods round-robin, which balances nodes
    /// but not events: under a Zipf workload the pods holding the popular
    /// destinations do several times the work of the rest, and the
    /// busiest shard caps the critical-path speedup (~38% event share at
    /// 8 shards on the k=36 bench). This variant traces each flow's
    /// round-trip — source host up to its executing switch and back —
    /// through the real routing tables in `routes`, charges one event
    /// unit per node touched, and then packs pods (plus individual core
    /// switches) onto shards by longest-processing-time
    /// ([`Partition::balanced_with_weights`]).
    ///
    /// `flows` yields `(source host, executing device)` pairs — for the
    /// CALC bench, the destination's edge switch. The result is a pure
    /// function of (topology, flow schedule, routing), so a recorded
    /// [`Partition::fingerprint`] replays exactly. Returns the partition
    /// and per-shard weight loads (for event-share reporting).
    pub fn partition_balanced(
        &self,
        routes: &crate::PrecomputedRoutes,
        flows: impl Iterator<Item = (u32, u16)>,
        shards: usize,
    ) -> (Partition, Vec<u64>) {
        let half = (self.k / 2) as usize;
        let ndevs = half * half + self.k as usize * self.k as usize;
        let mut host_w = vec![0u64; self.hosts.len()];
        let mut dev_w = vec![0u64; ndevs];
        let mut cache = routes.cache.clone();
        let down = HashSet::new();
        let charge = |w: &mut Vec<u64>, hw: &mut Vec<u64>, n: NodeId| match n {
            NodeId::Device(d) => w[d as usize] += 1,
            NodeId::Host(h) => hw[h as usize] += 1,
        };
        for (src, dev) in flows {
            // The injection event itself, then one arrival per hop of the
            // round trip: up to the executing switch, reply back down.
            host_w[src as usize] += 1;
            for (from, to) in
                [(NodeId::Host(src), NodeId::Device(dev)), (NodeId::Device(dev), NodeId::Host(src))]
            {
                let mut cur = from;
                // A fat-tree round trip is ≤ 6 hops; the bound only guards
                // against a malformed routing loop.
                for _ in 0..64 {
                    if cur == to {
                        break;
                    }
                    let Some((hop, _)) = cache.hop(cur, to, &down) else { break };
                    charge(&mut dev_w, &mut host_w, hop);
                    cur = hop;
                }
            }
        }
        let mut units: Vec<(Vec<NodeId>, u64)> = Vec::with_capacity(self.k as usize);
        for (p, pod_hosts) in self.hosts_by_pod.iter().enumerate() {
            let mut nodes: Vec<NodeId> = pod_hosts.iter().map(|&h| NodeId::Host(h)).collect();
            nodes.extend(self.edge_by_pod[p].iter().map(|&d| NodeId::Device(d)));
            nodes.extend(self.agg_by_pod[p].iter().map(|&d| NodeId::Device(d)));
            let w = pod_hosts.iter().map(|&h| host_w[h as usize]).sum::<u64>()
                + self.edge_by_pod[p]
                    .iter()
                    .chain(&self.agg_by_pod[p])
                    .map(|&d| dev_w[d as usize])
                    .sum::<u64>();
            units.push((nodes, w));
        }
        for &c in &self.core {
            units.push((vec![NodeId::Device(c)], dev_w[c as usize]));
        }
        Partition::balanced_with_weights(units, shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_prob_sums_to_one() {
        let z = Zipf::new(100, 0.99);
        let total: f64 = (1..=100).map(|r| z.prob(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Skew means rank 1 beats rank 100 decisively.
        assert!(z.prob(1) > 10.0 * z.prob(100));
    }

    #[test]
    fn zipf_uniform_at_zero_skew() {
        let z = Zipf::new(50, 0.0);
        for r in 1..=50 {
            assert!((z.prob(r) - 0.02).abs() < 1e-9);
        }
    }

    #[test]
    fn flows_deterministic_per_seed() {
        let z = Zipf::new(1000, 1.0);
        let a = zipf_flows(7, &[1, 2, 3], &z, 200, 1000);
        let b = zipf_flows(7, &[1, 2, 3], &z, 200, 1000);
        assert_eq!(a, b);
        let c = zipf_flows(8, &[1, 2, 3], &z, 200, 1000);
        assert_ne!(a, c, "different seed, different flows");
        // Injection times strictly increase.
        assert!(a.windows(2).all(|w| w[0].at_ns < w[1].at_ns));
    }

    #[test]
    fn straggler_tail_shows_up() {
        let s = Straggler { base_ns: 1000, jitter_ns: 100, prob: 0.25, straggle_ns: 50_000 };
        let mut rng = WorkloadRng::new(42);
        let delays: Vec<u64> = (0..400).map(|_| s.delay_ns(&mut rng)).collect();
        let stragglers = delays.iter().filter(|&&d| d >= 50_000).count();
        assert!((50..150).contains(&stragglers), "~25% should straggle, got {stragglers}/400");
        assert!(delays.iter().all(|&d| d >= 1000));
    }

    #[test]
    fn fat_tree_k4_shape() {
        let ft = FatTree::new(4, LinkSpec::default()).unwrap();
        assert_eq!(ft.num_hosts(), 16);
        assert_eq!(ft.core.len(), 4);
        assert_eq!(ft.edge_by_pod.iter().map(Vec::len).sum::<usize>(), 8);
        assert_eq!(ft.agg_by_pod.iter().map(Vec::len).sum::<usize>(), 8);
        // Any-to-any routing works across pods.
        let (hop, _) = ft.topology.next_hop(NodeId::Host(0), NodeId::Host(15)).unwrap();
        assert!(matches!(hop, NodeId::Device(_)));
    }

    #[test]
    fn fat_tree_rejects_odd_arity() {
        assert!(FatTree::new(3, LinkSpec::default()).is_err());
        assert!(FatTree::new(0, LinkSpec::default()).is_err());
    }

    #[test]
    fn fat_tree_partition_covers_every_node() {
        let ft = FatTree::new(4, LinkSpec::default()).unwrap();
        for shards in [1, 2, 3, 4] {
            let p = ft.partition(shards);
            assert_eq!(p.num_shards(), shards);
        }
    }
}
