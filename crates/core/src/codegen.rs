//! P4 code generation (paper §VI-B "Code generation", Fig. 9).
//!
//! Translates a target-legal IR module (structured, φ-free) into a complete
//! P4 program containing the NetCL device runtime and the base program:
//!
//! * the NetCL shim header (Fig. 10 4-tuple + computation id + action
//!   fields) and per-computation argument headers; array arguments and
//!   surviving local arrays become header stacks,
//! * a parser FSM extracting the shim and, by computation id, the argument
//!   headers,
//! * one ingress control holding, per Fig. 9: a local variable per
//!   instruction result, `Register`/`RegisterAction` pairs per global
//!   memory access, MATs for lookup memory, index tables for dynamically
//!   indexed header stacks, and a top-level computation-id dispatch,
//! * the base-program skeleton the runtime is embedded into (an L2
//!   forwarding table — the "empty program" baseline of Table V).
//!
//! Kernel CFGs are emitted by recursive region descent over immediate
//! post-dominators — exactly the lexical-scope construction the paper
//! describes (conditional targets open sub-scopes; sinks are emitted in the
//! scope of the nearest common dominator).

use std::collections::HashMap;

use netcl_ir::func::{BlockId, Function, InstKind, MemId, MsgField, Terminator};
use netcl_ir::types::{CastKind, IcmpPred, IrBinOp, IrTy, IrUnOp, Operand};
use netcl_ir::{Module, ValueId};
use netcl_p4::ast::*;
use netcl_passes::structurize::immediate_postdominators;
use netcl_sema::builtins::{AtomicOp, AtomicRmw};
use netcl_sema::model::LookupEntry;
use netcl_util::idx::Idx;

/// Codegen failure (a construct the target cannot express).
#[derive(Debug, Clone)]
pub struct CodegenError {
    /// Error code (`E03xx` range).
    pub code: &'static str,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// Generates the P4 program for a compiled device module.
pub fn generate(module: &Module, target: Target) -> Result<P4Program, CodegenError> {
    let mut cg = Codegen {
        module,
        target,
        program: P4Program {
            name: format!("{}_dev{}", module.name, module.device),
            target,
            ..Default::default()
        },
        control: ControlDef { name: "Ig".into(), ..Default::default() },
        counters: HashMap::new(),
    };
    cg.headers();
    cg.parser();
    cg.globals()?;
    cg.base_program();
    let dispatch = cg.kernels()?;
    cg.control.apply = dispatch;
    let mut program = cg.program;
    program.controls.push(cg.control);
    Ok(program)
}

/// The name of the NetCL shim header instance.
pub const NCL_HDR: &str = "ncl";

struct Codegen<'a> {
    module: &'a Module,
    #[allow(dead_code)] // dialect differences live in the printer today
    target: Target,
    program: P4Program,
    control: ControlDef,
    counters: HashMap<&'static str, u32>,
}

impl<'a> Codegen<'a> {
    fn fresh(&mut self, kind: &'static str) -> u32 {
        let c = self.counters.entry(kind).or_insert(0);
        let v = *c;
        *c += 1;
        v
    }

    // ---- headers & parser ------------------------------------------------

    /// Header-stack instance name for array argument `arg` of computation `c`.
    fn arr_hdr(comp: u8, arg: u32) -> String {
        format!("arr_c{comp}_a{arg}")
    }

    /// Field path for a scalar argument.
    fn arg_field(f: &Function, arg: u32) -> Expr {
        Expr::field(&[
            "hdr",
            &format!("args_c{}", f.computation),
            &format!("a{}_{}", arg, f.args[arg as usize].name),
        ])
    }

    fn headers(&mut self) {
        // NetCL shim (Fig. 10): 4-tuple + computation + action + target.
        self.program.headers.push(HeaderDef {
            name: "ncl_t".into(),
            fields: vec![
                ("src".into(), 16),
                ("dst".into(), 16),
                ("from".into(), 16),
                ("to".into(), 16),
                ("comp".into(), 8),
                ("action".into(), 8),
                ("target".into(), 16),
            ],
            stack: 1,
        });
        for k in &self.module.kernels {
            let mut fields = Vec::new();
            for (i, a) in k.args.iter().enumerate() {
                if a.count == 1 {
                    fields.push((format!("a{}_{}", i, a.name), a.ty.bits as u32));
                } else {
                    self.program.headers.push(HeaderDef {
                        name: format!("{}_t", Self::arr_hdr(k.computation, i as u32)),
                        fields: vec![("value".into(), a.ty.bits as u32)],
                        stack: a.count,
                    });
                }
            }
            if !fields.is_empty() {
                self.program.headers.push(HeaderDef {
                    name: format!("args_c{}_t", k.computation),
                    fields,
                    stack: 1,
                });
            }
        }
    }

    fn parser(&mut self) {
        let mut states = vec![ParserState {
            name: "start".into(),
            extracts: vec![format!("hdr.{NCL_HDR}")],
            transition: if self.module.kernels.is_empty() {
                Transition::Accept
            } else {
                Transition::Select {
                    selector: Expr::field(&["hdr", NCL_HDR, "comp"]),
                    cases: self
                        .module
                        .kernels
                        .iter()
                        .map(|k| (k.computation as u64, format!("parse_c{}", k.computation)))
                        .collect(),
                    default: "accept".into(),
                }
            },
        }];
        for k in &self.module.kernels {
            let mut extracts = Vec::new();
            let has_scalars = k.args.iter().any(|a| a.count == 1);
            if has_scalars {
                extracts.push(format!("hdr.args_c{}", k.computation));
            }
            for (i, a) in k.args.iter().enumerate() {
                if a.count > 1 {
                    extracts.push(format!("hdr.{}", Self::arr_hdr(k.computation, i as u32)));
                }
            }
            states.push(ParserState {
                name: format!("parse_c{}", k.computation),
                extracts,
                transition: Transition::Accept,
            });
        }
        self.program.parser = Some(ParserDef { name: "IgParser".into(), states });
    }

    // ---- globals -----------------------------------------------------------

    fn globals(&mut self) -> Result<(), CodegenError> {
        for g in &self.module.globals {
            if netcl_passes::partition::is_replaced_husk(g) {
                continue;
            }
            if g.lookup {
                continue; // lookup tables are materialized per access site
            }
            self.control.registers.push(RegisterDef {
                name: g.name.clone(),
                elem_bits: (g.ty.bits as u32).max(8),
                size: g.element_count() as u32,
            });
        }
        Ok(())
    }

    /// The base P4 program the runtime is embedded into (§VI-C): plain
    /// link-layer forwarding driven by the control plane. This is the
    /// "EMPTY" program of Table V.
    fn base_program(&mut self) {
        self.control.actions.push(ActionDef {
            name: "set_egress".into(),
            params: vec![("port".into(), 16)],
            body: vec![Stmt::Assign(Expr::field(&["meta", "egress_port"]), Expr::field(&["port"]))],
        });
        self.control.locals.push(("egress_port".into(), 16));
        self.control.tables.push(TableDef {
            name: "l2_fwd".into(),
            keys: vec![(Expr::field(&["hdr", NCL_HDR, "dst"]), MatchKind::Exact)],
            actions: vec!["set_egress".into()],
            entries: vec![],
            default_action: "NoAction".into(),
            size: 64,
        });
    }

    // ---- kernels -----------------------------------------------------------

    fn kernels(&mut self) -> Result<Vec<Stmt>, CodegenError> {
        let mut dispatch: Vec<Stmt> = Vec::new();
        // Innermost first: build the if/else chain bottom-up.
        let mut chain: Vec<Stmt> = Vec::new();
        for k in self.module.kernels.iter() {
            let body = self.kernel_body(k)?;
            let cond = Expr::Bin(
                P4BinOp::Eq,
                Box::new(Expr::field(&["hdr", NCL_HDR, "comp"])),
                Box::new(Expr::val(k.computation as u64, 8)),
            );
            chain.push(Stmt::If { cond, then: body, els: vec![] });
        }
        // Nest: if c1 {..} else { if c2 {..} else {..} }
        let mut nested: Vec<Stmt> = Vec::new();
        for stmt in chain.into_iter().rev() {
            let Stmt::If { cond, then, .. } = stmt else { unreachable!() };
            nested = vec![Stmt::If { cond, then, els: nested }];
        }
        // Runtime guard: only compute when the message targets this device
        // (the no-implicit-computation rule, §IV).
        let guard = Expr::Bin(
            P4BinOp::LAnd,
            Box::new(Expr::Field(vec![
                PathSeg::new("hdr"),
                PathSeg::new(NCL_HDR),
                PathSeg::new("$isValid"),
            ])),
            Box::new(Expr::Bin(
                P4BinOp::Eq,
                Box::new(Expr::field(&["hdr", NCL_HDR, "to"])),
                Box::new(Expr::val(self.module.device as u64, 16)),
            )),
        );
        dispatch.push(Stmt::If { cond: guard, then: nested, els: vec![] });
        dispatch.push(Stmt::ApplyTable("l2_fwd".into()));
        Ok(dispatch)
    }

    fn kernel_body(&mut self, f: &Function) -> Result<Vec<Stmt>, CodegenError> {
        let mut kcg = KernelCg {
            cg: self,
            f,
            vals: HashMap::new(),
            local_names: HashMap::new(),
            ipd: immediate_postdominators(f),
            plan: InlinePlan::build(f),
        };
        kcg.declare_locals();
        let entry = f.entry;
        kcg.emit_region(entry, None)
    }
}

struct KernelCg<'a, 'b> {
    cg: &'a mut Codegen<'b>,
    f: &'a Function,
    /// Expression for each defined value (a meta field reference).
    vals: HashMap<ValueId, Expr>,
    /// Meta variable names for scalar local slots; arrays use stacks.
    local_names: HashMap<netcl_ir::LocalId, String>,
    ipd: HashMap<BlockId, Option<BlockId>>,
    /// Operand-forwarding plan (PHV pressure relief, see [`InlinePlan`]).
    plan: InlinePlan,
}

/// Operand forwarding: header fields feed consumers directly instead of
/// bouncing through `meta` temporaries. Handwritten P4 reads argument
/// fields straight into SALUs and writes results straight back; without
/// this, every message word costs two extra PHV containers and AGG's
/// 32-value payload would overflow the PHV.
#[derive(Default)]
struct InlinePlan {
    /// Value → expression to use instead of a fresh meta local.
    inline_val: HashMap<ValueId, Expr>,
    /// Instructions that are not emitted at all.
    skip: std::collections::HashSet<(BlockId, usize)>,
    /// Atomic instructions whose result goes directly to this destination.
    forced_dst: HashMap<(BlockId, usize), Expr>,
}

impl InlinePlan {
    fn build(f: &Function) -> InlinePlan {
        let mut plan = InlinePlan::default();
        // Def/use sites. Terminator operands count as uses at index = len.
        let mut uses: HashMap<ValueId, Vec<(BlockId, usize)>> = HashMap::new();
        for (bid, b) in f.blocks.iter_enumerated() {
            for (i, inst) in b.insts.iter().enumerate() {
                for op in inst.kind.operands() {
                    if let Operand::Value(v) = op {
                        uses.entry(v).or_default().push((bid, i));
                    }
                }
            }
            let term_ops: Vec<Operand> = match &b.term {
                Terminator::CondBr { cond, .. } => vec![*cond],
                Terminator::Ret(a) => a.target.into_iter().collect(),
                _ => vec![],
            };
            for op in term_ops {
                if let Operand::Value(v) = op {
                    uses.entry(v).or_default().push((bid, b.insts.len()));
                }
            }
        }
        let touches_arg = |kind: &InstKind, arg: u32| -> bool {
            matches!(kind, InstKind::ArgRead { arg: a, .. } | InstKind::ArgWrite { arg: a, .. } if *a == arg)
        };
        let arg_expr = |f: &Function, arg: u32, k: u64| -> Expr {
            let info = &f.args[arg as usize];
            if info.count == 1 {
                Codegen::arg_field(f, arg)
            } else {
                Expr::Field(vec![
                    PathSeg::new("hdr"),
                    PathSeg::indexed(&Codegen::arr_hdr(f.computation, arg), k as u32),
                    PathSeg::new("value"),
                ])
            }
        };
        for (bid, b) in f.blocks.iter_enumerated() {
            for (i, inst) in b.insts.iter().enumerate() {
                match &inst.kind {
                    // 1. `ArgRead` with constant index whose uses all sit in
                    //    this block with no later write to the same argument
                    //    before the last use: consumers read the header
                    //    field directly.
                    InstKind::ArgRead { arg, index } => {
                        let Some(k) = index.as_const() else { continue };
                        let Some(vuses) = uses.get(&inst.results[0]) else { continue };
                        if vuses.is_empty() || !vuses.iter().all(|(ub, _)| *ub == bid) {
                            continue;
                        }
                        let max_use = vuses.iter().map(|(_, j)| *j).max().unwrap();
                        let clean = b.insts[i + 1..max_use.min(b.insts.len())].iter().all(
                            |x| !matches!(&x.kind, InstKind::ArgWrite { arg: a, .. } if a == arg),
                        );
                        if !clean {
                            continue;
                        }
                        plan.inline_val.insert(inst.results[0], arg_expr(f, *arg, k));
                        plan.skip.insert((bid, i));
                    }
                    // 2. Atomic whose single use is an `ArgWrite` of a
                    //    constant index later in this block, with nothing in
                    //    between touching that argument: the SALU output is
                    //    the header field itself.
                    InstKind::AtomicRmw { .. } => {
                        let Some(&r) = inst.results.first() else { continue };
                        let Some(vuses) = uses.get(&r) else { continue };
                        if vuses.len() != 1 || vuses[0].0 != bid {
                            continue;
                        }
                        let w = vuses[0].1;
                        if w >= b.insts.len() {
                            continue; // terminator use
                        }
                        let InstKind::ArgWrite { arg, index, value } = &b.insts[w].kind else {
                            continue;
                        };
                        let Some(k) = index.as_const() else { continue };
                        if *value != Operand::Value(r) {
                            continue;
                        }
                        let between_clean =
                            b.insts[i + 1..w].iter().all(|x| !touches_arg(&x.kind, *arg));
                        if !between_clean {
                            continue;
                        }
                        let expr = arg_expr(f, *arg, k);
                        plan.forced_dst.insert((bid, i), expr.clone());
                        plan.inline_val.insert(r, expr);
                        plan.skip.insert((bid, w));
                    }
                    _ => {}
                }
            }
        }
        plan
    }
}

impl<'a, 'b> KernelCg<'a, 'b> {
    fn prefix(&self) -> String {
        format!("k{}", self.f.computation)
    }

    fn declare_locals(&mut self) {
        // One meta var per instruction result — except values the plan
        // forwards through header fields.
        for b in self.f.blocks.iter() {
            for inst in &b.insts {
                for &r in &inst.results {
                    if let Some(e) = self.plan.inline_val.get(&r) {
                        self.vals.insert(r, e.clone());
                        continue;
                    }
                    let name = format!("{}_t{}", self.prefix(), r.0);
                    let bits = (self.f.value_ty(r).bits as u32).max(1);
                    self.cg.control.locals.push((name.clone(), bits));
                    self.vals.insert(r, Expr::field(&["meta", &name]));
                }
            }
        }
        // Scalar local slots → meta vars; arrays → header stacks.
        for (id, slot) in self.f.locals.iter_enumerated() {
            if slot.count == 1 {
                let name = format!("{}_l{}_{}", self.prefix(), id.index(), sanitize(&slot.name));
                self.cg.control.locals.push((name.clone(), (slot.ty.bits as u32).max(1)));
                self.local_names.insert(id, name);
            } else {
                let name = format!("{}_loc{}", self.prefix(), id.index());
                self.cg.program.headers.push(HeaderDef {
                    name: format!("{name}_t"),
                    fields: vec![("value".into(), (slot.ty.bits as u32).max(8))],
                    stack: slot.count,
                });
                self.local_names.insert(id, name);
            }
        }
    }

    fn op_expr(&self, op: Operand) -> Expr {
        match op {
            Operand::Const(c, ty) => Expr::Const(c, ty.bits as u32),
            Operand::Value(v) => self.vals.get(&v).cloned().unwrap_or(Expr::Const(0, 32)),
        }
    }

    /// Boolean rendering of an `i1` operand for `if` conditions.
    fn cond_expr(&self, op: Operand) -> Expr {
        match op {
            Operand::Const(c, _) => Expr::Bool(c != 0),
            Operand::Value(_) => {
                Expr::Bin(P4BinOp::Eq, Box::new(self.op_expr(op)), Box::new(Expr::Const(1, 1)))
            }
        }
    }

    // ---- region emission ----------------------------------------------

    fn emit_region(
        &mut self,
        entry: BlockId,
        stop: Option<BlockId>,
    ) -> Result<Vec<Stmt>, CodegenError> {
        let mut out = Vec::new();
        let mut current = entry;
        loop {
            if Some(current) == stop {
                return Ok(out);
            }
            for (i, inst) in self.f.blocks[current].insts.iter().enumerate() {
                if self.plan.skip.contains(&(current, i)) {
                    continue;
                }
                let forced = self.plan.forced_dst.get(&(current, i)).cloned();
                self.emit_inst(inst, forced, &mut out)?;
            }
            match &self.f.blocks[current].term {
                Terminator::Ret(a) => {
                    out.push(Stmt::Assign(
                        Expr::field(&["hdr", NCL_HDR, "action"]),
                        Expr::val(a.kind.code() as u64, 8),
                    ));
                    if let Some(t) = a.target {
                        out.push(Stmt::Assign(
                            Expr::field(&["hdr", NCL_HDR, "target"]),
                            Expr::Cast(16, Box::new(self.op_expr(t))),
                        ));
                    }
                    return Ok(out);
                }
                Terminator::Br(t) => {
                    current = *t;
                }
                Terminator::CondBr { cond, then_bb, else_bb } => {
                    let join = self.ipd.get(&current).copied().flatten();
                    let join = match (join, stop) {
                        (Some(m), Some(s)) if m == s => None,
                        (m, _) => m,
                    };
                    let inner_stop = join.or(stop);
                    let then = self.emit_region(*then_bb, inner_stop)?;
                    let els = self.emit_region(*else_bb, inner_stop)?;
                    out.push(Stmt::If { cond: self.cond_expr(*cond), then, els });
                    match join {
                        Some(m) => current = m,
                        None => return Ok(out),
                    }
                }
                Terminator::Unterminated => {
                    return Err(CodegenError {
                        code: "E0310",
                        message: format!("kernel `{}` has an unterminated block", self.f.name),
                    })
                }
            }
        }
    }

    // ---- instructions ----------------------------------------------------

    fn dst(&self, r: ValueId) -> Expr {
        self.vals[&r].clone()
    }

    fn emit_inst(
        &mut self,
        inst: &netcl_ir::func::Inst,
        forced_dst: Option<Expr>,
        out: &mut Vec<Stmt>,
    ) -> Result<(), CodegenError> {
        match &inst.kind {
            InstKind::Bin { op, a, b } => {
                let dst = self.dst(inst.results[0]);
                let stmt = self.bin_stmt(*op, *a, *b, dst, self.f.value_ty(inst.results[0]))?;
                out.extend(stmt);
            }
            InstKind::Un { op, a } => {
                let dst = self.dst(inst.results[0]);
                let w = self.f.value_ty(inst.results[0]).bits as u32;
                match op {
                    IrUnOp::Bswap => {
                        // Single-stage byte swap via slice concatenation,
                        // expressed as shifts+or (16/32-bit forms).
                        let x = self.op_expr(*a);
                        let e = match w {
                            16 => Expr::Bin(
                                P4BinOp::Or,
                                Box::new(Expr::Bin(
                                    P4BinOp::Shl,
                                    Box::new(x.clone()),
                                    Box::new(Expr::Const(8, w)),
                                )),
                                Box::new(Expr::Bin(
                                    P4BinOp::Shr,
                                    Box::new(x),
                                    Box::new(Expr::Const(8, w)),
                                )),
                            ),
                            _ => {
                                // 32-bit: two slice pairs.
                                let sl = |hi, lo| Expr::Slice(Box::new(self.op_expr(*a)), hi, lo);
                                // (b0 << 24)|(b1 << 16)|(b2 << 8)|b3 via casts.
                                let b0 = Expr::Cast(32, Box::new(sl(7, 0)));
                                let b1 = Expr::Cast(32, Box::new(sl(15, 8)));
                                let b2 = Expr::Cast(32, Box::new(sl(23, 16)));
                                let b3 = Expr::Cast(32, Box::new(sl(31, 24)));
                                let sh = |e: Expr, k: u64| {
                                    Expr::Bin(
                                        P4BinOp::Shl,
                                        Box::new(e),
                                        Box::new(Expr::Const(k, 32)),
                                    )
                                };
                                Expr::Bin(
                                    P4BinOp::Or,
                                    Box::new(Expr::Bin(
                                        P4BinOp::Or,
                                        Box::new(sh(b0, 24)),
                                        Box::new(sh(b1, 16)),
                                    )),
                                    Box::new(Expr::Bin(
                                        P4BinOp::Or,
                                        Box::new(sh(b2, 8)),
                                        Box::new(b3),
                                    )),
                                )
                            }
                        };
                        out.push(Stmt::Assign(dst, e));
                    }
                    IrUnOp::Clz => {
                        // An LPM-style range table (§VI-B): one entry per
                        // leading-zero count.
                        let src_w = self.f.operand_ty(*a).bits as u32;
                        let n = self.cg.fresh("clz");
                        let key = format!("{}_clzk{}", self.prefix(), n);
                        self.cg.control.locals.push((key.clone(), src_w));
                        out.push(Stmt::Assign(Expr::field(&["meta", &key]), self.op_expr(*a)));
                        let act = format!("clz_set_{n}");
                        self.cg.control.actions.push(ActionDef {
                            name: act.clone(),
                            params: vec![("n".into(), w)],
                            body: vec![Stmt::Assign(dst, Expr::field(&["n"]))],
                        });
                        let mut entries = Vec::new();
                        for lz in 0..src_w {
                            let hi_bit = src_w - 1 - lz;
                            let lo = 1u64 << hi_bit;
                            let hi = if hi_bit + 1 >= 64 {
                                u64::MAX
                            } else {
                                (1u64 << (hi_bit + 1)) - 1
                            };
                            entries.push(TableEntry {
                                keys: vec![EntryKey::Range(lo, hi)],
                                action: act.clone(),
                                args: vec![lz as u64],
                            });
                        }
                        entries.push(TableEntry {
                            keys: vec![EntryKey::Range(0, 0)],
                            action: act.clone(),
                            args: vec![src_w as u64],
                        });
                        self.cg.control.tables.push(TableDef {
                            name: format!("clz_tbl_{n}"),
                            keys: vec![(Expr::field(&["meta", &key]), MatchKind::Range)],
                            actions: vec![act],
                            entries,
                            default_action: "NoAction".into(),
                            size: src_w + 1,
                        });
                        out.push(Stmt::ApplyTable(format!("clz_tbl_{n}")));
                    }
                }
            }
            InstKind::Icmp { pred, a, b } => {
                let dst = self.dst(inst.results[0]);
                let e = self.icmp_expr(*pred, *a, *b);
                out.push(Stmt::Assign(dst, Expr::Cast(1, Box::new(e))));
            }
            InstKind::Select { cond, a, b } => {
                let dst = self.dst(inst.results[0]);
                out.push(Stmt::If {
                    cond: self.cond_expr(*cond),
                    then: vec![Stmt::Assign(dst.clone(), self.op_expr(*a))],
                    els: vec![Stmt::Assign(dst, self.op_expr(*b))],
                });
            }
            InstKind::Cast { kind, a, to } => {
                let dst = self.dst(inst.results[0]);
                let from = self.f.operand_ty(*a);
                match kind {
                    CastKind::Zext | CastKind::Trunc => {
                        out.push(Stmt::Assign(
                            dst,
                            Expr::Cast(to.bits as u32, Box::new(self.op_expr(*a))),
                        ));
                    }
                    CastKind::Sext => {
                        // Zero-extend, then OR the sign mask when negative.
                        out.push(Stmt::Assign(
                            dst.clone(),
                            Expr::Cast(to.bits as u32, Box::new(self.op_expr(*a))),
                        ));
                        if to.bits > from.bits {
                            let sign = Expr::Bin(
                                P4BinOp::Eq,
                                Box::new(Expr::Slice(
                                    Box::new(self.op_expr(*a)),
                                    from.bits as u32 - 1,
                                    from.bits as u32 - 1,
                                )),
                                Box::new(Expr::Const(1, 1)),
                            );
                            let mask = (IrTy::int(to.bits).mask()) & !(IrTy::int(from.bits).mask());
                            out.push(Stmt::If {
                                cond: sign,
                                then: vec![Stmt::Assign(
                                    dst.clone(),
                                    Expr::Bin(
                                        P4BinOp::Or,
                                        Box::new(dst),
                                        Box::new(Expr::Const(mask, to.bits as u32)),
                                    ),
                                )],
                                els: vec![],
                            });
                        }
                    }
                }
            }
            InstKind::Phi { .. } => {
                return Err(CodegenError {
                    code: "E0311",
                    message: "φ-node reached code generation (phielim missing)".into(),
                })
            }
            InstKind::LocalLoad { slot, index } => {
                let dst = self.dst(inst.results[0]);
                let src = self.local_ref(*slot, *index, out, true)?;
                out.push(Stmt::Assign(dst, src));
            }
            InstKind::LocalStore { slot, index, value } => {
                let v = self.op_expr(*value);
                self.local_store(*slot, *index, v, out)?;
            }
            InstKind::ArgRead { arg, index } => {
                let dst = self.dst(inst.results[0]);
                let src = self.arg_ref(*arg, *index, out, true)?;
                out.push(Stmt::Assign(dst, src));
            }
            InstKind::ArgWrite { arg, index, value } => {
                let v = self.op_expr(*value);
                self.arg_store(*arg, *index, v, out)?;
            }
            InstKind::MemRead { mem } => {
                let dst = self.dst(inst.results[0]);
                self.register_access(
                    mem.mem,
                    &mem.indices.clone(),
                    AtomicOp { rmw: AtomicRmw::Read, cond: false, ret_new: false },
                    None,
                    vec![],
                    Some(dst),
                    out,
                );
            }
            InstKind::MemWrite { mem, value } => {
                let v = self.op_expr(*value);
                self.register_access(
                    mem.mem,
                    &mem.indices.clone(),
                    AtomicOp { rmw: AtomicRmw::Swap, cond: false, ret_new: false },
                    None,
                    vec![v],
                    None,
                    out,
                );
            }
            InstKind::AtomicRmw { op, mem, cond, operands } => {
                let dst = forced_dst.unwrap_or_else(|| self.dst(inst.results[0]));
                let cond_e = cond.map(|c| self.cond_expr(c));
                let ops: Vec<Expr> = operands.iter().map(|o| self.op_expr(*o)).collect();
                self.register_access(
                    mem.mem,
                    &mem.indices.clone(),
                    *op,
                    cond_e,
                    ops,
                    Some(dst),
                    out,
                );
            }
            InstKind::Lookup { table, key } => {
                self.lookup(*table, *key, inst.results[0], inst.results[1], out)?;
            }
            InstKind::Hash { kind, bits, a } => {
                let n = self.cg.fresh("hash");
                let name = format!("hash_{n}");
                self.cg.control.hashes.push(HashDef {
                    name: name.clone(),
                    algo: *kind,
                    out_bits: *bits as u32,
                });
                let dst = self.dst(inst.results[0]);
                // Explicit cast pins the hashed width so every execution
                // substrate hashes the same bytes.
                let key_bits = self.f.operand_ty(*a).bits as u32;
                let key = Expr::Cast(key_bits, Box::new(self.op_expr(*a)));
                if (*bits as u32) == self.f.value_ty(inst.results[0]).bits as u32 {
                    out.push(Stmt::HashGet { dst, hash: name, args: vec![key] });
                } else {
                    // Folded output narrower than the destination: hash into
                    // a temp of the fold width, then widen.
                    let tmp = format!("{}_h{}", self.prefix(), n);
                    self.cg.control.locals.push((tmp.clone(), *bits as u32));
                    out.push(Stmt::HashGet {
                        dst: Expr::field(&["meta", &tmp]),
                        hash: name,
                        args: vec![key],
                    });
                    out.push(Stmt::Assign(
                        dst,
                        Expr::Cast(
                            self.f.value_ty(inst.results[0]).bits as u32,
                            Box::new(Expr::field(&["meta", &tmp])),
                        ),
                    ));
                }
            }
            InstKind::Rand => {
                let dst = self.dst(inst.results[0]);
                out.push(Stmt::ExternCall { dst: Some(dst), func: "random".into(), args: vec![] });
            }
            InstKind::MsgField { field } => {
                let dst = self.dst(inst.results[0]);
                let name = match field {
                    MsgField::Src => "src",
                    MsgField::Dst => "dst",
                    MsgField::From => "from",
                    MsgField::To => "to",
                };
                out.push(Stmt::Assign(dst, Expr::field(&["hdr", NCL_HDR, name])));
            }
            InstKind::Intrinsic { target, name, args } => {
                let dst = self.dst(inst.results[0]);
                let args: Vec<Expr> = args.iter().map(|a| self.op_expr(*a)).collect();
                out.push(Stmt::ExternCall {
                    dst: Some(dst),
                    func: format!("{target}_{name}"),
                    args,
                });
            }
        }
        Ok(())
    }

    fn bin_stmt(
        &mut self,
        op: IrBinOp,
        a: Operand,
        b: Operand,
        dst: Expr,
        ty: IrTy,
    ) -> Result<Vec<Stmt>, CodegenError> {
        let ae = self.op_expr(a);
        let be = self.op_expr(b);
        let simple = |p4op: P4BinOp| -> Vec<Stmt> {
            vec![Stmt::Assign(
                dst.clone(),
                Expr::Bin(p4op, Box::new(ae.clone()), Box::new(be.clone())),
            )]
        };
        Ok(match op {
            IrBinOp::Add => simple(P4BinOp::Add),
            IrBinOp::Sub => simple(P4BinOp::Sub),
            IrBinOp::Mul => simple(P4BinOp::Mul),
            IrBinOp::And => simple(P4BinOp::And),
            IrBinOp::Or => simple(P4BinOp::Or),
            IrBinOp::Xor => simple(P4BinOp::Xor),
            IrBinOp::Shl => simple(P4BinOp::Shl),
            IrBinOp::LShr => simple(P4BinOp::Shr),
            IrBinOp::UAddSat => simple(P4BinOp::SatAdd),
            IrBinOp::USubSat => simple(P4BinOp::SatSub),
            IrBinOp::UMin | IrBinOp::SMin | IrBinOp::UMax | IrBinOp::SMax => {
                let pred = match op {
                    IrBinOp::UMin => IcmpPred::Ule,
                    IrBinOp::SMin => IcmpPred::Sle,
                    IrBinOp::UMax => IcmpPred::Uge,
                    _ => IcmpPred::Sge,
                };
                vec![Stmt::If {
                    cond: self.icmp_expr(pred, a, b),
                    then: vec![Stmt::Assign(dst.clone(), ae)],
                    els: vec![Stmt::Assign(dst, be)],
                }]
            }
            IrBinOp::AShr => {
                // Logical shift plus sign-mask fill for negative values.
                let w = ty.bits as u32;
                let mut stmts = vec![Stmt::Assign(
                    dst.clone(),
                    Expr::Bin(P4BinOp::Shr, Box::new(ae.clone()), Box::new(be.clone())),
                )];
                if let Some(k) = b.as_const() {
                    let mask = ty.mask() & !(ty.mask() >> k.min(63));
                    let sign = Expr::Bin(
                        P4BinOp::Eq,
                        Box::new(Expr::Slice(Box::new(ae), w - 1, w - 1)),
                        Box::new(Expr::Const(1, 1)),
                    );
                    stmts.push(Stmt::If {
                        cond: sign,
                        then: vec![Stmt::Assign(
                            dst.clone(),
                            Expr::Bin(P4BinOp::Or, Box::new(dst), Box::new(Expr::Const(mask, w))),
                        )],
                        els: vec![],
                    });
                    stmts
                } else {
                    return Err(CodegenError {
                        code: "E0308",
                        message: "arithmetic shift by a dynamic amount is not expressible in P4; shift by a constant or use unsigned values".into(),
                    });
                }
            }
            IrBinOp::UDiv | IrBinOp::SDiv | IrBinOp::URem | IrBinOp::SRem => {
                return Err(CodegenError {
                    code: "E0308",
                    message: "division/remainder survives to code generation; only power-of-two divisors are supported (they strength-reduce to shifts, §V-D)".into(),
                });
            }
        })
    }

    fn icmp_expr(&self, pred: IcmpPred, a: Operand, b: Operand) -> Expr {
        let w = self.f.operand_ty(a).bits as u32;
        let (ae, be) = (self.op_expr(a), self.op_expr(b));
        // P4 bit<N> comparisons are unsigned. Signed predicates use the
        // sign-flip trick: slt(a,b) ⇔ ult(a ^ MSB, b ^ MSB).
        let signed = matches!(pred, IcmpPred::Slt | IcmpPred::Sle | IcmpPred::Sgt | IcmpPred::Sge);
        let (ae, be) = if signed {
            let msb = 1u64 << (w - 1);
            (
                Expr::Bin(P4BinOp::Xor, Box::new(ae), Box::new(Expr::Const(msb, w))),
                Expr::Bin(P4BinOp::Xor, Box::new(be), Box::new(Expr::Const(msb, w))),
            )
        } else {
            (ae, be)
        };
        let p4 = match pred {
            IcmpPred::Eq => P4BinOp::Eq,
            IcmpPred::Ne => P4BinOp::Ne,
            IcmpPred::Ult | IcmpPred::Slt => P4BinOp::Lt,
            IcmpPred::Ule | IcmpPred::Sle => P4BinOp::Le,
            IcmpPred::Ugt | IcmpPred::Sgt => P4BinOp::Gt,
            IcmpPred::Uge | IcmpPred::Sge => P4BinOp::Ge,
        };
        Expr::Bin(p4, Box::new(ae), Box::new(be))
    }

    // ---- memory ------------------------------------------------------------

    /// Emits a Register/RegisterAction access (Fig. 9 column 2).
    #[allow(clippy::too_many_arguments)]
    fn register_access(
        &mut self,
        mem: MemId,
        indices: &[Operand],
        op: AtomicOp,
        cond: Option<Expr>,
        operands: Vec<Expr>,
        dst: Option<Expr>,
        out: &mut Vec<Stmt>,
    ) {
        let g = self.cg.module.global(mem);
        let n = self.cg.fresh("ra");
        let ra_name = format!("ra_{}_{}", sanitize(&g.name), n);
        // The SALU condition input must be a single field; materialize
        // boolean expressions into a 1-bit meta var first.
        let cond = cond.map(|c| match c {
            Expr::Field(_) => c,
            other => {
                let name = format!("{}_rc{}", self.prefix(), n);
                self.cg.control.locals.push((name.clone(), 1));
                out.push(Stmt::Assign(
                    Expr::field(&["meta", &name]),
                    Expr::Cast(1, Box::new(other)),
                ));
                Expr::Bin(
                    P4BinOp::Eq,
                    Box::new(Expr::field(&["meta", &name])),
                    Box::new(Expr::Const(1, 1)),
                )
            }
        });
        self.cg.control.register_actions.push(RegisterActionDef {
            name: ra_name.clone(),
            register: g.name.clone(),
            op,
            cond,
            operands,
        });
        let index = self.flat_index(indices, &g.dims);
        out.push(Stmt::ExecuteRegisterAction { dst, ra: ra_name, index });
    }

    /// Flattens a multi-dimensional index into a row-major offset expression.
    fn flat_index(&self, indices: &[Operand], dims: &[usize]) -> Expr {
        if indices.is_empty() {
            return Expr::Const(0, 32);
        }
        let mut expr: Option<Expr> = None;
        for (i, idx) in indices.iter().enumerate() {
            let e32 = Expr::Cast(32, Box::new(self.op_expr(*idx)));
            expr = Some(match expr {
                None => e32,
                Some(acc) => {
                    let dim = dims.get(i).copied().unwrap_or(1) as u64;
                    Expr::Bin(
                        P4BinOp::Add,
                        Box::new(Expr::Bin(
                            P4BinOp::Mul,
                            Box::new(acc),
                            Box::new(Expr::Const(dim, 32)),
                        )),
                        Box::new(e32),
                    )
                }
            });
        }
        expr.unwrap()
    }

    /// Emits a MAT lookup (Fig. 9 column 3).
    fn lookup(
        &mut self,
        table: MemId,
        key: Operand,
        hit: ValueId,
        value: ValueId,
        out: &mut Vec<Stmt>,
    ) -> Result<(), CodegenError> {
        let g = self.cg.module.global(table);
        let n = self.cg.fresh("lu");
        let tbl_name = format!("lu_{}_{}", sanitize(&g.name), n);
        let act_name = format!("lu_hit_{}_{}", sanitize(&g.name), n);
        let key_bits = self.f.operand_ty(key).bits as u32;
        let val_bits = (self.f.value_ty(value).bits as u32).max(1);

        // Key must be a field; materialize into a meta temp.
        let key_field = format!("{}_lk{}", self.prefix(), n);
        self.cg.control.locals.push((key_field.clone(), key_bits));
        out.push(Stmt::Assign(Expr::field(&["meta", &key_field]), self.op_expr(key)));

        // Hit flag + value destinations are the instruction results.
        let hit_dst = self.dst(hit);
        let val_dst = self.dst(value);
        // Membership sets have Member-only entries; an *empty* table (a
        // managed kv populated at run time) must still get a value-writing
        // action.
        let is_set = !g.entries.is_empty()
            && g.entries.iter().all(|e| matches!(e, LookupEntry::Member { .. }));
        let is_range = g.entries.iter().any(|e| matches!(e, LookupEntry::Range { .. }));
        self.cg.control.actions.push(ActionDef {
            name: act_name.clone(),
            params: if is_set { vec![] } else { vec![("v".into(), val_bits)] },
            body: if is_set {
                vec![]
            } else {
                vec![Stmt::Assign(val_dst.clone(), Expr::field(&["v"]))]
            },
        });
        let entries: Vec<TableEntry> = g
            .entries
            .iter()
            .map(|e| match *e {
                LookupEntry::Member { key } => TableEntry {
                    keys: vec![EntryKey::Value(key)],
                    action: act_name.clone(),
                    args: vec![],
                },
                LookupEntry::Exact { key, value } => TableEntry {
                    keys: vec![EntryKey::Value(key)],
                    action: act_name.clone(),
                    args: vec![value],
                },
                LookupEntry::Range { lo, hi, value } => TableEntry {
                    keys: vec![EntryKey::Range(lo, hi)],
                    action: act_name.clone(),
                    args: vec![value],
                },
            })
            .collect();
        self.cg.control.tables.push(TableDef {
            name: tbl_name.clone(),
            keys: vec![(
                Expr::field(&["meta", &key_field]),
                if is_range { MatchKind::Range } else { MatchKind::Exact },
            )],
            actions: vec![act_name],
            entries,
            default_action: "NoAction".into(),
            size: g.element_count().max(g.entries.len()).max(1) as u32,
        });
        out.push(Stmt::Assign(hit_dst.clone(), Expr::Const(0, 1)));
        out.push(Stmt::Assign(val_dst, Expr::Const(0, val_bits)));
        out.push(Stmt::If {
            cond: Expr::TableHit(tbl_name),
            then: vec![Stmt::Assign(hit_dst, Expr::Const(1, 1))],
            els: vec![],
        });
        Ok(())
    }

    // ---- locals & arguments ------------------------------------------------

    fn local_ref(
        &mut self,
        slot: netcl_ir::LocalId,
        index: Operand,
        out: &mut Vec<Stmt>,
        is_read: bool,
    ) -> Result<Expr, CodegenError> {
        let info = &self.f.locals[slot];
        let name = self.local_names[&slot].clone();
        if info.count == 1 {
            return Ok(Expr::field(&["meta", &name]));
        }
        match index.as_const() {
            Some(k) => Ok(Expr::Field(vec![
                PathSeg::new("hdr"),
                PathSeg::indexed(&name, k as u32),
                PathSeg::new("value"),
            ])),
            None => {
                // Dynamic index: index table (Fig. 9 rightmost column).
                debug_assert!(is_read, "dynamic local writes go through local_store");
                let tmp = self.index_table_read(
                    &name,
                    info.count,
                    (info.ty.bits as u32).max(8),
                    index,
                    out,
                );
                Ok(tmp)
            }
        }
    }

    fn local_store(
        &mut self,
        slot: netcl_ir::LocalId,
        index: Operand,
        value: Expr,
        out: &mut Vec<Stmt>,
    ) -> Result<(), CodegenError> {
        let info = &self.f.locals[slot];
        let name = self.local_names[&slot].clone();
        if info.count == 1 {
            out.push(Stmt::Assign(Expr::field(&["meta", &name]), value));
            return Ok(());
        }
        match index.as_const() {
            Some(k) => {
                out.push(Stmt::Assign(
                    Expr::Field(vec![
                        PathSeg::new("hdr"),
                        PathSeg::indexed(&name, k as u32),
                        PathSeg::new("value"),
                    ]),
                    value,
                ));
            }
            None => {
                self.index_table_write(
                    &name,
                    info.count,
                    (info.ty.bits as u32).max(8),
                    index,
                    value,
                    out,
                );
            }
        }
        Ok(())
    }

    fn arg_ref(
        &mut self,
        arg: u32,
        index: Operand,
        out: &mut Vec<Stmt>,
        is_read: bool,
    ) -> Result<Expr, CodegenError> {
        let info = &self.f.args[arg as usize];
        if info.count == 1 {
            return Ok(Codegen::arg_field(self.f, arg));
        }
        let stack = Codegen::arr_hdr(self.f.computation, arg);
        match index.as_const() {
            Some(k) => Ok(Expr::Field(vec![
                PathSeg::new("hdr"),
                PathSeg::indexed(&stack, k as u32),
                PathSeg::new("value"),
            ])),
            None => {
                debug_assert!(is_read);
                Ok(self.index_table_read(
                    &stack,
                    info.count,
                    (info.ty.bits as u32).max(8),
                    index,
                    out,
                ))
            }
        }
    }

    fn arg_store(
        &mut self,
        arg: u32,
        index: Operand,
        value: Expr,
        out: &mut Vec<Stmt>,
    ) -> Result<(), CodegenError> {
        let info = &self.f.args[arg as usize];
        if info.count == 1 {
            out.push(Stmt::Assign(Codegen::arg_field(self.f, arg), value));
            return Ok(());
        }
        let stack = Codegen::arr_hdr(self.f.computation, arg);
        match index.as_const() {
            Some(k) => {
                out.push(Stmt::Assign(
                    Expr::Field(vec![
                        PathSeg::new("hdr"),
                        PathSeg::indexed(&stack, k as u32),
                        PathSeg::new("value"),
                    ]),
                    value,
                ));
            }
            None => {
                self.index_table_write(
                    &stack,
                    info.count,
                    (info.ty.bits as u32).max(8),
                    index,
                    value,
                    out,
                );
            }
        }
        Ok(())
    }

    /// Dynamic header-stack read through an index table; "we get runtime
    /// bounds-checking for free" (out-of-range indices miss the table).
    fn index_table_read(
        &mut self,
        stack: &str,
        count: u32,
        bits: u32,
        index: Operand,
        out: &mut Vec<Stmt>,
    ) -> Expr {
        let n = self.cg.fresh("idx");
        let keyf = format!("{}_ik{}", self.prefix(), n);
        let dstf = format!("{}_iv{}", self.prefix(), n);
        self.cg.control.locals.push((keyf.clone(), 32));
        self.cg.control.locals.push((dstf.clone(), bits));
        out.push(Stmt::Assign(
            Expr::field(&["meta", &keyf]),
            Expr::Cast(32, Box::new(self.op_expr(index))),
        ));
        let mut actions = Vec::new();
        let mut entries = Vec::new();
        for k in 0..count {
            let act = format!("idx_r{n}_{k}");
            self.cg.control.actions.push(ActionDef {
                name: act.clone(),
                params: vec![],
                body: vec![Stmt::Assign(
                    Expr::field(&["meta", &dstf]),
                    Expr::Field(vec![
                        PathSeg::new("hdr"),
                        PathSeg::indexed(stack, k),
                        PathSeg::new("value"),
                    ]),
                )],
            });
            actions.push(act.clone());
            entries.push(TableEntry {
                keys: vec![EntryKey::Value(k as u64)],
                action: act,
                args: vec![],
            });
        }
        self.cg.control.tables.push(TableDef {
            name: format!("idx_tbl_r{n}"),
            keys: vec![(Expr::field(&["meta", &keyf]), MatchKind::Exact)],
            actions,
            entries,
            default_action: "NoAction".into(),
            size: count,
        });
        out.push(Stmt::ApplyTable(format!("idx_tbl_r{n}")));
        Expr::field(&["meta", &dstf])
    }

    /// Dynamic header-stack write through an index table.
    fn index_table_write(
        &mut self,
        stack: &str,
        count: u32,
        bits: u32,
        index: Operand,
        value: Expr,
        out: &mut Vec<Stmt>,
    ) {
        let n = self.cg.fresh("idx");
        let keyf = format!("{}_ik{}", self.prefix(), n);
        let srcf = format!("{}_iv{}", self.prefix(), n);
        self.cg.control.locals.push((keyf.clone(), 32));
        self.cg.control.locals.push((srcf.clone(), bits));
        out.push(Stmt::Assign(
            Expr::field(&["meta", &keyf]),
            Expr::Cast(32, Box::new(self.op_expr(index))),
        ));
        out.push(Stmt::Assign(Expr::field(&["meta", &srcf]), value));
        let mut actions = Vec::new();
        let mut entries = Vec::new();
        for k in 0..count {
            let act = format!("idx_w{n}_{k}");
            self.cg.control.actions.push(ActionDef {
                name: act.clone(),
                params: vec![],
                body: vec![Stmt::Assign(
                    Expr::Field(vec![
                        PathSeg::new("hdr"),
                        PathSeg::indexed(stack, k),
                        PathSeg::new("value"),
                    ]),
                    Expr::field(&["meta", &srcf]),
                )],
            });
            actions.push(act.clone());
            entries.push(TableEntry {
                keys: vec![EntryKey::Value(k as u64)],
                action: act,
                args: vec![],
            });
        }
        self.cg.control.tables.push(TableDef {
            name: format!("idx_tbl_w{n}"),
            keys: vec![(Expr::field(&["meta", &keyf]), MatchKind::Exact)],
            actions,
            entries,
            default_action: "NoAction".into(),
            size: count,
        });
        out.push(Stmt::ApplyTable(format!("idx_tbl_w{n}")));
    }
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}
