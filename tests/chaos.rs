//! Chaos property suite: the three NetCL applications keep their safety
//! properties under 20% loss with reordering and duplication, across a
//! fixed seed matrix (the ISSUE-2 headline deliverable).
//!
//! Determinism contract: a run is fully described by `(seed, fault
//! schedule)` — the same pair reproduces byte-identical `NetStats`, which
//! `replay_is_deterministic_*` assert. A failing seed from CI therefore
//! replays exactly by rerunning with that seed.
//!
//! The matrix size defaults to 64 and can be overridden with
//! `NETCL_CHAOS_SEEDS` (e.g. `NETCL_CHAOS_SEEDS=8` for a quick local run).
//!
//! Engines: every safety test below runs on the **direct-threaded**
//! backend — it is the `Switch` default (DESIGN.md §14) — and
//! `batched_delivery_equals_scalar_under_chaos_all_apps` additionally runs
//! an explicit engine matrix (threaded × compiled, batched × scalar),
//! asserting all four runs produce identical `NetStats` and
//! `SwitchCounters`.

use std::sync::Arc;

use netcl_apps::{agg, cache, paxos};
use netcl_net::{FaultSchedule, LinkSpec, NodeId};
use netcl_runtime::managed::ManagedMemory;

/// The chaos regime the ISSUE mandates: 20% loss + reorder + duplication.
fn chaos_link() -> LinkSpec {
    LinkSpec::chaos(0.2)
}

fn seed_matrix() -> u64 {
    std::env::var("NETCL_CHAOS_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(64)
}

fn compile(name: &str, src: &str) -> netcl::CompiledUnit {
    netcl::Compiler::new(netcl::CompileOptions::default()).compile(name, src).unwrap()
}

// ---------------------------------------------------------------------------
// AGG: exactly-once sums
// ---------------------------------------------------------------------------

/// Every worker receives every chunk's aggregate exactly once with the
/// correct sum, despite loss, duplication, and reordering: the switch's
/// bitmap dedup makes retransmissions idempotent.
#[test]
fn agg_sums_exactly_once_under_chaos() {
    let cfg = agg::AggConfig { num_workers: 3, num_slots: 4, slot_size: 8 };
    let unit = compile("agg.ncl", &agg::netcl_source(&cfg));
    let program = &unit.devices[0].tna_p4;
    for seed in 0..seed_matrix() {
        let (r, stats) = agg::run_allreduce_chaos(
            program,
            &cfg,
            8,
            500,
            chaos_link(),
            seed,
            FaultSchedule::new(),
            300_000,
        );
        assert!(r.all_correct, "seed {seed}: wrong/missing aggregate: {r:?} stats={stats:?}");
        assert_eq!(stats.unroutable, 0, "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// P4xos: agreement
// ---------------------------------------------------------------------------

/// No instance is ever delivered with two different values, and every
/// proposal decides (the proposer retransmits as new instances until its
/// delivery ack returns).
#[test]
fn paxos_never_chooses_two_values_under_chaos() {
    let unit = compile("paxos.ncl", &paxos::full_source());
    let programs: Vec<(u16, netcl_p4::ast::P4Program)> =
        unit.devices.iter().map(|d| (d.device, d.tna_p4.clone())).collect();
    for seed in 0..seed_matrix() {
        let (r, stats) =
            paxos::run_paxos_chaos(&programs, 6, chaos_link(), seed, FaultSchedule::new(), 200_000);
        assert_eq!(r.conflicts, 0, "seed {seed}: conflicting decisions: {r:?} stats={stats:?}");
        assert_eq!(r.decided, r.proposals, "seed {seed}: undecided proposals: {r:?}");
        assert_eq!(stats.unroutable, 0, "seed {seed}");
    }
}

/// Restarting a minority acceptor mid-run (its votes and rounds wiped)
/// cannot produce conflicting decisions: each instance binds one value.
#[test]
fn paxos_survives_acceptor_restart() {
    let unit = compile("paxos.ncl", &paxos::full_source());
    let programs: Vec<(u16, netcl_p4::ast::P4Program)> =
        unit.devices.iter().map(|d| (d.device, d.tna_p4.clone())).collect();
    let faults = FaultSchedule::new().device_outage(paxos::ACCEPTOR_DEV, 30_000, 120_000);
    for seed in 0..seed_matrix().min(16) {
        let (r, stats) =
            paxos::run_paxos_chaos(&programs, 6, chaos_link(), seed, faults.clone(), 200_000);
        assert_eq!(r.conflicts, 0, "seed {seed}: {r:?}");
        assert_eq!(r.decided, r.proposals, "seed {seed}: {r:?}");
        assert_eq!(stats.device_restarts, 1, "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// CACHE: read-your-last-write
// ---------------------------------------------------------------------------

const CACHE_KEYS: u64 = 6;

fn cache_cfg() -> cache::CacheConfig {
    cache::CacheConfig { slots: 16, words: 4, threshold: 8, sketch_cols: 256 }
}

/// Control-plane (re)population closure: at build time (empty store) the
/// initial keys are cached with their server values; on device restart only
/// keys the server has acknowledged writes for are re-indexed, with the
/// server's current values — the switch never serves older state than the
/// authority.
fn cache_repopulate(unit: &netcl::CompiledUnit) -> cache::RepopulateFn {
    let mm = ManagedMemory::new(&unit.devices[0].tna_ir);
    let cfg = cache_cfg();
    Arc::new(move |sw, store| {
        if store.is_empty() {
            for k in 0..CACHE_KEYS {
                cache::populate(&mm, sw, &cfg, k as u16, k, &cache::server_value(&cfg, k));
            }
        } else {
            for (&k, v) in store {
                cache::populate(&mm, sw, &cfg, k as u16, k, v);
            }
        }
    })
}

/// Every GET issued after its key's PUT was acknowledged returns the
/// written value, whether the switch or the server answers.
#[test]
fn cache_reads_return_last_write_under_chaos() {
    let cfg = cache_cfg();
    let unit = compile("cache.ncl", &cache::netcl_source(&cfg));
    for seed in 0..seed_matrix() {
        let (r, stats) = cache::run_cache_chaos(
            &unit.devices[0].tna_p4,
            cache_repopulate(&unit),
            &cfg,
            CACHE_KEYS,
            chaos_link(),
            seed,
            FaultSchedule::new(),
            200_000,
        );
        assert_eq!(r.stale, 0, "seed {seed}: stale reads: {r:?} stats={stats:?}");
        assert_eq!(r.completed, CACHE_KEYS, "seed {seed}: incomplete: {r:?}");
        assert_eq!(stats.unroutable, 0, "seed {seed}");
    }
}

/// A mid-run device restart wipes `_managed_` cache state; the registered
/// control-plane hook repopulates it from the server's store, and coherence
/// still holds.
#[test]
fn cache_survives_device_restart() {
    let cfg = cache_cfg();
    let unit = compile("cache.ncl", &cache::netcl_source(&cfg));
    let faults = FaultSchedule::new().device_outage(1, 25_000, 80_000);
    for seed in 0..seed_matrix().min(16) {
        let (r, stats) = cache::run_cache_chaos(
            &unit.devices[0].tna_p4,
            cache_repopulate(&unit),
            &cfg,
            CACHE_KEYS,
            chaos_link(),
            seed,
            faults.clone(),
            200_000,
        );
        assert_eq!(r.stale, 0, "seed {seed}: {r:?}");
        assert_eq!(r.completed, CACHE_KEYS, "seed {seed}: {r:?}");
        assert_eq!(stats.device_restarts, 1, "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// Replay determinism
// ---------------------------------------------------------------------------

/// Same `(seed, fault schedule)` → byte-identical `NetStats`: the contract
/// that makes any failing seed above replayable.
#[test]
fn replay_is_deterministic_agg() {
    let cfg = agg::AggConfig { num_workers: 3, num_slots: 4, slot_size: 8 };
    let unit = compile("agg.ncl", &agg::netcl_source(&cfg));
    let run = |seed| {
        agg::run_allreduce_chaos(
            &unit.devices[0].tna_p4,
            &cfg,
            8,
            500,
            chaos_link(),
            seed,
            FaultSchedule::new().link_outage(NodeId::Host(100), NodeId::Device(1), 40_000, 90_000),
            300_000,
        )
        .1
    };
    let (a, b) = (run(7), run(7));
    assert_eq!(a, b, "identical (seed, schedule) must replay identically");
    assert!(a.fault_drops > 0 || a.link_losses > 0, "the chaos regime actually fired: {a:?}");
}

/// The cache workload replays identically too, including a device restart
/// (the control-plane repopulation path is deterministic).
#[test]
fn replay_is_deterministic_cache() {
    let cfg = cache_cfg();
    let unit = compile("cache.ncl", &cache::netcl_source(&cfg));
    let faults = FaultSchedule::new().device_outage(1, 25_000, 80_000);
    let run = |seed| {
        cache::run_cache_chaos(
            &unit.devices[0].tna_p4,
            cache_repopulate(&unit),
            &cfg,
            CACHE_KEYS,
            chaos_link(),
            seed,
            faults.clone(),
            200_000,
        )
        .1
    };
    let (a, b) = (run(3), run(3));
    assert_eq!(a, b);
    assert_eq!(a.device_restarts, 1);
}

// ---------------------------------------------------------------------------
// Batched delivery equivalence (DESIGN.md §13)
// ---------------------------------------------------------------------------

/// Sharded row of the matrix (ISSUE 7): scheduled faults landing on
/// *inter-shard* links — a link outage severing the host–device boundary
/// and a device outage wiping the kernel device — produce identical fault
/// counter breakdowns (`fault_drops`, `link_losses`, `device_restarts`,
/// per-node drops) sharded vs. scalar, for a sample of chaos seeds. The
/// fault schedule is replicated into every shard, so fault *state* agrees
/// even where the fault's endpoints live in different shards.
#[test]
fn sharded_fault_counters_equal_scalar_on_inter_shard_faults() {
    use netcl_bmv2::Switch;
    use netcl_net::topo::star;
    use netcl_net::{NetworkBuilder, NodeId, Partition};
    use netcl_runtime::message::Message;

    for app in netcl_apps::all_apps() {
        let unit = compile(app.name, &app.netcl_source);
        let p4 = unit.device(app.device).expect("kernel device").tna_p4.clone();
        let dev = app.device;
        let builder = |seed: u64| {
            NetworkBuilder::new(star(dev, &[1, 2], chaos_link()))
                .seed(seed)
                .device(dev, Switch::new(p4.clone()), 500)
                .sink_host(1)
                .sink_host(2)
                .faults(
                    FaultSchedule::new()
                        // h1–dev is an inter-shard link below.
                        .link_outage(NodeId::Host(1), NodeId::Device(dev), 30_000, 70_000)
                        .device_outage(dev, 90_000, 110_000),
                )
        };
        let drive = |send: &mut dyn FnMut(u32, u64, Vec<u8>)| {
            for round in 0..30u64 {
                let m = Message::new(1, 2, 1, dev);
                let mut bytes = Vec::new();
                m.write_header(&mut bytes);
                bytes.extend((0..64u64).map(|j| (round.wrapping_mul(13) ^ j) as u8));
                send(1, round * 5_000, bytes);
            }
        };
        // The partition puts the faulted link's endpoints in different
        // shards: the device with h2, h1 alone.
        let partition =
            Partition::new(vec![vec![NodeId::Device(dev), NodeId::Host(2)], vec![NodeId::Host(1)]]);
        for seed in 0..seed_matrix().min(16) {
            let scalar = {
                let mut net = builder(seed).build();
                drive(&mut |h, at, b| net.send_from_host(h, at, b));
                net.run(400_000);
                net.stats.clone()
            };
            assert!(scalar.fault_drops > 0, "{}: seed {seed}: faults must bite", app.name);
            assert_eq!(scalar.device_restarts, 1, "{}: seed {seed}", app.name);
            let mut net = builder(seed).build_sharded(partition.clone()).unwrap();
            drive(&mut |h, at, b| net.send_from_host(h, at, b));
            net.run(400_000);
            assert_eq!(
                scalar,
                net.stats(),
                "{}: sharded fault counters diverged at seed {seed}",
                app.name
            );
        }
    }
}

/// Gray-failure row of the chaos matrix (ISSUE 10): a mid-run slow-link
/// window — 10× transit and jitter on the client–device link, routing
/// deliberately left alone — stretches deliveries without dropping them.
/// Sharded runs (both window runners, the degraded link spanning the
/// shard boundary) stay byte-identical to scalar, and
/// `degraded_transits` counts every slowed transit identically.
#[test]
fn sharded_equals_scalar_under_gray_degraded_links() {
    use netcl_bmv2::Switch;
    use netcl_net::topo::star;
    use netcl_net::{NetworkBuilder, NodeId, Partition};
    use netcl_runtime::message::Message;

    for app in netcl_apps::all_apps() {
        let unit = compile(app.name, &app.netcl_source);
        let p4 = unit.device(app.device).expect("kernel device").tna_p4.clone();
        let dev = app.device;
        let builder = |seed: u64| {
            NetworkBuilder::new(star(dev, &[1, 2], chaos_link()))
                .seed(seed)
                .device(dev, Switch::new(p4.clone()), 500)
                .sink_host(1)
                .sink_host(2)
                .faults(
                    FaultSchedule::new()
                        // The h1–dev link crawls at 10× for most of the
                        // run; below, its endpoints live in different
                        // shards (the window widens the lookahead test).
                        .slow_link(NodeId::Host(1), NodeId::Device(dev), 10, 20_000, 110_000),
                )
        };
        let drive = |send: &mut dyn FnMut(u32, u64, Vec<u8>)| {
            for round in 0..30u64 {
                let m = Message::new(1, 2, 1, dev);
                let mut bytes = Vec::new();
                m.write_header(&mut bytes);
                bytes.extend((0..64u64).map(|j| (round.wrapping_mul(19) ^ j) as u8));
                send(1, round * 5_000, bytes);
            }
        };
        let partition =
            Partition::new(vec![vec![NodeId::Device(dev), NodeId::Host(2)], vec![NodeId::Host(1)]]);
        for seed in 0..seed_matrix().min(16) {
            let scalar = {
                let mut net = builder(seed).build();
                drive(&mut |h, at, b| net.send_from_host(h, at, b));
                net.run(400_000);
                net.stats.clone()
            };
            assert!(
                scalar.degraded_transits > 0,
                "{}: seed {seed}: the slow-link window must cover traffic",
                app.name
            );
            assert_eq!(
                scalar.fault_drops, 0,
                "{}: seed {seed}: a gray failure is not an outage — nothing fault-drops",
                app.name
            );
            for threaded in [false, true] {
                let mut net = builder(seed).build_sharded(partition.clone()).unwrap();
                net.set_threaded(threaded);
                drive(&mut |h, at, b| net.send_from_host(h, at, b));
                net.run(400_000);
                assert_eq!(
                    scalar,
                    net.stats(),
                    "{}: sharded (threaded={threaded}) diverged under gray failure at seed {seed}",
                    app.name
                );
            }
        }
    }
}

/// The batched delivery path (the simulator default) is observationally
/// identical to the scalar one for every Table III application under the
/// full chaos regime — loss, corruption, duplication, jitter, reordering,
/// a device failure, and a restart — across a seed matrix. `NetStats` and
/// the device's `SwitchCounters` must match field-for-field.
#[test]
fn batched_delivery_equals_scalar_under_chaos_all_apps() {
    use netcl_bmv2::{Engine, Switch};
    use netcl_net::topo::star;
    use netcl_net::{Fault, NetworkBuilder};
    use netcl_runtime::message::Message;

    for app in netcl_apps::all_apps() {
        let unit = compile(app.name, &app.netcl_source);
        let p4 = unit.device(app.device).expect("kernel device").tna_p4.clone();
        let dev = app.device;
        let run = |scalar: bool, engine: Engine, seed: u64| {
            let topo = star(dev, &[1, 2], chaos_link());
            let mut net = NetworkBuilder::new(topo)
                .seed(seed)
                .device(dev, Switch::new(p4.clone()), 500)
                .engine(engine)
                .sink_host(1)
                .sink_host(2)
                .fault(40_000, Fault::DeviceFail(dev))
                .fault(80_000, Fault::DeviceRestart(dev))
                .build();
            net.set_scalar_delivery(scalar);
            // Same-timestamp bursts of pseudo-random payloads: some parse,
            // some reject — equivalence must hold either way.
            for round in 0..25u64 {
                for i in 0..4u64 {
                    let m = Message::new(1, 2, 1, dev);
                    let mut bytes = Vec::new();
                    m.write_header(&mut bytes);
                    bytes.extend(
                        (0..96u64).map(|j| (round.wrapping_mul(31) ^ i.wrapping_mul(7) ^ j) as u8),
                    );
                    net.send_from_host(1, round * 5_000, bytes);
                }
            }
            net.run(500_000);
            assert_eq!(
                net.switch(dev).unwrap().engine(),
                engine,
                "{}: engine selection must survive the device restart",
                app.name
            );
            (net.stats.clone(), net.switch(dev).unwrap().counters().clone())
        };
        // Engine matrix: the threaded default and the compiled pc-loop
        // must each hold batched ≡ scalar — and all four runs must agree
        // with each other (threaded ≡ compiled under chaos).
        for seed in [1u64, 7, 42] {
            let mut first: Option<(netcl_net::NetStats, netcl_bmv2::SwitchCounters)> = None;
            for engine in [Engine::Threaded, Engine::Compiled] {
                let batched = run(false, engine, seed);
                let scalar = run(true, engine, seed);
                assert!(
                    batched == scalar,
                    "{} [{}]: batched delivery diverged from scalar at seed {seed}:\n\
                     {:#?}\nvs\n{:#?}",
                    app.name,
                    engine.name(),
                    batched,
                    scalar
                );
                assert_eq!(
                    batched.1.backend,
                    engine.name(),
                    "{}: counters must carry the engine label",
                    app.name
                );
                if let Some(prev) = &first {
                    assert!(
                        *prev == batched,
                        "{}: engines diverged at seed {seed}:\n{:#?}\nvs\n{:#?}",
                        app.name,
                        prev,
                        batched
                    );
                } else {
                    assert!(batched.0.kernel_executions > 0, "{}: no kernel traffic", app.name);
                    assert_eq!(
                        batched.0.device_restarts, 1,
                        "{}: restart fault must fire",
                        app.name
                    );
                    assert!(
                        batched.1.packets > 0,
                        "{}: the restarted switch must still see packets",
                        app.name
                    );
                    first = Some(batched);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime reconfiguration under chaos (DESIGN.md §16)
// ---------------------------------------------------------------------------

/// The lookup + managed-register unit the reconfiguration tests drive: a
/// table the control plane updates live, and a register whose fate
/// distinguishes an update (state preserved) from a restart (state wiped).
const RECONF_SRC: &str = r#"
_managed_ unsigned epoch;
_managed_ _lookup_ ncl::kv<unsigned, unsigned> rules[8] = {{1, 42}};
_kernel(1) _at(1) void k(unsigned key, unsigned &v, char &hit, unsigned &e) {
  hit = ncl::lookup(rules, key, v);
  e = epoch;
}
"#;

/// Queries `key` directly on the device switch and returns `(v, hit, e)`.
fn reconf_query(
    unit: &netcl::CompiledUnit,
    sw: &mut netcl_bmv2::Switch,
    key: u64,
) -> (u64, u64, u64) {
    use netcl_runtime::message::{pack, unpack, Message};
    let spec = unit.model.kernels[0].specification();
    let m = Message::new(1, 2, 1, 1);
    let packed = pack(&m, &spec, &[Some(&[key]), None, None, None]).unwrap();
    let (_, out) = sw.process(&packed).unwrap();
    let (mut v, mut hit, mut e) = (Vec::new(), Vec::new(), Vec::new());
    unpack(&out, &spec, &mut [None, Some(&mut v), Some(&mut hit), Some(&mut e)]).unwrap();
    (v[0], hit[0], e[0])
}

/// Scheduled rule updates race a device failure and restart under the
/// chaos link: updates applied before or at the restart survive it (the
/// simulator journals and replays them), an update landing on the failed
/// device is rejected and stays gone, and the whole run replays
/// byte-identically. A full reload (fresh `Switch`) loses the same rules —
/// the contrast the live control plane exists for.
#[test]
fn rule_updates_survive_restart_and_replay_deterministically() {
    use netcl::sema::model::LookupEntry;
    use netcl_bmv2::Switch;
    use netcl_net::topo::star;
    use netcl_net::{Fault, NetworkBuilder};
    use netcl_runtime::message::Message;
    use netcl_runtime::ControlPlane;

    let unit = compile("reconf.ncl", RECONF_SRC);
    let p4 = unit.devices[0].tna_p4.clone();
    let cp = ControlPlane::new(&unit.devices[0].tna_ir);
    // Batches are built against a template switch: the table layout is a
    // pure function of the program, so they apply to any instance of it.
    let template = Switch::new(p4.clone());
    let u9 =
        cp.build_insert(&template, "rules", &LookupEntry::Exact { key: 9, value: 77 }).unwrap();
    let u5 =
        cp.build_insert(&template, "rules", &LookupEntry::Exact { key: 5, value: 55 }).unwrap();
    let u3 =
        cp.build_insert(&template, "rules", &LookupEntry::Exact { key: 3, value: 33 }).unwrap();
    let ops_per_batch = u9.len() as u64;

    let run = |seed: u64| {
        let mut net = NetworkBuilder::new(star(1, &[1, 2], chaos_link()))
            .seed(seed)
            .device(1, Switch::new(p4.clone()), 500)
            .sink_host(1)
            .sink_host(2)
            .fault(40_000, Fault::DeviceFail(1))
            .fault(80_000, Fault::DeviceRestart(1))
            .update(20_000, 1, u9.clone()) // applied live, journaled
            .update(60_000, 1, u5.clone()) // device is down: rejected
            .update(80_000, 1, u3.clone()) // same tick as the restart: fault orders first
            .build();
        net.switch_mut(1).unwrap().register_write("epoch", 0, 7);
        for round in 0..30u64 {
            let m = Message::new(1, 2, 1, 1);
            let mut bytes = Vec::new();
            m.write_header(&mut bytes);
            bytes.extend((0..32u64).map(|j| (round.wrapping_mul(17) ^ j) as u8));
            net.send_from_host(1, round * 5_000, bytes);
        }
        net.run(400_000);
        let counters = net.switch(1).unwrap().counters().clone();
        let queries: Vec<(u64, u64, u64)> = [9, 3, 5, 1]
            .iter()
            .map(|&k| reconf_query(&unit, net.switch_mut(1).unwrap(), k))
            .collect();
        (net.stats.clone(), counters, queries)
    };

    for seed in 0..seed_matrix().min(8) {
        let (stats, counters, queries) = run(seed);
        assert_eq!(stats.device_restarts, 1, "seed {seed}");
        assert_eq!(stats.rule_updates, 2, "seed {seed}: u9 and u3 apply (u3 after the restart)");
        assert_eq!(stats.rule_update_rejects, 1, "seed {seed}: u5 hit the failed device");
        // The restart resets counters; what remains is the journal replay
        // of u9 plus the same-tick u3 batch.
        assert_eq!(counters.table_updates, 2 * ops_per_batch, "seed {seed}");
        // Updated rules survived the restart via the journal...
        assert_eq!((queries[0].0, queries[0].1), (77, 1), "seed {seed}: u9 lost by restart");
        assert_eq!((queries[1].0, queries[1].1), (33, 1), "seed {seed}: u3 lost");
        // ...the rejected one stayed gone, and static entries came back.
        assert_eq!(queries[2].1, 0, "seed {seed}: rejected update resurrected");
        assert_eq!((queries[3].0, queries[3].1), (42, 1), "seed {seed}: static entry");
        // The restart DID wipe registers — that is what distinguishes a
        // live table update from a reload.
        assert_eq!(queries[0].2, 0, "seed {seed}: epoch should be factory-reset");
        // A full reload loses every live rule the journal preserved.
        let mut fresh = Switch::new(p4.clone());
        assert_eq!(reconf_query(&unit, &mut fresh, 9).1, 0, "reload keeps live rules?");
    }
    // Replay determinism: same (seed, schedule) → byte-identical run.
    assert_eq!(run(11), run(11));
}

/// The same chaos schedule — traffic, faults, and live rule updates — on
/// the threaded, compiled, and interpreter engines: `NetStats`, the
/// device's `SwitchCounters`, and post-run rule visibility are identical.
/// The differential contract covers runtime reconfiguration.
#[test]
fn rule_updates_are_engine_uniform_under_chaos() {
    use netcl::sema::model::LookupEntry;
    use netcl_bmv2::{Engine, Switch};
    use netcl_net::topo::star;
    use netcl_net::{Fault, NetworkBuilder};
    use netcl_runtime::message::Message;
    use netcl_runtime::ControlPlane;

    let unit = compile("reconf.ncl", RECONF_SRC);
    let p4 = unit.devices[0].tna_p4.clone();
    let cp = ControlPlane::new(&unit.devices[0].tna_ir);
    let template = Switch::new(p4.clone());
    let ins =
        cp.build_insert(&template, "rules", &LookupEntry::Exact { key: 6, value: 66 }).unwrap();
    let del = cp.build_remove(&template, "rules", 1).unwrap();

    let run = |engine: Engine, seed: u64| {
        let mut net = NetworkBuilder::new(star(1, &[1, 2], chaos_link()))
            .seed(seed)
            .device(1, Switch::new(p4.clone()), 500)
            .engine(engine)
            .sink_host(1)
            .sink_host(2)
            .fault(50_000, Fault::DeviceFail(1))
            .fault(70_000, Fault::DeviceRestart(1))
            .update(30_000, 1, ins.clone())
            .update(90_000, 1, del.clone())
            .build();
        for round in 0..20u64 {
            let m = Message::new(1, 2, 1, 1);
            let mut bytes = Vec::new();
            m.write_header(&mut bytes);
            bytes.extend((0..32u64).map(|j| (round.wrapping_mul(23) ^ j) as u8));
            net.send_from_host(1, round * 6_000, bytes);
        }
        net.run(400_000);
        let counters = net.switch(1).unwrap().counters().clone();
        let queries: Vec<(u64, u64, u64)> =
            [6, 1].iter().map(|&k| reconf_query(&unit, net.switch_mut(1).unwrap(), k)).collect();
        (net.stats.clone(), counters, queries)
    };

    for seed in [2u64, 13] {
        let t = run(Engine::Threaded, seed);
        let c = run(Engine::Compiled, seed);
        let i = run(Engine::Interpreted, seed);
        assert_eq!(t, c, "threaded vs compiled diverged at seed {seed}");
        assert_eq!(t, i, "threaded vs interpreted diverged at seed {seed}");
        assert_eq!(t.0.rule_updates, 2, "seed {seed}");
        assert_eq!((t.2[0].0, t.2[0].1), (66, 1), "seed {seed}: inserted rule live");
        assert_eq!(t.2[1].1, 0, "seed {seed}: removed rule still hit");
    }
}

/// Scheduled rule updates under sharding: the schedule is replicated into
/// every shard (event keys agree) but applied owner-only, so the merged
/// `NetStats` — including `rule_updates` — are byte-identical to the
/// scalar run even when the update's device and the traffic source live
/// in different shards.
#[test]
fn sharded_rule_updates_equal_scalar() {
    use netcl::sema::model::LookupEntry;
    use netcl_bmv2::Switch;
    use netcl_net::topo::star;
    use netcl_net::{Fault, NetworkBuilder, NodeId, Partition};
    use netcl_runtime::message::Message;
    use netcl_runtime::ControlPlane;

    let unit = compile("reconf.ncl", RECONF_SRC);
    let p4 = unit.devices[0].tna_p4.clone();
    let cp = ControlPlane::new(&unit.devices[0].tna_ir);
    let template = Switch::new(p4.clone());
    let ins =
        cp.build_insert(&template, "rules", &LookupEntry::Exact { key: 4, value: 44 }).unwrap();
    let upd =
        cp.build_modify(&template, "rules", &LookupEntry::Exact { key: 1, value: 99 }).unwrap();

    let builder = |seed: u64| {
        NetworkBuilder::new(star(1, &[1, 2], chaos_link()))
            .seed(seed)
            .device(1, Switch::new(p4.clone()), 500)
            .sink_host(1)
            .sink_host(2)
            .fault(45_000, Fault::DeviceFail(1))
            .fault(75_000, Fault::DeviceRestart(1))
            .update(25_000, 1, ins.clone())
            .update(75_000, 1, upd.clone())
    };
    let drive = |send: &mut dyn FnMut(u32, u64, Vec<u8>)| {
        for round in 0..25u64 {
            let m = Message::new(1, 2, 1, 1);
            let mut bytes = Vec::new();
            m.write_header(&mut bytes);
            bytes.extend((0..32u64).map(|j| (round.wrapping_mul(29) ^ j) as u8));
            send(1, round * 5_000, bytes);
        }
    };
    let partition =
        Partition::new(vec![vec![NodeId::Device(1), NodeId::Host(2)], vec![NodeId::Host(1)]]);
    for seed in 0..seed_matrix().min(8) {
        let (scalar_stats, scalar_regs) = {
            let mut net = builder(seed).build();
            drive(&mut |h, at, b| net.send_from_host(h, at, b));
            net.run(400_000);
            let regs: Vec<(String, Vec<u64>)> = net
                .switch(1)
                .unwrap()
                .registers()
                .map(|(n, c)| (n.to_string(), c.to_vec()))
                .collect();
            (net.stats.clone(), regs)
        };
        assert_eq!(scalar_stats.rule_updates, 2, "seed {seed}");
        let mut net = builder(seed).build_sharded(partition.clone()).unwrap();
        drive(&mut |h, at, b| net.send_from_host(h, at, b));
        net.run(400_000);
        assert_eq!(scalar_stats, net.stats(), "seed {seed}: sharded stats diverged");
        let sharded_regs: Vec<(String, Vec<u64>)> =
            net.switch(1).unwrap().registers().map(|(n, c)| (n.to_string(), c.to_vec())).collect();
        assert_eq!(scalar_regs, sharded_regs, "seed {seed}: device state diverged");
        let (v, hit, _) = reconf_query(&unit, net.switch_mut(1).unwrap(), 4);
        assert_eq!((v, hit), (44, 1), "seed {seed}: update missing in sharded run");
        let (v, hit, _) = reconf_query(&unit, net.switch_mut(1).unwrap(), 1);
        assert_eq!((v, hit), (99, 1), "seed {seed}: modify missing in sharded run");
    }
}

// ---------------------------------------------------------------------------
// Tenant isolation (DESIGN.md §17)
// ---------------------------------------------------------------------------

/// Compiles AGG (tenant 0) and CACHE (tenant 1) into one merged switch
/// program under the default budgets. The app shapes are shrunk (AGG
/// slot_size 8, CACHE words 4) so both tenants' headers fit one PHV.
fn merged_two_tenants() -> (netcl::MergedCompilation, agg::AggConfig, cache::CacheConfig) {
    let acfg = agg::AggConfig { num_workers: 3, num_slots: 4, slot_size: 8 };
    let ccfg = cache_cfg();
    let asrc = agg::netcl_source(&acfg);
    let csrc = cache::netcl_source(&ccfg);
    let sources = [
        netcl::TenantSource { tenant: 0, name: "agg.ncl", source: &asrc },
        netcl::TenantSource { tenant: 1, name: "cache.ncl", source: &csrc },
    ];
    let merged =
        netcl::compile_tenants(&sources, 1, &netcl::CompileOptions::default(), &Default::default())
            .expect("AGG + CACHE must fit the default per-tenant budgets");
    (merged, acfg, ccfg)
}

/// The comp→tenant map [`netcl_bmv2::Switch::set_tenants`] takes, derived
/// from the merged unit's per-tenant maps.
fn tenant_comps(merged: &netcl::MergedCompilation) -> Vec<(u8, u16)> {
    merged
        .tenants
        .iter()
        .flat_map(|s| s.map.comps.iter().map(move |&(_, m)| (m, s.tenant)))
        .collect()
}

/// Rewrites the shim header's comp byte to the merged computation id —
/// the app packet builders emit each tenant's *original* id.
fn with_comp(mut bytes: Vec<u8>, comp: u8) -> Vec<u8> {
    bytes[8] = comp;
    bytes
}

/// AGG traffic: 12 chunk rounds from 3 workers, clustered mid-decade so
/// no arrival lands near the fault boundaries at 48 µs and 88 µs (queueing
/// skew from the other tenant must not push a packet across an outage
/// edge in the merged run but not the solo one).
fn agg_stream(acfg: &agg::AggConfig, comp: u8, send: &mut dyn FnMut(u32, u64, Vec<u8>)) {
    for c in 0..12u32 {
        for w in 0..3u32 {
            let at = 3_000 + c as u64 * 10_000 + w as u64 * 300;
            send(100 + w, at, with_comp(agg::chunk_packet(acfg, w, c), comp));
        }
    }
}

/// CACHE traffic: 12 GETs from host 1 against keys 0..6 — key 1 is
/// populated, so both the hit (reflect) and miss (forward to the server
/// host 2) paths run. Offset from the AGG clusters.
fn cache_stream(ccfg: &cache::CacheConfig, comp: u8, send: &mut dyn FnMut(u32, u64, Vec<u8>)) {
    for r in 0..12u64 {
        let at = 6_000 + r * 10_000;
        let req = cache::request(ccfg, 1, 2, cache::OP_GET, r % CACHE_KEYS, None);
        send(1, at, with_comp(req, comp));
    }
}

/// Populates CACHE slot `slot` with `key` under tenant 1's namespaced
/// state names ([`cache::populate`] hardcodes the un-namespaced ones).
fn populate_t1(
    mm: &ManagedMemory,
    sw: &mut netcl_bmv2::Switch,
    ccfg: &cache::CacheConfig,
    slot: u16,
    key: u64,
) {
    use netcl::sema::model::LookupEntry;
    let value = cache::server_value(ccfg, key);
    mm.lookup_insert(sw, "t1__index", LookupEntry::Exact { key, value: slot as u64 }).unwrap();
    for (i, &w) in value.iter().enumerate() {
        mm.write(sw, "t1__Val", &[i, slot as usize], w).unwrap();
    }
    mm.write(sw, "t1__Share", &[slot as usize], (1u64 << ccfg.words) - 1).unwrap();
    mm.write(sw, "t1__Valid", &[slot as usize], 1).unwrap();
}

/// A device restart plus a tenant-1-scoped rule-update stream (applied
/// live, rejected during the outage, journal-replayed across the restart)
/// leave tenant 0's per-tenant counters, registers, and its hosts'
/// received payloads **byte-identical** to tenant 0's dedicated-switch
/// solo run — and symmetrically for tenant 1. Links are lossless and
/// deterministic here: byte-identity against a solo run is only defined
/// when the merged run's extra traffic draws no chaos randomness.
#[test]
fn tenant_isolation_restart_and_updates_leave_other_tenant_byte_identical() {
    use netcl::sema::model::LookupEntry;
    use netcl_bmv2::Switch;
    use netcl_net::topo::star;
    use netcl_net::{Fault, Network, NetworkBuilder};
    use netcl_runtime::{ControlError, ControlPlane};

    let (merged, acfg, ccfg) = merged_two_tenants();
    let agg_comp = merged.tenant(0).unwrap().map.comp(1).unwrap();
    let cache_comp = merged.tenant(1).unwrap().map.comp(1).unwrap();
    let comps = tenant_comps(&merged);
    let merged_p4 = merged.merged.tna_p4.clone();
    let merged_mm = ManagedMemory::new(&merged.merged.tna_ir);
    let solo0_p4 = merged.tenant(0).unwrap().solo.tna_p4.clone();
    let solo1 = merged.tenant(1).unwrap().solo.clone();
    let solo1_mm = ManagedMemory::new(&solo1.tna_ir);

    // Tenant 1's update stream, built through a tenant-scoped plane: bare
    // names resolve inside its namespace; the batches are name-based, so
    // they apply identically to the merged switch and tenant 1's solo
    // switch (the merge preserves per-tenant table names).
    let cp1 = ControlPlane::for_tenant(&merged.merged.tna_ir, 1);
    let template = Switch::new(merged_p4.clone());
    let ins3 =
        cp1.build_insert(&template, "index", &LookupEntry::Exact { key: 3, value: 1 }).unwrap();
    let ins4 =
        cp1.build_insert(&template, "index", &LookupEntry::Exact { key: 4, value: 2 }).unwrap();
    let ins5 =
        cp1.build_insert(&template, "index", &LookupEntry::Exact { key: 5, value: 3 }).unwrap();
    // A tenant-0-scoped plane cannot even *build* a batch against tenant
    // 1's tables — the cross-tenant guard fires before any switch is
    // touched.
    let cp0 = ControlPlane::for_tenant(&merged.merged.tna_ir, 0);
    assert!(
        matches!(
            cp0.build_insert(&template, "t1__index", &LookupEntry::Exact { key: 9, value: 0 }),
            Err(ControlError::CrossTenant { tenant: 0, .. })
        ),
        "tenant-0 plane must reject tenant-1 tables"
    );

    let hosts = [1u32, 2, 100, 101, 102];
    let base = |sw: Switch| {
        // Group 42 is AGG's multicast target: the completed aggregate fans
        // out to the three workers.
        let mut topo = star(1, &hosts, LinkSpec::default());
        topo.multicast_group(42, vec![NodeId::Host(100), NodeId::Host(101), NodeId::Host(102)]);
        let mut b = NetworkBuilder::new(topo)
            .seed(5)
            .device(1, sw, 500)
            .fault(48_000, Fault::DeviceFail(1))
            .fault(88_000, Fault::DeviceRestart(1));
        for &h in &hosts {
            b = b.sink_host(h);
        }
        b
    };
    let payloads = |net: &Network, h: u32| -> Vec<Vec<u8>> {
        net.host_received(h).iter().map(|(_, b)| b.clone()).collect()
    };
    let tenant_regs = |net: &Network, tenant: u16| -> Vec<(String, Vec<u64>)> {
        net.switch(1)
            .unwrap()
            .registers()
            .filter(|(n, _)| netcl::util::tenant::of(n) == Some(tenant))
            .map(|(n, c)| (n.to_string(), c.to_vec()))
            .collect()
    };
    let updates = |b: NetworkBuilder| {
        b.update(25_000, 1, ins3.clone()) // applied live, journaled
            .update(60_000, 1, ins5.clone()) // device is down: rejected
            .update(95_000, 1, ins4.clone()) // applied after the restart
    };

    // Merged run: both tenants' traffic, the restart, and tenant 1's
    // update stream on one switch. The restart hook re-applies the
    // comp→tenant map (a fresh switch knows no tenants).
    let merged_net = {
        let mut sw = Switch::new(merged_p4.clone());
        sw.set_tenants(&comps);
        populate_t1(&merged_mm, &mut sw, &ccfg, 0, 1);
        let hook_comps = comps.clone();
        let mut net = updates(base(sw))
            .on_restart(1, Box::new(move |sw| sw.set_tenants(&hook_comps)))
            .build();
        agg_stream(&acfg, agg_comp, &mut |h, at, b| net.send_from_host(h, at, b));
        cache_stream(&ccfg, cache_comp, &mut |h, at, b| net.send_from_host(h, at, b));
        net.run(400_000);
        net
    };
    assert_eq!(merged_net.stats.device_restarts, 1);
    assert_eq!(merged_net.stats.rule_updates, 2, "live + post-restart batches apply");
    assert_eq!(merged_net.stats.rule_update_rejects, 1, "mid-outage batch is rejected");

    // Tenant 0's solo baseline: its namespaced program alone, same fault
    // schedule, only its own traffic, no update stream.
    let solo0_net = {
        let mut net = base(Switch::new(solo0_p4.clone())).build();
        agg_stream(&acfg, agg_comp, &mut |h, at, b| net.send_from_host(h, at, b));
        net.run(400_000);
        net
    };
    // Tenant 1's solo baseline: same faults AND the same update stream.
    let solo1_net = {
        let mut sw = Switch::new(solo1.tna_p4.clone());
        populate_t1(&solo1_mm, &mut sw, &ccfg, 0, 1);
        let mut net = updates(base(sw)).build();
        cache_stream(&ccfg, cache_comp, &mut |h, at, b| net.send_from_host(h, at, b));
        net.run(400_000);
        net
    };

    // Tenant 0 is untouched by tenant 1's restart-window updates: its
    // per-tenant counters equal the solo run's *global* counters, its
    // registers match, and every AGG worker saw byte-identical payloads.
    let t0 = merged_net.switch(1).unwrap().tenant_counters(0);
    let solo0_counters = solo0_net.switch(1).unwrap().counters().clone();
    assert_eq!(t0.packets, solo0_counters.packets, "tenant 0 packet count diverged from solo");
    assert_eq!(t0.reg_action_execs, solo0_counters.reg_action_execs, "tenant 0 SALU execs");
    assert!(t0.reg_action_execs > 0, "AGG must exercise RegisterActions");
    assert_eq!(tenant_regs(&merged_net, 0), tenant_regs(&solo0_net, 0), "tenant 0 registers");
    for h in [100u32, 101, 102] {
        assert!(!payloads(&solo0_net, h).is_empty(), "worker {h} must receive aggregates");
        assert_eq!(payloads(&merged_net, h), payloads(&solo0_net, h), "worker {h} payloads");
    }

    // And symmetrically for tenant 1 — including its table stats, so the
    // journal-replayed inserts landed identically on both switches.
    let t1 = merged_net.switch(1).unwrap().tenant_counters(1);
    let solo1_counters = solo1_net.switch(1).unwrap().counters().clone();
    assert_eq!(t1.packets, solo1_counters.packets, "tenant 1 packet count diverged from solo");
    assert_eq!(t1.reg_action_execs, solo1_counters.reg_action_execs, "tenant 1 SALU execs");
    assert_eq!(
        merged_net.switch(1).unwrap().tenant_table_stats(1),
        solo1_net.switch(1).unwrap().tenant_table_stats(1),
        "tenant 1 table hit/miss breakdown"
    );
    assert_eq!(tenant_regs(&merged_net, 1), tenant_regs(&solo1_net, 1), "tenant 1 registers");
    assert!(!payloads(&solo1_net, 2).is_empty(), "cache misses must reach the server");
    assert_eq!(payloads(&merged_net, 1), payloads(&solo1_net, 1), "cache client payloads");
    assert_eq!(payloads(&merged_net, 2), payloads(&solo1_net, 2), "cache server payloads");
}

/// The merged two-tenant switch under the full chaos regime — loss,
/// duplication, corruption, reordering, a failure, a restart, and a
/// tenant-scoped update stream — produces identical `NetStats` and
/// `SwitchCounters` (including the per-tenant sub-views) on all three
/// engines, and the sharded run matches the scalar one field-for-field.
#[test]
fn tenant_isolation_chaos_engine_matrix_sharded_equals_scalar() {
    use netcl::sema::model::LookupEntry;
    use netcl_bmv2::{Engine, Switch};
    use netcl_net::topo::star;
    use netcl_net::{Fault, NetworkBuilder, Partition};
    use netcl_runtime::ControlPlane;

    let (merged, acfg, ccfg) = merged_two_tenants();
    let agg_comp = merged.tenant(0).unwrap().map.comp(1).unwrap();
    let cache_comp = merged.tenant(1).unwrap().map.comp(1).unwrap();
    let comps = tenant_comps(&merged);
    let p4 = merged.merged.tna_p4.clone();
    let mm = ManagedMemory::new(&merged.merged.tna_ir);

    let cp1 = ControlPlane::for_tenant(&merged.merged.tna_ir, 1);
    let template = Switch::new(p4.clone());
    let ins =
        cp1.build_insert(&template, "index", &LookupEntry::Exact { key: 3, value: 1 }).unwrap();

    let hosts = [1u32, 2, 100, 101, 102];
    let builder = |engine: Engine, seed: u64| {
        let mut sw = Switch::new(p4.clone());
        sw.set_tenants(&comps);
        populate_t1(&mm, &mut sw, &ccfg, 0, 1);
        let hook_comps = comps.clone();
        let mut topo = star(1, &hosts, chaos_link());
        topo.multicast_group(42, vec![NodeId::Host(100), NodeId::Host(101), NodeId::Host(102)]);
        let mut b = NetworkBuilder::new(topo)
            .seed(seed)
            .device(1, sw, 500)
            .engine(engine)
            .fault(48_000, Fault::DeviceFail(1))
            .fault(88_000, Fault::DeviceRestart(1))
            .update(25_000, 1, ins.clone())
            .on_restart(1, Box::new(move |sw| sw.set_tenants(&hook_comps)));
        for &h in &hosts {
            b = b.sink_host(h);
        }
        b
    };
    let drive = |send: &mut dyn FnMut(u32, u64, Vec<u8>)| {
        agg_stream(&acfg, agg_comp, send);
        cache_stream(&ccfg, cache_comp, send);
    };
    // Host 1 (the cache client) lives in a different shard from the
    // device, so both tenants' traffic and the update stream cross the
    // shard boundary.
    let partition = Partition::new(vec![
        vec![
            NodeId::Device(1),
            NodeId::Host(2),
            NodeId::Host(100),
            NodeId::Host(101),
            NodeId::Host(102),
        ],
        vec![NodeId::Host(1)],
    ]);

    for seed in [3u64, 17] {
        let mut first: Option<(netcl_net::NetStats, netcl_bmv2::SwitchCounters)> = None;
        for engine in [Engine::Threaded, Engine::Compiled, Engine::Interpreted] {
            let mut net = builder(engine, seed).build();
            drive(&mut |h, at, b| net.send_from_host(h, at, b));
            net.run(400_000);
            let run = (net.stats.clone(), net.switch(1).unwrap().counters().clone());
            if let Some(prev) = &first {
                assert!(
                    *prev == run,
                    "[{}] diverged at seed {seed}:\n{:#?}\nvs\n{:#?}",
                    engine.name(),
                    prev,
                    run
                );
            } else {
                assert_eq!(run.0.device_restarts, 1, "seed {seed}");
                let (t0, t1) = (run.1.tenants.get(&0), run.1.tenants.get(&1));
                assert!(
                    t0.is_some_and(|t| t.packets > 0) && t1.is_some_and(|t| t.packets > 0),
                    "seed {seed}: both tenants must see traffic under chaos: {:?}",
                    run.1.tenants
                );
                let attributed: u64 = run.1.tenants.values().map(|t| t.packets).sum();
                assert!(
                    attributed <= run.1.packets,
                    "seed {seed}: attributed {attributed} > total {}",
                    run.1.packets
                );
                first = Some(run);
            }
        }
        let (scalar_stats, scalar_counters) = first.unwrap();
        let mut net = builder(Engine::Threaded, seed).build_sharded(partition.clone()).unwrap();
        drive(&mut |h, at, b| net.send_from_host(h, at, b));
        net.run(400_000);
        assert_eq!(scalar_stats, net.stats(), "seed {seed}: sharded stats diverged");
        assert_eq!(
            scalar_counters,
            net.switch(1).unwrap().counters().clone(),
            "seed {seed}: sharded per-tenant counters diverged"
        );
    }
}
