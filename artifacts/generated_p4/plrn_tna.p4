// PLRN_dev5 — generated for Intel Tofino (TNA)
#include <core.p4>
#include <tna.p4>

header ncl_t {
    bit<16> src;
    bit<16> dst;
    bit<16> from;
    bit<16> to;
    bit<8> comp;
    bit<8> action;
    bit<16> target;
}

header arr_c1_a5_t {
    bit<32> value;
}

header args_c1_t {
    bit<8> a0_type;
    bit<32> a1_instance;
    bit<16> a2_round;
    bit<16> a3_vround;
    bit<8> a4_vote;
}

header k1_loc1_t {
    bit<32> value;
}

parser IgParser(packet_in pkt, out headers_t hdr) {
    state start {
        pkt.extract(hdr.ncl);
        transition select(hdr.ncl.comp) {
            1: parse_c1;
            default: accept;
        }
    }
    state parse_c1 {
        pkt.extract(hdr.args_c1);
        pkt.extract(hdr.arr_c1_a5);
        transition accept;
    }
}

control Ig(inout headers_t hdr, inout metadata_t meta) {
    bit<16> egress_port;
    bit<16> k1_t107;
    bit<32> k1_t117;
    bit<1> k1_t118;
    bit<32> k1_t119;
    bit<32> k1_t121;
    bit<16> k1_t122;
    bit<32> k1_t123;
    bit<32> k1_t124;
    bit<32> k1_t125;
    bit<32> k1_t126;
    bit<1> k1_t127;
    bit<32> k1_t129;
    bit<8> k1_t131;
    bit<32> k1_t133;
    bit<32> k1_t134;
    bit<32> k1_t135;
    bit<8> k1_t136;
    bit<32> k1_t137;
    bit<1> k1_t138;
    bit<1> k1_t139;
    bit<1> k1_t140;
    bit<1> k1_t141;
    bit<1> k1_t142;
    bit<1> k1_t143;
    bit<1> k1_t144;
    bit<1> k1_t145;
    bit<1> k1_t146;
    bit<1> k1_t147;
    bit<1> k1_t148;
    bit<1> k1_t149;
    bit<1> k1_t150;
    bit<1> k1_t151;
    bit<32> k1_t153;
    bit<32> k1_t154;
    bit<32> k1_t155;
    bit<32> k1_t157;
    bit<32> k1_t158;
    bit<32> k1_t159;
    bit<32> k1_t161;
    bit<32> k1_t162;
    bit<32> k1_t163;
    bit<32> k1_t165;
    bit<32> k1_t166;
    bit<32> k1_t167;
    bit<32> k1_t169;
    bit<32> k1_t170;
    bit<32> k1_t171;
    bit<32> k1_t173;
    bit<32> k1_t174;
    bit<32> k1_t175;
    bit<32> k1_t177;
    bit<32> k1_t178;
    bit<32> k1_t179;
    bit<32> k1_t181;
    bit<32> k1_t182;
    bit<32> k1_t183;
    bit<16> k1_l0_round;
    bit<16> k1_l2_r;
    bit<8> k1_l3_count;
    bit<8> k1_l4_hist;
    Register<bit<8>, bit<32>>(1024) VoteHistory;
    Register<bit<16>, bit<32>>(1024) Round;
    Register<bit<32>, bit<32>>(1024) Value__0;
    Register<bit<32>, bit<32>>(1024) Value__1;
    Register<bit<32>, bit<32>>(1024) Value__2;
    Register<bit<32>, bit<32>>(1024) Value__3;
    Register<bit<32>, bit<32>>(1024) Value__4;
    Register<bit<32>, bit<32>>(1024) Value__5;
    Register<bit<32>, bit<32>>(1024) Value__6;
    Register<bit<32>, bit<32>>(1024) Value__7;
    RegisterAction<bit<16>, bit<32>, bit<16>>(Round) ra_Round_0 = {
        void apply(inout bit<16> m, out bit<16> o) {
            m = max(m, meta.k1_t107);
            o = m;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(VoteHistory) ra_VoteHistory_1 = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            m = m | hdr.args_c1.a4_vote;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Value__0) ra_Value__0_2 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = meta.k1_t154;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Value__1) ra_Value__1_3 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = meta.k1_t158;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Value__2) ra_Value__2_4 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = meta.k1_t162;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Value__3) ra_Value__3_5 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = meta.k1_t166;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Value__4) ra_Value__4_6 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = meta.k1_t170;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Value__5) ra_Value__5_7 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = meta.k1_t174;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Value__6) ra_Value__6_8 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = meta.k1_t178;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Value__7) ra_Value__7_9 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = meta.k1_t182;
        }
    };
    action set_egress(bit<16> port) {
        meta.egress_port = port;
    }
    table l2_fwd {
        key = { hdr.ncl.dst : exact }
        actions = { set_egress; NoAction; }
        default_action = NoAction();
        size = 64;
    }
    apply {
        if ((hdr.ncl.isValid() && (hdr.ncl.to == 16w5))) {
            if ((hdr.ncl.comp == 8w1)) {
                meta.k1_t107 = hdr.args_c1.a2_round;
                hdr.k1_loc1[0].value = hdr.arr_c1_a5[0].value;
                hdr.k1_loc1[1].value = hdr.arr_c1_a5[1].value;
                hdr.k1_loc1[2].value = hdr.arr_c1_a5[2].value;
                hdr.k1_loc1[3].value = hdr.arr_c1_a5[3].value;
                hdr.k1_loc1[4].value = hdr.arr_c1_a5[4].value;
                hdr.k1_loc1[5].value = hdr.arr_c1_a5[5].value;
                hdr.k1_loc1[6].value = hdr.arr_c1_a5[6].value;
                hdr.k1_loc1[7].value = hdr.arr_c1_a5[7].value;
                meta.k1_t117 = (bit<32>)(hdr.args_c1.a0_type);
                meta.k1_t118 = (bit<1>)((meta.k1_t117 == 32w3));
                meta.k1_t119 = (bit<32>)(meta.k1_t107);
                if ((meta.k1_t118 == 1w1)) {
                    meta.k1_t121 = (hdr.args_c1.a1_instance & 32w1023);
                    meta.k1_t122 = ra_Round_0.execute((bit<32>)(meta.k1_t121));
                    meta.k1_t123 = (bit<32>)(meta.k1_t122);
                    meta.k1_t124 = (meta.k1_t119 ^ 32w2147483648);
                    meta.k1_t125 = (meta.k1_t123 ^ 32w2147483648);
                    meta.k1_t126 = (meta.k1_t125 |-| meta.k1_t124);
                    meta.k1_t127 = (bit<1>)((meta.k1_t126 == 32w0));
                    if ((meta.k1_t127 == 1w1)) {
                        meta.k1_t129 = (hdr.args_c1.a1_instance & 32w1023);
                        meta.k1_t131 = ra_VoteHistory_1.execute((bit<32>)(meta.k1_t129));
                        meta.k1_t133 = (bit<32>)(meta.k1_t131);
                        meta.k1_t134 = (bit<32>)(hdr.args_c1.a4_vote);
                        meta.k1_t135 = (meta.k1_t133 | meta.k1_t134);
                        meta.k1_t136 = (bit<8>)(meta.k1_t135);
                        meta.k1_t137 = (bit<32>)(meta.k1_t136);
                        meta.k1_t138 = (bit<1>)((meta.k1_t137 == 32w3));
                        meta.k1_t139 = (bit<1>)((meta.k1_t137 == 32w5));
                        meta.k1_t140 = (meta.k1_t138 | meta.k1_t139);
                        meta.k1_t141 = (bit<1>)((meta.k1_t137 == 32w6));
                        meta.k1_t142 = (meta.k1_t140 | meta.k1_t141);
                        meta.k1_t143 = (bit<1>)((meta.k1_t137 == 32w7));
                        meta.k1_t144 = (meta.k1_t142 | meta.k1_t143);
                        meta.k1_t145 = (bit<1>)((meta.k1_t133 == 32w3));
                        meta.k1_t146 = (bit<1>)((meta.k1_t133 == 32w5));
                        meta.k1_t147 = (meta.k1_t145 | meta.k1_t146);
                        meta.k1_t148 = (bit<1>)((meta.k1_t133 == 32w6));
                        meta.k1_t149 = (meta.k1_t147 | meta.k1_t148);
                        meta.k1_t150 = (bit<1>)((meta.k1_t133 == 32w7));
                        meta.k1_t151 = (meta.k1_t149 | meta.k1_t150);
                        if ((meta.k1_t144 == 1w1)) {
                            if ((meta.k1_t151 == 1w1)) {
                                hdr.ncl.action = 8w1;
                            } else {
                                meta.k1_t153 = (hdr.args_c1.a1_instance & 32w1023);
                                meta.k1_t154 = hdr.k1_loc1[0].value;
                                meta.k1_t155 = ra_Value__0_2.execute((bit<32>)(meta.k1_t153));
                                meta.k1_t157 = (hdr.args_c1.a1_instance & 32w1023);
                                meta.k1_t158 = hdr.k1_loc1[1].value;
                                meta.k1_t159 = ra_Value__1_3.execute((bit<32>)(meta.k1_t157));
                                meta.k1_t161 = (hdr.args_c1.a1_instance & 32w1023);
                                meta.k1_t162 = hdr.k1_loc1[2].value;
                                meta.k1_t163 = ra_Value__2_4.execute((bit<32>)(meta.k1_t161));
                                meta.k1_t165 = (hdr.args_c1.a1_instance & 32w1023);
                                meta.k1_t166 = hdr.k1_loc1[3].value;
                                meta.k1_t167 = ra_Value__3_5.execute((bit<32>)(meta.k1_t165));
                                meta.k1_t169 = (hdr.args_c1.a1_instance & 32w1023);
                                meta.k1_t170 = hdr.k1_loc1[4].value;
                                meta.k1_t171 = ra_Value__4_6.execute((bit<32>)(meta.k1_t169));
                                meta.k1_t173 = (hdr.args_c1.a1_instance & 32w1023);
                                meta.k1_t174 = hdr.k1_loc1[5].value;
                                meta.k1_t175 = ra_Value__5_7.execute((bit<32>)(meta.k1_t173));
                                meta.k1_t177 = (hdr.args_c1.a1_instance & 32w1023);
                                meta.k1_t178 = hdr.k1_loc1[6].value;
                                meta.k1_t179 = ra_Value__6_8.execute((bit<32>)(meta.k1_t177));
                                meta.k1_t181 = (hdr.args_c1.a1_instance & 32w1023);
                                meta.k1_t182 = hdr.k1_loc1[7].value;
                                meta.k1_t183 = ra_Value__7_9.execute((bit<32>)(meta.k1_t181));
                                hdr.args_c1.a0_type = 8w4;
                                hdr.ncl.action = 8w0;
                            }
                        } else {
                            hdr.ncl.action = 8w1;
                        }
                    } else {
                        hdr.ncl.action = 8w1;
                    }
                } else {
                    hdr.ncl.action = 8w0;
                }
            }
        }
        l2_fwd.apply();
    }
}

