//! Lowering: checked AST → SSA IR, one module per device.
//!
//! Performs the first two steps of the paper's device pipeline (§VI-B) at
//! the AST level, where they are exact rather than heuristic:
//!
//! * **net-function inlining** — every `_net_` call is expanded at its call
//!   site; by-value parameters become fresh locals, reference parameters
//!   alias the caller's place (C++ reference semantics).
//! * **`device.id` materialization** — the builtin is replaced by the
//!   constant of the device being compiled for, so multi-location SPMD
//!   kernels constant-fold their branches away.
//! * **full loop unrolling** — `for` loops with compile-time iteration
//!   spaces are replicated per iteration with the induction variable bound
//!   to a constant; anything else is rejected (`E0306`), matching the
//!   feed-forward pipeline restriction of §V-D.
//!
//! Everything else lowers 1:1: locals become slots (mem2reg promotes them),
//! kernel arguments become message accesses (by-value arguments are copied
//! into locals at entry so their updates stay device-local, §V-A), global
//! accesses become register transactions, and actions become terminators.

use std::collections::HashMap;

use netcl_ir::func::{
    ActionRef, FuncBuilder, InstKind, LocalId, MemId, MemRef, MsgField, Terminator,
};
use netcl_ir::types::{CastKind, IcmpPred, IrBinOp, IrTy, Operand};
use netcl_ir::{GlobalDef, Module};
use netcl_lang::ast::{self, BinOp, Expr, ExprKind, Init, Item, PassMode, Stmt, UnOp};
use netcl_lang::ParsedUnit;
use netcl_sema::builtins::{self, Builtin};
use netcl_sema::check::Analysis;
use netcl_sema::consteval::try_eval;
use netcl_sema::model::placed_at;
use netcl_sema::Ty;
use netcl_util::{DiagnosticSink, Span, Symbol};

/// Maximum unrolled iterations per loop.
const MAX_UNROLL: u64 = 4096;

/// Lowers all kernels placed at `device` into an IR module.
pub fn lower_device(
    unit: &ParsedUnit,
    analysis: &Analysis,
    device: u16,
    diags: &mut DiagnosticSink,
) -> Module {
    let mut module = Module {
        name: unit.source_map.file(Span::new(0, 0)).map(|f| f.name.clone()).unwrap_or_default(),
        device,
        globals: Vec::new(),
        kernels: Vec::new(),
    };
    // Globals placed at this device, in declaration order; MemId = index.
    let mut global_ids: HashMap<String, MemId> = HashMap::new();
    for g in analysis.model.globals_at(device) {
        let id = MemId(module.globals.len() as u32);
        global_ids.insert(g.name.clone(), id);
        module.globals.push(GlobalDef {
            name: g.name.clone(),
            ty: ir_storage_ty(g.elem),
            dims: g.dims.clone(),
            managed: g.managed,
            lookup: g.lookup,
            entries: g.entries.clone(),
            origin: None,
        });
    }

    let kernels: Vec<_> = analysis
        .model
        .kernels
        .iter()
        .filter(|k| placed_at(&k.locations, device))
        .cloned()
        .collect();
    for kinfo in kernels {
        let Item::Function(decl) = &unit.program.items[kinfo.item_index] else { continue };
        let mut lctx = Lower {
            unit,
            analysis,
            device,
            diags,
            global_ids: &global_ids,
            builder: FuncBuilder::new(&kinfo.name, kinfo.computation),
            scopes: Vec::new(),
            loop_stack: Vec::new(),
            inline_depth: 0,
            failed: false,
        };
        lctx.lower_kernel(decl, &kinfo);
        let failed = lctx.failed;
        let func = lctx.builder.finish();
        if !failed {
            module.kernels.push(func);
        }
    }
    module
}

/// Storage width for a sema type (bool stores as 8 bits on the wire and in
/// registers; its *value* type in the IR is `i1`).
pub fn ir_storage_ty(ty: Ty) -> IrTy {
    match ty {
        Ty::Bool => IrTy::I8,
        Ty::Int { bits, .. } => IrTy::int(bits),
        _ => IrTy::I32,
    }
}

/// Value width for a sema type.
fn ir_value_ty(ty: Ty) -> IrTy {
    match ty {
        Ty::Bool => IrTy::I1,
        Ty::Int { bits, .. } => IrTy::int(bits),
        _ => IrTy::I32,
    }
}

/// How a source variable is bound during lowering.
#[derive(Clone, Debug)]
enum Binding {
    /// A local slot (locals, by-value args, inlined value params).
    Local { slot: LocalId, ty: Ty },
    /// A message-resident kernel argument (by-ref / pointer).
    ArgMsg { index: u32, ty: Ty },
    /// Compile-time constant (unrolled induction variables).
    Const { value: u64, ty: Ty },
    /// Alias to a caller place (inlined reference parameters).
    Alias(Place),
}

/// A resolved storage location.
#[derive(Clone, Debug)]
enum Place {
    Local { slot: LocalId, index: Operand, ty: Ty },
    ArgMsg { arg: u32, index: Operand, ty: Ty },
    Global { mem: MemId, indices: Vec<Operand>, ty: Ty },
}

impl Place {
    fn ty(&self) -> Ty {
        match self {
            Place::Local { ty, .. } | Place::ArgMsg { ty, .. } | Place::Global { ty, .. } => *ty,
        }
    }
}

struct LoopCtx {
    break_to: netcl_ir::BlockId,
    continue_to: netcl_ir::BlockId,
}

struct Lower<'a> {
    unit: &'a ParsedUnit,
    analysis: &'a Analysis,
    device: u16,
    diags: &'a mut DiagnosticSink,
    global_ids: &'a HashMap<String, MemId>,
    builder: FuncBuilder,
    scopes: Vec<HashMap<Symbol, Binding>>,
    loop_stack: Vec<LoopCtx>,
    inline_depth: usize,
    failed: bool,
}

impl<'a> Lower<'a> {
    fn name(&self, s: Symbol) -> &str {
        self.unit.interner.resolve(s)
    }

    fn error(&mut self, code: &'static str, msg: String, span: Span) {
        self.diags.error(code, msg, span);
        self.failed = true;
    }

    fn sema_ty(&self, e: &Expr) -> Ty {
        self.analysis.types.get(&e.id).copied().unwrap_or(Ty::I32)
    }

    fn lookup_binding(&self, name: Symbol) -> Option<Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(&name)).cloned()
    }

    // ---- entry ---------------------------------------------------------

    fn lower_kernel(&mut self, decl: &ast::FunctionDecl, kinfo: &netcl_sema::KernelInfo) {
        self.scopes.push(HashMap::new());
        for (i, (p, pi)) in decl.params.iter().zip(&kinfo.params).enumerate() {
            let in_message = pi.mode != PassMode::Value;
            self.builder.add_arg(&pi.name, ir_storage_ty(pi.ty), pi.count, in_message);
            if in_message {
                self.scopes
                    .last_mut()
                    .unwrap()
                    .insert(p.name, Binding::ArgMsg { index: i as u32, ty: pi.ty });
            } else {
                // By-value: copy into a local so updates stay device-local.
                let slot = self.builder.add_local(&pi.name, ir_storage_ty(pi.ty), pi.count);
                for e in 0..pi.count {
                    let idx = Operand::imm(e as u64, IrTy::I32);
                    let v = self
                        .builder
                        .emit(InstKind::ArgRead { arg: i as u32, index: idx }, ir_storage_ty(pi.ty))
                        .unwrap();
                    self.builder.emit(
                        InstKind::LocalStore { slot, index: idx, value: Operand::Value(v) },
                        ir_storage_ty(pi.ty),
                    );
                }
                self.scopes.last_mut().unwrap().insert(p.name, Binding::Local { slot, ty: pi.ty });
            }
        }
        if let Some(body) = &decl.body {
            for stmt in &body.stmts {
                self.stmt(stmt, None);
                if self.builder.is_terminated() {
                    break;
                }
            }
        }
        self.scopes.pop();
    }

    // ---- statements ------------------------------------------------------

    /// `inline_ret`: when lowering an inlined net-function body, where
    /// `return` stores its value and which block it jumps to.
    fn stmt(&mut self, stmt: &Stmt, inline_ret: Option<&InlineRet>) {
        if self.builder.is_terminated() {
            return; // unreachable trailing code
        }
        match stmt {
            Stmt::Decl(d) => self.local_decl(d),
            Stmt::Expr(e) => {
                self.expr(e);
            }
            Stmt::Block(b) => {
                self.scopes.push(HashMap::new());
                for s in &b.stmts {
                    self.stmt(s, inline_ret);
                    if self.builder.is_terminated() {
                        break;
                    }
                }
                self.scopes.pop();
            }
            Stmt::If { cond, then, els, .. } => {
                let c = self.condition(cond);
                let then_bb = self.builder.new_block();
                let else_bb = self.builder.new_block();
                let join = self.builder.new_block();
                self.builder.terminate(Terminator::CondBr { cond: c, then_bb, else_bb });
                self.builder.switch_to(then_bb);
                self.scopes.push(HashMap::new());
                for s in &then.stmts {
                    self.stmt(s, inline_ret);
                    if self.builder.is_terminated() {
                        break;
                    }
                }
                self.scopes.pop();
                self.builder.branch_if_open(join);
                self.builder.switch_to(else_bb);
                if let Some(els) = els {
                    self.scopes.push(HashMap::new());
                    for s in &els.stmts {
                        self.stmt(s, inline_ret);
                        if self.builder.is_terminated() {
                            break;
                        }
                    }
                    self.scopes.pop();
                }
                self.builder.branch_if_open(join);
                self.builder.switch_to(join);
            }
            Stmt::For { .. } => self.unroll_for(stmt, inline_ret),
            Stmt::While { cond, span, .. } => {
                // Constant-false while loops vanish; anything else cannot be
                // fully unrolled (feed-forward pipelines, §V-D).
                if try_eval(cond) == Some(0) {
                    return;
                }
                self.error(
                    "E0306",
                    "`while` loops cannot be fully unrolled; use a `for` loop with constant bounds (§V-D)"
                        .into(),
                    *span,
                );
            }
            Stmt::Break(span) => match self.loop_stack.last() {
                Some(ctx) => self.builder.terminate(Terminator::Br(ctx.break_to)),
                None => self.error("E0221", "`break` outside loop".into(), *span),
            },
            Stmt::Continue(span) => match self.loop_stack.last() {
                Some(ctx) => self.builder.terminate(Terminator::Br(ctx.continue_to)),
                None => self.error("E0221", "`continue` outside loop".into(), *span),
            },
            Stmt::Return { value, span: _ } => self.lower_return(value.as_ref(), inline_ret),
        }
    }

    fn lower_return(&mut self, value: Option<&Expr>, inline_ret: Option<&InlineRet>) {
        if let Some(ir) = inline_ret {
            // Inlined net function: store the value (if any), jump to exit.
            if let (Some(v), Some((slot, ty))) = (value, ir.slot) {
                let (op, vt) = self.expr(v);
                let op = self.coerce(op, vt, ty);
                self.builder.emit(
                    InstKind::LocalStore { slot, index: Operand::imm(0, IrTy::I32), value: op },
                    ir_storage_ty(ty),
                );
            }
            let exit = ir.exit;
            if !self.builder.is_terminated() {
                self.builder.terminate(Terminator::Br(exit));
            }
            return;
        }
        match value {
            None => self.builder.terminate(Terminator::Ret(ActionRef::pass())),
            Some(v) => self.lower_action_expr(v),
        }
    }

    /// Lowers a kernel `return <expr>` where expr is an action, a void call,
    /// or a ternary mixing them (Fig. 4 line 19).
    fn lower_action_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Ternary(c, a, b) => {
                let cond = self.condition(c);
                let then_bb = self.builder.new_block();
                let else_bb = self.builder.new_block();
                self.builder.terminate(Terminator::CondBr { cond, then_bb, else_bb });
                self.builder.switch_to(then_bb);
                self.lower_action_expr(a);
                self.builder.switch_to(else_bb);
                self.lower_action_expr(b);
            }
            ExprKind::Call { callee, args } => {
                if let Some(Builtin::Action(kind)) = self.resolve_builtin(callee) {
                    let target = match args.first() {
                        Some(t) => {
                            let (op, ty) = self.expr(t);
                            Some(self.coerce(op, ty, Ty::U16))
                        }
                        None => None,
                    };
                    if !self.builder.is_terminated() {
                        self.builder.terminate(Terminator::Ret(ActionRef { kind, target }));
                    }
                    return;
                }
                // A void net-function call followed by implicit pass().
                self.expr(e);
                if !self.builder.is_terminated() {
                    self.builder.terminate(Terminator::Ret(ActionRef::pass()));
                }
            }
            _ => {
                // `return;`-equivalent value (shouldn't reach here past sema).
                self.expr(e);
                if !self.builder.is_terminated() {
                    self.builder.terminate(Terminator::Ret(ActionRef::pass()));
                }
            }
        }
    }

    fn local_decl(&mut self, d: &ast::LocalDecl) {
        let ty = match &d.ty {
            ast::TypeExpr::Auto => d
                .init
                .as_ref()
                .and_then(|i| match i {
                    Init::Expr(e) => Some(self.sema_ty(e)),
                    _ => None,
                })
                .unwrap_or(Ty::I32),
            other => Ty::from_type_expr(other).unwrap_or(Ty::I32),
        };
        let count: u32 = d.dims.first().and_then(try_eval).map(|v| v as u32).unwrap_or(1).max(1);
        let lname = self.name(d.name).to_string();
        let slot = self.builder.add_local(&lname, ir_storage_ty(ty), count);
        match &d.init {
            Some(Init::Expr(e)) => {
                let (op, et) = self.expr(e);
                let op = self.coerce(op, et, ty);
                self.builder.emit(
                    InstKind::LocalStore { slot, index: Operand::imm(0, IrTy::I32), value: op },
                    ir_storage_ty(ty),
                );
            }
            Some(Init::List(items, _)) => {
                for (i, item) in items.iter().enumerate() {
                    if let Init::Expr(e) = item {
                        let (op, et) = self.expr(e);
                        let op = self.coerce(op, et, ty);
                        self.builder.emit(
                            InstKind::LocalStore {
                                slot,
                                index: Operand::imm(i as u64, IrTy::I32),
                                value: op,
                            },
                            ir_storage_ty(ty),
                        );
                    }
                }
            }
            None => {}
        }
        self.scopes.last_mut().unwrap().insert(d.name, Binding::Local { slot, ty });
    }

    // ---- loop unrolling --------------------------------------------------

    fn unroll_for(&mut self, stmt: &Stmt, inline_ret: Option<&InlineRet>) {
        let Stmt::For { init, cond, step, body, span } = stmt else { unreachable!() };
        // The unrollable shape: `for (<decl> iv = C0; <iv-only cond>; <iv step>)`.
        let Some(init) = init else {
            self.error("E0306", "cannot unroll a `for` without an init clause".into(), *span);
            return;
        };
        let Stmt::Decl(ivdecl) = init.as_ref() else {
            self.error(
                "E0306",
                "unrollable loops must declare their induction variable in the init clause".into(),
                *span,
            );
            return;
        };
        let iv = ivdecl.name;
        let iv_ty = match &ivdecl.ty {
            ast::TypeExpr::Auto => Ty::I32,
            other => Ty::from_type_expr(other).unwrap_or(Ty::I32),
        };
        let Some(Init::Expr(e0)) = &ivdecl.init else {
            self.error("E0306", "induction variable requires a constant initializer".into(), *span);
            return;
        };
        let Some(mut ivval) = try_eval(e0) else {
            self.error("E0306", "induction variable initializer is not constant".into(), *span);
            return;
        };

        // Evaluate an expression with the induction variable substituted.
        let eval_with_iv = |e: &Expr, v: u64| -> Option<u64> { eval_subst(e, iv, v) };

        let exit = self.builder.new_block();
        let mut iterations = 0u64;
        loop {
            let cont = match cond {
                Some(c) => match eval_with_iv(c, ivval) {
                    Some(x) => x != 0,
                    None => {
                        self.error(
                            "E0306",
                            "loop condition does not depend only on the induction variable and constants; cannot fully unroll (§V-D)".into(),
                            c.span,
                        );
                        break;
                    }
                },
                None => {
                    self.error("E0306", "unbounded loop cannot be unrolled".into(), *span);
                    break;
                }
            };
            if !cont {
                break;
            }
            iterations += 1;
            if iterations > MAX_UNROLL {
                self.error(
                    "E0306",
                    format!("loop exceeds the unroll limit of {MAX_UNROLL} iterations"),
                    *span,
                );
                break;
            }
            // Body with iv bound to the constant.
            let next_bb = self.builder.new_block();
            self.scopes.push(HashMap::new());
            self.scopes
                .last_mut()
                .unwrap()
                .insert(iv, Binding::Const { value: iv_ty.wrap(ivval), ty: iv_ty });
            self.loop_stack.push(LoopCtx { break_to: exit, continue_to: next_bb });
            for s in &body.stmts {
                self.stmt(s, inline_ret);
                if self.builder.is_terminated() {
                    break;
                }
            }
            self.loop_stack.pop();
            self.scopes.pop();
            self.builder.branch_if_open(next_bb);
            self.builder.switch_to(next_bb);
            // Step.
            match step {
                Some(s) => match step_value(s, iv, ivval) {
                    Some(next) => ivval = next,
                    None => {
                        self.error(
                            "E0306",
                            "loop step must be `++i`, `i++`, `i += C`, `i -= C`, or `i = i + C`"
                                .into(),
                            s.span,
                        );
                        break;
                    }
                },
                None => {
                    self.error(
                        "E0306",
                        "loop without a step clause cannot be unrolled".into(),
                        *span,
                    );
                    break;
                }
            }
        }
        self.builder.branch_if_open(exit);
        self.builder.switch_to(exit);
    }

    // ---- expressions -----------------------------------------------------

    /// Lowers `e` as a boolean branch condition (`i1`).
    fn condition(&mut self, e: &Expr) -> Operand {
        let (op, ty) = self.expr(e);
        match ty {
            Ty::Bool => op,
            _ => {
                let w = ir_value_ty(ty);
                self.builder.icmp(IcmpPred::Ne, op, Operand::imm(0, w))
            }
        }
    }

    /// Coerces between sema types (C integer conversions).
    fn coerce(&mut self, op: Operand, from: Ty, to: Ty) -> Operand {
        let ft = ir_value_ty(from);
        let tt = ir_value_ty(to);
        if ft == tt {
            return op;
        }
        if tt.bits < ft.bits {
            self.builder.cast(CastKind::Trunc, op, ft, tt)
        } else {
            let signed = matches!(from, Ty::Int { signed: true, .. });
            let kind = if signed { CastKind::Sext } else { CastKind::Zext };
            self.builder.cast(kind, op, ft, tt)
        }
    }

    fn expr(&mut self, e: &Expr) -> (Operand, Ty) {
        let result_ty = self.sema_ty(e);
        match &e.kind {
            ExprKind::Int(v) => (Operand::imm(*v, ir_value_ty(result_ty)), result_ty),
            ExprKind::Char(c) => (Operand::imm(*c as u64, IrTy::I8), Ty::U8),
            ExprKind::Bool(b) => (Operand::imm(*b as u64, IrTy::I1), Ty::Bool),
            ExprKind::Ident(_) | ExprKind::Index(..) | ExprKind::Unary(UnOp::Deref, _) => {
                match self.place(e) {
                    Some(PlaceOrConst::Const(v, ty)) => (Operand::imm(v, ir_value_ty(ty)), ty),
                    Some(PlaceOrConst::Place(p)) => {
                        let ty = p.ty();
                        let v = self.load_place(&p);
                        // Storage bool → value i1.
                        let v = if ty == Ty::Bool {
                            self.builder.icmp(IcmpPred::Ne, v, Operand::imm(0, IrTy::I8))
                        } else {
                            v
                        };
                        (v, ty)
                    }
                    None => (Operand::imm(0, IrTy::I32), Ty::I32),
                }
            }
            ExprKind::Member(base, field) => {
                // device.id / device.kind / msg.* (unless shadowed — sema
                // guarantees they weren't).
                if let ExprKind::Ident(b) = &base.kind {
                    let bn = self.name(*b).to_string();
                    let fname = self.name(*field).to_string();
                    match (bn.as_str(), fname.as_str()) {
                        ("device", "id") => {
                            return (Operand::imm(self.device as u64, IrTy::I16), Ty::U16)
                        }
                        ("device", "kind") => return (Operand::imm(1, IrTy::I8), Ty::U8),
                        ("msg", f) => {
                            let field = match f {
                                "src" => MsgField::Src,
                                "dst" => MsgField::Dst,
                                "from" => MsgField::From,
                                _ => MsgField::To,
                            };
                            let v =
                                self.builder.emit(InstKind::MsgField { field }, IrTy::I16).unwrap();
                            return (Operand::Value(v), Ty::U16);
                        }
                        _ => {}
                    }
                }
                (Operand::imm(0, IrTy::I32), Ty::I32)
            }
            ExprKind::Unary(op, inner) => {
                let (iv, it) = self.expr(inner);
                match op {
                    UnOp::Neg => {
                        let t = it.promote();
                        let v = self.coerce(iv, it, t);
                        let w = ir_value_ty(t);
                        (self.builder.bin(IrBinOp::Sub, Operand::imm(0, w), v, w), t)
                    }
                    UnOp::BitNot => {
                        let t = it.promote();
                        let v = self.coerce(iv, it, t);
                        let w = ir_value_ty(t);
                        (self.builder.bin(IrBinOp::Xor, v, Operand::imm(w.mask(), w), w), t)
                    }
                    UnOp::Not => {
                        let c = if it == Ty::Bool {
                            iv
                        } else {
                            self.builder.icmp(IcmpPred::Ne, iv, Operand::imm(0, ir_value_ty(it)))
                        };
                        (
                            self.builder.bin(IrBinOp::Xor, c, Operand::imm(1, IrTy::I1), IrTy::I1),
                            Ty::Bool,
                        )
                    }
                    UnOp::AddrOf | UnOp::Deref => (iv, it), // Deref handled in place path
                }
            }
            ExprKind::Binary(op, a, b) => self.binary(*op, a, b, result_ty),
            ExprKind::Assign { op, target, value } => {
                let tty = self.sema_ty(target);
                let rhs = match op {
                    None => {
                        let (v, vt) = self.expr(value);
                        self.coerce(v, vt, tty)
                    }
                    Some(bop) => {
                        let (cur, _) = self.expr(target);
                        let (v, vt) = self.expr(value);
                        let common = Ty::unify_arith(tty, vt);
                        let cl = self.coerce(cur, tty, common);
                        let vr = self.coerce(v, vt, common);
                        let w = ir_value_ty(common);
                        let res = self.builder.bin(bin_ir_op(*bop, common), cl, vr, w);
                        self.coerce(res, common, tty)
                    }
                };
                if let Some(PlaceOrConst::Place(p)) = self.place(target) {
                    self.store_place(&p, rhs, tty);
                } else {
                    self.error("E0202", "cannot assign to this expression".into(), target.span);
                }
                (rhs, tty)
            }
            ExprKind::Ternary(c, a, b) => {
                if result_ty == Ty::Action || result_ty == Ty::Void {
                    // Handled by lower_action_expr via Return; reaching here
                    // means a void ternary statement — lower as if/else.
                    let cond = self.condition(c);
                    let then_bb = self.builder.new_block();
                    let else_bb = self.builder.new_block();
                    let join = self.builder.new_block();
                    self.builder.terminate(Terminator::CondBr { cond, then_bb, else_bb });
                    self.builder.switch_to(then_bb);
                    self.expr(a);
                    self.builder.branch_if_open(join);
                    self.builder.switch_to(else_bb);
                    self.expr(b);
                    self.builder.branch_if_open(join);
                    self.builder.switch_to(join);
                    return (Operand::imm(0, IrTy::I32), Ty::Void);
                }
                if self.select_safe(a) && self.select_safe(b) {
                    let cond = self.condition(c);
                    let (av, at) = self.expr(a);
                    let (bv, bt) = self.expr(b);
                    let av = self.coerce(av, at, result_ty);
                    let bv = self.coerce(bv, bt, result_ty);
                    let w = ir_value_ty(result_ty);
                    let v = self.builder.emit(InstKind::Select { cond, a: av, b: bv }, w).unwrap();
                    (Operand::Value(v), result_ty)
                } else {
                    // Side effects: branch + temp slot (mem2reg rebuilds SSA).
                    let slot = self.builder.add_local("ternary", ir_storage_ty(result_ty), 1);
                    let cond = self.condition(c);
                    let then_bb = self.builder.new_block();
                    let else_bb = self.builder.new_block();
                    let join = self.builder.new_block();
                    self.builder.terminate(Terminator::CondBr { cond, then_bb, else_bb });
                    let i0 = Operand::imm(0, IrTy::I32);
                    self.builder.switch_to(then_bb);
                    let (av, at) = self.expr(a);
                    let av = self.coerce(av, at, result_ty);
                    let av = self.coerce_to_storage(av, result_ty);
                    self.builder.emit(
                        InstKind::LocalStore { slot, index: i0, value: av },
                        ir_storage_ty(result_ty),
                    );
                    self.builder.branch_if_open(join);
                    self.builder.switch_to(else_bb);
                    let (bv, bt) = self.expr(b);
                    let bv = self.coerce(bv, bt, result_ty);
                    let bv = self.coerce_to_storage(bv, result_ty);
                    self.builder.emit(
                        InstKind::LocalStore { slot, index: i0, value: bv },
                        ir_storage_ty(result_ty),
                    );
                    self.builder.branch_if_open(join);
                    self.builder.switch_to(join);
                    let v = self
                        .builder
                        .emit(InstKind::LocalLoad { slot, index: i0 }, ir_storage_ty(result_ty))
                        .unwrap();
                    let v = self.coerce_from_storage(Operand::Value(v), result_ty);
                    (v, result_ty)
                }
            }
            ExprKind::Call { callee, args } => self.call(e, callee, args, result_ty),
            ExprKind::Cast(te, inner) => {
                let to = Ty::from_type_expr(te).unwrap_or(Ty::I32);
                let (v, vt) = self.expr(inner);
                (self.coerce(v, vt, to), to)
            }
            ExprKind::IncDec { inc, postfix, expr } => {
                let ty = self.sema_ty(expr);
                let (old, _) = self.expr(expr);
                let w = ir_value_ty(ty);
                let op = if *inc { IrBinOp::Add } else { IrBinOp::Sub };
                let new = self.builder.bin(op, old, Operand::imm(1, w), w);
                if let Some(PlaceOrConst::Place(p)) = self.place(expr) {
                    self.store_place(&p, new, ty);
                }
                (if *postfix { old } else { new }, ty)
            }
            ExprKind::Sizeof(te) => {
                let sz = Ty::from_type_expr(te).map(|t| t.size_bytes()).unwrap_or(4);
                (Operand::imm(sz as u64, IrTy::I32), Ty::U32)
            }
            ExprKind::Path { .. } => (Operand::imm(0, IrTy::I32), Ty::I32),
            ExprKind::Error => (Operand::imm(0, IrTy::I32), Ty::I32),
        }
    }

    fn binary(&mut self, op: BinOp, a: &Expr, b: &Expr, result_ty: Ty) -> (Operand, Ty) {
        let (av, at) = self.expr(a);
        let (bv, bt) = self.expr(b);
        if op.is_comparison() {
            match op {
                BinOp::LogicalAnd | BinOp::LogicalOr => {
                    // Non-short-circuit evaluation: device expressions are
                    // effect-free in practice and P4 evaluates eagerly too.
                    let ac = if at == Ty::Bool {
                        av
                    } else {
                        self.builder.icmp(IcmpPred::Ne, av, Operand::imm(0, ir_value_ty(at)))
                    };
                    let bc = if bt == Ty::Bool {
                        bv
                    } else {
                        self.builder.icmp(IcmpPred::Ne, bv, Operand::imm(0, ir_value_ty(bt)))
                    };
                    let ir_op = if op == BinOp::LogicalAnd { IrBinOp::And } else { IrBinOp::Or };
                    (self.builder.bin(ir_op, ac, bc, IrTy::I1), Ty::Bool)
                }
                _ => {
                    let common = Ty::unify_arith(at, bt);
                    let al = self.coerce(av, at, common);
                    let bl = self.coerce(bv, bt, common);
                    let signed = matches!(common, Ty::Int { signed: true, .. });
                    let pred = match op {
                        BinOp::Eq => IcmpPred::Eq,
                        BinOp::Ne => IcmpPred::Ne,
                        BinOp::Lt => {
                            if signed {
                                IcmpPred::Slt
                            } else {
                                IcmpPred::Ult
                            }
                        }
                        BinOp::Le => {
                            if signed {
                                IcmpPred::Sle
                            } else {
                                IcmpPred::Ule
                            }
                        }
                        BinOp::Gt => {
                            if signed {
                                IcmpPred::Sgt
                            } else {
                                IcmpPred::Ugt
                            }
                        }
                        BinOp::Ge => {
                            if signed {
                                IcmpPred::Sge
                            } else {
                                IcmpPred::Uge
                            }
                        }
                        _ => unreachable!(),
                    };
                    (self.builder.icmp(pred, al, bl), Ty::Bool)
                }
            }
        } else {
            let common = if result_ty.is_arith() { result_ty } else { Ty::unify_arith(at, bt) };
            let al = self.coerce(av, at, common);
            let bl = self.coerce(bv, bt, common);
            let w = ir_value_ty(common);
            (self.builder.bin(bin_ir_op(op, common), al, bl, w), common)
        }
    }

    // ---- calls -----------------------------------------------------------

    fn resolve_builtin(&self, callee: &Expr) -> Option<Builtin> {
        let ExprKind::Path { segments, targs } = &callee.kind else { return None };
        let segs: Vec<&str> = segments.iter().map(|s| self.name(*s)).collect();
        let widths: Vec<u64> = targs
            .iter()
            .map(|t| match t {
                ast::TemplateArg::Const(c) => *c,
                ast::TemplateArg::Type(te) => {
                    Ty::from_type_expr(te).map(|t| t.bits() as u64).unwrap_or(32)
                }
            })
            .collect();
        builtins::resolve(&segs, &widths).ok()
    }

    fn call(&mut self, e: &Expr, callee: &Expr, args: &[Expr], result_ty: Ty) -> (Operand, Ty) {
        if let Some(b) = self.resolve_builtin(callee) {
            return self.builtin_call(e, &b, args, result_ty);
        }
        if let ExprKind::Ident(name) = &callee.kind {
            let n = self.name(*name).to_string();
            if let Some(idx) = self.analysis.model.net_fns.iter().position(|f| f.name == n) {
                return self.inline_net_fn(idx, args, e.span);
            }
        }
        (Operand::imm(0, IrTy::I32), Ty::I32)
    }

    fn builtin_call(
        &mut self,
        e: &Expr,
        b: &Builtin,
        args: &[Expr],
        result_ty: Ty,
    ) -> (Operand, Ty) {
        match b {
            Builtin::Action(_) => {
                // Actions reaching expression position outside `return` were
                // rejected by sema; emit a pass-through zero.
                self.error("E0204", "action used outside a kernel return".into(), e.span);
                (Operand::imm(0, IrTy::I32), Ty::I32)
            }
            Builtin::Atomic(op) => {
                let Some(place) = self.atomic_place(&args[0]) else {
                    return (Operand::imm(0, IrTy::I32), result_ty);
                };
                let Place::Global { mem, indices, ty: elem } = place else {
                    return (Operand::imm(0, IrTy::I32), result_ty);
                };
                let mut rest = &args[1..];
                let cond = if op.cond {
                    let c = self.condition(&rest[0]);
                    rest = &rest[1..];
                    Some(c)
                } else {
                    None
                };
                let mut operands = Vec::new();
                for a in rest {
                    let (v, vt) = self.expr(a);
                    operands.push(self.coerce(v, vt, elem));
                }
                let v = self
                    .builder
                    .emit(
                        InstKind::AtomicRmw {
                            op: *op,
                            mem: MemRef { mem, indices },
                            cond,
                            operands,
                        },
                        ir_storage_ty(elem),
                    )
                    .unwrap();
                (Operand::Value(v), elem)
            }
            Builtin::Lookup => {
                let Some((mem, key_ty, val_ty)) = self.lookup_table(&args[0]) else {
                    return (Operand::imm(0, IrTy::I1), Ty::Bool);
                };
                let (kv, kt) = self.expr(&args[1]);
                let key = self.coerce(kv, kt, key_ty);
                let (hit, value) =
                    self.builder.emit_lookup(mem, key, ir_storage_ty(val_ty.unwrap_or(Ty::U32)));
                // Conditional out-write: the destination keeps its value on a
                // miss (§V-B example: `lookup(b, 21, y); // false, y = 42`).
                if let (Some(out), Some(vt)) = (args.get(2), val_ty) {
                    let store_bb = self.builder.new_block();
                    let join = self.builder.new_block();
                    self.builder.terminate(Terminator::CondBr {
                        cond: Operand::Value(hit),
                        then_bb: store_bb,
                        else_bb: join,
                    });
                    self.builder.switch_to(store_bb);
                    if let Some(PlaceOrConst::Place(p)) = self.place(out) {
                        self.store_place(&p, Operand::Value(value), vt);
                    }
                    self.builder.branch_if_open(join);
                    self.builder.switch_to(join);
                }
                (Operand::Value(hit), Ty::Bool)
            }
            Builtin::Hash(kind, bits) => {
                let (v, _) = self.expr(&args[0]);
                let out_ty = result_ty;
                let h = self
                    .builder
                    .emit(InstKind::Hash { kind: *kind, bits: *bits, a: v }, ir_value_ty(out_ty))
                    .unwrap();
                (Operand::Value(h), out_ty)
            }
            Builtin::SAdd | Builtin::SSub | Builtin::Min | Builtin::Max => {
                let (av, at) = self.expr(&args[0]);
                let (bv, bt) = self.expr(&args[1]);
                let common = Ty::unify_arith(at, bt);
                let al = self.coerce(av, at, common);
                let bl = self.coerce(bv, bt, common);
                let signed = matches!(common, Ty::Int { signed: true, .. });
                let op = match b {
                    Builtin::SAdd => IrBinOp::UAddSat,
                    Builtin::SSub => IrBinOp::USubSat,
                    Builtin::Min => {
                        if signed {
                            IrBinOp::SMin
                        } else {
                            IrBinOp::UMin
                        }
                    }
                    _ => {
                        if signed {
                            IrBinOp::SMax
                        } else {
                            IrBinOp::UMax
                        }
                    }
                };
                (self.builder.bin(op, al, bl, ir_value_ty(common)), common)
            }
            Builtin::BitChk => {
                let (xv, xt) = self.expr(&args[0]);
                let (iv, it) = self.expr(&args[1]);
                let w = ir_value_ty(xt.promote());
                let x = self.coerce(xv, xt, xt.promote());
                let i = self.coerce(iv, it, xt.promote());
                let shifted = self.builder.bin(IrBinOp::LShr, x, i, w);
                let bit = self.builder.bin(IrBinOp::And, shifted, Operand::imm(1, w), w);
                (self.builder.icmp(IcmpPred::Ne, bit, Operand::imm(0, w)), Ty::Bool)
            }
            Builtin::Bswap => {
                let (v, vt) = self.expr(&args[0]);
                let w = ir_value_ty(vt);
                let r = self
                    .builder
                    .emit(InstKind::Un { op: netcl_ir::types::IrUnOp::Bswap, a: v }, w)
                    .unwrap();
                (Operand::Value(r), vt)
            }
            Builtin::Clz => {
                let (v, vt) = self.expr(&args[0]);
                let r = self
                    .builder
                    .emit(InstKind::Un { op: netcl_ir::types::IrUnOp::Clz, a: v }, IrTy::I8)
                    .unwrap();
                let _ = vt;
                (Operand::Value(r), Ty::U8)
            }
            Builtin::Rand(bits) => {
                let ty = Ty::Int { bits: (*bits).max(8), signed: false };
                let r = self.builder.emit(InstKind::Rand, ir_value_ty(ty)).unwrap();
                (Operand::Value(r), ty)
            }
            Builtin::TargetIntrinsic { target, name } => {
                let mut ops = Vec::new();
                for a in args {
                    let (v, _) = self.expr(a);
                    ops.push(v);
                }
                let r = self
                    .builder
                    .emit(
                        InstKind::Intrinsic {
                            target: target.clone(),
                            name: name.clone(),
                            args: ops,
                        },
                        IrTy::I32,
                    )
                    .unwrap();
                (Operand::Value(r), Ty::U32)
            }
        }
    }

    fn inline_net_fn(&mut self, idx: usize, args: &[Expr], span: Span) -> (Operand, Ty) {
        if self.inline_depth > 16 {
            self.error("E0217", "net function inlining too deep (recursion?)".into(), span);
            return (Operand::imm(0, IrTy::I32), Ty::I32);
        }
        let info = self.analysis.model.net_fns[idx].clone();
        let Item::Function(decl) = &self.unit.program.items[info.item_index] else {
            return (Operand::imm(0, IrTy::I32), Ty::I32);
        };
        // Bind parameters.
        let mut bindings: HashMap<Symbol, Binding> = HashMap::new();
        for ((p, pi), arg) in decl.params.iter().zip(&info.params).zip(args) {
            match pi.mode {
                PassMode::Value => {
                    let (v, vt) = self.expr(arg);
                    let v = self.coerce(v, vt, pi.ty);
                    let v = self.coerce_to_storage(v, pi.ty);
                    let slot = self.builder.add_local(&pi.name, ir_storage_ty(pi.ty), 1);
                    self.builder.emit(
                        InstKind::LocalStore { slot, index: Operand::imm(0, IrTy::I32), value: v },
                        ir_storage_ty(pi.ty),
                    );
                    bindings.insert(p.name, Binding::Local { slot, ty: pi.ty });
                }
                PassMode::Reference | PassMode::Pointer => match self.place(arg) {
                    Some(PlaceOrConst::Place(place)) => {
                        bindings.insert(p.name, Binding::Alias(place));
                    }
                    _ => {
                        self.error(
                            "E0307",
                            format!("cannot pass this expression by reference to `{}`", info.name),
                            arg.span,
                        );
                    }
                },
            }
        }
        // Return slot and exit block.
        let ret_slot = if info.ret != Ty::Void {
            Some((
                self.builder.add_local(&format!("{}.ret", info.name), ir_storage_ty(info.ret), 1),
                info.ret,
            ))
        } else {
            None
        };
        let exit = self.builder.new_block();
        let inline_ret = InlineRet { slot: ret_slot, exit };

        // New scope stack fragment: only the bindings (net fns can't see
        // caller locals).
        let saved_scopes = std::mem::replace(&mut self.scopes, vec![bindings]);
        let saved_loops = std::mem::take(&mut self.loop_stack);
        self.inline_depth += 1;
        if let Some(body) = &decl.body {
            for s in &body.stmts {
                self.stmt(s, Some(&inline_ret));
                if self.builder.is_terminated() {
                    break;
                }
            }
        }
        self.inline_depth -= 1;
        self.scopes = saved_scopes;
        self.loop_stack = saved_loops;
        self.builder.branch_if_open(exit);
        self.builder.switch_to(exit);

        match ret_slot {
            Some((slot, ty)) => {
                let v = self
                    .builder
                    .emit(
                        InstKind::LocalLoad { slot, index: Operand::imm(0, IrTy::I32) },
                        ir_storage_ty(ty),
                    )
                    .unwrap();
                let v = self.coerce_from_storage(Operand::Value(v), ty);
                (v, ty)
            }
            None => (Operand::imm(0, IrTy::I32), Ty::Void),
        }
    }

    /// True when a ternary arm may be evaluated eagerly for a `select`:
    /// side-effect-free AND touching no global memory — §V-D's
    /// `(x > 10) ? m[0] : m[1]` is *valid* precisely because the accesses
    /// stay mutually exclusive, so they must lower as branches, not as an
    /// eager select.
    fn select_safe(&self, e: &Expr) -> bool {
        if !is_pure(e) {
            return false;
        }
        !self.touches_global(e)
    }

    fn touches_global(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Ident(name) => {
                self.lookup_binding(*name).is_none()
                    && self.global_ids.contains_key(self.name(*name))
            }
            ExprKind::Index(a, b) | ExprKind::Binary(_, a, b) => {
                self.touches_global(a) || self.touches_global(b)
            }
            ExprKind::Unary(_, x) | ExprKind::Cast(_, x) => self.touches_global(x),
            ExprKind::Ternary(c, a, b) => {
                self.touches_global(c) || self.touches_global(a) || self.touches_global(b)
            }
            ExprKind::Member(b, _) => self.touches_global(b),
            _ => false,
        }
    }

    // ---- places ----------------------------------------------------------

    fn atomic_place(&mut self, arg: &Expr) -> Option<Place> {
        let inner = match &arg.kind {
            ExprKind::Unary(UnOp::AddrOf, inner) => inner,
            _ => arg,
        };
        match self.place(inner) {
            Some(PlaceOrConst::Place(p)) => Some(p),
            _ => None,
        }
    }

    fn lookup_table(&mut self, arg: &Expr) -> Option<(MemId, Ty, Option<Ty>)> {
        let ExprKind::Ident(name) = &arg.kind else { return None };
        let n = self.name(*name).to_string();
        let mem = *self.global_ids.get(&n)?;
        let ginfo = self.analysis.model.global(&n)?;
        Some(match ginfo.elem {
            Ty::Kv { key, value } => (mem, key.ty(), Some(value.ty())),
            Ty::Rv { range, value } => (mem, range.ty(), Some(value.ty())),
            scalar => (mem, scalar, None),
        })
    }

    fn place(&mut self, e: &Expr) -> Option<PlaceOrConst> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some(binding) = self.lookup_binding(*name) {
                    return Some(match binding {
                        Binding::Const { value, ty } => PlaceOrConst::Const(value, ty),
                        Binding::Local { slot, ty } => PlaceOrConst::Place(Place::Local {
                            slot,
                            index: Operand::imm(0, IrTy::I32),
                            ty,
                        }),
                        Binding::ArgMsg { index, ty } => PlaceOrConst::Place(Place::ArgMsg {
                            arg: index,
                            index: Operand::imm(0, IrTy::I32),
                            ty,
                        }),
                        Binding::Alias(p) => PlaceOrConst::Place(p),
                    });
                }
                let n = self.name(*name).to_string();
                let mem = *self.global_ids.get(&n)?;
                let ginfo = self.analysis.model.global(&n)?;
                Some(PlaceOrConst::Place(Place::Global {
                    mem,
                    indices: Vec::new(),
                    ty: ginfo.elem,
                }))
            }
            ExprKind::Index(base, idx) => {
                let (iv, it) = self.expr(idx);
                let iv32 = self.coerce(iv, it, Ty::U32);
                let base_place = self.place(base)?;
                match base_place {
                    PlaceOrConst::Place(Place::Local { slot, ty, .. }) => {
                        Some(PlaceOrConst::Place(Place::Local { slot, index: iv32, ty }))
                    }
                    PlaceOrConst::Place(Place::ArgMsg { arg, ty, .. }) => {
                        Some(PlaceOrConst::Place(Place::ArgMsg { arg, index: iv32, ty }))
                    }
                    PlaceOrConst::Place(Place::Global { mem, mut indices, ty }) => {
                        indices.push(iv32);
                        Some(PlaceOrConst::Place(Place::Global { mem, indices, ty }))
                    }
                    PlaceOrConst::Const(..) => None,
                }
            }
            ExprKind::Unary(UnOp::Deref, inner) => self.place(inner),
            _ => None,
        }
    }

    fn load_place(&mut self, p: &Place) -> Operand {
        match p {
            Place::Local { slot, index, ty } => {
                let v = self
                    .builder
                    .emit(InstKind::LocalLoad { slot: *slot, index: *index }, ir_storage_ty(*ty))
                    .unwrap();
                Operand::Value(v)
            }
            Place::ArgMsg { arg, index, ty } => {
                let v = self
                    .builder
                    .emit(InstKind::ArgRead { arg: *arg, index: *index }, ir_storage_ty(*ty))
                    .unwrap();
                Operand::Value(v)
            }
            Place::Global { mem, indices, ty } => {
                let v = self
                    .builder
                    .emit(
                        InstKind::MemRead { mem: MemRef { mem: *mem, indices: indices.clone() } },
                        ir_storage_ty(*ty),
                    )
                    .unwrap();
                Operand::Value(v)
            }
        }
    }

    /// Bool value (`i1`) widens to its 8-bit storage form before a store.
    fn coerce_to_storage(&mut self, op: Operand, ty: Ty) -> Operand {
        if ty == Ty::Bool {
            self.builder.cast(CastKind::Zext, op, IrTy::I1, IrTy::I8)
        } else {
            op
        }
    }

    /// 8-bit stored bool narrows back to `i1` after a load.
    fn coerce_from_storage(&mut self, op: Operand, ty: Ty) -> Operand {
        if ty == Ty::Bool {
            self.builder.icmp(IcmpPred::Ne, op, Operand::imm(0, IrTy::I8))
        } else {
            op
        }
    }

    fn store_place(&mut self, p: &Place, value: Operand, value_ty: Ty) {
        let target_ty = p.ty();
        let v = self.coerce(value, value_ty, target_ty);
        let v = self.coerce_to_storage(v, target_ty);
        match p {
            Place::Local { slot, index, ty } => {
                self.builder.emit(
                    InstKind::LocalStore { slot: *slot, index: *index, value: v },
                    ir_storage_ty(*ty),
                );
            }
            Place::ArgMsg { arg, index, ty } => {
                self.builder.emit(
                    InstKind::ArgWrite { arg: *arg, index: *index, value: v },
                    ir_storage_ty(*ty),
                );
            }
            Place::Global { mem, indices, ty } => {
                self.builder.emit(
                    InstKind::MemWrite {
                        mem: MemRef { mem: *mem, indices: indices.clone() },
                        value: v,
                    },
                    ir_storage_ty(*ty),
                );
            }
        }
    }
}

enum PlaceOrConst {
    Place(Place),
    Const(u64, Ty),
}

struct InlineRet {
    slot: Option<(LocalId, Ty)>,
    exit: netcl_ir::BlockId,
}

fn bin_ir_op(op: BinOp, ty: Ty) -> IrBinOp {
    let signed = matches!(ty, Ty::Int { signed: true, .. });
    match op {
        BinOp::Add => IrBinOp::Add,
        BinOp::Sub => IrBinOp::Sub,
        BinOp::Mul => IrBinOp::Mul,
        BinOp::Div => {
            if signed {
                IrBinOp::SDiv
            } else {
                IrBinOp::UDiv
            }
        }
        BinOp::Rem => {
            if signed {
                IrBinOp::SRem
            } else {
                IrBinOp::URem
            }
        }
        BinOp::And => IrBinOp::And,
        BinOp::Or => IrBinOp::Or,
        BinOp::Xor => IrBinOp::Xor,
        BinOp::Shl => IrBinOp::Shl,
        BinOp::Shr => {
            if signed {
                IrBinOp::AShr
            } else {
                IrBinOp::LShr
            }
        }
        _ => IrBinOp::Add,
    }
}

/// True when an expression has no side effects (safe to evaluate eagerly).
fn is_pure(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Int(_)
        | ExprKind::Bool(_)
        | ExprKind::Char(_)
        | ExprKind::Ident(_)
        | ExprKind::Sizeof(_)
        | ExprKind::Path { .. }
        | ExprKind::Error => true,
        ExprKind::Member(b, _) => is_pure(b),
        ExprKind::Unary(_, x) | ExprKind::Cast(_, x) => is_pure(x),
        ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => is_pure(a) && is_pure(b),
        ExprKind::Ternary(c, a, b) => is_pure(c) && is_pure(a) && is_pure(b),
        ExprKind::Assign { .. } | ExprKind::Call { .. } | ExprKind::IncDec { .. } => false,
    }
}

/// Evaluates `e` as a constant with `iv` substituted by `value`.
fn eval_subst(e: &Expr, iv: Symbol, value: u64) -> Option<u64> {
    match &e.kind {
        ExprKind::Ident(s) if *s == iv => Some(value),
        ExprKind::Int(v) => Some(*v),
        ExprKind::Char(c) => Some(*c as u64),
        ExprKind::Bool(b) => Some(*b as u64),
        ExprKind::Unary(op, x) => {
            let v = eval_subst(x, iv, value)?;
            Some(match op {
                UnOp::Neg => v.wrapping_neg(),
                UnOp::Not => (v == 0) as u64,
                UnOp::BitNot => !v,
                _ => return None,
            })
        }
        ExprKind::Binary(op, a, b) => {
            let a = eval_subst(a, iv, value)?;
            let b = eval_subst(b, iv, value)?;
            // Signed comparison semantics: induction variables are i32 in
            // practice and non-negative in every paper loop; use i64 compare
            // to stay correct for negative constants.
            let (sa, sb) = (a as i64, b as i64);
            Some(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => a.checked_div(b)?,
                BinOp::Rem => a.checked_rem(b)?,
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.checked_shl(b as u32).unwrap_or(0),
                BinOp::Shr => a.checked_shr(b as u32).unwrap_or(0),
                BinOp::Eq => (a == b) as u64,
                BinOp::Ne => (a != b) as u64,
                BinOp::Lt => (sa < sb) as u64,
                BinOp::Le => (sa <= sb) as u64,
                BinOp::Gt => (sa > sb) as u64,
                BinOp::Ge => (sa >= sb) as u64,
                BinOp::LogicalAnd => (a != 0 && b != 0) as u64,
                BinOp::LogicalOr => (a != 0 || b != 0) as u64,
            })
        }
        ExprKind::Ternary(c, a, b) => {
            if eval_subst(c, iv, value)? != 0 {
                eval_subst(a, iv, value)
            } else {
                eval_subst(b, iv, value)
            }
        }
        ExprKind::Cast(te, x) => {
            let v = eval_subst(x, iv, value)?;
            Ty::from_type_expr(te).filter(|t| t.is_arith()).map(|t| t.wrap(v))
        }
        _ => None,
    }
}

/// Computes the next induction value for a recognized step expression.
fn step_value(step: &Expr, iv: Symbol, current: u64) -> Option<u64> {
    match &step.kind {
        ExprKind::IncDec { inc, expr, .. } => match &expr.kind {
            ExprKind::Ident(s) if *s == iv => {
                Some(if *inc { current.wrapping_add(1) } else { current.wrapping_sub(1) })
            }
            _ => None,
        },
        ExprKind::Assign { op, target, value } => {
            let ExprKind::Ident(s) = &target.kind else { return None };
            if *s != iv {
                return None;
            }
            match op {
                Some(BinOp::Add) => Some(current.wrapping_add(try_eval(value)?)),
                Some(BinOp::Sub) => Some(current.wrapping_sub(try_eval(value)?)),
                Some(BinOp::Shl) => Some(current.wrapping_shl(try_eval(value)? as u32)),
                Some(BinOp::Shr) => Some(current.wrapping_shr(try_eval(value)? as u32)),
                Some(BinOp::Mul) => Some(current.wrapping_mul(try_eval(value)?)),
                None => eval_subst(value, iv, current),
                _ => None,
            }
        }
        _ => None,
    }
}
