//! Prints the Table IV reproduction (compilation times, 5 runs).
fn main() {
    print!("{}", netcl_bench::report_table4(5));
}
