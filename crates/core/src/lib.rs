//! NetCL — a unified programming framework for in-network computing.
//!
//! This crate is the paper's primary contribution as a Rust library: the
//! `ncc` compiler pipeline that turns NetCL-C device code into P4 programs
//! for Intel Tofino (TNA) and the v1model software switch (paper §III, §VI).
//!
//! ```text
//!  NetCL-C source ──lang──▶ AST ──sema──▶ model ──lower──▶ SSA IR
//!        ──passes──▶ target-legal IR ──codegen──▶ P4 (TNA / v1model)
//! ```
//!
//! The public entry point is [`Compiler`]:
//!
//! ```
//! use netcl::{Compiler, CompileOptions};
//!
//! let source = r#"
//!     _net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42},{2,43}};
//!     _kernel(1) void query(char op, unsigned k, unsigned &v, char &hit) {
//!         if (op == 'G') {
//!             hit = ncl::lookup(cache, k, v);
//!             if (hit) return ncl::reflect();
//!         }
//!     }
//! "#;
//! let unit = Compiler::new(CompileOptions::default())
//!     .compile("cache.ncl", source)
//!     .expect("compiles");
//! assert_eq!(unit.devices.len(), 1);
//! let p4 = &unit.devices[0].tna_p4;
//! assert!(p4.controls.iter().any(|c| !c.tables.is_empty()));
//! ```
//!
//! For workloads of many units, [`Compiler::compile_incremental`] reuses
//! unchanged artifacts through a content-addressed [`CompileCache`]:
//! whole units are keyed by source text, per-device artifacts by the
//! printed post-sema base IR, so an edit recompiles only what it touched.
//! Served results carry [`compiler::CompiledUnit::reuse`] and mark their
//! pass reports `from_cache` (the `compile_throughput` bench gates on
//! this).
//!
//! DESIGN.md §4 walks the pipeline stage by stage; §12 documents the
//! per-pass telemetry behind [`CompileOptions::pass_report`] and
//! `ncc --emit-pass-report`; §16 covers the runtime control plane and the
//! incremental recompilation cache ([`cache`]).

pub mod cache;
pub mod codegen;
pub mod compiler;
pub mod lower;
pub mod tenant;

pub use cache::{CacheStats, CompileCache, ReuseStats};
pub use compiler::{
    CompileError, CompileOptions, CompiledDevice, CompiledUnit, Compiler, EmitTarget,
};
pub use tenant::{compile_tenants, MergedCompilation, TenantSlice, TenantSource};

// Re-export the layers for downstream crates (runtime, apps, benches).
pub use netcl_ir as ir;
pub use netcl_lang as lang;
pub use netcl_p4 as p4;
pub use netcl_passes as passes;
pub use netcl_sema as sema;
pub use netcl_util as util;
