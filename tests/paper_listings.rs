//! Every code listing in the paper compiles through the full pipeline.

use netcl::{CompileOptions, Compiler, EmitTarget};

fn compiles(src: &str) {
    Compiler::new(CompileOptions::default())
        .compile("listing.ncl", src)
        .unwrap_or_else(|e| panic!("{e}"));
}

/// Figure 4 — the complete NetCL device code for the in-network cache.
#[test]
fn figure_4() {
    compiles(
        r#"
#define CMS_HASHES 3
#define THRESH 512
#define GET_REQ 1
_managed_ unsigned cms[CMS_HASHES][65536];

_net_ void sketch(unsigned k, unsigned &hot) {
  unsigned c[CMS_HASHES];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k)], 1);
  for (auto i = 1; i < CMS_HASHES; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  hot = c[0] > THRESH ? c[0] : 0;
}

_net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42}, {2,42},
                                                      {3,42}, {4,42}};

_kernel(1) _at(1) void query(char op, unsigned k, unsigned &v,
                             char &hit, unsigned &hot) {
  if (op == GET_REQ) {
    hit = ncl::lookup(cache, k, v);
    return hit ? ncl::reflect() : sketch(k, hot);
  }
}
"#,
    );
}

/// Figure 7 — in-network AllReduce, exactly as printed (including the
/// `cnt == 1` decision; see DESIGN.md §8 for why the shipped AGG app uses a
/// retransmission-safe variant).
#[test]
fn figure_7() {
    compiles(
        r#"
#define NUM_SLOTS 2048
#define SLOT_SIZE 32
#define NUM_WORKERS 6
_net_ uint16_t Bitmap[2][NUM_SLOTS];
_net_ uint32_t Agg[SLOT_SIZE][NUM_SLOTS * 2];
_net_ uint8_t Count[NUM_SLOTS * 2];

_kernel(1) void allreduce( uint8_t ver, uint16_t bmp_idx,
                           uint16_t agg_idx, uint16_t mask,
                           uint32_t _spec(SLOT_SIZE) *v) {
  uint16_t bitmap;
  if (ver == 0) {
    bitmap = ncl::atomic_or(&Bitmap[0][bmp_idx], mask);
    ncl::atomic_and(&Bitmap[1][bmp_idx], ~mask);
  } else {
    ncl::atomic_and(&Bitmap[0][bmp_idx], ~mask);
    bitmap = ncl::atomic_or(&Bitmap[1][bmp_idx], mask);
  }

  if (bitmap == 0) {
    for (auto i = 0; i < SLOT_SIZE; ++i)
      Agg[i][agg_idx] = v[i];
    Count[agg_idx] = NUM_WORKERS - 1;
  } else {
    auto seen = bitmap & mask;
    for (auto i = 0; i < SLOT_SIZE; ++i)
      v[i] = ncl::atomic_cond_add_new(&Agg[i][agg_idx], !seen, v[i]);
    auto cnt = ncl::atomic_cond_dec(&Count[agg_idx], !seen);
    if (cnt == 0)
      return ncl::reflect();
    if (cnt == 1)
      return ncl::multicast(42);
  }
  return ncl::drop();
}
"#,
    );
}

/// §V-A specification examples — all four kernels, with the specs the paper
/// derives.
#[test]
fn section_5a_specifications() {
    let unit = Compiler::new(CompileOptions::default())
        .compile(
            "spec.ncl",
            r#"
_kernel(1) void a(int x[3]) {}
_kernel(2) void b(int x[4]) {}
_kernel(3) void c(int _spec(4) *x) {}
_kernel(4) void d(int x, int y[2], int *z) {}
"#,
        )
        .unwrap();
    let specs: Vec<String> =
        unit.model.kernels.iter().map(|k| k.specification().describe()).collect();
    assert_eq!(specs[0], "[3][int32_t]");
    assert_eq!(specs[1], "[4][int32_t]");
    assert_eq!(specs[2], "[4][int32_t]");
    assert_eq!(specs[3], "[1,2,1][int32_t,int32_t,int32_t]");
    // b and c could share a computation; a and d could not.
    assert_eq!(specs[1], specs[2]);
    assert_ne!(specs[0], specs[3]);
}

/// §V-B lookup examples.
#[test]
fn section_5b_lookup() {
    compiles(
        r#"
_net_ _lookup_ unsigned a[] = {1,2,3};
_net_ _lookup_ ncl::kv<int,int> b[] = { {1,2}, {2,3} };
_net_ _lookup_ ncl::rv<int,int> c[] = { {{1,10},1}, {{11,20},2} };
_kernel(1) void k(unsigned q, int x, int &rx, char &m1, char &m2, char &m3) {
  m1 = ncl::lookup(a, q);
  m2 = ncl::lookup(b, x, rx);
  m3 = ncl::lookup(c, x, rx);
}
"#,
    );
}

/// §V-C multi-location example (valid variant) and Fig. 11's placement
/// shape.
#[test]
fn section_5c_placement() {
    let unit = Compiler::new(CompileOptions::default())
        .compile(
            "place.ncl",
            r#"
_net_ _at(1,2) int m[42];
_kernel(1) _at(1,2) void a(int x) { m[0] = 1; }
"#,
        )
        .unwrap();
    assert_eq!(unit.devices.len(), 2);

    // Figure 11's memory layout compiles at all five locations.
    compiles(&netcl_apps::paxos::full_source());
}

/// §V-D kernel `b` — valid mutually-exclusive access — compiles for Tofino;
/// kernel `a` (same-path double access) is rejected with E0302.
#[test]
fn section_5d_memory_rules() {
    compiles("_net_ int m[42];\n_kernel(1) void b(int x, int &o) { o = (x > 10) ? m[0] : m[1]; }");
    let err = Compiler::new(CompileOptions { target: EmitTarget::Tna, ..Default::default() })
        .compile("a.ncl", "_net_ int m[42];\n_kernel(2) void a(int x, int &o) { o = m[0] + m[1]; }")
        .unwrap_err();
    assert!(err.codes.iter().any(|c| c == "E0302"));
}

/// §V-D ordering example: reorderable operand order is accepted, dependent
/// reversed order is rejected.
#[test]
fn section_5d_ordering() {
    compiles(
        r#"
_net_ int m1[42];
_net_ int m2[42];
_kernel(2) void b(int x, int &o) {
  if (x > 10) { o = m1[0] + m2[1]; }
  else        { o = m2[1] + m1[0]; }
}
"#,
    );
    let err = Compiler::new(CompileOptions { target: EmitTarget::Tna, ..Default::default() })
        .compile(
            "a.ncl",
            r#"
_net_ int m1[42];
_net_ int m2[42];
_kernel(1) void a(int x, int &o) {
  int y = 0;
  if (x > 10) { y = m1[0]; y = m2[y & 41]; }
  else        { y = m2[0]; y = m1[y & 41]; }
  o = y;
}
"#,
        )
        .unwrap_err();
    assert!(err.codes.iter().any(|c| c == "E0304"), "{:?}", err.codes);
}
