//! A compact growable bitset.
//!
//! Used by the dominance computation, liveness in φ-elimination, the Tofino
//! stage allocator (which resources a stage still has free), and by the
//! AllReduce worker bitmaps in tests.

/// Growable bitset backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bitset with capacity for `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of bits tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`, returning whether it changed.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old != self.words[w]
    }

    /// Clears bit `i`, returning whether it changed.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] &= !(1 << b);
        old != self.words[w]
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Grows the bitset to at least `len` bits (new bits clear). Never
    /// shrinks. Lets long-lived sets (e.g. per-packet validity in the
    /// software switch) absorb late-interned indices without reallocation
    /// churn.
    pub fn ensure_len(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            let words = len.div_ceil(64);
            if words > self.words.len() {
                self.words.resize(words, 0);
            }
        }
    }

    /// Sets every bit.
    pub fn insert_all(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        self.trim();
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self &= other`; returns whether `self` changed. Lengths must match.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a &= b;
            changed |= old != *a;
        }
        changed
    }

    /// `self |= other`; returns whether `self` changed. Lengths must match.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= old != *a;
        }
        changed
    }

    /// Iterates over set bit indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    fn trim(&mut self) {
        let spare = self.words.len() * 64 - self.len;
        if spare > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> spare;
            }
        }
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map(|&m| m + 1).unwrap_or(0);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert reports no change");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn insert_all_respects_len() {
        let mut s = BitSet::new(70);
        s.insert_all();
        assert_eq!(s.count(), 70);
        assert!(!s.contains(70));
    }

    #[test]
    fn intersection_and_union() {
        let mut a: BitSet = [1usize, 3, 5].into_iter().collect();
        let mut b = BitSet::new(a.len());
        b.insert(3);
        b.insert(4);
        let mut inter = a.clone();
        assert!(inter.intersect_with(&b));
        assert_eq!(inter.iter().collect::<Vec<_>>(), vec![3]);
        assert!(a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
    }

    #[test]
    fn iter_ascending() {
        let s: BitSet = [127usize, 0, 63, 64].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        BitSet::new(4).insert(4);
    }
}
