//! Promotion of scalar local slots to SSA values (LLVM's `mem2reg`).
//!
//! Lowering gives every source variable a local slot and accesses it with
//! loads/stores; this pass promotes every scalar slot (element count 1,
//! constant index) to SSA form with φ-nodes at iterated dominance frontiers.
//! Local *arrays* with dynamic indices are left alone — they become header
//! stacks with index tables in the P4 backend (Fig. 9, rightmost column).
//!
//! Loads that can execute before any store read 0. (The paper leaves
//! default-initialized locals undefined; the compiler is entitled to pick a
//! value, and 0 matches what the P4 backend's zero-initialized metadata
//! produces, keeping IR and P4 semantics aligned.)

use netcl_ir::dom::DomTree;
use netcl_ir::func::{BlockId, Function, Inst, InstKind, LocalId, ValueId};
use netcl_ir::types::Operand;
use std::collections::{HashMap, HashSet};

/// Runs mem2reg; returns the number of promoted slots.
pub fn run_on_function(f: &mut Function) -> usize {
    let promotable = find_promotable(f);
    if promotable.is_empty() {
        return 0;
    }
    let dt = DomTree::compute(f);
    let df = dt.dominance_frontiers(f);
    let preds = f.predecessors();

    // 1. Insert empty φ-nodes at iterated dominance frontiers of defs.
    //    phi_of[(block, slot)] = value id of the φ.
    let mut phi_of: HashMap<(BlockId, LocalId), ValueId> = HashMap::new();
    for &slot in &promotable {
        let mut def_blocks: Vec<BlockId> = Vec::new();
        for (bid, b) in f.blocks.iter_enumerated() {
            if b.insts
                .iter()
                .any(|i| matches!(&i.kind, InstKind::LocalStore { slot: s, .. } if *s == slot))
            {
                def_blocks.push(bid);
            }
        }
        let mut work = def_blocks.clone();
        let mut placed: HashSet<BlockId> = HashSet::new();
        while let Some(b) = work.pop() {
            if !dt.is_reachable(b) {
                continue;
            }
            for &fr in &df[b] {
                if placed.insert(fr) {
                    let ty = f.locals[slot].ty;
                    let v = f.values.push(netcl_ir::func::ValueInfo {
                        ty,
                        name: Some(f.locals[slot].name.clone()),
                    });
                    f.blocks[fr].insts.insert(
                        0,
                        Inst { kind: InstKind::Phi { incoming: vec![] }, results: vec![v] },
                    );
                    phi_of.insert((fr, slot), v);
                    work.push(fr);
                }
            }
        }
    }

    // 2. Rename along the dominator tree.
    let mut children: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    for &b in &dt.rpo {
        if let Some(p) = dt.immediate_dominator(b) {
            children.entry(p).or_default().push(b);
        }
    }
    let mut replace: HashMap<ValueId, Operand> = HashMap::new();
    let promoset: HashSet<LocalId> = promotable.iter().copied().collect();

    // Iterative DFS with per-slot definition stacks.
    struct Frame {
        block: BlockId,
        pushed: Vec<LocalId>,
        visited: bool,
    }
    let mut stacks: HashMap<LocalId, Vec<Operand>> = HashMap::new();
    let resolve = |op: Operand, replace: &HashMap<ValueId, Operand>| -> Operand {
        let mut cur = op;
        for _ in 0..replace.len() + 1 {
            match cur {
                Operand::Value(v) => match replace.get(&v) {
                    Some(&n) => cur = n,
                    None => break,
                },
                _ => break,
            }
        }
        cur
    };
    let zero = |f: &Function, slot: LocalId| Operand::Const(0, f.locals[slot].ty);

    let mut stack = vec![Frame { block: f.entry, pushed: vec![], visited: false }];
    while let Some(frame) = stack.last_mut() {
        if frame.visited {
            // Unwind: pop definitions pushed by this block.
            for slot in frame.pushed.drain(..) {
                stacks.get_mut(&slot).unwrap().pop();
            }
            stack.pop();
            continue;
        }
        frame.visited = true;
        let bid = frame.block;
        let mut pushed: Vec<LocalId> = Vec::new();

        // Process instructions.
        let mut insts = std::mem::take(&mut f.blocks[bid].insts);
        for inst in &mut insts {
            match &inst.kind {
                InstKind::Phi { .. } => {
                    if let Some((&(_, slot), _)) = phi_of
                        .iter()
                        .find(|((b, _), &v)| *b == bid && inst.results.first() == Some(&v))
                    {
                        stacks.entry(slot).or_default().push(Operand::Value(inst.results[0]));
                        pushed.push(slot);
                    }
                }
                InstKind::LocalLoad { slot, .. } if promoset.contains(slot) => {
                    let cur = stacks
                        .get(slot)
                        .and_then(|s| s.last().copied())
                        .unwrap_or_else(|| zero(f, *slot));
                    let cur = resolve(cur, &replace);
                    replace.insert(inst.results[0], cur);
                }
                InstKind::LocalStore { slot, value, .. } if promoset.contains(slot) => {
                    let v = resolve(*value, &replace);
                    stacks.entry(*slot).or_default().push(v);
                    pushed.push(*slot);
                }
                _ => {}
            }
        }
        f.blocks[bid].insts = insts;

        // Fill φ incoming of CFG successors.
        for succ in f.blocks[bid].term.successors() {
            let slots: Vec<LocalId> =
                phi_of.iter().filter(|((b, _), _)| *b == succ).map(|((_, s), _)| *s).collect();
            for slot in slots {
                let phi_v = phi_of[&(succ, slot)];
                let cur = stacks
                    .get(&slot)
                    .and_then(|s| s.last().copied())
                    .unwrap_or_else(|| zero(f, slot));
                let cur = resolve(cur, &replace);
                for inst in &mut f.blocks[succ].insts {
                    if inst.results.first() == Some(&phi_v) {
                        if let InstKind::Phi { incoming } = &mut inst.kind {
                            if !incoming.iter().any(|(p, _)| *p == bid) {
                                incoming.push((bid, cur));
                            }
                        }
                    }
                }
            }
        }

        let frame = stack.last_mut().unwrap();
        frame.pushed = pushed;
        // Recurse into dominator-tree children.
        if let Some(kids) = children.get(&bid) {
            for &k in kids {
                stack.push(Frame { block: k, pushed: vec![], visited: false });
            }
        }
    }

    // 3. Remove promoted loads/stores and apply replacements.
    for b in f.blocks.iter_mut() {
        b.insts.retain(|inst| match &inst.kind {
            InstKind::LocalLoad { slot, .. } | InstKind::LocalStore { slot, .. } => {
                !promoset.contains(slot)
            }
            _ => true,
        });
    }
    for b in f.blocks.iter_mut() {
        for inst in &mut b.insts {
            inst.kind.map_operands(|op| resolve(op, &replace));
        }
        match &mut b.term {
            netcl_ir::Terminator::CondBr { cond, .. } => *cond = resolve(*cond, &replace),
            netcl_ir::Terminator::Ret(a) => {
                if let Some(t) = &mut a.target {
                    *t = resolve(*t, &replace);
                }
            }
            _ => {}
        }
    }
    // Ensure any φ with missing incoming (unreachable preds) defaults to 0.
    let preds_now = preds;
    for bid in f.blocks.indices().collect::<Vec<_>>() {
        for inst in &mut f.blocks[bid].insts {
            if let InstKind::Phi { incoming } = &mut inst.kind {
                for &p in &preds_now[bid] {
                    if !incoming.iter().any(|(q, _)| *q == p) {
                        let ty = f.values[inst.results[0]].ty;
                        incoming.push((p, Operand::Const(0, ty)));
                    }
                }
            }
        }
    }
    promotable.len()
}

fn find_promotable(f: &Function) -> Vec<LocalId> {
    let mut bad: HashSet<LocalId> = HashSet::new();
    for b in f.blocks.iter() {
        for inst in &b.insts {
            match &inst.kind {
                InstKind::LocalLoad { slot, index } | InstKind::LocalStore { slot, index, .. }
                    if index.as_const() != Some(0) =>
                {
                    bad.insert(*slot);
                }
                _ => {}
            }
        }
    }
    f.locals
        .iter_enumerated()
        .filter(|(id, l)| l.count == 1 && !bad.contains(id))
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcl_ir::func::{ActionRef, FuncBuilder, Terminator};
    use netcl_ir::types::{IcmpPred, IrBinOp, IrTy, Operand as Op};
    use netcl_ir::verify::verify_function;

    /// x = 1; if (c) x = 2; out = x  — needs a φ at the join.
    #[test]
    fn promotes_with_phi() {
        let mut b = FuncBuilder::new("k", 1);
        let argc = b.add_arg("c", IrTy::I32, 1, false);
        let out = b.add_arg("o", IrTy::I32, 1, true);
        let x = b.add_local("x", IrTy::I32, 1);
        let i0 = Op::imm(0, IrTy::I32);
        b.emit(
            InstKind::LocalStore { slot: x, index: i0, value: Op::imm(1, IrTy::I32) },
            IrTy::I32,
        );
        let c = b.emit(InstKind::ArgRead { arg: argc, index: i0 }, IrTy::I32).unwrap();
        let cond = b.icmp(IcmpPred::Ne, Op::Value(c), Op::imm(0, IrTy::I32));
        let t = b.new_block();
        let j = b.new_block();
        b.terminate(Terminator::CondBr { cond, then_bb: t, else_bb: j });
        b.switch_to(t);
        b.emit(
            InstKind::LocalStore { slot: x, index: i0, value: Op::imm(2, IrTy::I32) },
            IrTy::I32,
        );
        b.terminate(Terminator::Br(j));
        b.switch_to(j);
        let v = b.emit(InstKind::LocalLoad { slot: x, index: i0 }, IrTy::I32).unwrap();
        b.emit(InstKind::ArgWrite { arg: out, index: i0, value: Op::Value(v) }, IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut f = b.finish();

        assert_eq!(run_on_function(&mut f), 1);
        verify_function(&f, None).unwrap();
        // No local loads/stores remain; a φ exists in the join block.
        assert!(!f.blocks.iter().any(|b| b
            .insts
            .iter()
            .any(|i| matches!(i.kind, InstKind::LocalLoad { .. } | InstKind::LocalStore { .. }))));
        assert!(f.blocks[j].insts.iter().any(|i| matches!(i.kind, InstKind::Phi { .. })));

        // Semantics: c=0 → 1, c≠0 → 2.
        let m = netcl_ir::Module::default();
        let mut st = netcl_ir::interp::DeviceState::new(&m);
        let mut env = netcl_ir::interp::ExecEnv::default();
        let mut args = vec![vec![0u64], vec![0u64]];
        netcl_ir::interp::execute(&f, &m, &mut st, &mut args, &mut env).unwrap();
        assert_eq!(args[1][0], 1);
        let mut args = vec![vec![5u64], vec![0u64]];
        netcl_ir::interp::execute(&f, &m, &mut st, &mut args, &mut env).unwrap();
        assert_eq!(args[1][0], 2);
    }

    #[test]
    fn load_before_store_reads_zero() {
        let mut b = FuncBuilder::new("k", 1);
        let out = b.add_arg("o", IrTy::I32, 1, true);
        let x = b.add_local("x", IrTy::I32, 1);
        let i0 = Op::imm(0, IrTy::I32);
        let v = b.emit(InstKind::LocalLoad { slot: x, index: i0 }, IrTy::I32).unwrap();
        b.emit(InstKind::ArgWrite { arg: out, index: i0, value: Op::Value(v) }, IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut f = b.finish();
        run_on_function(&mut f);
        match &f.blocks[f.entry].insts[0].kind {
            InstKind::ArgWrite { value, .. } => assert_eq!(value.as_const(), Some(0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dynamic_arrays_not_promoted() {
        let mut b = FuncBuilder::new("k", 1);
        let argi = b.add_arg("i", IrTy::I32, 1, false);
        let out = b.add_arg("o", IrTy::I32, 1, true);
        let arr = b.add_local("c", IrTy::I32, 3);
        let i0 = Op::imm(0, IrTy::I32);
        let i = b.emit(InstKind::ArgRead { arg: argi, index: i0 }, IrTy::I32).unwrap();
        b.emit(
            InstKind::LocalStore { slot: arr, index: Op::Value(i), value: Op::imm(7, IrTy::I32) },
            IrTy::I32,
        );
        let v = b.emit(InstKind::LocalLoad { slot: arr, index: Op::Value(i) }, IrTy::I32).unwrap();
        b.emit(InstKind::ArgWrite { arg: out, index: i0, value: Op::Value(v) }, IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut f = b.finish();
        assert_eq!(run_on_function(&mut f), 0);
        assert!(f.blocks[f.entry]
            .insts
            .iter()
            .any(|i| matches!(i.kind, InstKind::LocalStore { .. })));
    }

    /// Sequential overwrites in one block need no φ.
    #[test]
    fn straightline_promotion() {
        let mut b = FuncBuilder::new("k", 1);
        let out = b.add_arg("o", IrTy::I32, 1, true);
        let x = b.add_local("x", IrTy::I32, 1);
        let i0 = Op::imm(0, IrTy::I32);
        b.emit(
            InstKind::LocalStore { slot: x, index: i0, value: Op::imm(1, IrTy::I32) },
            IrTy::I32,
        );
        let v1 = b.emit(InstKind::LocalLoad { slot: x, index: i0 }, IrTy::I32).unwrap();
        let v2 = b.bin(IrBinOp::Add, Op::Value(v1), Op::imm(10, IrTy::I32), IrTy::I32);
        b.emit(InstKind::LocalStore { slot: x, index: i0, value: v2 }, IrTy::I32);
        let v3 = b.emit(InstKind::LocalLoad { slot: x, index: i0 }, IrTy::I32).unwrap();
        b.emit(InstKind::ArgWrite { arg: out, index: i0, value: Op::Value(v3) }, IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut f = b.finish();
        run_on_function(&mut f);
        crate::fold::fold_function(&mut f);
        crate::dce::run_on_function(&mut f);
        verify_function(&f, None).unwrap();
        // add(1, 10) folded; the write carries 11.
        match f.blocks[f.entry].insts.iter().find(|i| matches!(i.kind, InstKind::ArgWrite { .. })) {
            Some(inst) => match &inst.kind {
                InstKind::ArgWrite { value, .. } => assert_eq!(value.as_const(), Some(11)),
                _ => unreachable!(),
            },
            None => panic!("write disappeared"),
        }
    }
}
