//! The NetCL device runtime: action → forwarding semantics (Table II, §IV).
//!
//! After a kernel executes, the runtime reads the action it selected and
//! updates the header 4-tuple; the base program (here, the network layer)
//! then moves the message. The rules implemented:
//!
//! * `pass()` — continue toward the original destination host `dst`.
//! * `drop()` — the message exits the network immediately.
//! * `send_to_host(h)` / `send_to_device(d)` — retarget; per the
//!   no-implicit-computation rule, intermediate devices treat the message
//!   as a no-op until it reaches the target (`to` names the computing
//!   device; a message heading to a host has `to = NO_DEVICE`).
//! * `multicast(gid)` — replicate to a neighbor group (resolved by the
//!   network layer).
//! * `reflect()` — back to the previous hop: the last computing device if
//!   any, else the source host (§IV).
//! * `repeat()` — execute the kernel again on this device (recirculation).
//! * `reflect_host()` — back to the source host.
//!
//! A computing device stamps itself into `from` on every outgoing message,
//! maintaining the previous-hop invariant.

use crate::message::Message;
use netcl_sema::builtins::ActionKind;

/// `from` value of a message no device has computed on yet.
pub const NO_DEVICE: u16 = 0xFFFF;

/// Where the network layer should move a message next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Forward {
    /// Remove from the network.
    Drop,
    /// Deliver to (or route toward) a host.
    ToHost(u16),
    /// Route toward a device (which will compute: `to` is set to it).
    ToDevice(u16),
    /// Replicate to multicast group `gid`.
    Multicast(u16),
    /// Re-execute the kernel on this device before forwarding.
    Recirculate,
}

/// The device-runtime decision logic.
#[derive(Clone, Copy, Debug)]
pub struct DeviceRuntime {
    /// This device's id.
    pub device: u16,
}

impl DeviceRuntime {
    /// Creates the runtime for a device.
    pub fn new(device: u16) -> DeviceRuntime {
        DeviceRuntime { device }
    }

    /// Whether this device should execute a kernel for `msg` (the
    /// no-implicit-computation rule: only the `to` device computes).
    pub fn should_compute(&self, msg: &Message) -> bool {
        msg.to == self.device
    }

    /// Applies a kernel's selected action, updating the header and deciding
    /// the next hop. `action`/`target` come from the executed program.
    pub fn forward(&self, msg: &mut Message, action: ActionKind, target: u16) -> Forward {
        let prev_from = msg.from;
        // Every outgoing message records this device as the previous hop.
        msg.from = self.device;
        match action {
            ActionKind::Drop => Forward::Drop,
            ActionKind::Pass => {
                msg.to = NO_DEVICE;
                Forward::ToHost(msg.dst)
            }
            ActionKind::SendToHost => {
                msg.to = NO_DEVICE;
                Forward::ToHost(target)
            }
            ActionKind::SendToDevice => {
                msg.to = target;
                Forward::ToDevice(target)
            }
            ActionKind::Multicast => Forward::Multicast(target),
            ActionKind::Reflect => {
                if prev_from == NO_DEVICE {
                    msg.to = NO_DEVICE;
                    Forward::ToHost(msg.src)
                } else {
                    msg.to = prev_from;
                    Forward::ToDevice(prev_from)
                }
            }
            ActionKind::ReflectHost => {
                msg.to = NO_DEVICE;
                Forward::ToHost(msg.src)
            }
            ActionKind::Repeat => {
                msg.from = prev_from; // recirculation is not a hop
                Forward::Recirculate
            }
        }
    }

    /// Forwarding for messages this device does *not* compute on (transit):
    /// continue toward the computing device, or the destination host.
    pub fn transit(&self, msg: &Message) -> Forward {
        if msg.to != NO_DEVICE {
            Forward::ToDevice(msg.to)
        } else {
            Forward::ToHost(msg.dst)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> Message {
        Message::new(1, 4, 2, 2) // send_{1→4}(comp 2, dev 2)
    }

    #[test]
    fn no_implicit_computation() {
        let rt2 = DeviceRuntime::new(2);
        let rt3 = DeviceRuntime::new(3);
        let m = msg();
        assert!(rt2.should_compute(&m));
        assert!(!rt3.should_compute(&m));
        // Transit at dev3 routes toward dev2.
        assert_eq!(rt3.transit(&m), Forward::ToDevice(2));
    }

    #[test]
    fn pass_continues_to_destination() {
        let rt = DeviceRuntime::new(2);
        let mut m = msg();
        let f = rt.forward(&mut m, ActionKind::Pass, 0);
        assert_eq!(f, Forward::ToHost(4));
        assert_eq!(m.from, 2, "device stamped as previous hop");
        assert_eq!(m.to, NO_DEVICE);
    }

    #[test]
    fn reflect_to_source_host_on_first_device() {
        let rt = DeviceRuntime::new(2);
        let mut m = msg(); // from = NO_DEVICE
        let f = rt.forward(&mut m, ActionKind::Reflect, 0);
        assert_eq!(f, Forward::ToHost(1), "previous hop is the source host (§IV)");
    }

    #[test]
    fn reflect_to_previous_device() {
        // Fig. 5: message went h1 → dev2 (computed) → dev3; reflect at dev3
        // goes back to dev2.
        let rt3 = DeviceRuntime::new(3);
        let mut m = msg();
        m.from = 2;
        m.to = 3;
        let f = rt3.forward(&mut m, ActionKind::Reflect, 0);
        assert_eq!(f, Forward::ToDevice(2));
        assert_eq!(m.to, 2);
        assert_eq!(m.from, 3);
    }

    #[test]
    fn send_to_device_chains_computation() {
        // Fig. 5 circle computation: dev2 forwards to dev3, which computes.
        let rt2 = DeviceRuntime::new(2);
        let mut m = msg();
        let f = rt2.forward(&mut m, ActionKind::SendToDevice, 3);
        assert_eq!(f, Forward::ToDevice(3));
        assert_eq!(m.to, 3);
        assert_eq!(m.from, 2);
        // The computation id is unchanged — a device "cannot request a
        // different computation from a subsequent device" (§IV).
        assert_eq!(m.comp, 2);
    }

    #[test]
    fn send_to_host_and_reflect_host() {
        let rt = DeviceRuntime::new(2);
        let mut m = msg();
        assert_eq!(rt.forward(&mut m, ActionKind::SendToHost, 9), Forward::ToHost(9));
        let mut m = msg();
        m.from = 7;
        assert_eq!(rt.forward(&mut m, ActionKind::ReflectHost, 0), Forward::ToHost(1));
    }

    #[test]
    fn repeat_recirculates_without_hop() {
        let rt = DeviceRuntime::new(2);
        let mut m = msg();
        m.from = 9;
        assert_eq!(rt.forward(&mut m, ActionKind::Repeat, 0), Forward::Recirculate);
        assert_eq!(m.from, 9, "recirculation preserves the previous hop");
    }

    #[test]
    fn drop_exits() {
        let rt = DeviceRuntime::new(2);
        let mut m = msg();
        assert_eq!(rt.forward(&mut m, ActionKind::Drop, 0), Forward::Drop);
    }
}
