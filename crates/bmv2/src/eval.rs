//! Expression evaluation against a packet.

use crate::packet::Packet;
use netcl_p4::ast::{Expr, P4BinOp, PathSeg};

/// Evaluates a P4 expression. Returns the value and its width in bits (the
/// width drives wrapping; boolean results are 1 bit).
pub fn eval(e: &Expr, pkt: &Packet, widths: &dyn Fn(&str) -> u32) -> (u64, u32) {
    match e {
        Expr::Const(v, bits) => (*v, *bits),
        Expr::Bool(b) => (*b as u64, 1),
        Expr::Field(segs) => {
            // `$isValid` pseudo-field.
            if segs.last().map(|s| s.name.as_str()) == Some("$isValid") {
                let inst = instance_of(segs);
                return (pkt.is_valid(&inst) as u64, 1);
            }
            let path = canonical(segs);
            let w = widths(&path);
            match segs.first().map(|s| s.name.as_str()) {
                Some("meta") => (pkt.get_meta(&path), w),
                Some("hdr") => (pkt.get(&path), w),
                // Bare names are action parameters / locals (metadata
                // namespace) first, header fields otherwise.
                _ => match pkt.meta_opt(&path) {
                    Some(v) => (v, w),
                    None => (pkt.get(&path), w),
                },
            }
        }
        Expr::Bin(op, a, b) => {
            let (va, wa) = eval(a, pkt, widths);
            let (vb, wb) = eval(b, pkt, widths);
            bin_value(*op, va, wa, vb, wb)
        }
        Expr::Not(x) => {
            let (v, _) = eval(x, pkt, widths);
            ((v == 0) as u64, 1)
        }
        Expr::BitNot(x) => {
            let (v, w) = eval(x, pkt, widths);
            ((!v) & mask_of(w), w)
        }
        Expr::Cast(bits, x) => {
            let (v, _) = eval(x, pkt, widths);
            (v & mask_of(*bits), *bits)
        }
        Expr::Slice(x, hi, lo) => {
            let (v, _) = eval(x, pkt, widths);
            let width = hi - lo + 1;
            ((v >> lo) & mask_of(width), width)
        }
        Expr::TableHit(_) | Expr::TableMiss(_) => {
            // Table applications are handled at statement level; reaching
            // here is a program-structure bug — fail closed.
            (0, 1)
        }
    }
}

/// One binary operation at the given operand widths, with the P4 result
/// width/wrapping rules. Shared by the tree-walking evaluator above and the
/// compiled postfix executor so the two paths cannot drift.
pub fn bin_value(op: P4BinOp, va: u64, wa: u32, vb: u64, wb: u32) -> (u64, u32) {
    let w = wa.max(wb);
    let mask = mask_of(w);
    match op {
        P4BinOp::Add => ((va.wrapping_add(vb)) & mask, w),
        P4BinOp::Sub => ((va.wrapping_sub(vb)) & mask, w),
        P4BinOp::Mul => ((va.wrapping_mul(vb)) & mask, w),
        P4BinOp::And => (va & vb, w),
        P4BinOp::Or => (va | vb, w),
        P4BinOp::Xor => ((va ^ vb) & mask, w),
        P4BinOp::Shl => {
            if vb >= w as u64 {
                (0, w)
            } else {
                ((va << vb) & mask, w)
            }
        }
        P4BinOp::Shr => {
            if vb >= 64 {
                (0, w)
            } else {
                (va >> vb, w)
            }
        }
        P4BinOp::SatAdd => (va.saturating_add(vb).min(mask), w),
        P4BinOp::SatSub => (va.saturating_sub(vb), w),
        P4BinOp::Eq => ((va == vb) as u64, 1),
        P4BinOp::Ne => ((va != vb) as u64, 1),
        P4BinOp::Lt => ((va < vb) as u64, 1),
        P4BinOp::Le => ((va <= vb) as u64, 1),
        P4BinOp::Gt => ((va > vb) as u64, 1),
        P4BinOp::Ge => ((va >= vb) as u64, 1),
        P4BinOp::LAnd => (((va != 0) && (vb != 0)) as u64, 1),
        P4BinOp::LOr => (((va != 0) || (vb != 0)) as u64, 1),
    }
}

/// Canonical field path string (matching the code generator's layout).
pub fn canonical(segs: &[PathSeg]) -> String {
    let body: Vec<String> = segs
        .iter()
        .filter(|s| s.name != "hdr" && s.name != "meta")
        .map(|s| match s.index {
            Some(i) => format!("{}[{i}]", s.name),
            None => s.name.clone(),
        })
        .collect();
    body.join(".")
}

/// The header instance a path refers to (`hdr.ncl.src` → `ncl`).
pub fn instance_of(segs: &[PathSeg]) -> String {
    segs.iter()
        .find(|s| s.name != "hdr" && !s.name.starts_with('$'))
        .map(|s| s.name.clone())
        .unwrap_or_default()
}

/// Low `bits` mask.
pub fn mask_of(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcl_p4::ast::Expr as E;

    fn widths(_: &str) -> u32 {
        16
    }

    #[test]
    fn arithmetic_wraps_at_width() {
        let mut p = Packet::default();
        p.set("ncl.src", 0xFFFF);
        let e = E::Bin(
            P4BinOp::Add,
            Box::new(E::field(&["hdr", "ncl", "src"])),
            Box::new(E::Const(1, 16)),
        );
        assert_eq!(eval(&e, &p, &widths).0, 0);
        let e = E::Bin(
            P4BinOp::SatAdd,
            Box::new(E::field(&["hdr", "ncl", "src"])),
            Box::new(E::Const(1, 16)),
        );
        assert_eq!(eval(&e, &p, &widths).0, 0xFFFF);
    }

    #[test]
    fn comparisons_yield_bool() {
        let p = Packet::default();
        let e = E::Bin(P4BinOp::Lt, Box::new(E::Const(3, 16)), Box::new(E::Const(5, 16)));
        assert_eq!(eval(&e, &p, &widths), (1, 1));
    }

    #[test]
    fn meta_vs_header_namespaces() {
        let mut p = Packet::default();
        p.set_meta("t0", 42);
        p.set("t0", 7); // header field with same name must not collide
        let e = E::field(&["meta", "t0"]);
        assert_eq!(eval(&e, &p, &widths).0, 42);
    }

    #[test]
    fn validity_pseudo_field() {
        let mut p = Packet::default();
        p.set_valid("ncl", true);
        let e = E::Field(vec![PathSeg::new("hdr"), PathSeg::new("ncl"), PathSeg::new("$isValid")]);
        assert_eq!(eval(&e, &p, &widths), (1, 1));
    }

    #[test]
    fn slices_and_casts() {
        let p = Packet::default();
        let e = E::Slice(Box::new(E::Const(0xABCD, 16)), 15, 8);
        assert_eq!(eval(&e, &p, &widths), (0xAB, 8));
        let e = E::Cast(8, Box::new(E::Const(0xABCD, 16)));
        assert_eq!(eval(&e, &p, &widths), (0xCD, 8));
    }

    #[test]
    fn stack_paths_canonicalize() {
        let segs =
            vec![PathSeg::new("hdr"), PathSeg::indexed("arr_c1_a4", 3), PathSeg::new("value")];
        assert_eq!(canonical(&segs), "arr_c1_a4[3].value");
        assert_eq!(instance_of(&segs), "arr_c1_a4");
    }
}
