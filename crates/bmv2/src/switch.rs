//! The switch: parser FSM, ingress execution, deparser, and state.

use std::collections::HashMap;

use crate::eval::{canonical, eval, instance_of, mask_of};
use crate::packet::{read_field, write_field, Packet, PacketError};
use netcl_ir::interp::eval_intrinsic;
use netcl_p4::ast::*;

/// Runtime errors (all indicate malformed programs or packets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchError {
    /// Packet parse failure.
    Packet(PacketError),
    /// Program references an unknown entity.
    Unknown(String),
}

impl std::fmt::Display for SwitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwitchError::Packet(p) => write!(f, "{p}"),
            SwitchError::Unknown(s) => write!(f, "unknown entity `{s}`"),
        }
    }
}

impl From<PacketError> for SwitchError {
    fn from(p: PacketError) -> Self {
        SwitchError::Packet(p)
    }
}

/// A software switch instance executing one P4 program.
pub struct Switch {
    program: P4Program,
    /// Register name → element values.
    registers: HashMap<String, Vec<u64>>,
    /// Runtime table entries (initialized from `const entries`; mutable via
    /// the control plane — the `_managed_ _lookup_` path).
    tables: HashMap<String, Vec<TableEntry>>,
    /// Width lookup caches.
    field_widths: HashMap<String, u32>,
    rng: u64,
    /// Packets processed (telemetry).
    pub packets_processed: u64,
}

impl Switch {
    /// Instantiates a switch for `program` with zeroed registers.
    pub fn new(program: P4Program) -> Switch {
        let mut registers = HashMap::new();
        let mut tables = HashMap::new();
        let mut field_widths = HashMap::new();
        for c in &program.controls {
            for r in &c.registers {
                registers.insert(r.name.clone(), vec![0u64; r.size as usize]);
            }
            for t in &c.tables {
                tables.insert(t.name.clone(), t.entries.clone());
            }
            for (n, w) in &c.locals {
                field_widths.insert(n.clone(), *w);
            }
        }
        for h in &program.headers {
            let instance = h.name.strip_suffix("_t").unwrap_or(&h.name).to_string();
            for (f, w) in &h.fields {
                if h.stack > 1 {
                    for i in 0..h.stack {
                        field_widths.insert(format!("{instance}[{i}].{f}"), *w);
                    }
                } else {
                    field_widths.insert(format!("{instance}.{f}"), *w);
                }
            }
        }
        Switch {
            program,
            registers,
            tables,
            field_widths,
            rng: 0x9E37_79B9_97F4_A7C1,
            packets_processed: 0,
        }
    }

    /// The program this switch runs.
    pub fn program(&self) -> &P4Program {
        &self.program
    }

    // ---- control plane (backs `_managed_` memory, §V-B) -----------------

    /// Reads one register element.
    pub fn register_read(&self, name: &str, index: usize) -> Option<u64> {
        self.registers.get(name)?.get(index).copied()
    }

    /// Writes one register element.
    pub fn register_write(&mut self, name: &str, index: usize, value: u64) -> bool {
        match self.registers.get_mut(name).and_then(|r| r.get_mut(index)) {
            Some(cell) => {
                *cell = value;
                true
            }
            None => false,
        }
    }

    /// Inserts a table entry (control-plane `_managed_ _lookup_` update).
    pub fn table_insert(&mut self, table: &str, entry: TableEntry) -> bool {
        match self.tables.get_mut(table) {
            Some(t) => {
                t.push(entry);
                true
            }
            None => false,
        }
    }

    /// Removes entries matching `key` from a table.
    pub fn table_delete(&mut self, table: &str, key: &[EntryKey]) -> usize {
        match self.tables.get_mut(table) {
            Some(t) => {
                let before = t.len();
                t.retain(|e| e.keys != key);
                before - t.len()
            }
            None => 0,
        }
    }

    /// Replaces every entry of a table.
    pub fn table_set(&mut self, table: &str, entries: Vec<TableEntry>) -> bool {
        match self.tables.get_mut(table) {
            Some(t) => {
                *t = entries;
                true
            }
            None => false,
        }
    }

    /// Tables whose names start with `prefix` (lookup duplication creates
    /// `name`, `name__dup1`, ... that must be updated together).
    pub fn tables_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.tables.keys().filter(|k| k.starts_with(prefix)).cloned().collect()
    }

    // ---- packet processing ----------------------------------------------

    /// Runs one packet through parser → ingress → deparser.
    pub fn process(&mut self, wire: &[u8]) -> Result<(Packet, Vec<u8>), SwitchError> {
        self.packets_processed += 1;
        let mut pkt = self.parse(wire)?;
        let controls = self.program.controls.clone();
        for control in &controls {
            let apply = control.apply.clone();
            self.exec_stmts(&apply, control, &mut pkt)?;
        }
        let out = self.deparse(&pkt)?;
        Ok((pkt, out))
    }

    fn header_def(&self, instance: &str) -> Option<&HeaderDef> {
        let ty = format!("{instance}_t");
        self.program.headers.iter().find(|h| h.name == ty)
    }

    fn parse(&self, wire: &[u8]) -> Result<Packet, SwitchError> {
        let mut pkt = Packet::default();
        let Some(parser) = self.program.parser.clone() else {
            pkt.payload = wire.to_vec();
            return Ok(pkt);
        };
        let mut cursor = 0usize;
        let mut state = "start".to_string();
        let mut hops = 0;
        while state != "accept" && state != "reject" {
            hops += 1;
            if hops > 64 {
                return Err(SwitchError::Unknown("parser loop".into()));
            }
            let Some(st) = parser.states.iter().find(|s| s.name == state) else {
                return Err(SwitchError::Unknown(format!("parser state `{state}`")));
            };
            for ex in &st.extracts {
                let instance = ex.strip_prefix("hdr.").unwrap_or(ex).to_string();
                let def = self
                    .header_def(&instance)
                    .ok_or_else(|| SwitchError::Unknown(format!("header `{instance}`")))?;
                for i in 0..def.stack {
                    for (fname, bits) in &def.fields {
                        let v = read_field(wire, &mut cursor, *bits).ok_or(
                            PacketError::Truncated { header: instance.clone() },
                        )?;
                        let path = if def.stack > 1 {
                            format!("{instance}[{i}].{fname}")
                        } else {
                            format!("{instance}.{fname}")
                        };
                        pkt.set(&path, v);
                    }
                }
                pkt.set_valid(&instance, true);
            }
            state = match &st.transition {
                Transition::Accept => "accept".into(),
                Transition::Reject => "reject".into(),
                Transition::Direct(t) => t.clone(),
                Transition::Select { selector, cases, default } => {
                    let widths = self.width_fn();
                    let (v, _) = eval(selector, &pkt, &widths);
                    cases
                        .iter()
                        .find(|(c, _)| *c == v)
                        .map(|(_, t)| t.clone())
                        .unwrap_or_else(|| default.clone())
                }
            };
        }
        pkt.payload = wire[cursor..].to_vec();
        Ok(pkt)
    }

    fn deparse(&self, pkt: &Packet) -> Result<Vec<u8>, SwitchError> {
        let mut out = Vec::new();
        for instance in &pkt.order {
            if !pkt.is_valid(instance) {
                continue;
            }
            let def = self
                .header_def(instance)
                .ok_or_else(|| SwitchError::Unknown(format!("header `{instance}`")))?;
            for i in 0..def.stack {
                for (fname, bits) in &def.fields {
                    let path = if def.stack > 1 {
                        format!("{instance}[{i}].{fname}")
                    } else {
                        format!("{instance}.{fname}")
                    };
                    write_field(&mut out, pkt.get(&path), *bits);
                }
            }
        }
        out.extend_from_slice(&pkt.payload);
        Ok(out)
    }

    fn width_fn(&self) -> impl Fn(&str) -> u32 + '_ {
        move |path: &str| self.field_widths.get(path).copied().unwrap_or(32)
    }

    fn exec_stmts(
        &mut self,
        stmts: &[Stmt],
        control: &ControlDef,
        pkt: &mut Packet,
    ) -> Result<(), SwitchError> {
        for s in stmts {
            self.exec_stmt(s, control, pkt)?;
        }
        Ok(())
    }

    fn assign(&self, pkt: &mut Packet, dst: &Expr, value: u64) {
        let Expr::Field(segs) = dst else { return };
        let path = canonical(segs);
        let width = self.field_widths.get(&path).copied().unwrap_or(32);
        let v = value & mask_of(width);
        if segs.first().map(|s| s.name.as_str()) == Some("meta") {
            pkt.set_meta(&path, v);
        } else {
            pkt.set(&path, v);
        }
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        control: &ControlDef,
        pkt: &mut Packet,
    ) -> Result<(), SwitchError> {
        match stmt {
            Stmt::Assign(dst, rhs) => {
                let widths = self.width_fn();
                let (v, _) = eval(rhs, pkt, &widths);
                self.assign(pkt, dst, v);
            }
            Stmt::CallAction(name) => {
                let a = control
                    .action(name)
                    .ok_or_else(|| SwitchError::Unknown(format!("action `{name}`")))?
                    .clone();
                self.exec_action(&a, &[], control, pkt)?;
            }
            Stmt::ApplyTable(name) => {
                self.apply_table(name, control, pkt)?;
            }
            Stmt::ExecuteRegisterAction { dst, ra, index } => {
                let radef = control
                    .register_action(ra)
                    .ok_or_else(|| SwitchError::Unknown(format!("RegisterAction `{ra}`")))?
                    .clone();
                let reg = control
                    .register(&radef.register)
                    .ok_or_else(|| SwitchError::Unknown(format!("register `{}`", radef.register)))?;
                let bits = reg.elem_bits;
                let widths = self.width_fn();
                let (idx, _) = eval(index, pkt, &widths);
                let cond = match &radef.cond {
                    Some(c) => eval(c, pkt, &widths).0 != 0,
                    None => true,
                };
                let mut ops = Vec::new();
                for o in &radef.operands {
                    ops.push(eval(o, pkt, &widths).0 & mask_of(bits));
                }
                drop(widths);
                let cells = self
                    .registers
                    .get_mut(&radef.register)
                    .ok_or_else(|| SwitchError::Unknown(format!("register `{}`", radef.register)))?;
                let i = (idx as usize).min(cells.len().saturating_sub(1));
                let old = cells.get(i).copied().unwrap_or(0);
                let sty = netcl_sema::Ty::Int { bits: (bits as u8).max(8).min(64), signed: false };
                let (new, ret) = radef.op.execute(old, cond, &ops, sty);
                if let Some(cell) = cells.get_mut(i) {
                    *cell = new & mask_of(bits);
                }
                if let Some(d) = dst {
                    self.assign(pkt, d, ret);
                }
            }
            Stmt::HashGet { dst, hash, args } => {
                let h = control
                    .hashes
                    .iter()
                    .find(|h| h.name == *hash)
                    .ok_or_else(|| SwitchError::Unknown(format!("hash `{hash}`")))?
                    .clone();
                let widths = self.width_fn();
                // Hash the concatenated little-endian bytes of all args, as
                // the IR interpreter does for its single-key form.
                let mut key = 0u64;
                let mut key_bits = 0u32;
                for a in args {
                    let (v, w) = eval(a, pkt, &widths);
                    key |= (v & mask_of(w)) << key_bits.min(63);
                    key_bits += w;
                }
                let key_bytes = key_bits.div_ceil(8).max(1);
                let v = h.algo.compute(key, key_bytes, h.out_bits.min(64) as u8);
                drop(widths);
                self.assign(pkt, dst, v);
            }
            Stmt::If { cond, then, els } => {
                let taken = match cond {
                    Expr::TableHit(t) => self.apply_table(t, control, pkt)?,
                    Expr::TableMiss(t) => !self.apply_table(t, control, pkt)?,
                    other => {
                        let widths = self.width_fn();
                        let r = eval(other, pkt, &widths).0 != 0;
                        r
                    }
                };
                if taken {
                    self.exec_stmts(then, control, pkt)?;
                } else {
                    self.exec_stmts(els, control, pkt)?;
                }
            }
            Stmt::ExternCall { dst, func, args } => {
                let widths = self.width_fn();
                let mut vals = Vec::new();
                for a in args {
                    vals.push(eval(a, pkt, &widths).0);
                }
                drop(widths);
                let v = match func.as_str() {
                    "random" => {
                        // SplitMix64, mirroring the IR interpreter's RNG.
                        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
                        let mut z = self.rng;
                        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                        z ^ (z >> 31)
                    }
                    other => match other.split_once('_') {
                        Some((target, name)) => eval_intrinsic(target, name, &vals),
                        None => eval_intrinsic("", other, &vals),
                    },
                };
                if let Some(d) = dst {
                    self.assign(pkt, d, v);
                }
            }
            Stmt::SetValid(e) => {
                if let Expr::Field(segs) = e {
                    let inst = instance_of(segs);
                    pkt.set_valid(&inst, true);
                }
            }
            Stmt::SetInvalid(e) => {
                if let Expr::Field(segs) = e {
                    let inst = instance_of(segs);
                    pkt.set_valid(&inst, false);
                }
            }
            Stmt::Exit => {}
        }
        Ok(())
    }

    /// Applies a table; returns hit/miss.
    fn apply_table(
        &mut self,
        name: &str,
        control: &ControlDef,
        pkt: &mut Packet,
    ) -> Result<bool, SwitchError> {
        let t = control
            .table(name)
            .ok_or_else(|| SwitchError::Unknown(format!("table `{name}`")))?
            .clone();
        let widths = self.width_fn();
        let key_vals: Vec<u64> = t.keys.iter().map(|(k, _)| eval(k, pkt, &widths).0).collect();
        drop(widths);
        let entries = self.tables.get(name).cloned().unwrap_or_default();
        let hit = entries.iter().find(|e| {
            e.keys.len() == key_vals.len()
                && e.keys.iter().zip(&key_vals).all(|(ek, kv)| match ek {
                    EntryKey::Value(v) => v == kv,
                    EntryKey::Range(lo, hi) => lo <= kv && kv <= hi,
                })
        });
        match hit {
            Some(entry) => {
                let entry = entry.clone();
                if let Some(a) = control.action(&entry.action) {
                    let a = a.clone();
                    self.exec_action(&a, &entry.args, control, pkt)?;
                }
                Ok(true)
            }
            None => {
                if t.default_action != "NoAction" {
                    if let Some(a) = control.action(&t.default_action) {
                        let a = a.clone();
                        self.exec_action(&a, &[], control, pkt)?;
                    }
                }
                Ok(false)
            }
        }
    }

    fn exec_action(
        &mut self,
        action: &ActionDef,
        args: &[u64],
        control: &ControlDef,
        pkt: &mut Packet,
    ) -> Result<(), SwitchError> {
        // Bind parameters as metadata under their bare names (action-local).
        let saved: Vec<(String, Option<u64>)> = action
            .params
            .iter()
            .map(|(n, _)| (n.clone(), pkt.meta.get(n).copied()))
            .collect();
        for ((n, w), v) in action.params.iter().zip(args) {
            pkt.set_meta(n, v & mask_of(*w));
        }
        self.exec_stmts(&action.body, control, pkt)?;
        for (n, old) in saved {
            match old {
                Some(v) => pkt.set_meta(&n, v),
                None => {
                    pkt.meta.remove(&n);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcl_sema::builtins::{AtomicOp, AtomicRmw};

    /// A tiny hand-built program: parse one header, count packets in a
    /// register, set a field from a table.
    fn counting_program() -> P4Program {
        P4Program {
            name: "count".into(),
            target: Target::V1Model,
            headers: vec![HeaderDef {
                name: "h_t".into(),
                fields: vec![("k".into(), 16), ("v".into(), 16)],
                stack: 1,
            }],
            parser: Some(ParserDef {
                name: "P".into(),
                states: vec![ParserState {
                    name: "start".into(),
                    extracts: vec!["hdr.h".into()],
                    transition: Transition::Accept,
                }],
            }),
            controls: vec![ControlDef {
                name: "Ig".into(),
                locals: vec![("cnt".into(), 32)],
                registers: vec![RegisterDef { name: "R".into(), elem_bits: 32, size: 8 }],
                register_actions: vec![RegisterActionDef {
                    name: "bump".into(),
                    register: "R".into(),
                    op: AtomicOp { rmw: AtomicRmw::Add, cond: false, ret_new: true },
                    cond: None,
                    operands: vec![Expr::val(1, 32)],
                }],
                hashes: vec![],
                actions: vec![ActionDef {
                    name: "setv".into(),
                    params: vec![("x".into(), 16)],
                    body: vec![Stmt::Assign(Expr::field(&["hdr", "h", "v"]), Expr::field(&["x"]))],
                }],
                tables: vec![TableDef {
                    name: "t".into(),
                    keys: vec![(Expr::field(&["hdr", "h", "k"]), MatchKind::Exact)],
                    actions: vec!["setv".into()],
                    entries: vec![TableEntry {
                        keys: vec![EntryKey::Value(7)],
                        action: "setv".into(),
                        args: vec![99],
                    }],
                    default_action: "NoAction".into(),
                    size: 8,
                }],
                apply: vec![
                    Stmt::ExecuteRegisterAction {
                        dst: Some(Expr::field(&["meta", "cnt"])),
                        ra: "bump".into(),
                        index: Expr::val(0, 32),
                    },
                    Stmt::ApplyTable("t".into()),
                ],
            }],
        }
    }

    fn wire(k: u16, v: u16) -> Vec<u8> {
        let mut out = Vec::new();
        write_field(&mut out, k as u64, 16);
        write_field(&mut out, v as u64, 16);
        out
    }

    #[test]
    fn parse_execute_deparse_roundtrip() {
        let mut sw = Switch::new(counting_program());
        let (pkt, out) = sw.process(&wire(7, 0)).unwrap();
        assert_eq!(pkt.get("h.k"), 7);
        assert_eq!(pkt.get("h.v"), 99, "table hit writes v");
        // Deparsed bytes reflect the modified header.
        assert_eq!(out, wire(7, 99));
        // Register counted the packet.
        assert_eq!(sw.register_read("R", 0), Some(1));
        // Miss leaves v alone.
        let (_, out) = sw.process(&wire(8, 5)).unwrap();
        assert_eq!(out, wire(8, 5));
        assert_eq!(sw.register_read("R", 0), Some(2));
    }

    #[test]
    fn control_plane_table_updates() {
        let mut sw = Switch::new(counting_program());
        assert!(sw.table_insert(
            "t",
            TableEntry { keys: vec![EntryKey::Value(8)], action: "setv".into(), args: vec![11] }
        ));
        let (_, out) = sw.process(&wire(8, 0)).unwrap();
        assert_eq!(out, wire(8, 11));
        assert_eq!(sw.table_delete("t", &[EntryKey::Value(8)]), 1);
        let (_, out) = sw.process(&wire(8, 0)).unwrap();
        assert_eq!(out, wire(8, 0));
    }

    #[test]
    fn register_control_plane() {
        let mut sw = Switch::new(counting_program());
        assert!(sw.register_write("R", 3, 500));
        assert_eq!(sw.register_read("R", 3), Some(500));
        assert!(!sw.register_write("missing", 0, 1));
        assert!(!sw.register_write("R", 99, 1));
    }

    #[test]
    fn truncated_packet_rejected() {
        let mut sw = Switch::new(counting_program());
        let r = sw.process(&[0x01]);
        assert!(matches!(r, Err(SwitchError::Packet(PacketError::Truncated { .. }))));
    }

    /// Differential test: the compiled Fig. 4 kernel behaves identically on
    /// the IR interpreter and on the generated P4 running here.
    #[test]
    fn generated_p4_matches_ir_interpreter() {
        let unit = netcl::Compiler::new(netcl::CompileOptions::default())
            .compile("fig4.ncl", FIG4)
            .unwrap();
        let dev = &unit.devices[0];
        let mut sw = Switch::new(dev.tna_p4.clone());
        let module = &dev.tna_ir;
        let kernel = &module.kernels[0];
        let mut st = netcl_ir::interp::DeviceState::new(module);
        let mut env = netcl_ir::interp::ExecEnv { to: 1, ..Default::default() };

        for (op, k) in [(1u64, 2u64), (1, 99), (1, 2), (0, 3), (1, 99), (1, 4)] {
            // IR side.
            let mut args = vec![vec![op], vec![k], vec![0u64], vec![0u64], vec![0u64]];
            let r = netcl_ir::interp::execute(kernel, module, &mut st, &mut args, &mut env)
                .unwrap();

            // P4 side: build the NetCL wire packet (Fig. 10 layout).
            let mut w = Vec::new();
            write_field(&mut w, 1, 16); // src
            write_field(&mut w, 2, 16); // dst
            write_field(&mut w, 1, 16); // from
            write_field(&mut w, 1, 16); // to (this device)
            write_field(&mut w, 1, 8); // comp
            write_field(&mut w, 0, 8); // action
            write_field(&mut w, 0, 16); // target
            write_field(&mut w, op, 8); // a0_op
            write_field(&mut w, k, 32); // a1_k
            write_field(&mut w, 0, 32); // a2_v
            write_field(&mut w, 0, 8); // a3_hit
            write_field(&mut w, 0, 32); // a4_hot
            let (pkt, _) = sw.process(&w).unwrap();

            assert_eq!(
                pkt.get("ncl.action"),
                r.action.code() as u64,
                "action diverges on op={op} k={k}"
            );
            assert_eq!(pkt.get("args_c1.a2_v"), args[2][0], "v diverges on k={k}");
            assert_eq!(pkt.get("args_c1.a3_hit"), args[3][0], "hit diverges on k={k}");
            assert_eq!(pkt.get("args_c1.a4_hot"), args[4][0], "hot diverges on k={k}");
        }
        // Register state agrees too (CMS partitions).
        for p in 0..3 {
            let name = format!("cms__{p}");
            let (mem, g) = module.global_by_name(&name).unwrap();
            for i in 0..g.element_count() {
                if st.read(mem, i) != 0 {
                    assert_eq!(
                        sw.register_read(&name, i),
                        Some(st.read(mem, i)),
                        "{name}[{i}] diverges"
                    );
                }
            }
        }
    }

    const FIG4: &str = r#"
#define CMS_HASHES 3
#define THRESH 512
#define GET_REQ 1
_managed_ unsigned cms[CMS_HASHES][65536];
_net_ void sketch(unsigned k, unsigned &hot) {
  unsigned c[CMS_HASHES];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k)], 1);
  for (auto i = 1; i < CMS_HASHES; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  hot = c[0] > THRESH ? c[0] : 0;
}
_net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42}, {2,42}, {3,42}, {4,42}};
_kernel(1) _at(1) void query(char op, unsigned k, unsigned &v,
                             char &hit, unsigned &hot) {
  if (op == GET_REQ) {
    hit = ncl::lookup(cache, k, v);
    return hit ? ncl::reflect() : sketch(k, hot);
  }
}
"#;
}
