//! Inefficient-pattern rewrites for Tofino (§VI-B).
//!
//! "We found that direct translation of some icmp predicates with dynamic
//! operands may produce code that does not compile for Tofino. We transform
//! those into subtractions followed by an MSB check." — [`icmp_to_sub_msb`].
//!
//! "Byte swaps generated as bit-slice concatenations can be done in a
//! single stage" — [`detect_bswap`] pattern-matches shift/or byte swaps into
//! the dedicated `bswap` operation the code generator emits as one action.

use netcl_ir::func::{Function, Inst, InstKind, ValueId};
use netcl_ir::types::{IcmpPred, IrBinOp, IrTy, Operand};
use std::collections::HashMap;

/// Rewrites relational `icmp`s whose operands are both dynamic into a
/// widened subtraction plus MSB test. Equality predicates stay (Tofino
/// evaluates them directly); comparisons against constants stay (they map
/// onto MAT ranges). Returns the number of rewritten comparisons.
///
/// For unsigned `a < b` at width w: `msb(zext(a, 2w) - zext(b, 2w))`, where
/// the subtraction happens at 2w bits so the borrow lands in a real bit.
/// Signed comparisons sign-extend instead. Non-strict forms compute the
/// strict complement and invert.
pub fn icmp_to_sub_msb(f: &mut Function) -> usize {
    let mut rewritten = 0usize;
    for bid in f.blocks.indices().collect::<Vec<_>>() {
        let mut i = 0;
        while i < f.blocks[bid].insts.len() {
            let inst = &f.blocks[bid].insts[i];
            let InstKind::Icmp { pred, a, b } = inst.kind else {
                i += 1;
                continue;
            };
            let dynamic = matches!(a, Operand::Value(_)) && matches!(b, Operand::Value(_));
            if !dynamic || !pred.needs_sub_msb_rewrite() {
                i += 1;
                continue;
            }
            let result = inst.results[0];
            let ty = f.operand_ty(a);
            let signed =
                matches!(pred, IcmpPred::Slt | IcmpPred::Sle | IcmpPred::Sgt | IcmpPred::Sge);
            // Normalize to a strict less-than: a < b (swap for >), and track
            // whether the final result needs inversion (for <=, >=).
            let (lhs, rhs, invert) = match pred {
                IcmpPred::Ult | IcmpPred::Slt => (a, b, false),
                IcmpPred::Ugt | IcmpPred::Sgt => (b, a, false),
                IcmpPred::Uge | IcmpPred::Sge => (a, b, true), // !(a < b)
                IcmpPred::Ule | IcmpPred::Sle => (b, a, true), // !(b < a)
                _ => unreachable!(),
            };

            // The width-preserving Tofino idiom: `a < b ⇔ (b |-| a) != 0`
            // — one saturating subtraction (a SALU/ALU-native op) followed
            // by an equality test, the "subtraction followed by an MSB
            // check" of §VI-B without paying a double-width PHV container.
            // Signed comparisons flip the sign bit of both operands first.
            let mut seq: Vec<Inst> = Vec::new();
            let fresh = |f: &mut Function, ty: IrTy| -> ValueId {
                f.values.push(netcl_ir::func::ValueInfo { ty, name: None })
            };
            let (lhs, rhs) = if signed {
                let msb = 1u64 << (ty.bits - 1);
                let fl = fresh(f, ty);
                seq.push(Inst {
                    kind: InstKind::Bin { op: IrBinOp::Xor, a: lhs, b: Operand::imm(msb, ty) },
                    results: vec![fl],
                });
                let fr = fresh(f, ty);
                seq.push(Inst {
                    kind: InstKind::Bin { op: IrBinOp::Xor, a: rhs, b: Operand::imm(msb, ty) },
                    results: vec![fr],
                });
                (Operand::Value(fl), Operand::Value(fr))
            } else {
                (lhs, rhs)
            };
            let diff = fresh(f, ty);
            seq.push(Inst {
                kind: InstKind::Bin { op: IrBinOp::USubSat, a: rhs, b: lhs },
                results: vec![diff],
            });
            let final_pred = if invert { IcmpPred::Eq } else { IcmpPred::Ne };
            seq.push(Inst {
                kind: InstKind::Icmp {
                    pred: final_pred,
                    a: Operand::Value(diff),
                    b: Operand::imm(0, ty),
                },
                results: vec![result],
            });

            let n_new = seq.len();
            f.blocks[bid].insts.splice(i..=i, seq);
            rewritten += 1;
            i += n_new;
        }
    }
    rewritten
}

/// Detects 16- and 32-bit byte-swap patterns written as shifts and ors and
/// replaces the final `or` with a single `bswap` instruction.
///
/// 16-bit: `(x << 8) | (x >> 8)` (at width 16, wrapping covers the mask).
/// 32-bit idioms are left to the frontend's `ncl::bswap`; the shift/or form
/// at 32 bits has too many variants to enumerate profitably.
pub fn detect_bswap(f: &mut Function) -> usize {
    let mut found = 0usize;
    // Definition map: value → (block, index).
    let mut defs: HashMap<ValueId, InstKind> = HashMap::new();
    for b in f.blocks.iter() {
        for inst in &b.insts {
            if let Some(&r) = inst.results.first() {
                defs.insert(r, inst.kind.clone());
            }
        }
    }
    for bid in f.blocks.indices().collect::<Vec<_>>() {
        for i in 0..f.blocks[bid].insts.len() {
            let inst = &f.blocks[bid].insts[i];
            let InstKind::Bin { op: IrBinOp::Or, a, b } = inst.kind else { continue };
            let ty = f.value_ty(inst.results[0]);
            if ty != IrTy::I16 {
                continue;
            }
            let (Operand::Value(va), Operand::Value(vb)) = (a, b) else { continue };
            let (Some(ka), Some(kb)) = (defs.get(&va), defs.get(&vb)) else { continue };
            let shifted = |k: &InstKind, op: IrBinOp| -> Option<Operand> {
                match k {
                    InstKind::Bin { op: o, a, b: Operand::Const(8, _) } if *o == op => Some(*a),
                    _ => None,
                }
            };
            let (src1, src2) = match (shifted(ka, IrBinOp::Shl), shifted(kb, IrBinOp::LShr)) {
                (Some(x), Some(y)) => (x, y),
                _ => match (shifted(ka, IrBinOp::LShr), shifted(kb, IrBinOp::Shl)) {
                    (Some(x), Some(y)) => (x, y),
                    _ => continue,
                },
            };
            if src1 != src2 {
                continue;
            }
            let result = f.blocks[bid].insts[i].results.clone();
            f.blocks[bid].insts[i] = Inst {
                kind: InstKind::Un { op: netcl_ir::types::IrUnOp::Bswap, a: src1 },
                results: result,
            };
            found += 1;
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcl_ir::func::{ActionRef, FuncBuilder, Terminator};
    use netcl_ir::interp::{execute, DeviceState, ExecEnv};
    use netcl_ir::types::{CastKind, Operand as Op};
    use netcl_ir::verify::verify_function;
    use netcl_ir::Module;

    /// Builds `out = (a PRED b)` for two dynamic i16 operands.
    fn cmp_kernel(pred: IcmpPred) -> Function {
        let mut b = FuncBuilder::new("k", 1);
        let aa = b.add_arg("a", IrTy::I16, 1, false);
        let ab = b.add_arg("b", IrTy::I16, 1, false);
        let out = b.add_arg("o", IrTy::I8, 1, true);
        let i0 = Op::imm(0, IrTy::I32);
        let va = b.emit(InstKind::ArgRead { arg: aa, index: i0 }, IrTy::I16).unwrap();
        let vb = b.emit(InstKind::ArgRead { arg: ab, index: i0 }, IrTy::I16).unwrap();
        let c = b.icmp(pred, Op::Value(va), Op::Value(vb));
        let c8 = b.cast(CastKind::Zext, c, IrTy::I1, IrTy::I8);
        b.emit(InstKind::ArgWrite { arg: out, index: i0, value: c8 }, IrTy::I8);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        b.finish()
    }

    fn run(f: &Function, a: u64, b: u64) -> u64 {
        let m = Module::default();
        let mut st = DeviceState::new(&m);
        let mut env = ExecEnv::default();
        let mut args = vec![vec![a], vec![b], vec![0u64]];
        execute(f, &m, &mut st, &mut args, &mut env).unwrap();
        args[2][0]
    }

    #[test]
    fn sub_msb_rewrite_preserves_all_predicates() {
        use IcmpPred::*;
        for pred in [Ult, Ule, Ugt, Uge, Slt, Sle, Sgt, Sge] {
            let orig = cmp_kernel(pred);
            let mut rewritten = orig.clone();
            assert_eq!(icmp_to_sub_msb(&mut rewritten), 1, "{pred:?}");
            verify_function(&rewritten, None).unwrap();
            // No relational icmp remains.
            assert!(!rewritten.blocks.iter().any(|b| b.insts.iter().any(|i| matches!(
                i.kind,
                InstKind::Icmp { pred, .. } if pred.needs_sub_msb_rewrite()
            ))));
            for (a, b) in [
                (0u64, 0u64),
                (1, 2),
                (2, 1),
                (0x7FFF, 0x8000),
                (0x8000, 0x7FFF),
                (0xFFFF, 0),
                (0, 0xFFFF),
                (0x1234, 0x1234),
            ] {
                assert_eq!(
                    run(&orig, a, b),
                    run(&rewritten, a, b),
                    "{pred:?} diverges on ({a:#x}, {b:#x})"
                );
            }
        }
    }

    #[test]
    fn constant_comparisons_untouched() {
        let mut b = FuncBuilder::new("k", 1);
        let aa = b.add_arg("a", IrTy::I16, 1, false);
        let i0 = Op::imm(0, IrTy::I32);
        let va = b.emit(InstKind::ArgRead { arg: aa, index: i0 }, IrTy::I16).unwrap();
        b.icmp(IcmpPred::Ugt, Op::Value(va), Op::imm(512, IrTy::I16));
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut f = b.finish();
        assert_eq!(icmp_to_sub_msb(&mut f), 0);
    }

    #[test]
    fn equality_untouched() {
        let mut b = FuncBuilder::new("k", 1);
        let aa = b.add_arg("a", IrTy::I16, 1, false);
        let ab = b.add_arg("b", IrTy::I16, 1, false);
        let i0 = Op::imm(0, IrTy::I32);
        let va = b.emit(InstKind::ArgRead { arg: aa, index: i0 }, IrTy::I16).unwrap();
        let vb = b.emit(InstKind::ArgRead { arg: ab, index: i0 }, IrTy::I16).unwrap();
        b.icmp(IcmpPred::Eq, Op::Value(va), Op::Value(vb));
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut f = b.finish();
        assert_eq!(icmp_to_sub_msb(&mut f), 0);
    }

    #[test]
    fn bswap_pattern_detected_and_correct() {
        let mut b = FuncBuilder::new("k", 1);
        let aa = b.add_arg("a", IrTy::I16, 1, false);
        let out = b.add_arg("o", IrTy::I16, 1, true);
        let i0 = Op::imm(0, IrTy::I32);
        let va = b.emit(InstKind::ArgRead { arg: aa, index: i0 }, IrTy::I16).unwrap();
        let hi = b.bin(IrBinOp::Shl, Op::Value(va), Op::imm(8, IrTy::I16), IrTy::I16);
        let lo = b.bin(IrBinOp::LShr, Op::Value(va), Op::imm(8, IrTy::I16), IrTy::I16);
        let sw = b.bin(IrBinOp::Or, hi, lo, IrTy::I16);
        b.emit(InstKind::ArgWrite { arg: out, index: i0, value: sw }, IrTy::I16);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let orig = b.finish();
        let mut f = orig.clone();
        assert_eq!(detect_bswap(&mut f), 1);
        crate::dce::run_on_function(&mut f);
        verify_function(&f, None).unwrap();
        assert!(f.blocks.iter().any(|b| b
            .insts
            .iter()
            .any(|i| matches!(i.kind, InstKind::Un { op: netcl_ir::types::IrUnOp::Bswap, .. }))));
        for x in [0u64, 0x1234, 0xFF00, 0x00FF, 0xABCD] {
            assert_eq!(run2(&orig, x), run2(&f, x), "bswap diverges on {x:#x}");
        }
    }

    fn run2(f: &Function, a: u64) -> u64 {
        let m = Module::default();
        let mut st = DeviceState::new(&m);
        let mut env = ExecEnv::default();
        let mut args = vec![vec![a], vec![0u64]];
        execute(f, &m, &mut st, &mut args, &mut env).unwrap();
        args[1][0]
    }
}
