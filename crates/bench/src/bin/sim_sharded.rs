//! Events/sec of the sharded discrete-event simulator on a fat-tree
//! workload — 1, 2, 4, and 8 shards over the same run (DESIGN.md §15).
//!
//! Run `cargo run --release -p netcl-bench --bin sim_sharded` to measure a
//! k=36 fat-tree (11 664 hosts, 1 620 switches) and merge a `sim_sharded`
//! section into `BENCH_switch.json` at the repository root (run the
//! `throughput` binary first — it rewrites the whole file). Pass `--smoke`
//! for a seconds-scale CI run (k=8, fewer flows) that prints results
//! without touching the file.
//!
//! Every shard count is first cross-checked for exactness: the merged
//! `NetStats` must be byte-identical to the 1-shard run — the bench
//! doubles as a large-topology determinism gate, and exits nonzero on any
//! divergence.
//!
//! Two rates are reported per shard count:
//!
//! - `wall_eps`: events / wall-clock seconds of `run()`. On a multi-core
//!   host this shows the parallel speedup directly; on a single-core
//!   container the threads serialize and it shows only overhead.
//! - `critical_path_eps`: events / Σ per-round max shard busy time — the
//!   wall time an adequately provisioned host would see, measured (not
//!   modeled) from each shard's actual busy intervals. This is the
//!   scaling number quoted in EXPERIMENTS.md, labeled as such.

use std::time::Instant;

use netcl_apps::calc;
use netcl_bmv2::Switch;
use netcl_net::topo::LinkSpec;
use netcl_net::{FatTree, Flow, NetStats, NetworkBuilder, Zipf};
use netcl_runtime::message::{pack, Message};

/// One flow rendered to wire bytes: a CALC request computing at the
/// destination host's edge switch, whose reply reflects back to the source.
fn calc_packet(src: u16, dst: u16, dev: u16, a: u64, b: u64) -> Vec<u8> {
    let m = Message::new(src, dst, 1, dev);
    pack(&m, &calc::spec(), &[Some(&[calc::OP_ADD]), Some(&[a]), Some(&[b]), None]).expect("packs")
}

/// The edge switch serving host index `idx` (hosts are pod-major,
/// `k/2` per edge switch).
fn edge_of(ft: &FatTree, idx: usize) -> u16 {
    let half = (ft.k / 2) as usize;
    let pod = idx / (half * half);
    let within = (idx % (half * half)) / half;
    ft.edge_by_pod[pod][within]
}

struct RunResult {
    shards: usize,
    stats: NetStats,
    wall_s: f64,
    critical_path_s: f64,
    rounds: u64,
}

/// Builds the network fresh (switch state must not leak across shard
/// counts), injects the flow schedule, runs to completion, and measures.
///
/// Each shard count runs twice — the threaded runner for wall clock, the
/// sequential runner for the critical path. On a single-core container
/// the threaded runner's per-shard busy windows absorb preemption while
/// another shard's thread holds the CPU; the sequential runner executes
/// the identical round/window schedule with no thread handoffs, so its
/// per-round max-busy sum measures the actual computational depth. The
/// two runs must also produce identical `NetStats` (the threaded ≡
/// sequential determinism contract, here at 10⁴-host scale).
fn run_once(
    ft: &FatTree,
    p4: &netcl_p4::ast::P4Program,
    flows: &[Flow],
    zipf_n: usize,
    shards: usize,
) -> RunResult {
    let threaded = measure_run(ft, p4, flows, zipf_n, shards, true);
    if shards == 1 {
        return threaded;
    }
    let sequential = measure_run(ft, p4, flows, zipf_n, shards, false);
    if threaded.stats != sequential.stats {
        eprintln!(
            "DIVERGENCE: {shards}-shard threaded vs sequential NetStats:\n{:#?}\nvs\n{:#?}",
            threaded.stats, sequential.stats
        );
        std::process::exit(1);
    }
    RunResult {
        shards,
        stats: threaded.stats,
        wall_s: threaded.wall_s,
        critical_path_s: sequential.critical_path_s,
        rounds: sequential.rounds,
    }
}

fn measure_run(
    ft: &FatTree,
    p4: &netcl_p4::ast::P4Program,
    flows: &[Flow],
    zipf_n: usize,
    shards: usize,
    threaded: bool,
) -> RunResult {
    let mut b = NetworkBuilder::new(ft.topology.clone()).seed(1);
    for pod in ft.edge_by_pod.iter().chain(ft.agg_by_pod.iter()) {
        for &d in pod {
            b = b.device(d, Switch::new(p4.clone()), 500);
        }
    }
    for &c in &ft.core {
        b = b.device(c, Switch::new(p4.clone()), 500);
    }
    for &h in &ft.hosts {
        b = b.sink_host(h);
    }
    let mut net = b.build_sharded(ft.partition(shards)).expect("valid partition");
    net.set_threaded(threaded);
    for f in flows {
        // Scatter Zipf ranks across the tree with a multiplicative
        // permutation (the constant is prime, hence coprime with any
        // smaller host count): without it the entire Zipf head lands in
        // pod 0 and shard 0 carries ~2/3 of the run.
        let dst_idx = ((f.key as usize - 1) * 2654435761) % zipf_n;
        let dst = ft.hosts[dst_idx];
        let dev = edge_of(ft, dst_idx);
        net.send_from_host(f.src, f.at_ns, calc_packet(f.src, dst, dev, f.key, f.at_ns));
    }
    let start = Instant::now();
    net.run(100_000_000);
    let wall_s = start.elapsed().as_secs_f64();
    if std::env::var("NETCL_SIM_DEBUG").is_ok() {
        let busy: Vec<f64> = net.busy_ns().iter().map(|&b| b as f64 / 1e9).collect();
        eprintln!(
            "debug: shards={shards} threaded={threaded} busy={busy:?} sum={:.3}s events/shard={:?}",
            busy.iter().sum::<f64>(),
            net.shard_stats().iter().map(|s| s.events).collect::<Vec<_>>(),
        );
    }
    RunResult {
        shards,
        stats: net.stats(),
        wall_s,
        critical_path_s: net.critical_path_ns() as f64 / 1e9,
        rounds: net.rounds(),
    }
}

fn main() {
    let mut smoke = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("error: unknown argument `{other}` (expected `--smoke`)");
                std::process::exit(2);
            }
        }
    }
    let (mut k, mut nflows) = if smoke { (8u16, 2_000usize) } else { (36, 20_000) };
    if let Some(v) = std::env::var("NETCL_SIM_K").ok().and_then(|s| s.parse().ok()) {
        k = v;
    }
    if let Some(v) = std::env::var("NETCL_SIM_FLOWS").ok().and_then(|s| s.parse().ok()) {
        nflows = v;
    }
    let ft = FatTree::new(k, LinkSpec::default()).expect("even arity");
    println!(
        "fat-tree k={k}: {} hosts, {} switches, {} flows",
        ft.num_hosts(),
        ft.core.len() + ft.num_hosts() / ((k as usize / 2) * (k as usize / 2)) * (k as usize),
        nflows
    );

    let unit = netcl_apps::compile("calc.ncl", &calc::netcl_source());
    let p4 = &unit.devices[0].tna_p4;

    // Sources are a strided subset of hosts (clients), destinations are
    // Zipf-popular (CACHE-style skew); the schedule is pure f(seed).
    let sources: Vec<u16> = ft.hosts.iter().copied().step_by(16).collect();
    let zipf = Zipf::new(ft.num_hosts(), 0.99);
    let flows = netcl_net::workload::zipf_flows(7, &sources, &zipf, nflows, 10);

    let mut results: Vec<RunResult> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let r = run_once(&ft, p4, &flows, zipf.n(), shards);
        println!(
            "{} shard(s): {:>9} events  wall {:>7.3}s ({:>10.0} ev/s)  \
             critical-path {:>7.3}s ({:>10.0} ev/s)  {:>5} rounds",
            r.shards,
            r.stats.events,
            r.wall_s,
            r.stats.events as f64 / r.wall_s,
            r.critical_path_s,
            r.stats.events as f64 / r.critical_path_s.max(1e-9),
            r.rounds,
        );
        if let Some(first) = results.first() {
            if r.stats != first.stats {
                eprintln!(
                    "DIVERGENCE: {}-shard NetStats differ from 1-shard:\n{:#?}\nvs\n{:#?}",
                    r.shards, r.stats, first.stats
                );
                std::process::exit(1);
            }
        } else {
            assert!(r.stats.kernel_executions > 0, "flows must exercise kernels");
            assert_eq!(r.stats.unroutable, 0, "fat-tree must route everything");
        }
        results.push(r);
    }
    println!("determinism cross-check: all shard counts produced identical NetStats");

    if smoke {
        println!("smoke run: not writing BENCH_switch.json");
        return;
    }

    let mut section = String::from("{\n");
    section.push_str(&format!(
        "    \"topology\": \"fat-tree\", \"k\": {k}, \"hosts\": {}, \"flows\": {nflows},\n",
        ft.num_hosts()
    ));
    section.push_str("    \"rows\": [\n");
    for (i, r) in results.iter().enumerate() {
        section.push_str(&format!(
            "      {{\"shards\": {}, \"events\": {}, \"wall_s\": {:.3}, \
             \"wall_eps\": {:.0}, \"critical_path_s\": {:.3}, \
             \"critical_path_eps\": {:.0}, \"rounds\": {}}}{}\n",
            r.shards,
            r.stats.events,
            r.wall_s,
            r.stats.events as f64 / r.wall_s,
            r.critical_path_s,
            r.stats.events as f64 / r.critical_path_s.max(1e-9),
            r.rounds,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    section.push_str("    ]\n  }");

    let path = "BENCH_switch.json";
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path} ({e}); run the throughput binary first");
        std::process::exit(1);
    });
    // Drop any previous sim_sharded section: it spans from its key to the
    // next top-level key (multi_tenant) or the closing brace.
    let json = match json.find(",\n  \"sim_sharded\":") {
        Some(start) => {
            let rest = &json[start + 1..];
            let end = rest
                .find(",\n  \"multi_tenant\":")
                .map(|i| start + 1 + i)
                .unwrap_or_else(|| json.rfind("\n}").expect("closing brace"));
            format!("{}{}", &json[..start], &json[end..])
        }
        None => json,
    };
    // Insert before multi_tenant (which keeps the last slot) or at the end.
    let insert_at = json
        .find(",\n  \"multi_tenant\":")
        .unwrap_or_else(|| json.rfind("\n}").expect("closing brace"));
    let out =
        format!("{},\n  \"sim_sharded\": {section}{}", &json[..insert_at], &json[insert_at..]);
    std::fs::write(path, out).expect("write BENCH_switch.json");
    println!("merged sim_sharded section into {path}");
}
