//! NetCL messages: construction, packing, and unpacking (Fig. 6, Fig. 10).
//!
//! A NetCL-over-UDP packet is the shim header — the 4-tuple `(src, dst,
//! from, to)`, the computation id, and the runtime's action/target fields —
//! followed by the kernel arguments laid out by the kernel *specification*
//! (§V-A): scalar arguments first in declaration order, then array
//! arguments, each element in network byte order. This matches exactly what
//! the generated P4 parser extracts, which the cross-substrate differential
//! tests rely on.
//!
//! As in the paper's Fig. 6, `pack`/`unpack` accept `None` for arguments the
//! caller wants to skip ("to avoid unnecessary copying the programmer may
//! supply NULL to ignore an argument"): packing writes zeros, unpacking
//! skips the copy.

use netcl_sema::model::Specification;

/// Size of the NetCL shim header on the wire:
/// src(2) dst(2) from(2) to(2) comp(1) action(1) target(2).
pub const NCL_HEADER_BYTES: usize = 12;

/// Errors from pack/unpack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageError {
    /// Supplied argument count does not match the specification.
    ArgCount {
        /// Expected (specification items).
        expected: usize,
        /// Supplied.
        got: usize,
    },
    /// A supplied argument's element count mismatches its specification.
    ArgLen {
        /// Argument position.
        arg: usize,
        /// Expected element count.
        expected: u32,
        /// Supplied element count.
        got: usize,
    },
    /// Buffer too short to unpack.
    Truncated,
}

impl std::fmt::Display for MessageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MessageError::ArgCount { expected, got } => {
                write!(f, "specification has {expected} arguments, got {got}")
            }
            MessageError::ArgLen { arg, expected, got } => {
                write!(f, "argument {arg} needs {expected} elements, got {got}")
            }
            MessageError::Truncated => write!(f, "message buffer too short"),
        }
    }
}

/// A NetCL message header — `ncl::message m(src, dst, comp, dev)` (Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Message {
    /// Source host id.
    pub src: u16,
    /// Destination host id.
    pub dst: u16,
    /// Previous hop device ([`crate::device::NO_DEVICE`] when fresh).
    pub from: u16,
    /// Device requested to compute.
    pub to: u16,
    /// Computation id.
    pub comp: u8,
    /// Action code (set by devices; 0 = pass on fresh messages).
    pub action: u8,
    /// Action target (set by devices).
    pub target: u16,
}

impl Message {
    /// `send_{src→dst}(comp, dev, m)` header (§IV).
    pub fn new(src: u16, dst: u16, comp: u8, dev: u16) -> Message {
        Message { src, dst, from: crate::device::NO_DEVICE, to: dev, comp, action: 0, target: 0 }
    }

    /// Total packet size for a kernel specification.
    pub fn size(spec: &Specification) -> usize {
        NCL_HEADER_BYTES + spec.payload_bytes() as usize
    }

    /// Serializes the header into the first [`NCL_HEADER_BYTES`] bytes.
    pub fn write_header(&self, out: &mut Vec<u8>) {
        let base = out.len();
        out.resize(base + NCL_HEADER_BYTES, 0);
        self.write_header_into(&mut out[base..]);
    }

    /// Serializes the header in place into `out` (at least
    /// [`NCL_HEADER_BYTES`] long), without allocating. The simulator uses
    /// this to rewrite per-hop fields directly in the wire buffer.
    pub fn write_header_into(&self, out: &mut [u8]) {
        out[0..2].copy_from_slice(&self.src.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst.to_be_bytes());
        out[4..6].copy_from_slice(&self.from.to_be_bytes());
        out[6..8].copy_from_slice(&self.to.to_be_bytes());
        out[8] = self.comp;
        out[9] = self.action;
        out[10..12].copy_from_slice(&self.target.to_be_bytes());
    }

    /// Parses a header from wire bytes.
    pub fn read_header(bytes: &[u8]) -> Result<Message, MessageError> {
        if bytes.len() < NCL_HEADER_BYTES {
            return Err(MessageError::Truncated);
        }
        let u16at = |i: usize| u16::from_be_bytes([bytes[i], bytes[i + 1]]);
        Ok(Message {
            src: u16at(0),
            dst: u16at(2),
            from: u16at(4),
            to: u16at(6),
            comp: bytes[8],
            action: bytes[9],
            target: u16at(10),
        })
    }
}

/// Wire order of specification items: scalars first, then arrays — mirroring
/// the generated parser (`args_c<N>` header, then per-argument stacks).
pub fn wire_order(spec: &Specification) -> Vec<usize> {
    let mut order: Vec<usize> = Vec::with_capacity(spec.items.len());
    order.extend(spec.items.iter().enumerate().filter(|(_, i)| i.count == 1).map(|(i, _)| i));
    order.extend(spec.items.iter().enumerate().filter(|(_, i)| i.count > 1).map(|(i, _)| i));
    order
}

/// Packs a message: header + arguments per the specification. `args[i]` is
/// `Some(elements)` or `None` to send zeros (ignored argument).
pub fn pack(
    msg: &Message,
    spec: &Specification,
    args: &[Option<&[u64]>],
) -> Result<Vec<u8>, MessageError> {
    if args.len() != spec.items.len() {
        return Err(MessageError::ArgCount { expected: spec.items.len(), got: args.len() });
    }
    let mut out = Vec::with_capacity(Message::size(spec));
    msg.write_header(&mut out);
    for &i in &wire_order(spec) {
        let item = spec.items[i];
        let bytes = item.ty.size_bytes() as usize;
        match args[i] {
            Some(vals) => {
                if vals.len() != item.count as usize {
                    return Err(MessageError::ArgLen {
                        arg: i,
                        expected: item.count,
                        got: vals.len(),
                    });
                }
                for &v in vals {
                    let wrapped = item.ty.wrap(v);
                    for b in (0..bytes).rev() {
                        out.push((wrapped >> (8 * b)) as u8);
                    }
                }
            }
            None => out.extend(std::iter::repeat_n(0u8, bytes * item.count as usize)),
        }
    }
    Ok(out)
}

/// Unpacks a message into `args`. `args[i]` is `Some(&mut Vec)` to receive
/// the values (resized to the element count) or `None` to skip.
pub fn unpack(
    bytes: &[u8],
    spec: &Specification,
    args: &mut [Option<&mut Vec<u64>>],
) -> Result<Message, MessageError> {
    if args.len() != spec.items.len() {
        return Err(MessageError::ArgCount { expected: spec.items.len(), got: args.len() });
    }
    let msg = Message::read_header(bytes)?;
    if bytes.len() < Message::size(spec) {
        return Err(MessageError::Truncated);
    }
    let mut cursor = NCL_HEADER_BYTES;
    for &i in &wire_order(spec) {
        let item = spec.items[i];
        let nbytes = item.ty.size_bytes() as usize;
        match &mut args[i] {
            Some(out) => {
                out.clear();
                for _ in 0..item.count {
                    let mut v = 0u64;
                    for b in 0..nbytes {
                        v = (v << 8) | bytes[cursor + b] as u64;
                    }
                    out.push(v);
                    cursor += nbytes;
                }
            }
            None => cursor += nbytes * item.count as usize,
        }
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcl_sema::model::{SpecItem, Specification};
    use netcl_sema::Ty;

    fn cache_spec() -> Specification {
        // Fig. 4 query kernel: [1,1,1,1,1][u8,u32,u32,u8,u32]
        Specification {
            items: vec![
                SpecItem { count: 1, ty: Ty::U8 },
                SpecItem { count: 1, ty: Ty::U32 },
                SpecItem { count: 1, ty: Ty::U32 },
                SpecItem { count: 1, ty: Ty::U8 },
                SpecItem { count: 1, ty: Ty::U32 },
            ],
        }
    }

    fn agg_spec() -> Specification {
        // Fig. 7: [1,1,1,1,32][u8,u16,u16,u16,u32]
        Specification {
            items: vec![
                SpecItem { count: 1, ty: Ty::U8 },
                SpecItem { count: 1, ty: Ty::U16 },
                SpecItem { count: 1, ty: Ty::U16 },
                SpecItem { count: 1, ty: Ty::U16 },
                SpecItem { count: 32, ty: Ty::U32 },
            ],
        }
    }

    #[test]
    fn header_roundtrip() {
        let m = Message::new(1, 2, 1, 1);
        let mut w = Vec::new();
        m.write_header(&mut w);
        assert_eq!(w.len(), NCL_HEADER_BYTES);
        assert_eq!(Message::read_header(&w).unwrap(), m);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let spec = cache_spec();
        let m = Message::new(1, 2, 1, 1);
        // Fig. 6: val and hit are placeholders (NULL); hot skipped too.
        let packed =
            pack(&m, &spec, &[Some(&[1]), Some(&[0xDEAD_BEEF]), None, None, None]).unwrap();
        assert_eq!(packed.len(), Message::size(&spec));

        let mut op = Vec::new();
        let mut key = Vec::new();
        let mut val = Vec::new();
        let got = unpack(
            &packed,
            &spec,
            &mut [Some(&mut op), Some(&mut key), Some(&mut val), None, None],
        )
        .unwrap();
        assert_eq!(got, m);
        assert_eq!(op, vec![1]);
        assert_eq!(key, vec![0xDEAD_BEEF]);
        assert_eq!(val, vec![0]);
    }

    #[test]
    fn array_arguments_pack_after_scalars() {
        let spec = agg_spec();
        let m = Message::new(3, 3, 1, 1);
        let values: Vec<u64> = (0..32).map(|i| i * 10).collect();
        let packed =
            pack(&m, &spec, &[Some(&[0]), Some(&[7]), Some(&[7]), Some(&[1 << 3]), Some(&values)])
                .unwrap();
        assert_eq!(packed.len(), NCL_HEADER_BYTES + (1 + 2 + 2 + 2) + 32 * 4);
        let mut out = Vec::new();
        unpack(&packed, &spec, &mut [None, None, None, None, Some(&mut out)]).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn values_wrap_to_argument_width() {
        let spec = Specification { items: vec![SpecItem { count: 1, ty: Ty::U8 }] };
        let m = Message::new(1, 2, 1, 1);
        let packed = pack(&m, &spec, &[Some(&[0x1FF])]).unwrap();
        let mut v = Vec::new();
        unpack(&packed, &spec, &mut [Some(&mut v)]).unwrap();
        assert_eq!(v, vec![0xFF]);
    }

    #[test]
    fn errors() {
        let spec = cache_spec();
        let m = Message::new(1, 2, 1, 1);
        assert_eq!(
            pack(&m, &spec, &[None, None]).unwrap_err(),
            MessageError::ArgCount { expected: 5, got: 2 }
        );
        assert!(matches!(
            pack(&m, &spec, &[Some(&[1, 2]), None, None, None, None]).unwrap_err(),
            MessageError::ArgLen { arg: 0, .. }
        ));
        assert_eq!(
            unpack(&[0u8; 4], &spec, &mut [None, None, None, None, None]).unwrap_err(),
            MessageError::Truncated
        );
    }

    /// The packed bytes parse on the generated P4 program's parser — the
    /// wire format and the compiler agree.
    #[test]
    fn wire_format_matches_generated_parser() {
        let unit = netcl::Compiler::new(netcl::CompileOptions::default())
            .compile(
                "t.ncl",
                r#"
_kernel(1) _at(1) void k(char op, unsigned key, uint16_t &small,
                         uint32_t _spec(4) *arr) {
  arr[0] = key;
  small = 9;
}
"#,
            )
            .unwrap();
        let spec = unit.model.kernels[0].specification();
        let m = Message::new(5, 6, 1, 1);
        let packed =
            pack(&m, &spec, &[Some(&[7]), Some(&[0xAABBCCDD]), Some(&[3]), Some(&[1, 2, 3, 4])])
                .unwrap();
        let mut sw = netcl_bmv2::Switch::new(unit.devices[0].tna_p4.clone());
        let (pkt, _) = sw.process(&packed).unwrap();
        assert_eq!(pkt.get("ncl.src"), 5);
        assert_eq!(pkt.get("ncl.to"), 1);
        assert_eq!(pkt.get("args_c1.a0_op"), 7);
        assert_eq!(pkt.get("args_c1.a1_key"), 0xAABBCCDD);
        assert_eq!(pkt.get("arr_c1_a3[3].value"), 4);
        // Kernel ran: arr[0] = key, small = 9.
        assert_eq!(pkt.get("arr_c1_a3[0].value"), 0xAABBCCDD);
        assert_eq!(pkt.get("args_c1.a2_small"), 9);
    }
}
