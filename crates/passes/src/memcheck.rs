//! Stage-local memory violation checks (§V-D, §VI-B).
//!
//! Tofino stateful memory lives on exactly one hardware stage, which imposes
//! two program-level rules the compiler must enforce:
//!
//! 1. **Single access per object** — "no global memory object may be
//!    accessed more than once, unless accesses are mutually exclusive".
//!    Two accesses on one execution path can never share the one SALU
//!    execution the stage offers. Additionally, mutually-exclusive accesses
//!    that sit too far apart in the CFG may still be unplaceable on a
//!    common stage; the paper approximates "too far apart" by the
//!    difference in the minimum number of conditional branches from the
//!    entry, rejected beyond a threshold.
//! 2. **Consistent access order** — "for any two accesses to different
//!    global memory objects, we check that their relative order is the same
//!    in all CFG paths." Reorderable violations (independent accesses in
//!    the same block) are fixed by reordering; the rest abort compilation.
//!    Unlike Lucid, declaration order is not assumed to be intended order.

use netcl_ir::dom::min_branch_depth;
use netcl_ir::func::{BlockId, Function, InstKind, MemId, Module};
use netcl_util::idx::Idx;
use netcl_util::{DiagnosticSink, Span};
use std::collections::{HashMap, HashSet};

/// Checks every kernel in the module; diagnostics `E0302` (multiple
/// non-exclusive accesses), `E0303` (distance), `E0304` (order violation).
pub fn check_module(module: &mut Module, distance_threshold: u32, diags: &mut DiagnosticSink) {
    // Lookup tables after duplication have one access each and MATs are not
    // SALU-bound in the same way; register objects are what we check.
    for f in module.kernels.iter_mut() {
        check_function(f, distance_threshold, diags);
    }
}

/// One global-memory access site.
#[derive(Clone, Copy, Debug)]
struct Access {
    mem: MemId,
    block: BlockId,
    inst: usize,
}

fn collect_accesses(f: &Function) -> Vec<Access> {
    let mut out = Vec::new();
    for (bid, b) in f.blocks.iter_enumerated() {
        for (i, inst) in b.insts.iter().enumerate() {
            match &inst.kind {
                InstKind::MemRead { mem } | InstKind::MemWrite { mem, .. } => {
                    out.push(Access { mem: mem.mem, block: bid, inst: i })
                }
                InstKind::AtomicRmw { mem, .. } => {
                    out.push(Access { mem: mem.mem, block: bid, inst: i })
                }
                // MATs are stage-local objects too: multiple applications of
                // one table need the duplication pass (which runs before this
                // check and gives each access site its own copy).
                InstKind::Lookup { table, .. } => {
                    out.push(Access { mem: *table, block: bid, inst: i })
                }
                _ => {}
            }
        }
    }
    out
}

/// Block-level reachability on the (DAG) CFG: `reach[a]` contains every
/// block reachable from `a` via ≥1 edge.
fn reachability(f: &Function) -> HashMap<BlockId, HashSet<BlockId>> {
    let mut reach: HashMap<BlockId, HashSet<BlockId>> = HashMap::new();
    // Process in reverse topological order (post-order of the DAG).
    let rpo = netcl_ir::dom::reverse_postorder(f);
    for &b in rpo.iter().rev() {
        let mut set = HashSet::new();
        for s in f.blocks[b].term.successors() {
            set.insert(s);
            if let Some(ss) = reach.get(&s) {
                set.extend(ss.iter().copied());
            }
        }
        reach.insert(b, set);
    }
    reach
}

fn check_function(f: &mut Function, distance_threshold: u32, diags: &mut DiagnosticSink) {
    let accesses = collect_accesses(f);
    let reach = reachability(f);
    let depth = min_branch_depth(f);

    // Rule 1: per-object multiple access.
    let mut by_mem: HashMap<MemId, Vec<Access>> = HashMap::new();
    for a in &accesses {
        by_mem.entry(a.mem).or_default().push(*a);
    }
    for (mem, sites) in &by_mem {
        for i in 0..sites.len() {
            for j in (i + 1)..sites.len() {
                let (a, b) = (sites[i], sites[j]);
                let same_path = a.block == b.block
                    || reach.get(&a.block).is_some_and(|s| s.contains(&b.block))
                    || reach.get(&b.block).is_some_and(|s| s.contains(&a.block));
                if same_path {
                    diags.error(
                        "E0302",
                        format!(
                            "kernel `{}`: global memory object `{}` is accessed more than once on \
                             one execution path; Tofino registers are stage-local, so accesses \
                             must be mutually exclusive (§V-D)",
                            f.name,
                            mem_name(f, *mem)
                        ),
                        Span::DUMMY,
                    );
                } else {
                    // Mutually exclusive: approximate-distance check.
                    let da = depth[a.block];
                    let db = depth[b.block];
                    let dist = da.abs_diff(db);
                    if dist > distance_threshold {
                        diags.error(
                            "E0303",
                            format!(
                                "kernel `{}`: mutually-exclusive accesses to `{}` are {dist} \
                                 conditional levels apart (threshold {distance_threshold}); they \
                                 cannot be placed on a single stage (§VI-B)",
                                f.name,
                                mem_name(f, *mem)
                            ),
                            Span::DUMMY,
                        );
                    }
                }
            }
        }
    }

    // Rule 2: cross-object order. First try to repair same-block disorder by
    // reordering independent accesses into a canonical global order.
    canonical_reorder(f);
    let accesses = collect_accesses(f);

    // before(X, Y) ⇔ some path has an X-access preceding a Y-access.
    let mut before: HashSet<(MemId, MemId)> = HashSet::new();
    for a in &accesses {
        for b in &accesses {
            if a.mem == b.mem {
                continue;
            }
            let precedes = (a.block == b.block && a.inst < b.inst)
                || reach.get(&a.block).is_some_and(|s| s.contains(&b.block));
            if precedes {
                before.insert((a.mem, b.mem));
            }
        }
    }
    let mut reported: HashSet<(MemId, MemId)> = HashSet::new();
    for &(x, y) in &before {
        if x.index() < y.index() && before.contains(&(y, x)) && reported.insert((x, y)) {
            diags.error(
                "E0304",
                format!(
                    "kernel `{}`: `{}` and `{}` are accessed in different orders on different \
                     paths and the accesses cannot be reordered; stage assignment is impossible \
                     (§V-D)",
                    f.name,
                    mem_name(f, x),
                    mem_name(f, y)
                ),
                Span::DUMMY,
            );
        }
    }
}

fn mem_name(_f: &Function, mem: MemId) -> String {
    format!("@g{}", mem.index())
}

/// Reorders each block's global accesses into ascending [`MemId`] order
/// where dependencies allow — the §VI-B "can be reordered" repair for
/// patterns like `x = m1[0] + m2[x]` vs `x = m2[x] + m1[0]` in sibling
/// branches. Implemented as a list scheduler: an instruction is ready when
/// every instruction it depends on (data flow, same-object memory order,
/// same-argument message order, same-slot local order) has been emitted;
/// among ready instructions, global accesses with the smallest `MemId` go
/// first, and pure instructions are emitted lazily when needed.
fn canonical_reorder(f: &mut Function) {
    use netcl_ir::types::Operand;
    for b in f.blocks.iter_mut() {
        let n = b.insts.len();
        if n < 2 {
            continue;
        }
        // deps[i] = indices that must precede instruction i.
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut def_site: HashMap<netcl_ir::ValueId, usize> = HashMap::new();
        let mut last_mem: HashMap<MemId, usize> = HashMap::new();
        let mut last_arg: HashMap<u32, usize> = HashMap::new();
        let mut last_local: HashMap<netcl_ir::LocalId, usize> = HashMap::new();
        for (i, inst) in b.insts.iter().enumerate() {
            for op in inst.kind.operands() {
                if let Operand::Value(v) = op {
                    if let Some(&d) = def_site.get(&v) {
                        deps[i].push(d);
                    }
                }
            }
            if let Some(m) = inst.kind.touches_global() {
                if let Some(&d) = last_mem.get(&m) {
                    deps[i].push(d);
                }
                last_mem.insert(m, i);
            }
            match &inst.kind {
                InstKind::ArgRead { arg, .. } | InstKind::ArgWrite { arg, .. } => {
                    if let Some(&d) = last_arg.get(arg) {
                        deps[i].push(d);
                    }
                    last_arg.insert(*arg, i);
                }
                InstKind::LocalLoad { slot, .. } | InstKind::LocalStore { slot, .. } => {
                    if let Some(&d) = last_local.get(slot) {
                        deps[i].push(d);
                    }
                    last_local.insert(*slot, i);
                }
                _ => {}
            }
            for &r in &inst.results {
                def_site.insert(r, i);
            }
        }
        // Priority: a global access keys on its MemId; a pure instruction
        // inherits the smallest key among its (transitive) consumers, so the
        // operands feeding an early-MemId access are scheduled before
        // later-MemId accesses become attractive. Dependencies always point
        // to earlier indices, so one reverse pass propagates transitively.
        let mut key: Vec<usize> = (0..n)
            .map(|i| b.insts[i].kind.touches_global().map(|m| m.index()).unwrap_or(usize::MAX))
            .collect();
        for i in (0..n).rev() {
            for &d in &deps[i] {
                key[d] = key[d].min(key[i]);
            }
        }
        // List-schedule by (key, original index) among ready instructions.
        let mut emitted = vec![false; n];
        let mut order: Vec<usize> = Vec::with_capacity(n);
        while order.len() < n {
            let mut best: Option<(usize, usize)> = None; // (key, idx)
            for i in 0..n {
                if emitted[i] || !deps[i].iter().all(|&d| emitted[d]) {
                    continue;
                }
                let cand = (key[i], i);
                if best.is_none() || cand < best.unwrap() {
                    best = Some(cand);
                }
            }
            let Some((_, i)) = best else { break };
            emitted[i] = true;
            order.push(i);
        }
        if order.len() == n {
            let mut new_insts = Vec::with_capacity(n);
            for &i in &order {
                new_insts.push(b.insts[i].clone());
            }
            b.insts = new_insts;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcl_ir::func::{ActionRef, FuncBuilder, MemRef, Terminator};
    use netcl_ir::types::{IrTy, Operand as Op};
    use netcl_ir::GlobalDef;

    fn global(name: &str) -> GlobalDef {
        GlobalDef {
            name: name.into(),
            ty: IrTy::I32,
            dims: vec![42],
            managed: false,
            lookup: false,
            entries: vec![],
            origin: None,
        }
    }

    fn read(mem: u32, idx: u64) -> InstKind {
        InstKind::MemRead {
            mem: MemRef { mem: MemId(mem), indices: vec![Op::imm(idx, IrTy::I32)] },
        }
    }

    fn check(m: &mut Module, threshold: u32) -> DiagnosticSink {
        let mut d = DiagnosticSink::new();
        check_module(m, threshold, &mut d);
        d
    }

    /// §V-D kernel `a`: `x = m[0] + m[1]` — invalid.
    #[test]
    fn same_path_double_access_rejected() {
        let mut b = FuncBuilder::new("a", 2);
        let out = b.add_arg("x", IrTy::I32, 1, true);
        let v0 = b.emit(read(0, 0), IrTy::I32).unwrap();
        let v1 = b.emit(read(0, 1), IrTy::I32).unwrap();
        let s = b.bin(netcl_ir::types::IrBinOp::Add, Op::Value(v0), Op::Value(v1), IrTy::I32);
        b.emit(InstKind::ArgWrite { arg: out, index: Op::imm(0, IrTy::I32), value: s }, IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut m = Module {
            name: "t".into(),
            device: 0,
            globals: vec![global("m")],
            kernels: vec![b.finish()],
        };
        let d = check(&mut m, 4);
        assert!(d.has_code("E0302"));
    }

    /// §V-D kernel `b`: `x = (x > 10) ? m[0] : m[1]` — valid (branches).
    #[test]
    fn mutually_exclusive_access_accepted() {
        let mut b = FuncBuilder::new("b", 1);
        let t = b.new_block();
        let e = b.new_block();
        b.terminate(Terminator::CondBr { cond: Op::imm(1, IrTy::I1), then_bb: t, else_bb: e });
        b.switch_to(t);
        b.emit(read(0, 0), IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        b.switch_to(e);
        b.emit(read(0, 1), IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut m = Module {
            name: "t".into(),
            device: 0,
            globals: vec![global("m")],
            kernels: vec![b.finish()],
        };
        let d = check(&mut m, 4);
        assert!(!d.has_errors(), "{:?}", d.diagnostics());
    }

    /// Mutually exclusive but at very different branch depths → E0303.
    #[test]
    fn distant_exclusive_access_rejected() {
        let mut b = FuncBuilder::new("c", 3);
        // Chain of nested conditionals on one side.
        let shallow = b.new_block();
        let mut deep = b.func.entry;
        // entry branches to shallow / d1; d1 → d2 … each is another level.
        let mut levels = Vec::new();
        for _ in 0..6 {
            let next = b.new_block();
            let other = b.new_block();
            b.switch_to(deep);
            b.terminate(Terminator::CondBr {
                cond: Op::imm(1, IrTy::I1),
                then_bb: next,
                else_bb: if levels.is_empty() { shallow } else { other },
            });
            b.switch_to(other);
            b.terminate(Terminator::Ret(ActionRef::pass()));
            levels.push(next);
            deep = next;
        }
        b.switch_to(shallow);
        b.emit(read(0, 0), IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        b.switch_to(deep);
        b.emit(read(0, 1), IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut m = Module {
            name: "t".into(),
            device: 0,
            globals: vec![global("m")],
            kernels: vec![b.finish()],
        };
        let d = check(&mut m, 4);
        assert!(d.has_code("E0303"), "{:?}", d.diagnostics());
    }

    /// §V-D kernel with reorderable operand order: repaired, no error.
    #[test]
    fn reorderable_disorder_repaired() {
        // then: m1 read, m2 read; else: m2 read, m1 read (independent).
        let mut b = FuncBuilder::new("b", 2);
        let t = b.new_block();
        let e = b.new_block();
        b.terminate(Terminator::CondBr { cond: Op::imm(1, IrTy::I1), then_bb: t, else_bb: e });
        b.switch_to(t);
        b.emit(read(0, 0), IrTy::I32);
        b.emit(read(1, 3), IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        b.switch_to(e);
        b.emit(read(1, 0), IrTy::I32);
        b.emit(read(0, 0), IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut m = Module {
            name: "t".into(),
            device: 0,
            globals: vec![global("m1"), global("m2")],
            kernels: vec![b.finish()],
        };
        let d = check(&mut m, 4);
        assert!(!d.has_errors(), "{:?}", d.diagnostics());
        // The else block is now ordered m1 (g0) then m2 (g1).
        let mems: Vec<u32> = m.kernels[0].blocks[e]
            .insts
            .iter()
            .filter_map(|i| i.kind.touches_global().map(|m| m.0))
            .collect();
        assert_eq!(mems, vec![0, 1]);
    }

    /// §V-D kernel `a` (ordering): dependent accesses that cannot be
    /// reordered → E0304.
    #[test]
    fn dependent_disorder_rejected() {
        let mut b = FuncBuilder::new("a", 1);
        let t = b.new_block();
        let e = b.new_block();
        b.terminate(Terminator::CondBr { cond: Op::imm(1, IrTy::I1), then_bb: t, else_bb: e });
        // then: x = m1[0]; x = m2[x]   (m1 before m2, dependent)
        b.switch_to(t);
        let x1 = b.emit(read(0, 0), IrTy::I32).unwrap();
        b.emit(
            InstKind::MemRead { mem: MemRef { mem: MemId(1), indices: vec![Op::Value(x1)] } },
            IrTy::I32,
        );
        b.terminate(Terminator::Ret(ActionRef::pass()));
        // else: x = m2[0]; x = m1[x]   (m2 before m1, dependent)
        b.switch_to(e);
        let x2 = b.emit(read(1, 0), IrTy::I32).unwrap();
        b.emit(
            InstKind::MemRead { mem: MemRef { mem: MemId(0), indices: vec![Op::Value(x2)] } },
            IrTy::I32,
        );
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut m = Module {
            name: "t".into(),
            device: 0,
            globals: vec![global("m1"), global("m2")],
            kernels: vec![b.finish()],
        };
        let d = check(&mut m, 4);
        assert!(d.has_code("E0304"), "{:?}", d.diagnostics());
    }

    /// Fig. 7 shape: Bitmap[0]/Bitmap[1] accessed in the same order in both
    /// branches (after partitioning they are distinct objects) — valid.
    #[test]
    fn allreduce_bitmap_pattern_accepted() {
        let mut b = FuncBuilder::new("allreduce", 1);
        let t = b.new_block();
        let e = b.new_block();
        b.terminate(Terminator::CondBr { cond: Op::imm(1, IrTy::I1), then_bb: t, else_bb: e });
        b.switch_to(t);
        b.emit(read(0, 1), IrTy::I32); // Bitmap__0
        b.emit(read(1, 1), IrTy::I32); // Bitmap__1
        b.terminate(Terminator::Ret(ActionRef::pass()));
        b.switch_to(e);
        b.emit(read(0, 2), IrTy::I32);
        b.emit(read(1, 2), IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut m = Module {
            name: "t".into(),
            device: 0,
            globals: vec![global("Bitmap__0"), global("Bitmap__1")],
            kernels: vec![b.finish()],
        };
        let d = check(&mut m, 4);
        assert!(!d.has_errors(), "{:?}", d.diagnostics());
    }
}
