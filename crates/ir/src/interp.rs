//! Reference interpreter for the IR.
//!
//! Executes one kernel invocation against a device's global-memory state and
//! a message payload, returning the forwarding action. Used to:
//!
//! * differentially test the pass pipeline (semantics must be preserved by
//!   every pass) and the P4 backend (the generated P4 running on the bmv2
//!   model must agree with the IR),
//! * power quick host-side "what does this kernel do" simulation in tests.
//!
//! Interpretation works on any verified IR — with or without loops, φ-nodes,
//! or structured control flow — so the same engine runs pre- and post-pass
//! code.

use crate::func::{Function, InstKind, MemId, Module, MsgField, Terminator};
use crate::types::Operand;
use netcl_sema::builtins::ActionKind;
use netcl_sema::model::LookupEntry;
use netcl_util::idx::Idx;

/// Mutable global-memory state of one device.
#[derive(Clone, Debug)]
pub struct DeviceState {
    /// Flattened element storage per global (empty for lookup memory).
    pub memories: Vec<Vec<u64>>,
    /// Current entries of each lookup table (managed tables can be updated
    /// from the host through the control-plane path).
    pub tables: Vec<Vec<LookupEntry>>,
}

impl DeviceState {
    /// Zero-initialized state matching the module's globals (§V-B: global
    /// memory is zero-initialized).
    pub fn new(module: &Module) -> DeviceState {
        let mut memories = Vec::with_capacity(module.globals.len());
        let mut tables = Vec::with_capacity(module.globals.len());
        for g in &module.globals {
            if g.lookup {
                memories.push(Vec::new());
                tables.push(g.entries.clone());
            } else {
                memories.push(vec![0u64; g.element_count()]);
                tables.push(Vec::new());
            }
        }
        DeviceState { memories, tables }
    }

    /// Reads one element (host-side `managed_read` path).
    pub fn read(&self, mem: MemId, index: usize) -> u64 {
        self.memories[mem.index()][index]
    }

    /// Writes one element (host-side `managed_write` path).
    pub fn write(&mut self, mem: MemId, index: usize, value: u64) {
        self.memories[mem.index()][index] = value;
    }
}

/// Per-invocation environment: NetCL header fields and RNG.
#[derive(Clone, Debug)]
pub struct ExecEnv {
    /// `msg.src` — source host.
    pub src: u16,
    /// `msg.dst` — destination host.
    pub dst: u16,
    /// `msg.from` — previous hop.
    pub from: u16,
    /// `msg.to` — target device.
    pub to: u16,
    /// Deterministic RNG state for `ncl::rand`.
    pub rng: u64,
}

impl Default for ExecEnv {
    fn default() -> Self {
        ExecEnv { src: 1, dst: 2, from: 1, to: 0, rng: 0x243F_6A88_85A3_08D3 }
    }
}

impl ExecEnv {
    fn next_rand(&mut self) -> u64 {
        // SplitMix64 — deterministic and platform-independent.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The outcome of one kernel execution.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecResult {
    /// The selected forwarding action.
    pub action: ActionKind,
    /// Resolved target id for targeted actions.
    pub target: Option<u64>,
    /// Dynamic instruction count (used by tests and latency sanity checks).
    pub steps: usize,
}

/// Interpreter failures (all indicate compiler bugs or unverified IR).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A value was read before being defined.
    UndefinedValue(String),
    /// An index was out of bounds for its memory/argument.
    OutOfBounds(String),
    /// Division by zero.
    DivisionByZero,
    /// Step budget exceeded (cyclic IR without unrolling).
    Timeout,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UndefinedValue(s) => write!(f, "undefined value: {s}"),
            ExecError::OutOfBounds(s) => write!(f, "out of bounds: {s}"),
            ExecError::DivisionByZero => write!(f, "division by zero"),
            ExecError::Timeout => write!(f, "execution step budget exceeded"),
        }
    }
}

/// Evaluates a target intrinsic. Shared with the bmv2 interpreter so both
/// execution paths agree bit-for-bit.
pub fn eval_intrinsic(target: &str, name: &str, args: &[u64]) -> u64 {
    match (target, name) {
        ("tna", "crc64") => {
            // Folded CRC over all argument bytes (stand-in for the TNA hash
            // engine's CRC64; we only need determinism + mixing).
            let mut bytes = Vec::with_capacity(args.len() * 8);
            for a in args {
                bytes.extend_from_slice(&a.to_le_bytes());
            }
            let lo = netcl_util::hash::crc32(&bytes) as u64;
            let hi = netcl_util::hash::crc16(&bytes) as u64;
            (hi << 32) | lo
        }
        ("v1", "csum16r") => {
            // RFC 1071 ones'-complement sum over 16-bit lanes of the args.
            let mut sum: u32 = 0;
            for a in args {
                for chunk in a.to_le_bytes().chunks(2) {
                    sum += u16::from_le_bytes([chunk[0], chunk[1]]) as u32;
                    sum = (sum & 0xFFFF) + (sum >> 16);
                }
            }
            (!(sum as u16)) as u64
        }
        _ => {
            // Unknown intrinsics hash their arguments — deterministic, and
            // identical on every execution substrate.
            let mut bytes = Vec::with_capacity(args.len() * 8);
            for a in args {
                bytes.extend_from_slice(&a.to_le_bytes());
            }
            netcl_util::hash::crc32(&bytes) as u64
        }
    }
}

/// Searches a lookup table, mirroring MAT semantics: first matching entry
/// wins (P4 exact tables have unique keys; range tables use priority order).
pub fn search_table(entries: &[LookupEntry], key: u64) -> Option<u64> {
    for e in entries {
        match *e {
            LookupEntry::Member { key: k } if k == key => return Some(1),
            LookupEntry::Exact { key: k, value } if k == key => return Some(value),
            LookupEntry::Range { lo, hi, value } if lo <= key && key <= hi => return Some(value),
            _ => {}
        }
    }
    None
}

const STEP_BUDGET: usize = 1 << 20;

/// Executes `f` once. `args` holds the message payload per argument (element
/// vectors); by-ref/pointer argument writes are visible in `args` afterwards.
pub fn execute(
    f: &Function,
    module: &Module,
    state: &mut DeviceState,
    args: &mut [Vec<u64>],
    env: &mut ExecEnv,
) -> Result<ExecResult, ExecError> {
    debug_assert_eq!(args.len(), f.args.len(), "argument count mismatch");
    let mut values: Vec<Option<u64>> = vec![None; f.values.len()];
    let mut locals: Vec<Vec<u64>> = f.locals.iter().map(|l| vec![0u64; l.count as usize]).collect();
    let mut block = f.entry;
    let mut prev_block: Option<crate::func::BlockId> = None;
    let mut steps = 0usize;

    'blocks: loop {
        let b = &f.blocks[block];
        // Phase 1: φ-nodes read their incoming values simultaneously.
        let mut phi_updates: Vec<(crate::func::ValueId, u64)> = Vec::new();
        for inst in &b.insts {
            let InstKind::Phi { incoming } = &inst.kind else { break };
            let pb = prev_block.expect("φ in entry block");
            let (_, op) = incoming
                .iter()
                .find(|(p, _)| *p == pb)
                .ok_or_else(|| ExecError::UndefinedValue(format!("φ missing incoming {pb:?}")))?;
            let v = read_op(*op, &values)?;
            phi_updates.push((inst.results[0], v));
        }
        for (r, v) in phi_updates {
            values[r.index()] = Some(v);
        }

        for inst in &b.insts {
            if matches!(inst.kind, InstKind::Phi { .. }) {
                continue;
            }
            steps += 1;
            if steps > STEP_BUDGET {
                return Err(ExecError::Timeout);
            }
            step(f, module, state, args, env, inst, &mut values, &mut locals)?;
        }

        match &b.term {
            Terminator::Br(t) => {
                prev_block = Some(block);
                block = *t;
            }
            Terminator::CondBr { cond, then_bb, else_bb } => {
                let c = read_op(*cond, &values)?;
                prev_block = Some(block);
                block = if c != 0 { *then_bb } else { *else_bb };
            }
            Terminator::Ret(a) => {
                let target = match a.target {
                    Some(t) => Some(read_op(t, &values)?),
                    None => None,
                };
                return Ok(ExecResult { action: a.kind, target, steps });
            }
            Terminator::Unterminated => {
                return Err(ExecError::UndefinedValue("unterminated block".into()));
            }
        }
        if steps > STEP_BUDGET {
            break 'blocks;
        }
    }
    Err(ExecError::Timeout)
}

fn read_op(op: Operand, values: &[Option<u64>]) -> Result<u64, ExecError> {
    match op {
        Operand::Const(c, _) => Ok(c),
        Operand::Value(v) => {
            values[v.index()].ok_or_else(|| ExecError::UndefinedValue(format!("{v:?}")))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn step(
    f: &Function,
    module: &Module,
    state: &mut DeviceState,
    args: &mut [Vec<u64>],
    env: &mut ExecEnv,
    inst: &crate::func::Inst,
    values: &mut [Option<u64>],
    locals: &mut [Vec<u64>],
) -> Result<(), ExecError> {
    let set =
        |values: &mut [Option<u64>], r: crate::func::ValueId, v: u64| values[r.index()] = Some(v);
    let flat_index =
        |mem: &crate::func::MemRef, values: &[Option<u64>]| -> Result<usize, ExecError> {
            let g = module.global(mem.mem);
            let mut idx = 0usize;
            for (dim, op) in g.dims.iter().zip(&mem.indices) {
                let i = read_op(*op, values)? as usize;
                if i >= *dim {
                    return Err(ExecError::OutOfBounds(format!("{}[{i}] (dim {dim})", g.name)));
                }
                idx = idx * dim + i;
            }
            Ok(idx)
        };

    match &inst.kind {
        InstKind::Bin { op, a, b } => {
            let ty = f.value_ty(inst.results[0]);
            let va = read_op(*a, values)?;
            let vb = read_op(*b, values)?;
            let r = op.eval(va, vb, ty).ok_or(ExecError::DivisionByZero)?;
            set(values, inst.results[0], r);
        }
        InstKind::Un { op, a } => {
            let ty = f.value_ty(inst.results[0]);
            let va = read_op(*a, values)?;
            set(values, inst.results[0], op.eval(va, ty));
        }
        InstKind::Icmp { pred, a, b } => {
            let ty = f.operand_ty(*a);
            let va = read_op(*a, values)?;
            let vb = read_op(*b, values)?;
            set(values, inst.results[0], pred.eval(va, vb, ty) as u64);
        }
        InstKind::Select { cond, a, b } => {
            let c = read_op(*cond, values)?;
            let v = if c != 0 { read_op(*a, values)? } else { read_op(*b, values)? };
            set(values, inst.results[0], v);
        }
        InstKind::Cast { kind, a, to } => {
            let from = f.operand_ty(*a);
            let v = read_op(*a, values)?;
            set(values, inst.results[0], kind.eval(v, from, *to));
        }
        InstKind::Phi { .. } => unreachable!("φ handled at block entry"),
        InstKind::LocalLoad { slot, index } => {
            let i = read_op(*index, values)? as usize;
            let mem = &locals[slot.index()];
            let v = *mem
                .get(i)
                .ok_or_else(|| ExecError::OutOfBounds(format!("{}[{i}]", f.locals[*slot].name)))?;
            set(values, inst.results[0], v);
        }
        InstKind::LocalStore { slot, index, value } => {
            let i = read_op(*index, values)? as usize;
            let v = read_op(*value, values)?;
            let name = &f.locals[*slot].name;
            let mem = &mut locals[slot.index()];
            let cell =
                mem.get_mut(i).ok_or_else(|| ExecError::OutOfBounds(format!("{name}[{i}]")))?;
            *cell = f.locals[*slot].ty.wrap(v);
        }
        InstKind::ArgRead { arg, index } => {
            let i = read_op(*index, values)? as usize;
            let a = &args[*arg as usize];
            let v = *a.get(i).ok_or_else(|| {
                ExecError::OutOfBounds(format!("arg {}[{i}]", f.args[*arg as usize].name))
            })?;
            set(values, inst.results[0], v);
        }
        InstKind::ArgWrite { arg, index, value } => {
            let i = read_op(*index, values)? as usize;
            let v = read_op(*value, values)?;
            let info = &f.args[*arg as usize];
            let a = &mut args[*arg as usize];
            let cell = a
                .get_mut(i)
                .ok_or_else(|| ExecError::OutOfBounds(format!("arg {}[{i}]", info.name)))?;
            *cell = info.ty.wrap(v);
        }
        InstKind::MemRead { mem } => {
            let i = flat_index(mem, values)?;
            let v = state.memories[mem.mem.index()][i];
            set(values, inst.results[0], v);
        }
        InstKind::MemWrite { mem, value } => {
            let i = flat_index(mem, values)?;
            let v = read_op(*value, values)?;
            let ty = module.global(mem.mem).ty;
            state.memories[mem.mem.index()][i] = ty.wrap(v);
        }
        InstKind::AtomicRmw { op, mem, cond, operands } => {
            let i = flat_index(mem, values)?;
            let c = match cond {
                Some(c) => read_op(*c, values)? != 0,
                None => true,
            };
            let mut ops = Vec::with_capacity(operands.len());
            for o in operands {
                ops.push(read_op(*o, values)?);
            }
            let gty = module.global(mem.mem).ty;
            let sty = netcl_sema::Ty::Int { bits: gty.bits.max(8), signed: false };
            let old = state.memories[mem.mem.index()][i];
            let (new, ret) = op.execute(old, c, &ops, sty);
            state.memories[mem.mem.index()][i] = new;
            set(values, inst.results[0], ret);
        }
        InstKind::Lookup { table, key } => {
            let k = read_op(*key, values)?;
            let result = search_table(&state.tables[table.index()], k);
            set(values, inst.results[0], result.is_some() as u64);
            let vty = f.value_ty(inst.results[1]);
            set(values, inst.results[1], vty.wrap(result.unwrap_or(0)));
        }
        InstKind::Hash { kind, bits, a } => {
            let v = read_op(*a, values)?;
            let key_bytes = f.operand_ty(*a).bits.div_ceil(8).max(1) as u32;
            set(values, inst.results[0], kind.compute(v, key_bytes, *bits));
        }
        InstKind::Rand => {
            let ty = f.value_ty(inst.results[0]);
            set(values, inst.results[0], ty.wrap(env.next_rand()));
        }
        InstKind::MsgField { field } => {
            let v = match field {
                MsgField::Src => env.src,
                MsgField::Dst => env.dst,
                MsgField::From => env.from,
                MsgField::To => env.to,
            };
            set(values, inst.results[0], v as u64);
        }
        InstKind::Intrinsic { target, name, args: iargs } => {
            let mut vs = Vec::with_capacity(iargs.len());
            for a in iargs {
                vs.push(read_op(*a, values)?);
            }
            let ty = f.value_ty(inst.results[0]);
            set(values, inst.results[0], ty.wrap(eval_intrinsic(target, name, &vs)));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{ActionRef, FuncBuilder, GlobalDef, InstKind, MemId, MemRef, Terminator};
    use crate::types::{IcmpPred, IrBinOp, IrTy, Operand as Op};
    use netcl_sema::builtins::{AtomicOp, AtomicRmw};

    fn module_with_counter() -> Module {
        Module {
            name: "t".into(),
            device: 0,
            globals: vec![GlobalDef {
                name: "cnt".into(),
                ty: IrTy::I32,
                dims: vec![4],
                managed: false,
                lookup: false,
                entries: vec![],
                origin: None,
            }],
            kernels: vec![],
        }
    }

    #[test]
    fn executes_arithmetic_and_action() {
        let mut b = FuncBuilder::new("k", 1);
        let arg = b.add_arg("x", IrTy::I32, 1, false);
        let x = b.emit(InstKind::ArgRead { arg, index: Op::imm(0, IrTy::I32) }, IrTy::I32).unwrap();
        let y = b.bin(IrBinOp::Add, Op::Value(x), Op::imm(5, IrTy::I32), IrTy::I32);
        let big = b.icmp(IcmpPred::Ugt, y, Op::imm(10, IrTy::I32));
        let t = b.new_block();
        let e = b.new_block();
        b.terminate(Terminator::CondBr { cond: big, then_bb: t, else_bb: e });
        b.switch_to(t);
        b.terminate(Terminator::Ret(ActionRef { kind: ActionKind::Reflect, target: None }));
        b.switch_to(e);
        b.terminate(Terminator::Ret(ActionRef { kind: ActionKind::Drop, target: None }));
        let f = b.finish();
        let m = module_with_counter();
        let mut st = DeviceState::new(&m);
        let mut env = ExecEnv::default();

        let mut args = vec![vec![20u64]];
        let r = execute(&f, &m, &mut st, &mut args, &mut env).unwrap();
        assert_eq!(r.action, ActionKind::Reflect);

        let mut args = vec![vec![2u64]];
        let r = execute(&f, &m, &mut st, &mut args, &mut env).unwrap();
        assert_eq!(r.action, ActionKind::Drop);
    }

    #[test]
    fn atomic_updates_memory_and_writes_arg() {
        let mut b = FuncBuilder::new("k", 1);
        let arg = b.add_arg("v", IrTy::I32, 1, true);
        let v = b.emit(InstKind::ArgRead { arg, index: Op::imm(0, IrTy::I32) }, IrTy::I32).unwrap();
        let new = b
            .emit(
                InstKind::AtomicRmw {
                    op: AtomicOp { rmw: AtomicRmw::Add, cond: false, ret_new: true },
                    mem: MemRef { mem: MemId(0), indices: vec![Op::imm(2, IrTy::I32)] },
                    cond: None,
                    operands: vec![Op::Value(v)],
                },
                IrTy::I32,
            )
            .unwrap();
        b.emit(
            InstKind::ArgWrite { arg, index: Op::imm(0, IrTy::I32), value: Op::Value(new) },
            IrTy::I32,
        );
        b.terminate(Terminator::Ret(ActionRef::pass()));
        // ArgWrite defines no results — fix the emit misuse by constructing
        // manually below if needed; emit() handles 0-result kinds.
        let f = b.finish();
        let m = module_with_counter();
        let mut st = DeviceState::new(&m);
        let mut env = ExecEnv::default();
        let mut args = vec![vec![7u64]];
        execute(&f, &m, &mut st, &mut args, &mut env).unwrap();
        assert_eq!(st.read(MemId(0), 2), 7);
        assert_eq!(args[0][0], 7);
        let mut args = vec![vec![5u64]];
        execute(&f, &m, &mut st, &mut args, &mut env).unwrap();
        assert_eq!(st.read(MemId(0), 2), 12);
        assert_eq!(args[0][0], 12);
    }

    #[test]
    fn lookup_hits_and_misses() {
        let m = Module {
            name: "t".into(),
            device: 0,
            globals: vec![GlobalDef {
                name: "cache".into(),
                ty: IrTy::I32,
                dims: vec![2],
                managed: false,
                lookup: true,
                entries: vec![
                    LookupEntry::Exact { key: 1, value: 42 },
                    LookupEntry::Exact { key: 2, value: 43 },
                ],
                origin: None,
            }],
            kernels: vec![],
        };
        let mut b = FuncBuilder::new("k", 1);
        let arg = b.add_arg("k", IrTy::I32, 1, false);
        let out = b.add_arg("v", IrTy::I32, 1, true);
        let k = b.emit(InstKind::ArgRead { arg, index: Op::imm(0, IrTy::I32) }, IrTy::I32).unwrap();
        let (hit, value) = b.emit_lookup(MemId(0), Op::Value(k), IrTy::I32);
        b.emit(
            InstKind::ArgWrite { arg: out, index: Op::imm(0, IrTy::I32), value: Op::Value(value) },
            IrTy::I32,
        );
        let t = b.new_block();
        let e = b.new_block();
        b.terminate(Terminator::CondBr { cond: Op::Value(hit), then_bb: t, else_bb: e });
        b.switch_to(t);
        b.terminate(Terminator::Ret(ActionRef { kind: ActionKind::Reflect, target: None }));
        b.switch_to(e);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let f = b.finish();
        let mut st = DeviceState::new(&m);
        let mut env = ExecEnv::default();

        let mut args = vec![vec![2u64], vec![0u64]];
        let r = execute(&f, &m, &mut st, &mut args, &mut env).unwrap();
        assert_eq!(r.action, ActionKind::Reflect);
        assert_eq!(args[1][0], 43);

        let mut args = vec![vec![9u64], vec![0u64]];
        let r = execute(&f, &m, &mut st, &mut args, &mut env).unwrap();
        assert_eq!(r.action, ActionKind::Pass);
    }

    #[test]
    fn phi_takes_incoming_edge_value() {
        // entry: br cond, t, e; t/e: br j; j: phi [t → 10, e → 20]
        let mut b = FuncBuilder::new("k", 1);
        let arg = b.add_arg("c", IrTy::I32, 1, false);
        let out = b.add_arg("o", IrTy::I32, 1, true);
        let c = b.emit(InstKind::ArgRead { arg, index: Op::imm(0, IrTy::I32) }, IrTy::I32).unwrap();
        let cond = b.icmp(IcmpPred::Ne, Op::Value(c), Op::imm(0, IrTy::I32));
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.terminate(Terminator::CondBr { cond, then_bb: t, else_bb: e });
        b.switch_to(t);
        b.terminate(Terminator::Br(j));
        b.switch_to(e);
        b.terminate(Terminator::Br(j));
        b.switch_to(j);
        let phi = b
            .emit(
                InstKind::Phi {
                    incoming: vec![(t, Op::imm(10, IrTy::I32)), (e, Op::imm(20, IrTy::I32))],
                },
                IrTy::I32,
            )
            .unwrap();
        b.emit(
            InstKind::ArgWrite { arg: out, index: Op::imm(0, IrTy::I32), value: Op::Value(phi) },
            IrTy::I32,
        );
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let f = b.finish();
        let m = module_with_counter();
        let mut st = DeviceState::new(&m);
        let mut env = ExecEnv::default();

        let mut args = vec![vec![1u64], vec![0u64]];
        execute(&f, &m, &mut st, &mut args, &mut env).unwrap();
        assert_eq!(args[1][0], 10);
        let mut args = vec![vec![0u64], vec![0u64]];
        execute(&f, &m, &mut st, &mut args, &mut env).unwrap();
        assert_eq!(args[1][0], 20);
    }

    #[test]
    fn infinite_loop_times_out() {
        let mut b = FuncBuilder::new("k", 1);
        let entry = b.current;
        b.terminate(Terminator::Br(entry));
        let f = b.finish();
        let m = module_with_counter();
        let mut st = DeviceState::new(&m);
        let mut env = ExecEnv::default();
        // A loop with zero instructions spins on the terminator; a loop with
        // one instruction exhausts the step budget.
        let mut b2 = FuncBuilder::new("k2", 1);
        let e2 = b2.current;
        b2.bin(IrBinOp::Add, Op::imm(1, IrTy::I8), Op::imm(1, IrTy::I8), IrTy::I8);
        b2.terminate(Terminator::Br(e2));
        let f2 = b2.finish();
        let _ = f;
        let r = execute(&f2, &m, &mut st, &mut [], &mut env);
        assert_eq!(r.unwrap_err(), ExecError::Timeout);
    }

    #[test]
    fn rand_is_deterministic_per_env() {
        let mut b = FuncBuilder::new("k", 1);
        let out = b.add_arg("o", IrTy::I16, 1, true);
        let r = b.emit(InstKind::Rand, IrTy::I16).unwrap();
        b.emit(
            InstKind::ArgWrite { arg: out, index: Op::imm(0, IrTy::I32), value: Op::Value(r) },
            IrTy::I16,
        );
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let f = b.finish();
        let m = module_with_counter();
        let mut st = DeviceState::new(&m);
        let mut a1 = vec![vec![0u64]];
        let mut a2 = vec![vec![0u64]];
        execute(&f, &m, &mut st, &mut a1, &mut ExecEnv::default()).unwrap();
        execute(&f, &m, &mut st, &mut a2, &mut ExecEnv::default()).unwrap();
        assert_eq!(a1, a2);
        assert!(a1[0][0] <= 0xFFFF);
    }

    #[test]
    fn intrinsic_eval_stable() {
        assert_eq!(
            eval_intrinsic("tna", "crc64", &[1, 2]),
            eval_intrinsic("tna", "crc64", &[1, 2])
        );
        assert_ne!(
            eval_intrinsic("tna", "crc64", &[1, 2]),
            eval_intrinsic("tna", "crc64", &[2, 1])
        );
        // csum16r of zeros is all-ones.
        assert_eq!(eval_intrinsic("v1", "csum16r", &[0]), 0xFFFF);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut b = FuncBuilder::new("k", 1);
        b.emit(
            InstKind::MemRead {
                mem: MemRef { mem: MemId(0), indices: vec![Op::imm(9, IrTy::I32)] },
            },
            IrTy::I32,
        );
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let f = b.finish();
        let m = module_with_counter();
        let mut st = DeviceState::new(&m);
        let r = execute(&f, &m, &mut st, &mut [], &mut ExecEnv::default());
        assert!(matches!(r, Err(ExecError::OutOfBounds(_))));
    }
}
