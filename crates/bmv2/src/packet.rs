//! The in-flight packet representation: parsed headers + metadata.
//!
//! A packet is a dense `Vec<u64>` value store indexed by the program's
//! [`SlotTable`] (one slot per interned field/metadata path), plus bitsets
//! for metadata presence and header validity. The compiled fast path
//! addresses slots directly; the string-keyed methods (`get`, `set_meta`,
//! ...) are a thin compatibility layer that resolves paths through the slot
//! table, spilling into a dynamic overflow map only for paths the program
//! never mentioned (hand-built packets in tests, mostly). The compiled hot
//! path never touches the overflow map and performs no heap allocation for
//! already-interned fields.

use std::collections::HashMap;
use std::sync::Arc;

use crate::compile::{FieldSlot, HeaderId, SlotTable};
use netcl_util::bitset::BitSet;
use netcl_util::idx::Idx;

/// Errors while parsing/deparsing wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// Ran out of bytes while extracting a header.
    Truncated {
        /// Header being extracted.
        header: String,
    },
    /// A referenced header type is unknown.
    UnknownHeader(String),
    /// Non-byte-aligned header (the wire format is byte-aligned).
    Unaligned(String),
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::Truncated { header } => write!(f, "packet truncated in `{header}`"),
            PacketError::UnknownHeader(h) => write!(f, "unknown header `{h}`"),
            PacketError::Unaligned(h) => write!(f, "header `{h}` is not byte aligned"),
        }
    }
}

/// A field-level wire error, mapped to [`PacketError`] with the offending
/// header's name by the parser/deparser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldError {
    /// Width is zero or not a whole number of bytes.
    Unaligned {
        /// The offending width.
        bits: u32,
    },
    /// Not enough bytes left.
    Truncated,
}

/// Overflow store for paths/instances outside the program's slot table.
#[derive(Debug, Clone, Default)]
struct DynPaths {
    /// Prefixed path (`"h:..."` / `"m:..."`) → slot.
    paths: HashMap<String, FieldSlot>,
    /// Instance name → id (ids continue past the static table).
    instances: HashMap<String, HeaderId>,
    /// Names of dynamic instances, by `id - n_static_instances`.
    names: Vec<String>,
}

/// A parsed packet: header fields, validity, metadata, and residual payload.
#[derive(Debug, Clone)]
pub struct Packet {
    slots: Arc<SlotTable>,
    /// Slot values (header fields and metadata share one dense store; the
    /// namespaces get distinct slots at interning time).
    values: Vec<u64>,
    /// Which metadata slots are bound (cleared slots read as 0 and make
    /// bare-name loads fall through to the header namespace).
    meta_present: BitSet,
    /// Valid header instances.
    valid: BitSet,
    /// Instances ever marked valid — gates `order` pushes in O(1).
    seen: BitSet,
    /// First-validation order (deparse emits valid headers in this order).
    order: Vec<HeaderId>,
    /// Overflow for unknown paths; `None` until first needed, never touched
    /// by the compiled path.
    dynamic: Option<Box<DynPaths>>,
    /// Bytes following the parsed headers.
    pub payload: Vec<u8>,
}

impl Default for Packet {
    fn default() -> Packet {
        Packet::with_slots(Arc::new(SlotTable::default()))
    }
}

impl Packet {
    /// Creates an empty packet sized for `slots`.
    pub fn with_slots(slots: Arc<SlotTable>) -> Packet {
        let ns = slots.n_slots();
        let ni = slots.n_instances();
        Packet {
            values: vec![0; ns],
            meta_present: BitSet::new(ns),
            valid: BitSet::new(ni),
            seen: BitSet::new(ni),
            order: Vec::new(),
            dynamic: None,
            payload: Vec::new(),
            slots,
        }
    }

    /// The slot table this packet is shaped by.
    pub fn slot_table(&self) -> &Arc<SlotTable> {
        &self.slots
    }

    /// Re-shapes the packet for `slots` if it currently uses a different
    /// table (callers may hand a `Packet::default()` to `process_into`).
    pub fn ensure_slots(&mut self, slots: &Arc<SlotTable>) {
        if !Arc::ptr_eq(&self.slots, slots) {
            *self = Packet::with_slots(Arc::clone(slots));
        }
    }

    /// Clears all state, keeping allocated capacity (the hot-path reuse
    /// entry point — no allocation happens here).
    pub fn reset(&mut self) {
        self.values.truncate(self.slots.n_slots());
        self.values.fill(0);
        self.meta_present.clear();
        self.valid.clear();
        self.seen.clear();
        self.order.clear();
        self.payload.clear();
        self.dynamic = None;
    }

    // ---- slot-addressed fast path ---------------------------------------

    /// Reads a slot value.
    #[inline]
    pub fn value(&self, slot: FieldSlot) -> u64 {
        self.values[slot.index()]
    }

    /// Writes a slot value.
    #[inline]
    pub fn set_value(&mut self, slot: FieldSlot, v: u64) {
        self.values[slot.index()] = v;
    }

    /// Whether a metadata slot is bound.
    #[inline]
    pub fn meta_present(&self, slot: FieldSlot) -> bool {
        self.meta_present.contains(slot.index())
    }

    /// Binds a metadata slot.
    #[inline]
    pub fn set_meta_slot(&mut self, slot: FieldSlot, v: u64) {
        self.values[slot.index()] = v;
        self.meta_present.insert(slot.index());
    }

    /// Unbinds a metadata slot (reads fall back to 0 / the header
    /// namespace).
    #[inline]
    pub fn clear_meta_slot(&mut self, slot: FieldSlot) {
        self.values[slot.index()] = 0;
        self.meta_present.remove(slot.index());
    }

    /// Header validity by instance id.
    #[inline]
    pub fn is_valid_id(&self, inst: HeaderId) -> bool {
        self.valid.contains(inst.index())
    }

    /// Marks a header (in)valid — O(1); the `seen` bitset preserves the
    /// first-validation deparse order without scanning `order`.
    #[inline]
    pub fn set_valid_id(&mut self, inst: HeaderId, valid: bool) {
        if valid {
            self.valid.insert(inst.index());
            if !self.seen.contains(inst.index()) {
                self.seen.insert(inst.index());
                self.order.push(inst);
            }
        } else {
            self.valid.remove(inst.index());
        }
    }

    /// Instance ids in first-validation order.
    pub fn order_ids(&self) -> &[HeaderId] {
        &self.order
    }

    /// Resolves an instance id to its name (static table first, then the
    /// packet's dynamic overflow).
    pub fn instance_name(&self, id: HeaderId) -> &str {
        if let Some(n) = self.slots.instance_name(id) {
            return n;
        }
        let base = self.slots.n_instances();
        self.dynamic
            .as_ref()
            .and_then(|d| d.names.get(id.index() - base))
            .map(|s| s.as_str())
            .unwrap_or("")
    }

    // ---- string compatibility layer -------------------------------------

    /// Reads a header field (0 when missing).
    pub fn get(&self, path: &str) -> u64 {
        match self.resolve('h', path) {
            Some(s) => self.values[s.index()],
            None => 0,
        }
    }

    /// Writes a header field.
    pub fn set(&mut self, path: &str, value: u64) {
        let s = self.resolve_or_insert('h', path);
        self.values[s.index()] = value;
    }

    /// Reads metadata (zero default).
    pub fn get_meta(&self, name: &str) -> u64 {
        match self.resolve('m', name) {
            Some(s) => self.values[s.index()],
            None => 0,
        }
    }

    /// Writes metadata.
    pub fn set_meta(&mut self, name: &str, value: u64) {
        let s = self.resolve_or_insert('m', name);
        self.values[s.index()] = value;
        self.meta_present.ensure_len(s.index() + 1);
        self.meta_present.insert(s.index());
    }

    /// Reads metadata only if bound (the interpreter's bare-name namespace
    /// probe).
    pub fn meta_opt(&self, name: &str) -> Option<u64> {
        let s = self.resolve('m', name)?;
        if self.meta_present.contains(s.index()) {
            Some(self.values[s.index()])
        } else {
            None
        }
    }

    /// Unbinds a metadata name.
    pub fn meta_remove(&mut self, name: &str) {
        if let Some(s) = self.resolve('m', name) {
            self.values[s.index()] = 0;
            self.meta_present.remove(s.index());
        }
    }

    /// Header validity.
    pub fn is_valid(&self, instance: &str) -> bool {
        match self.resolve_instance(instance) {
            Some(id) => self.valid.contains(id.index()),
            None => false,
        }
    }

    /// Marks a header (in)valid, preserving first-validation order.
    pub fn set_valid(&mut self, instance: &str, valid: bool) {
        if !valid {
            // Invalidation of a never-seen instance is a no-op; avoid
            // allocating a dynamic id for it.
            if let Some(id) = self.resolve_instance(instance) {
                self.valid.remove(id.index());
            }
            return;
        }
        let id = self.resolve_or_insert_instance(instance);
        self.set_valid_id(id, true);
    }

    /// Instance names in first-validation order (test/diagnostic helper).
    pub fn order_names(&self) -> Vec<String> {
        self.order.iter().map(|&id| self.instance_name(id).to_string()).collect()
    }

    // ---- resolution -----------------------------------------------------

    fn resolve(&self, ns: char, path: &str) -> Option<FieldSlot> {
        let hit = match ns {
            'h' => self.slots.header_slot(path),
            _ => self.slots.meta_slot(path),
        };
        if hit.is_some() {
            return hit;
        }
        self.dynamic.as_ref()?.paths.get(&format!("{ns}:{path}")).copied()
    }

    fn resolve_or_insert(&mut self, ns: char, path: &str) -> FieldSlot {
        if let Some(s) = self.resolve(ns, path) {
            return s;
        }
        let slot = FieldSlot(self.values.len() as u32);
        self.values.push(0);
        self.dynamic
            .get_or_insert_with(Default::default)
            .paths
            .insert(format!("{ns}:{path}"), slot);
        slot
    }

    fn resolve_instance(&self, name: &str) -> Option<HeaderId> {
        if let Some(id) = self.slots.instance_id(name) {
            return Some(id);
        }
        self.dynamic.as_ref()?.instances.get(name).copied()
    }

    fn resolve_or_insert_instance(&mut self, name: &str) -> HeaderId {
        if let Some(id) = self.resolve_instance(name) {
            return id;
        }
        let base = self.slots.n_instances();
        let dynamic = self.dynamic.get_or_insert_with(Default::default);
        let id = HeaderId((base + dynamic.names.len()) as u32);
        dynamic.names.push(name.to_string());
        dynamic.instances.insert(name.to_string(), id);
        self.valid.ensure_len(id.index() + 1);
        self.seen.ensure_len(id.index() + 1);
        id
    }
}

/// Reads `bits` (byte-aligned, big-endian network order) from `bytes` at
/// `*cursor`, advancing it.
pub fn read_field(bytes: &[u8], cursor: &mut usize, bits: u32) -> Result<u64, FieldError> {
    if bits == 0 || !bits.is_multiple_of(8) {
        return Err(FieldError::Unaligned { bits });
    }
    let nbytes = (bits / 8) as usize;
    if *cursor + nbytes > bytes.len() {
        return Err(FieldError::Truncated);
    }
    let mut v = 0u64;
    for i in 0..nbytes {
        v = (v << 8) | bytes[*cursor + i] as u64;
    }
    *cursor += nbytes;
    Ok(v)
}

/// Appends `bits` of `value` in network order.
pub fn write_field(out: &mut Vec<u8>, value: u64, bits: u32) -> Result<(), FieldError> {
    if bits == 0 || !bits.is_multiple_of(8) {
        return Err(FieldError::Unaligned { bits });
    }
    let nbytes = (bits / 8) as usize;
    for i in (0..nbytes).rev() {
        out.push((value >> (8 * i)) as u8);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_roundtrip() {
        let mut out = Vec::new();
        write_field(&mut out, 0xDEAD, 16).unwrap();
        write_field(&mut out, 0xBEEFCAFE, 32).unwrap();
        write_field(&mut out, 7, 8).unwrap();
        let mut cur = 0;
        assert_eq!(read_field(&out, &mut cur, 16), Ok(0xDEAD));
        assert_eq!(read_field(&out, &mut cur, 32), Ok(0xBEEFCAFE));
        assert_eq!(read_field(&out, &mut cur, 8), Ok(7));
        assert_eq!(cur, out.len());
    }

    #[test]
    fn truncation_detected() {
        let bytes = [1u8, 2];
        let mut cur = 0;
        assert_eq!(read_field(&bytes, &mut cur, 32), Err(FieldError::Truncated));
        assert_eq!(cur, 0, "failed read must not advance the cursor");
    }

    #[test]
    fn unaligned_widths_rejected() {
        let bytes = [1u8, 2, 3, 4];
        let mut cur = 0;
        assert_eq!(read_field(&bytes, &mut cur, 12), Err(FieldError::Unaligned { bits: 12 }));
        assert_eq!(read_field(&bytes, &mut cur, 0), Err(FieldError::Unaligned { bits: 0 }));
        assert_eq!(cur, 0);
        let mut out = Vec::new();
        assert_eq!(write_field(&mut out, 0xFFF, 12), Err(FieldError::Unaligned { bits: 12 }));
        assert_eq!(write_field(&mut out, 1, 0), Err(FieldError::Unaligned { bits: 0 }));
        assert!(out.is_empty(), "failed write must not emit bytes");
    }

    #[test]
    fn validity_tracks_order() {
        let mut p = Packet::default();
        p.set_valid("ncl", true);
        p.set_valid("args_c1", true);
        p.set_valid("ncl", true); // re-validation keeps position
        assert_eq!(p.order_names(), vec!["ncl".to_string(), "args_c1".to_string()]);
        p.set_valid("args_c1", false);
        assert!(!p.is_valid("args_c1"));
        assert!(p.is_valid("ncl"));
        // Re-validating after invalidation keeps the original slot, as the
        // old order-scan implementation did.
        p.set_valid("args_c1", true);
        assert_eq!(p.order_names(), vec!["ncl".to_string(), "args_c1".to_string()]);
    }

    #[test]
    fn metadata_zero_default() {
        let p = Packet::default();
        assert_eq!(p.get_meta("anything"), 0);
        assert_eq!(p.get("ncl.src"), 0);
    }

    #[test]
    fn meta_and_header_namespaces_do_not_alias() {
        let mut p = Packet::default();
        p.set_meta("x", 42);
        p.set("x", 7);
        assert_eq!(p.get_meta("x"), 42);
        assert_eq!(p.get("x"), 7);
        assert_eq!(p.meta_opt("x"), Some(42));
        p.meta_remove("x");
        assert_eq!(p.meta_opt("x"), None);
        assert_eq!(p.get_meta("x"), 0);
        assert_eq!(p.get("x"), 7, "removing metadata must not clear the header field");
    }

    #[test]
    fn reset_clears_dynamic_state() {
        let mut p = Packet::default();
        p.set("a.b", 9);
        p.set_valid("a", true);
        p.payload = vec![1, 2, 3];
        p.reset();
        assert_eq!(p.get("a.b"), 0);
        assert!(!p.is_valid("a"));
        assert!(p.order_ids().is_empty());
        assert!(p.payload.is_empty());
    }
}
