//! Dead code elimination.
//!
//! Removes side-effect-free instructions with no used results and blocks
//! unreachable from the entry (fixing up φ-nodes of their successors).

use netcl_ir::dom::reverse_postorder;
use netcl_ir::func::{Function, InstKind, Terminator};
use netcl_ir::types::Operand;
use netcl_ir::ValueId;
use std::collections::HashSet;

/// Runs DCE on `f`; returns whether anything was removed.
pub fn run_on_function(f: &mut Function) -> bool {
    let mut changed = remove_unreachable_blocks(f);
    changed |= remove_dead_instructions(f);
    changed
}

fn remove_dead_instructions(f: &mut Function) -> bool {
    // Compute the live set by backwards propagation to handle chains of
    // dead instructions in one pass (iterate until fixpoint).
    let mut used: HashSet<ValueId> = HashSet::new();
    loop {
        let mut grew = false;
        for b in f.blocks.iter() {
            for inst in &b.insts {
                let keep =
                    inst.kind.has_side_effects() || inst.results.iter().any(|r| used.contains(r));
                if keep {
                    for op in inst.kind.operands() {
                        if let Operand::Value(v) = op {
                            grew |= used.insert(v);
                        }
                    }
                }
            }
            match &b.term {
                Terminator::CondBr { cond: Operand::Value(v), .. } => {
                    grew |= used.insert(*v);
                }
                Terminator::Ret(a) => {
                    if let Some(Operand::Value(v)) = a.target {
                        grew |= used.insert(v);
                    }
                }
                _ => {}
            }
        }
        if !grew {
            break;
        }
    }
    let mut changed = false;
    for b in f.blocks.iter_mut() {
        let before = b.insts.len();
        b.insts.retain(|inst| {
            inst.kind.has_side_effects() || inst.results.iter().any(|r| used.contains(r))
        });
        changed |= b.insts.len() != before;
    }
    changed
}

fn remove_unreachable_blocks(f: &mut Function) -> bool {
    let reachable: HashSet<_> = reverse_postorder(f).into_iter().collect();
    if reachable.len() == f.blocks.len() {
        return false;
    }
    let mut changed = false;
    // Empty out unreachable blocks (ids stay stable; empty blocks with a
    // self-branch are ignored by all later passes and the printer).
    let ids: Vec<_> = f.blocks.indices().collect();
    for bid in ids {
        if !reachable.contains(&bid) {
            let b = &mut f.blocks[bid];
            if !b.insts.is_empty() || !matches!(b.term, Terminator::Br(x) if x == bid) {
                b.insts.clear();
                b.term = Terminator::Br(bid); // inert self-loop marker
                changed = true;
            }
        }
    }
    // Drop φ incomings that came from now-unreachable blocks.
    for bid in f.blocks.indices().collect::<Vec<_>>() {
        if !reachable.contains(&bid) {
            continue;
        }
        for inst in &mut f.blocks[bid].insts {
            if let InstKind::Phi { incoming } = &mut inst.kind {
                let before = incoming.len();
                incoming.retain(|(p, _)| reachable.contains(p));
                changed |= incoming.len() != before;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcl_ir::func::{ActionRef, FuncBuilder};
    use netcl_ir::types::{IrBinOp, IrTy, Operand as Op};

    #[test]
    fn removes_dead_chain() {
        let mut b = FuncBuilder::new("k", 1);
        let x = b.bin(IrBinOp::Add, Op::imm(1, IrTy::I32), Op::imm(2, IrTy::I32), IrTy::I32);
        let _y = b.bin(IrBinOp::Mul, x, Op::imm(3, IrTy::I32), IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut f = b.finish();
        assert!(run_on_function(&mut f));
        assert_eq!(f.inst_count(), 0);
    }

    #[test]
    fn keeps_side_effects_and_their_inputs() {
        let mut b = FuncBuilder::new("k", 1);
        let out = b.add_arg("o", IrTy::I32, 1, true);
        let x = b.bin(IrBinOp::Add, Op::imm(1, IrTy::I32), Op::imm(2, IrTy::I32), IrTy::I32);
        b.emit(InstKind::ArgWrite { arg: out, index: Op::imm(0, IrTy::I32), value: x }, IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut f = b.finish();
        run_on_function(&mut f);
        assert_eq!(f.inst_count(), 2);
    }

    #[test]
    fn keeps_condbr_inputs() {
        let mut b = FuncBuilder::new("k", 1);
        let t = b.new_block();
        let e = b.new_block();
        let arg = b.add_arg("x", IrTy::I32, 1, false);
        let x = b.emit(InstKind::ArgRead { arg, index: Op::imm(0, IrTy::I32) }, IrTy::I32).unwrap();
        let c = b.icmp(netcl_ir::types::IcmpPred::Eq, Op::Value(x), Op::imm(0, IrTy::I32));
        b.terminate(Terminator::CondBr { cond: c, then_bb: t, else_bb: e });
        b.switch_to(t);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        b.switch_to(e);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut f = b.finish();
        run_on_function(&mut f);
        assert_eq!(f.inst_count(), 2);
    }

    #[test]
    fn clears_unreachable_blocks() {
        let mut b = FuncBuilder::new("k", 1);
        let dead = b.new_block();
        b.terminate(Terminator::Ret(ActionRef::pass()));
        b.switch_to(dead);
        b.bin(IrBinOp::Add, Op::imm(1, IrTy::I32), Op::imm(2, IrTy::I32), IrTy::I32);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut f = b.finish();
        assert!(run_on_function(&mut f));
        assert!(f.blocks[dead].insts.is_empty());
    }

    #[test]
    fn atomics_never_removed() {
        use netcl_ir::func::{MemId, MemRef};
        let mut b = FuncBuilder::new("k", 1);
        b.emit(
            InstKind::AtomicRmw {
                op: netcl_sema::builtins::AtomicOp {
                    rmw: netcl_sema::builtins::AtomicRmw::Inc,
                    cond: false,
                    ret_new: false,
                },
                mem: MemRef { mem: MemId(0), indices: vec![Op::imm(0, IrTy::I32)] },
                cond: None,
                operands: vec![],
            },
            IrTy::I32,
        );
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let mut f = b.finish();
        run_on_function(&mut f);
        assert_eq!(f.inst_count(), 1);
    }
}
