//! A hermetic, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates, so this shim provides the
//! subset of the criterion API the `benches/` harness uses: `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Timing is a simple
//! warmup-then-measure wall-clock loop; results print as
//! `name: median_ns ns/iter (n iters)`.

use std::time::Instant;

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `f` over the bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup to populate caches / lazy statics.
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {
    sample_size: u64,
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: 10, _parent: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let iters = if self.sample_size == 0 { 10 } else { self.sample_size };
        run_one(name, iters, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration budget for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Ends the group (printing is immediate; nothing buffered).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u64, f: &mut F) {
    let mut b = Bencher { iters: iters.max(1), elapsed_ns: 0 };
    f(&mut b);
    let per = b.elapsed_ns / b.iters.max(1) as u128;
    println!("bench {label}: {per} ns/iter ({} iters)", b.iters);
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
