// CALC_dev1 — generated for Intel Tofino (TNA)
#include <core.p4>
#include <tna.p4>

header ncl_t {
    bit<16> src;
    bit<16> dst;
    bit<16> from;
    bit<16> to;
    bit<8> comp;
    bit<8> action;
    bit<16> target;
}

header args_c1_t {
    bit<8> a0_op;
    bit<32> a1_a;
    bit<32> a2_b;
    bit<32> a3_result;
}

parser IgParser(packet_in pkt, out headers_t hdr) {
    state start {
        pkt.extract(hdr.ncl);
        transition select(hdr.ncl.comp) {
            1: parse_c1;
            default: accept;
        }
    }
    state parse_c1 {
        pkt.extract(hdr.args_c1);
        transition accept;
    }
}

control Ig(inout headers_t hdr, inout metadata_t meta) {
    bit<16> egress_port;
    bit<32> k1_t41;
    bit<1> k1_t42;
    bit<32> k1_t43;
    bit<1> k1_t44;
    bit<32> k1_t45;
    bit<1> k1_t46;
    bit<32> k1_t47;
    bit<1> k1_t48;
    bit<32> k1_t49;
    bit<1> k1_t50;
    bit<32> k1_t51;
    bit<8> k1_l0_op;
    bit<32> k1_l1_a;
    bit<32> k1_l2_b;
    action set_egress(bit<16> port) {
        meta.egress_port = port;
    }
    table l2_fwd {
        key = { hdr.ncl.dst : exact }
        actions = { set_egress; NoAction; }
        default_action = NoAction();
        size = 64;
    }
    apply {
        if ((hdr.ncl.isValid() && (hdr.ncl.to == 16w1))) {
            if ((hdr.ncl.comp == 8w1)) {
                meta.k1_t41 = (bit<32>)(hdr.args_c1.a0_op);
                meta.k1_t42 = (bit<1>)((meta.k1_t41 == 32w43));
                meta.k1_t43 = (hdr.args_c1.a1_a + hdr.args_c1.a2_b);
                meta.k1_t44 = (bit<1>)((meta.k1_t41 == 32w45));
                meta.k1_t45 = (hdr.args_c1.a1_a - hdr.args_c1.a2_b);
                meta.k1_t46 = (bit<1>)((meta.k1_t41 == 32w38));
                meta.k1_t47 = (hdr.args_c1.a1_a & hdr.args_c1.a2_b);
                meta.k1_t48 = (bit<1>)((meta.k1_t41 == 32w124));
                meta.k1_t49 = (hdr.args_c1.a1_a | hdr.args_c1.a2_b);
                meta.k1_t50 = (bit<1>)((meta.k1_t41 == 32w94));
                meta.k1_t51 = (hdr.args_c1.a1_a ^ hdr.args_c1.a2_b);
                if ((meta.k1_t42 == 1w1)) {
                    hdr.args_c1.a3_result = meta.k1_t43;
                }
                if ((meta.k1_t44 == 1w1)) {
                    hdr.args_c1.a3_result = meta.k1_t45;
                }
                if ((meta.k1_t46 == 1w1)) {
                    hdr.args_c1.a3_result = meta.k1_t47;
                }
                if ((meta.k1_t48 == 1w1)) {
                    hdr.args_c1.a3_result = meta.k1_t49;
                }
                if ((meta.k1_t50 == 1w1)) {
                    hdr.args_c1.a3_result = meta.k1_t51;
                }
                hdr.ncl.action = 8w5;
            }
        }
        l2_fwd.apply();
    }
}

