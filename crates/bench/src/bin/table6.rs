//! Prints the table6 reproduction (see EXPERIMENTS.md).
fn main() {
    print!("{}", netcl_bench::report_table6());
}
