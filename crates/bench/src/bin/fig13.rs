//! Prints the fig13 reproduction (see EXPERIMENTS.md).
fn main() {
    print!("{}", netcl_bench::report_fig13());
}
