//! CFG orders and dominance.
//!
//! Implements reverse postorder, the Cooper–Harvey–Kennedy iterative
//! dominator algorithm, and dominance frontiers. Used by mem2reg (φ
//! placement), hoisting (nearest common dominator), the distance checks of
//! §VI-B, and the code generator's lexical-scope construction.

use crate::func::{BlockId, Function};
use netcl_util::idx::{Idx, IndexVec};
use std::collections::HashMap;

/// Reverse postorder of reachable blocks starting at the entry.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut visited = vec![false; n];
    let mut postorder = Vec::with_capacity(n);
    // Iterative DFS with explicit successor cursor.
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry, 0)];
    visited[f.entry.index()] = true;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = f.blocks[b].term.successors();
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if s.index() >= n {
                continue; // malformed target; the verifier reports it
            }
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            postorder.push(b);
            stack.pop();
        }
    }
    postorder.reverse();
    postorder
}

/// Dominator tree over a function's reachable blocks.
#[derive(Debug)]
pub struct DomTree {
    /// Immediate dominator per block (entry maps to itself).
    pub idom: HashMap<BlockId, BlockId>,
    /// Reverse postorder used to build the tree.
    pub rpo: Vec<BlockId>,
    rpo_index: HashMap<BlockId, usize>,
}

impl DomTree {
    /// Computes dominators (Cooper–Harvey–Kennedy).
    pub fn compute(f: &Function) -> DomTree {
        let rpo = reverse_postorder(f);
        let rpo_index: HashMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let preds = f.predecessors();
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(f.entry, f.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b] {
                    if !idom.contains_key(&p) {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, rpo, rpo_index }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom.get(&cur) {
                Some(&p) if p != cur => cur = p,
                _ => return false,
            }
        }
    }

    /// Nearest common dominator of two blocks.
    pub fn nearest_common_dominator(&self, a: BlockId, b: BlockId) -> BlockId {
        intersect(&self.idom, &self.rpo_index, a, b)
    }

    /// Immediate dominator (None for the entry).
    pub fn immediate_dominator(&self, b: BlockId) -> Option<BlockId> {
        match self.idom.get(&b) {
            Some(&p) if p != b => Some(p),
            _ => None,
        }
    }

    /// Whether a block is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index.contains_key(&b)
    }

    /// Dominance frontiers (Cytron et al.), for φ placement.
    pub fn dominance_frontiers(&self, f: &Function) -> IndexVec<BlockId, Vec<BlockId>> {
        let preds = f.predecessors();
        let mut df: IndexVec<BlockId, Vec<BlockId>> =
            f.blocks.indices().map(|_| Vec::new()).collect();
        for &b in &self.rpo {
            if preds[b].len() < 2 {
                continue;
            }
            let Some(&id) = self.idom.get(&b) else { continue };
            for &p in &preds[b] {
                if !self.is_reachable(p) {
                    continue;
                }
                let mut runner = p;
                while runner != id {
                    if !df[runner].contains(&b) {
                        df[runner].push(b);
                    }
                    match self.immediate_dominator(runner) {
                        Some(next) => runner = next,
                        None => break,
                    }
                }
            }
        }
        df
    }
}

fn intersect(
    idom: &HashMap<BlockId, BlockId>,
    rpo_index: &HashMap<BlockId, usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[&a] > rpo_index[&b] {
            a = idom[&a];
        }
        while rpo_index[&b] > rpo_index[&a] {
            b = idom[&b];
        }
    }
    a
}

/// Minimum number of conditional branches on any path from the entry to each
/// block — the paper's "approximate distance" metric for the §VI-B
/// same-stage memory check ("we count the minimum number of conditional
/// branches required to reach each access from the entry block").
pub fn min_branch_depth(f: &Function) -> IndexVec<BlockId, u32> {
    let mut depth: IndexVec<BlockId, u32> = f.blocks.indices().map(|_| u32::MAX).collect();
    depth[f.entry] = 0;
    // The CFG is a DAG at this point, so one pass in RPO converges; fall back
    // to fixpoint iteration to stay correct on cyclic inputs.
    let rpo = reverse_postorder(f);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            let d = depth[b];
            if d == u32::MAX {
                continue;
            }
            let succs = f.blocks[b].term.successors();
            let cost = if succs.len() > 1 { 1 } else { 0 };
            for s in succs {
                let nd = d + cost;
                if nd < depth[s] {
                    depth[s] = nd;
                    changed = true;
                }
            }
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{ActionRef, FuncBuilder, Terminator};
    use crate::types::{IrTy, Operand};

    /// Builds the classic diamond: entry → {t, e} → join.
    fn diamond() -> (Function, BlockId, BlockId, BlockId, BlockId) {
        let mut b = FuncBuilder::new("k", 1);
        let entry = b.current;
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.terminate(Terminator::CondBr { cond: Operand::imm(1, IrTy::I1), then_bb: t, else_bb: e });
        b.switch_to(t);
        b.terminate(Terminator::Br(j));
        b.switch_to(e);
        b.terminate(Terminator::Br(j));
        b.switch_to(j);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        (b.finish(), entry, t, e, j)
    }

    #[test]
    fn rpo_starts_at_entry_ends_at_exit() {
        let (f, entry, _, _, j) = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], entry);
        assert_eq!(*rpo.last().unwrap(), j);
    }

    #[test]
    fn diamond_dominance() {
        let (f, entry, t, e, j) = diamond();
        let dt = DomTree::compute(&f);
        assert!(dt.dominates(entry, j));
        assert!(dt.dominates(entry, t));
        assert!(!dt.dominates(t, j));
        assert!(!dt.dominates(e, j));
        assert_eq!(dt.immediate_dominator(j), Some(entry));
        assert_eq!(dt.nearest_common_dominator(t, e), entry);
        assert_eq!(dt.nearest_common_dominator(t, j), entry);
        assert_eq!(dt.nearest_common_dominator(j, j), j);
    }

    #[test]
    fn diamond_frontiers() {
        let (f, _, t, e, j) = diamond();
        let dt = DomTree::compute(&f);
        let df = dt.dominance_frontiers(&f);
        assert_eq!(df[t], vec![j]);
        assert_eq!(df[e], vec![j]);
        assert!(df[j].is_empty());
    }

    #[test]
    fn branch_depth() {
        let (f, entry, t, e, j) = diamond();
        let d = min_branch_depth(&f);
        assert_eq!(d[entry], 0);
        assert_eq!(d[t], 1);
        assert_eq!(d[e], 1);
        assert_eq!(d[j], 1);
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let mut b = FuncBuilder::new("k", 1);
        let dead = b.new_block();
        b.terminate(Terminator::Ret(ActionRef::pass()));
        b.switch_to(dead);
        b.terminate(Terminator::Ret(ActionRef::pass()));
        let f = b.finish();
        let dt = DomTree::compute(&f);
        assert!(dt.is_reachable(f.entry));
        assert!(!dt.is_reachable(dead));
    }

    #[test]
    fn nested_diamond_dominance() {
        // entry → {a, b}; a → {c, d} → m → j; b → j
        let mut fb = FuncBuilder::new("k", 1);
        let entry = fb.current;
        let a = fb.new_block();
        let bb = fb.new_block();
        let c = fb.new_block();
        let d = fb.new_block();
        let m = fb.new_block();
        let j = fb.new_block();
        let cnd = Operand::imm(1, IrTy::I1);
        fb.terminate(Terminator::CondBr { cond: cnd, then_bb: a, else_bb: bb });
        fb.switch_to(a);
        fb.terminate(Terminator::CondBr { cond: cnd, then_bb: c, else_bb: d });
        fb.switch_to(c);
        fb.terminate(Terminator::Br(m));
        fb.switch_to(d);
        fb.terminate(Terminator::Br(m));
        fb.switch_to(m);
        fb.terminate(Terminator::Br(j));
        fb.switch_to(bb);
        fb.terminate(Terminator::Br(j));
        fb.switch_to(j);
        fb.terminate(Terminator::Ret(ActionRef::pass()));
        let f = fb.finish();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.immediate_dominator(m), Some(a));
        assert_eq!(dt.immediate_dominator(j), Some(entry));
        assert!(dt.dominates(a, m));
        assert!(!dt.dominates(a, j));
        let depth = min_branch_depth(&f);
        assert_eq!(depth[m], 2);
        assert_eq!(depth[j], 1); // via bb
    }
}
