//! Property-based coverage for the workload generator (ISSUE 7): the Zipf
//! sampler is deterministic per seed and respects its skew parameter, and
//! randomly-sized fat-trees are well-formed — every host reachable, no
//! duplicate links, the Al-Fares node-count formulas hold, and the pod
//! partition covers every node exactly once.
//!
//! ISSUE 10 extends the suite to the event-weight-balanced partitioner:
//! LPT packing respects its load bound and is deterministic per input,
//! both on synthetic weights and on random fat-trees with traced flows.

use std::collections::HashSet;

use netcl_net::topo::LinkSpec;
use netcl_net::{FatTree, FlowStream, NodeId, Partition, PrecomputedRoutes, WorkloadRng, Zipf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed → identical sample stream; the stream is pure state, so
    /// two independently-constructed RNGs from one seed cannot diverge.
    #[test]
    fn zipf_sampling_is_deterministic_per_seed(
        seed in any::<u64>(),
        n in 1usize..500,
        s in 0.0f64..2.0,
    ) {
        let z = Zipf::new(n, s);
        let draw = |seed: u64| {
            let mut rng = WorkloadRng::new(seed);
            (0..64).map(|_| z.sample(&mut rng)).collect::<Vec<u64>>()
        };
        prop_assert_eq!(draw(seed), draw(seed));
        for r in draw(seed) {
            prop_assert!((1..=n as u64).contains(&r), "rank {r} out of 1..={n}");
        }
    }

    /// The model distribution respects the skew: rank probabilities are
    /// non-increasing, sum to one, and rank 1's share grows with `s`
    /// (strictly, once there is more than one rank).
    #[test]
    fn zipf_model_respects_skew(n in 2usize..500, s in 0.1f64..2.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (1..=n).map(|r| z.prob(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "probabilities sum to {total}");
        for r in 1..n {
            prop_assert!(
                z.prob(r) >= z.prob(r + 1),
                "rank {r} ({}) < rank {} ({})", z.prob(r), r + 1, z.prob(r + 1)
            );
        }
        let flat = Zipf::new(n, 0.0);
        prop_assert!(
            z.prob(1) > flat.prob(1),
            "skew {s} must concentrate mass on rank 1 beyond uniform"
        );
        let steeper = Zipf::new(n, s + 0.5);
        prop_assert!(steeper.prob(1) > z.prob(1), "more skew, more rank-1 mass");
    }

    /// Empirical rank-1 frequency tracks the model probability: over 5 000
    /// draws the observed share of rank 1 lands within ±0.05 absolute of
    /// `prob(1)` — a generous bound (σ ≤ 0.007 for a Bernoulli over 5 000
    /// trials) that still catches an off-by-one in the CDF search.
    #[test]
    fn zipf_rank_one_frequency_matches_model(
        seed in any::<u64>(),
        n in 2usize..200,
        s in 0.5f64..1.5,
    ) {
        let z = Zipf::new(n, s);
        let mut rng = WorkloadRng::new(seed);
        let draws = 5_000;
        let ones = (0..draws).filter(|_| z.sample(&mut rng) == 1).count();
        let observed = ones as f64 / draws as f64;
        prop_assert!(
            (observed - z.prob(1)).abs() < 0.05,
            "rank-1 frequency {observed:.4} vs model {:.4} (n={n}, s={s:.2})",
            z.prob(1)
        );
    }

    /// Fat-trees of random even arity are well-formed: the Al-Fares counts
    /// hold (k³/4 hosts, (k/2)² core, k·k/2 edge and agg switches), no
    /// link appears twice, and every host can route to every other host —
    /// walking `next_hop` from src reaches dst within the tree's diameter.
    #[test]
    fn fat_tree_is_well_formed(half_k in 1u16..=4, seed in any::<u64>()) {
        let k = half_k * 2;
        let ft = FatTree::new(k, LinkSpec::default()).unwrap();
        let half = (k / 2) as usize;
        prop_assert_eq!(ft.num_hosts(), half * half * k as usize);
        prop_assert_eq!(ft.core.len(), half * half);
        prop_assert_eq!(ft.edge_by_pod.len(), k as usize);
        prop_assert_eq!(ft.agg_by_pod.len(), k as usize);
        for p in 0..k as usize {
            prop_assert_eq!(ft.edge_by_pod[p].len(), half);
            prop_assert_eq!(ft.agg_by_pod[p].len(), half);
            prop_assert_eq!(ft.hosts_by_pod[p].len(), half * half);
        }

        // No duplicate links: each node's neighbor list has unique peers.
        for node in ft.topology.nodes() {
            let peers: Vec<NodeId> =
                ft.topology.neighbors(node).iter().map(|&(n, _)| n).collect();
            let unique: HashSet<NodeId> = peers.iter().copied().collect();
            prop_assert_eq!(unique.len(), peers.len(), "duplicate link at {:?}", node);
        }

        // Random host pairs route end-to-end: hop-by-hop next_hop walks
        // terminate at the destination within the fat-tree diameter (6).
        let mut rng = WorkloadRng::new(seed);
        for _ in 0..16 {
            let a = ft.hosts[rng.below(ft.hosts.len() as u64) as usize];
            let b = ft.hosts[rng.below(ft.hosts.len() as u64) as usize];
            if a == b {
                continue;
            }
            let dst = NodeId::Host(b);
            let mut at = NodeId::Host(a);
            let mut hops = 0;
            while at != dst {
                let (next, _) = ft
                    .topology
                    .next_hop(at, dst)
                    .unwrap_or_else(|| panic!("no route {at:?} → {dst:?}"));
                at = next;
                hops += 1;
                prop_assert!(hops <= 6, "route {a} → {b} exceeds fat-tree diameter");
            }
        }
    }

    /// The pod partition covers every node exactly once, for any shard
    /// count from 1 to 2k — including counts that don't divide the pod or
    /// core count evenly.
    #[test]
    fn fat_tree_partition_is_exact_cover(half_k in 1u16..=4, shards in 1usize..=16) {
        let k = half_k * 2;
        let ft = FatTree::new(k, LinkSpec::default()).unwrap();
        let p = ft.partition(shards);
        prop_assert_eq!(p.num_shards(), shards);
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut total = 0usize;
        for group in p.groups() {
            for &node in group {
                prop_assert!(seen.insert(node), "{:?} assigned twice", node);
                total += 1;
            }
        }
        let all: HashSet<NodeId> = ft.topology.nodes().into_iter().collect();
        prop_assert_eq!(total, all.len());
        prop_assert_eq!(seen, all);
    }

    /// The LPT packer honors the classic guarantee — busiest shard ≤
    /// total/shards + heaviest unit — and is a pure function of its
    /// input: same units, same fingerprint and same predicted loads.
    #[test]
    fn lpt_packing_is_bounded_and_deterministic(
        weights in proptest::collection::vec(0u64..1_000, 1..48),
        shards in 1usize..=8,
    ) {
        let units = |ws: &[u64]| -> Vec<(Vec<NodeId>, u64)> {
            ws.iter().enumerate().map(|(i, &w)| (vec![NodeId::Host(i as u32)], w)).collect()
        };
        let (p, loads) = Partition::balanced_with_weights(units(&weights), shards);
        let (p2, loads2) = Partition::balanced_with_weights(units(&weights), shards);
        prop_assert_eq!(p.fingerprint(), p2.fingerprint());
        prop_assert_eq!(&loads, &loads2);
        prop_assert_eq!(loads.len(), shards.max(1));
        let total: u64 = weights.iter().sum();
        prop_assert_eq!(loads.iter().sum::<u64>(), total);
        let max_unit = weights.iter().copied().max().unwrap_or(0);
        let max_load = loads.iter().copied().max().unwrap_or(0);
        prop_assert!(
            max_load <= total / shards as u64 + max_unit,
            "LPT bound violated: busiest {max_load} > {total}/{shards} + {max_unit}"
        );
    }
}

proptest! {
    // Each case precomputes a routing forest and traces a flow set, so
    // keep the case count below the default 64.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The event-weight-balanced fat-tree partitioner (ISSUE 10): on
    /// random arities, shard counts, and Zipf flow sets, the partition is
    /// an exact node cover, deterministic per (topology, workload) — same
    /// fingerprint on re-trace — and its busiest shard carries at most
    /// the LPT bound (total/shards + heaviest unit, units measured by
    /// giving each one its own shard).
    #[test]
    fn balanced_fat_tree_partition_bounds_busiest_shard(
        half_k in 2u16..=4,
        shards in 2usize..=8,
        seed in any::<u64>(),
    ) {
        let k = half_k * 2;
        let ft = FatTree::new(k, LinkSpec::default()).unwrap();
        let routes = PrecomputedRoutes::new(&ft.topology);
        let zipf = Zipf::new(ft.num_hosts(), 0.99);
        let half = (k / 2) as usize;
        // The same scatter the sim_sharded bench applies to Zipf ranks.
        let pairs: Vec<(u32, u16)> = FlowStream::new(seed, &ft.hosts, &zipf, 200, 10)
            .map(|f| {
                let idx = ((f.key as usize - 1) * 2_654_435_761) % ft.num_hosts();
                let pod = idx / (half * half);
                let within = (idx % (half * half)) / half;
                (f.src, ft.edge_by_pod[pod][within])
            })
            .collect();
        let (p, loads) = ft.partition_balanced(&routes, pairs.iter().copied(), shards);

        // Exact cover of every node.
        let mut seen: HashSet<NodeId> = HashSet::new();
        for group in p.groups() {
            for &node in group {
                prop_assert!(seen.insert(node), "{:?} assigned twice", node);
            }
        }
        let all: HashSet<NodeId> = ft.topology.nodes().into_iter().collect();
        prop_assert_eq!(seen, all);

        // Deterministic per input.
        let (p2, loads2) = ft.partition_balanced(&routes, pairs.iter().copied(), shards);
        prop_assert_eq!(p.fingerprint(), p2.fingerprint());
        prop_assert_eq!(&loads, &loads2);

        // LPT bound, with unit weights observed by isolating every unit
        // (pods and individual core switches) on its own shard.
        let nunits = k as usize + half * half;
        let (_, unit_loads) = ft.partition_balanced(&routes, pairs.iter().copied(), nunits);
        let total: u64 = loads.iter().sum();
        prop_assert_eq!(unit_loads.iter().sum::<u64>(), total);
        let max_unit = unit_loads.iter().copied().max().unwrap_or(0);
        let max_load = loads.iter().copied().max().unwrap_or(0);
        prop_assert!(
            max_load <= total / shards as u64 + max_unit,
            "busiest shard {max_load} exceeds {total}/{shards} + {max_unit} (k={k})"
        );
    }
}
