// AGG_dev1 — generated for v1model
#include <core.p4>
#include <v1model.p4>

header ncl_t {
    bit<16> src;
    bit<16> dst;
    bit<16> from;
    bit<16> to;
    bit<8> comp;
    bit<8> action;
    bit<16> target;
}

header arr_c1_a5_t {
    bit<32> value;
}

header args_c1_t {
    bit<8> a0_ver;
    bit<16> a1_bmp_idx;
    bit<16> a2_agg_idx;
    bit<16> a3_mask;
    bit<8> a4_exp;
}

parser IgParser(packet_in pkt, out headers_t hdr) {
    state start {
        pkt.extract(hdr.ncl);
        transition select(hdr.ncl.comp) {
            1: parse_c1;
            default: accept;
        }
    }
    state parse_c1 {
        pkt.extract(hdr.args_c1);
        pkt.extract(hdr.arr_c1_a5);
        transition accept;
    }
}

control Ig(inout headers_t hdr, inout metadata_t meta) {
    bit<16> egress_port;
    bit<16> k1_t391;
    bit<16> k1_t392;
    bit<16> k1_t393;
    bit<32> k1_t394;
    bit<1> k1_t395;
    bit<16> k1_t396;
    bit<32> k1_t397;
    bit<1> k1_t398;
    bit<32> k1_t400;
    bit<32> k1_t402;
    bit<32> k1_t404;
    bit<32> k1_t406;
    bit<32> k1_t408;
    bit<32> k1_t410;
    bit<32> k1_t412;
    bit<32> k1_t414;
    bit<32> k1_t416;
    bit<32> k1_t418;
    bit<32> k1_t420;
    bit<32> k1_t422;
    bit<32> k1_t424;
    bit<32> k1_t426;
    bit<32> k1_t428;
    bit<32> k1_t430;
    bit<32> k1_t432;
    bit<32> k1_t434;
    bit<32> k1_t436;
    bit<32> k1_t438;
    bit<32> k1_t440;
    bit<32> k1_t442;
    bit<32> k1_t444;
    bit<32> k1_t446;
    bit<32> k1_t448;
    bit<32> k1_t450;
    bit<32> k1_t452;
    bit<32> k1_t454;
    bit<32> k1_t456;
    bit<32> k1_t458;
    bit<32> k1_t460;
    bit<32> k1_t462;
    bit<32> k1_t463;
    bit<8> k1_t465;
    bit<32> k1_t466;
    bit<32> k1_t467;
    bit<32> k1_t468;
    bit<32> k1_t469;
    bit<32> k1_t470;
    bit<1> k1_t471;
    bit<1> k1_t472;
    bit<32> k1_t475;
    bit<1> k1_t476;
    bit<1> k1_t477;
    bit<32> k1_t480;
    bit<1> k1_t481;
    bit<1> k1_t482;
    bit<32> k1_t485;
    bit<1> k1_t486;
    bit<1> k1_t487;
    bit<32> k1_t490;
    bit<1> k1_t491;
    bit<1> k1_t492;
    bit<32> k1_t495;
    bit<1> k1_t496;
    bit<1> k1_t497;
    bit<32> k1_t500;
    bit<1> k1_t501;
    bit<1> k1_t502;
    bit<32> k1_t505;
    bit<1> k1_t506;
    bit<1> k1_t507;
    bit<32> k1_t510;
    bit<1> k1_t511;
    bit<1> k1_t512;
    bit<32> k1_t515;
    bit<1> k1_t516;
    bit<1> k1_t517;
    bit<32> k1_t520;
    bit<1> k1_t521;
    bit<1> k1_t522;
    bit<32> k1_t525;
    bit<1> k1_t526;
    bit<1> k1_t527;
    bit<32> k1_t530;
    bit<1> k1_t531;
    bit<1> k1_t532;
    bit<32> k1_t535;
    bit<1> k1_t536;
    bit<1> k1_t537;
    bit<32> k1_t540;
    bit<1> k1_t541;
    bit<1> k1_t542;
    bit<32> k1_t545;
    bit<1> k1_t546;
    bit<1> k1_t547;
    bit<32> k1_t550;
    bit<1> k1_t551;
    bit<1> k1_t552;
    bit<32> k1_t555;
    bit<1> k1_t556;
    bit<1> k1_t557;
    bit<32> k1_t560;
    bit<1> k1_t561;
    bit<1> k1_t562;
    bit<32> k1_t565;
    bit<1> k1_t566;
    bit<1> k1_t567;
    bit<32> k1_t570;
    bit<1> k1_t571;
    bit<1> k1_t572;
    bit<32> k1_t575;
    bit<1> k1_t576;
    bit<1> k1_t577;
    bit<32> k1_t580;
    bit<1> k1_t581;
    bit<1> k1_t582;
    bit<32> k1_t585;
    bit<1> k1_t586;
    bit<1> k1_t587;
    bit<32> k1_t590;
    bit<1> k1_t591;
    bit<1> k1_t592;
    bit<32> k1_t595;
    bit<1> k1_t596;
    bit<1> k1_t597;
    bit<32> k1_t600;
    bit<1> k1_t601;
    bit<1> k1_t602;
    bit<32> k1_t605;
    bit<1> k1_t606;
    bit<1> k1_t607;
    bit<32> k1_t610;
    bit<1> k1_t611;
    bit<1> k1_t612;
    bit<32> k1_t615;
    bit<1> k1_t616;
    bit<1> k1_t617;
    bit<32> k1_t620;
    bit<1> k1_t621;
    bit<1> k1_t622;
    bit<32> k1_t625;
    bit<1> k1_t626;
    bit<1> k1_t627;
    bit<32> k1_t630;
    bit<1> k1_t631;
    bit<1> k1_t632;
    bit<32> k1_t635;
    bit<1> k1_t636;
    bit<1> k1_t637;
    bit<8> k1_t638;
    bit<1> k1_t639;
    bit<32> k1_t640;
    bit<1> k1_t641;
    bit<32> k1_t642;
    bit<1> k1_t643;
    bit<32> k1_t644;
    bit<16> k1_t645;
    bit<32> k1_t646;
    bit<32> k1_t647;
    bit<32> k1_t648;
    bit<16> k1_t649;
    bit<16> k1_t650;
    bit<32> k1_t651;
    bit<32> k1_t652;
    bit<32> k1_t653;
    bit<16> k1_t654;
    bit<16> k1_t655;
    bit<32> k1_t656;
    bit<16> k1_t657;
    bit<8> k1_l0_ver;
    bit<16> k1_l1_bmp_idx;
    bit<16> k1_l2_agg_idx;
    bit<16> k1_l3_mask;
    bit<16> k1_l4_bitmap;
    bit<32> k1_l5_seen;
    bit<8> k1_l6_cnt;
    bit<16> k1_l7_bitmap_ph;
    bit<1> k1_rc38;
    bit<1> k1_rc39;
    bit<1> k1_rc40;
    bit<1> k1_rc41;
    bit<1> k1_rc42;
    bit<1> k1_rc43;
    bit<1> k1_rc44;
    bit<1> k1_rc45;
    bit<1> k1_rc46;
    bit<1> k1_rc47;
    bit<1> k1_rc48;
    bit<1> k1_rc49;
    bit<1> k1_rc50;
    bit<1> k1_rc51;
    bit<1> k1_rc52;
    bit<1> k1_rc53;
    bit<1> k1_rc54;
    bit<1> k1_rc55;
    bit<1> k1_rc56;
    bit<1> k1_rc57;
    bit<1> k1_rc58;
    bit<1> k1_rc59;
    bit<1> k1_rc60;
    bit<1> k1_rc61;
    bit<1> k1_rc62;
    bit<1> k1_rc63;
    bit<1> k1_rc64;
    bit<1> k1_rc65;
    bit<1> k1_rc66;
    bit<1> k1_rc67;
    bit<1> k1_rc68;
    bit<1> k1_rc69;
    bit<1> k1_rc70;
    bit<1> k1_rc71;
    register<bit<16>>(32) Bitmap;
    register<bit<32>>(1024) Agg;
    register<bit<8>>(32) Count;
    register<bit<8>>(32) Exp;
    /* RegisterAction ra_Bitmap_0 on Bitmap: atomic_or */
    /* RegisterAction ra_Bitmap_1 on Bitmap: atomic_and */
    /* RegisterAction ra_Bitmap_2 on Bitmap: atomic_and */
    /* RegisterAction ra_Bitmap_3 on Bitmap: atomic_or */
    /* RegisterAction ra_Agg_4 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_5 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_6 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_7 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_8 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_9 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_10 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_11 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_12 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_13 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_14 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_15 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_16 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_17 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_18 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_19 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_20 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_21 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_22 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_23 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_24 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_25 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_26 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_27 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_28 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_29 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_30 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_31 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_32 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_33 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_34 on Agg: atomic_swap */
    /* RegisterAction ra_Agg_35 on Agg: atomic_swap */
    /* RegisterAction ra_Exp_36 on Exp: atomic_swap */
    /* RegisterAction ra_Count_37 on Count: atomic_swap */
    /* RegisterAction ra_Exp_38 on Exp: atomic_cond_max_new */
    /* RegisterAction ra_Agg_39 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_40 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_41 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_42 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_43 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_44 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_45 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_46 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_47 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_48 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_49 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_50 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_51 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_52 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_53 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_54 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_55 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_56 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_57 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_58 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_59 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_60 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_61 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_62 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_63 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_64 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_65 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_66 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_67 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_68 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_69 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Agg_70 on Agg: atomic_cond_add_new */
    /* RegisterAction ra_Count_71 on Count: atomic_cond_dec */
    action set_egress(bit<16> port) {
        meta.egress_port = port;
    }
    table l2_fwd {
        key = { hdr.ncl.dst : exact }
        actions = { set_egress; NoAction; }
        default_action = NoAction();
        size = 64;
    }
    apply {
        if ((hdr.ncl.isValid() && (hdr.ncl.to == 16w1))) {
            if ((hdr.ncl.comp == 8w1)) {
                meta.k1_t391 = hdr.args_c1.a1_bmp_idx;
                meta.k1_t392 = hdr.args_c1.a2_agg_idx;
                meta.k1_t393 = hdr.args_c1.a3_mask;
                meta.k1_t394 = (bit<32>)(hdr.args_c1.a0_ver);
                meta.k1_t395 = (bit<1>)((meta.k1_t394 == 32w0));
                if ((meta.k1_t395 == 1w1)) {
                    meta.k1_t644 = (bit<32>)(meta.k1_t391);
                    meta.k1_t645 = ra_Bitmap_0.execute((((bit<32>)(32w0) * 32w16) + (bit<32>)(meta.k1_t644)));
                    meta.k1_t646 = (bit<32>)(meta.k1_t391);
                    meta.k1_t647 = (bit<32>)(meta.k1_t393);
                    meta.k1_t648 = (meta.k1_t647 ^ 32w4294967295);
                    meta.k1_t649 = (bit<16>)(meta.k1_t648);
                    meta.k1_t650 = ra_Bitmap_1.execute((((bit<32>)(32w1) * 32w16) + (bit<32>)(meta.k1_t646)));
                    meta.k1_l7_bitmap_ph = meta.k1_t645;
                } else {
                    meta.k1_t651 = (bit<32>)(meta.k1_t391);
                    meta.k1_t652 = (bit<32>)(meta.k1_t393);
                    meta.k1_t653 = (meta.k1_t652 ^ 32w4294967295);
                    meta.k1_t654 = (bit<16>)(meta.k1_t653);
                    meta.k1_t655 = ra_Bitmap_2.execute((((bit<32>)(32w0) * 32w16) + (bit<32>)(meta.k1_t651)));
                    meta.k1_t656 = (bit<32>)(meta.k1_t391);
                    meta.k1_t657 = ra_Bitmap_3.execute((((bit<32>)(32w1) * 32w16) + (bit<32>)(meta.k1_t656)));
                    meta.k1_l7_bitmap_ph = meta.k1_t657;
                }
                meta.k1_t396 = meta.k1_l7_bitmap_ph;
                meta.k1_t397 = (bit<32>)(meta.k1_t396);
                meta.k1_t398 = (bit<1>)((meta.k1_t397 == 32w0));
                if ((meta.k1_t398 == 1w1)) {
                    meta.k1_t400 = (bit<32>)(meta.k1_t392);
                    ra_Agg_4.execute((((bit<32>)(32w0) * 32w32) + (bit<32>)(meta.k1_t400)));
                    meta.k1_t402 = (bit<32>)(meta.k1_t392);
                    ra_Agg_5.execute((((bit<32>)(32w1) * 32w32) + (bit<32>)(meta.k1_t402)));
                    meta.k1_t404 = (bit<32>)(meta.k1_t392);
                    ra_Agg_6.execute((((bit<32>)(32w2) * 32w32) + (bit<32>)(meta.k1_t404)));
                    meta.k1_t406 = (bit<32>)(meta.k1_t392);
                    ra_Agg_7.execute((((bit<32>)(32w3) * 32w32) + (bit<32>)(meta.k1_t406)));
                    meta.k1_t408 = (bit<32>)(meta.k1_t392);
                    ra_Agg_8.execute((((bit<32>)(32w4) * 32w32) + (bit<32>)(meta.k1_t408)));
                    meta.k1_t410 = (bit<32>)(meta.k1_t392);
                    ra_Agg_9.execute((((bit<32>)(32w5) * 32w32) + (bit<32>)(meta.k1_t410)));
                    meta.k1_t412 = (bit<32>)(meta.k1_t392);
                    ra_Agg_10.execute((((bit<32>)(32w6) * 32w32) + (bit<32>)(meta.k1_t412)));
                    meta.k1_t414 = (bit<32>)(meta.k1_t392);
                    ra_Agg_11.execute((((bit<32>)(32w7) * 32w32) + (bit<32>)(meta.k1_t414)));
                    meta.k1_t416 = (bit<32>)(meta.k1_t392);
                    ra_Agg_12.execute((((bit<32>)(32w8) * 32w32) + (bit<32>)(meta.k1_t416)));
                    meta.k1_t418 = (bit<32>)(meta.k1_t392);
                    ra_Agg_13.execute((((bit<32>)(32w9) * 32w32) + (bit<32>)(meta.k1_t418)));
                    meta.k1_t420 = (bit<32>)(meta.k1_t392);
                    ra_Agg_14.execute((((bit<32>)(32w10) * 32w32) + (bit<32>)(meta.k1_t420)));
                    meta.k1_t422 = (bit<32>)(meta.k1_t392);
                    ra_Agg_15.execute((((bit<32>)(32w11) * 32w32) + (bit<32>)(meta.k1_t422)));
                    meta.k1_t424 = (bit<32>)(meta.k1_t392);
                    ra_Agg_16.execute((((bit<32>)(32w12) * 32w32) + (bit<32>)(meta.k1_t424)));
                    meta.k1_t426 = (bit<32>)(meta.k1_t392);
                    ra_Agg_17.execute((((bit<32>)(32w13) * 32w32) + (bit<32>)(meta.k1_t426)));
                    meta.k1_t428 = (bit<32>)(meta.k1_t392);
                    ra_Agg_18.execute((((bit<32>)(32w14) * 32w32) + (bit<32>)(meta.k1_t428)));
                    meta.k1_t430 = (bit<32>)(meta.k1_t392);
                    ra_Agg_19.execute((((bit<32>)(32w15) * 32w32) + (bit<32>)(meta.k1_t430)));
                    meta.k1_t432 = (bit<32>)(meta.k1_t392);
                    ra_Agg_20.execute((((bit<32>)(32w16) * 32w32) + (bit<32>)(meta.k1_t432)));
                    meta.k1_t434 = (bit<32>)(meta.k1_t392);
                    ra_Agg_21.execute((((bit<32>)(32w17) * 32w32) + (bit<32>)(meta.k1_t434)));
                    meta.k1_t436 = (bit<32>)(meta.k1_t392);
                    ra_Agg_22.execute((((bit<32>)(32w18) * 32w32) + (bit<32>)(meta.k1_t436)));
                    meta.k1_t438 = (bit<32>)(meta.k1_t392);
                    ra_Agg_23.execute((((bit<32>)(32w19) * 32w32) + (bit<32>)(meta.k1_t438)));
                    meta.k1_t440 = (bit<32>)(meta.k1_t392);
                    ra_Agg_24.execute((((bit<32>)(32w20) * 32w32) + (bit<32>)(meta.k1_t440)));
                    meta.k1_t442 = (bit<32>)(meta.k1_t392);
                    ra_Agg_25.execute((((bit<32>)(32w21) * 32w32) + (bit<32>)(meta.k1_t442)));
                    meta.k1_t444 = (bit<32>)(meta.k1_t392);
                    ra_Agg_26.execute((((bit<32>)(32w22) * 32w32) + (bit<32>)(meta.k1_t444)));
                    meta.k1_t446 = (bit<32>)(meta.k1_t392);
                    ra_Agg_27.execute((((bit<32>)(32w23) * 32w32) + (bit<32>)(meta.k1_t446)));
                    meta.k1_t448 = (bit<32>)(meta.k1_t392);
                    ra_Agg_28.execute((((bit<32>)(32w24) * 32w32) + (bit<32>)(meta.k1_t448)));
                    meta.k1_t450 = (bit<32>)(meta.k1_t392);
                    ra_Agg_29.execute((((bit<32>)(32w25) * 32w32) + (bit<32>)(meta.k1_t450)));
                    meta.k1_t452 = (bit<32>)(meta.k1_t392);
                    ra_Agg_30.execute((((bit<32>)(32w26) * 32w32) + (bit<32>)(meta.k1_t452)));
                    meta.k1_t454 = (bit<32>)(meta.k1_t392);
                    ra_Agg_31.execute((((bit<32>)(32w27) * 32w32) + (bit<32>)(meta.k1_t454)));
                    meta.k1_t456 = (bit<32>)(meta.k1_t392);
                    ra_Agg_32.execute((((bit<32>)(32w28) * 32w32) + (bit<32>)(meta.k1_t456)));
                    meta.k1_t458 = (bit<32>)(meta.k1_t392);
                    ra_Agg_33.execute((((bit<32>)(32w29) * 32w32) + (bit<32>)(meta.k1_t458)));
                    meta.k1_t460 = (bit<32>)(meta.k1_t392);
                    ra_Agg_34.execute((((bit<32>)(32w30) * 32w32) + (bit<32>)(meta.k1_t460)));
                    meta.k1_t462 = (bit<32>)(meta.k1_t392);
                    ra_Agg_35.execute((((bit<32>)(32w31) * 32w32) + (bit<32>)(meta.k1_t462)));
                    meta.k1_t463 = (bit<32>)(meta.k1_t392);
                    meta.k1_t465 = ra_Exp_36.execute((bit<32>)(meta.k1_t463));
                    meta.k1_t466 = (bit<32>)(meta.k1_t392);
                    ra_Count_37.execute((bit<32>)(meta.k1_t466));
                    hdr.ncl.action = 8w1;
                } else {
                    meta.k1_t467 = (bit<32>)(meta.k1_t396);
                    meta.k1_t468 = (bit<32>)(meta.k1_t393);
                    meta.k1_t469 = (meta.k1_t467 & meta.k1_t468);
                    meta.k1_t470 = (bit<32>)(meta.k1_t392);
                    meta.k1_t471 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t472 = (meta.k1_t471 ^ 1w1);
                    meta.k1_rc38 = (bit<1>)((meta.k1_t472 == 1w1));
                    hdr.args_c1.a4_exp = ra_Exp_38.execute((bit<32>)(meta.k1_t470));
                    meta.k1_t475 = (bit<32>)(meta.k1_t392);
                    meta.k1_t476 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t477 = (meta.k1_t476 ^ 1w1);
                    meta.k1_rc39 = (bit<1>)((meta.k1_t477 == 1w1));
                    hdr.arr_c1_a5[0].value = ra_Agg_39.execute((((bit<32>)(32w0) * 32w32) + (bit<32>)(meta.k1_t475)));
                    meta.k1_t480 = (bit<32>)(meta.k1_t392);
                    meta.k1_t481 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t482 = (meta.k1_t481 ^ 1w1);
                    meta.k1_rc40 = (bit<1>)((meta.k1_t482 == 1w1));
                    hdr.arr_c1_a5[1].value = ra_Agg_40.execute((((bit<32>)(32w1) * 32w32) + (bit<32>)(meta.k1_t480)));
                    meta.k1_t485 = (bit<32>)(meta.k1_t392);
                    meta.k1_t486 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t487 = (meta.k1_t486 ^ 1w1);
                    meta.k1_rc41 = (bit<1>)((meta.k1_t487 == 1w1));
                    hdr.arr_c1_a5[2].value = ra_Agg_41.execute((((bit<32>)(32w2) * 32w32) + (bit<32>)(meta.k1_t485)));
                    meta.k1_t490 = (bit<32>)(meta.k1_t392);
                    meta.k1_t491 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t492 = (meta.k1_t491 ^ 1w1);
                    meta.k1_rc42 = (bit<1>)((meta.k1_t492 == 1w1));
                    hdr.arr_c1_a5[3].value = ra_Agg_42.execute((((bit<32>)(32w3) * 32w32) + (bit<32>)(meta.k1_t490)));
                    meta.k1_t495 = (bit<32>)(meta.k1_t392);
                    meta.k1_t496 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t497 = (meta.k1_t496 ^ 1w1);
                    meta.k1_rc43 = (bit<1>)((meta.k1_t497 == 1w1));
                    hdr.arr_c1_a5[4].value = ra_Agg_43.execute((((bit<32>)(32w4) * 32w32) + (bit<32>)(meta.k1_t495)));
                    meta.k1_t500 = (bit<32>)(meta.k1_t392);
                    meta.k1_t501 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t502 = (meta.k1_t501 ^ 1w1);
                    meta.k1_rc44 = (bit<1>)((meta.k1_t502 == 1w1));
                    hdr.arr_c1_a5[5].value = ra_Agg_44.execute((((bit<32>)(32w5) * 32w32) + (bit<32>)(meta.k1_t500)));
                    meta.k1_t505 = (bit<32>)(meta.k1_t392);
                    meta.k1_t506 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t507 = (meta.k1_t506 ^ 1w1);
                    meta.k1_rc45 = (bit<1>)((meta.k1_t507 == 1w1));
                    hdr.arr_c1_a5[6].value = ra_Agg_45.execute((((bit<32>)(32w6) * 32w32) + (bit<32>)(meta.k1_t505)));
                    meta.k1_t510 = (bit<32>)(meta.k1_t392);
                    meta.k1_t511 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t512 = (meta.k1_t511 ^ 1w1);
                    meta.k1_rc46 = (bit<1>)((meta.k1_t512 == 1w1));
                    hdr.arr_c1_a5[7].value = ra_Agg_46.execute((((bit<32>)(32w7) * 32w32) + (bit<32>)(meta.k1_t510)));
                    meta.k1_t515 = (bit<32>)(meta.k1_t392);
                    meta.k1_t516 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t517 = (meta.k1_t516 ^ 1w1);
                    meta.k1_rc47 = (bit<1>)((meta.k1_t517 == 1w1));
                    hdr.arr_c1_a5[8].value = ra_Agg_47.execute((((bit<32>)(32w8) * 32w32) + (bit<32>)(meta.k1_t515)));
                    meta.k1_t520 = (bit<32>)(meta.k1_t392);
                    meta.k1_t521 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t522 = (meta.k1_t521 ^ 1w1);
                    meta.k1_rc48 = (bit<1>)((meta.k1_t522 == 1w1));
                    hdr.arr_c1_a5[9].value = ra_Agg_48.execute((((bit<32>)(32w9) * 32w32) + (bit<32>)(meta.k1_t520)));
                    meta.k1_t525 = (bit<32>)(meta.k1_t392);
                    meta.k1_t526 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t527 = (meta.k1_t526 ^ 1w1);
                    meta.k1_rc49 = (bit<1>)((meta.k1_t527 == 1w1));
                    hdr.arr_c1_a5[10].value = ra_Agg_49.execute((((bit<32>)(32w10) * 32w32) + (bit<32>)(meta.k1_t525)));
                    meta.k1_t530 = (bit<32>)(meta.k1_t392);
                    meta.k1_t531 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t532 = (meta.k1_t531 ^ 1w1);
                    meta.k1_rc50 = (bit<1>)((meta.k1_t532 == 1w1));
                    hdr.arr_c1_a5[11].value = ra_Agg_50.execute((((bit<32>)(32w11) * 32w32) + (bit<32>)(meta.k1_t530)));
                    meta.k1_t535 = (bit<32>)(meta.k1_t392);
                    meta.k1_t536 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t537 = (meta.k1_t536 ^ 1w1);
                    meta.k1_rc51 = (bit<1>)((meta.k1_t537 == 1w1));
                    hdr.arr_c1_a5[12].value = ra_Agg_51.execute((((bit<32>)(32w12) * 32w32) + (bit<32>)(meta.k1_t535)));
                    meta.k1_t540 = (bit<32>)(meta.k1_t392);
                    meta.k1_t541 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t542 = (meta.k1_t541 ^ 1w1);
                    meta.k1_rc52 = (bit<1>)((meta.k1_t542 == 1w1));
                    hdr.arr_c1_a5[13].value = ra_Agg_52.execute((((bit<32>)(32w13) * 32w32) + (bit<32>)(meta.k1_t540)));
                    meta.k1_t545 = (bit<32>)(meta.k1_t392);
                    meta.k1_t546 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t547 = (meta.k1_t546 ^ 1w1);
                    meta.k1_rc53 = (bit<1>)((meta.k1_t547 == 1w1));
                    hdr.arr_c1_a5[14].value = ra_Agg_53.execute((((bit<32>)(32w14) * 32w32) + (bit<32>)(meta.k1_t545)));
                    meta.k1_t550 = (bit<32>)(meta.k1_t392);
                    meta.k1_t551 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t552 = (meta.k1_t551 ^ 1w1);
                    meta.k1_rc54 = (bit<1>)((meta.k1_t552 == 1w1));
                    hdr.arr_c1_a5[15].value = ra_Agg_54.execute((((bit<32>)(32w15) * 32w32) + (bit<32>)(meta.k1_t550)));
                    meta.k1_t555 = (bit<32>)(meta.k1_t392);
                    meta.k1_t556 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t557 = (meta.k1_t556 ^ 1w1);
                    meta.k1_rc55 = (bit<1>)((meta.k1_t557 == 1w1));
                    hdr.arr_c1_a5[16].value = ra_Agg_55.execute((((bit<32>)(32w16) * 32w32) + (bit<32>)(meta.k1_t555)));
                    meta.k1_t560 = (bit<32>)(meta.k1_t392);
                    meta.k1_t561 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t562 = (meta.k1_t561 ^ 1w1);
                    meta.k1_rc56 = (bit<1>)((meta.k1_t562 == 1w1));
                    hdr.arr_c1_a5[17].value = ra_Agg_56.execute((((bit<32>)(32w17) * 32w32) + (bit<32>)(meta.k1_t560)));
                    meta.k1_t565 = (bit<32>)(meta.k1_t392);
                    meta.k1_t566 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t567 = (meta.k1_t566 ^ 1w1);
                    meta.k1_rc57 = (bit<1>)((meta.k1_t567 == 1w1));
                    hdr.arr_c1_a5[18].value = ra_Agg_57.execute((((bit<32>)(32w18) * 32w32) + (bit<32>)(meta.k1_t565)));
                    meta.k1_t570 = (bit<32>)(meta.k1_t392);
                    meta.k1_t571 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t572 = (meta.k1_t571 ^ 1w1);
                    meta.k1_rc58 = (bit<1>)((meta.k1_t572 == 1w1));
                    hdr.arr_c1_a5[19].value = ra_Agg_58.execute((((bit<32>)(32w19) * 32w32) + (bit<32>)(meta.k1_t570)));
                    meta.k1_t575 = (bit<32>)(meta.k1_t392);
                    meta.k1_t576 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t577 = (meta.k1_t576 ^ 1w1);
                    meta.k1_rc59 = (bit<1>)((meta.k1_t577 == 1w1));
                    hdr.arr_c1_a5[20].value = ra_Agg_59.execute((((bit<32>)(32w20) * 32w32) + (bit<32>)(meta.k1_t575)));
                    meta.k1_t580 = (bit<32>)(meta.k1_t392);
                    meta.k1_t581 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t582 = (meta.k1_t581 ^ 1w1);
                    meta.k1_rc60 = (bit<1>)((meta.k1_t582 == 1w1));
                    hdr.arr_c1_a5[21].value = ra_Agg_60.execute((((bit<32>)(32w21) * 32w32) + (bit<32>)(meta.k1_t580)));
                    meta.k1_t585 = (bit<32>)(meta.k1_t392);
                    meta.k1_t586 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t587 = (meta.k1_t586 ^ 1w1);
                    meta.k1_rc61 = (bit<1>)((meta.k1_t587 == 1w1));
                    hdr.arr_c1_a5[22].value = ra_Agg_61.execute((((bit<32>)(32w22) * 32w32) + (bit<32>)(meta.k1_t585)));
                    meta.k1_t590 = (bit<32>)(meta.k1_t392);
                    meta.k1_t591 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t592 = (meta.k1_t591 ^ 1w1);
                    meta.k1_rc62 = (bit<1>)((meta.k1_t592 == 1w1));
                    hdr.arr_c1_a5[23].value = ra_Agg_62.execute((((bit<32>)(32w23) * 32w32) + (bit<32>)(meta.k1_t590)));
                    meta.k1_t595 = (bit<32>)(meta.k1_t392);
                    meta.k1_t596 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t597 = (meta.k1_t596 ^ 1w1);
                    meta.k1_rc63 = (bit<1>)((meta.k1_t597 == 1w1));
                    hdr.arr_c1_a5[24].value = ra_Agg_63.execute((((bit<32>)(32w24) * 32w32) + (bit<32>)(meta.k1_t595)));
                    meta.k1_t600 = (bit<32>)(meta.k1_t392);
                    meta.k1_t601 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t602 = (meta.k1_t601 ^ 1w1);
                    meta.k1_rc64 = (bit<1>)((meta.k1_t602 == 1w1));
                    hdr.arr_c1_a5[25].value = ra_Agg_64.execute((((bit<32>)(32w25) * 32w32) + (bit<32>)(meta.k1_t600)));
                    meta.k1_t605 = (bit<32>)(meta.k1_t392);
                    meta.k1_t606 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t607 = (meta.k1_t606 ^ 1w1);
                    meta.k1_rc65 = (bit<1>)((meta.k1_t607 == 1w1));
                    hdr.arr_c1_a5[26].value = ra_Agg_65.execute((((bit<32>)(32w26) * 32w32) + (bit<32>)(meta.k1_t605)));
                    meta.k1_t610 = (bit<32>)(meta.k1_t392);
                    meta.k1_t611 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t612 = (meta.k1_t611 ^ 1w1);
                    meta.k1_rc66 = (bit<1>)((meta.k1_t612 == 1w1));
                    hdr.arr_c1_a5[27].value = ra_Agg_66.execute((((bit<32>)(32w27) * 32w32) + (bit<32>)(meta.k1_t610)));
                    meta.k1_t615 = (bit<32>)(meta.k1_t392);
                    meta.k1_t616 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t617 = (meta.k1_t616 ^ 1w1);
                    meta.k1_rc67 = (bit<1>)((meta.k1_t617 == 1w1));
                    hdr.arr_c1_a5[28].value = ra_Agg_67.execute((((bit<32>)(32w28) * 32w32) + (bit<32>)(meta.k1_t615)));
                    meta.k1_t620 = (bit<32>)(meta.k1_t392);
                    meta.k1_t621 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t622 = (meta.k1_t621 ^ 1w1);
                    meta.k1_rc68 = (bit<1>)((meta.k1_t622 == 1w1));
                    hdr.arr_c1_a5[29].value = ra_Agg_68.execute((((bit<32>)(32w29) * 32w32) + (bit<32>)(meta.k1_t620)));
                    meta.k1_t625 = (bit<32>)(meta.k1_t392);
                    meta.k1_t626 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t627 = (meta.k1_t626 ^ 1w1);
                    meta.k1_rc69 = (bit<1>)((meta.k1_t627 == 1w1));
                    hdr.arr_c1_a5[30].value = ra_Agg_69.execute((((bit<32>)(32w30) * 32w32) + (bit<32>)(meta.k1_t625)));
                    meta.k1_t630 = (bit<32>)(meta.k1_t392);
                    meta.k1_t631 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t632 = (meta.k1_t631 ^ 1w1);
                    meta.k1_rc70 = (bit<1>)((meta.k1_t632 == 1w1));
                    hdr.arr_c1_a5[31].value = ra_Agg_70.execute((((bit<32>)(32w31) * 32w32) + (bit<32>)(meta.k1_t630)));
                    meta.k1_t635 = (bit<32>)(meta.k1_t392);
                    meta.k1_t636 = (bit<1>)((meta.k1_t469 != 32w0));
                    meta.k1_t637 = (meta.k1_t636 ^ 1w1);
                    meta.k1_rc71 = (bit<1>)((meta.k1_t637 == 1w1));
                    meta.k1_t638 = ra_Count_71.execute((bit<32>)(meta.k1_t635));
                    meta.k1_t639 = (bit<1>)((meta.k1_t469 != 32w0));
                    if ((meta.k1_t639 == 1w1)) {
                        meta.k1_t640 = (bit<32>)(meta.k1_t638);
                        meta.k1_t641 = (bit<1>)((meta.k1_t640 == 32w0));
                        if ((meta.k1_t641 == 1w1)) {
                            hdr.ncl.action = 8w5;
                        } else {
                            hdr.ncl.action = 8w1;
                        }
                    } else {
                        meta.k1_t642 = (bit<32>)(meta.k1_t638);
                        meta.k1_t643 = (bit<1>)((meta.k1_t642 == 32w1));
                        if ((meta.k1_t643 == 1w1)) {
                            hdr.ncl.action = 8w4;
                            hdr.ncl.target = (bit<16>)(16w42);
                        } else {
                            hdr.ncl.action = 8w1;
                        }
                    }
                }
            }
        }
        l2_fwd.apply();
    }
}

