//! Events/sec of the sharded discrete-event simulator on fat-tree
//! workloads, from 10⁴ to 10⁵+ hosts (DESIGN.md §15).
//!
//! Run `cargo run --release -p netcl-bench --bin sim_sharded` to measure
//! three fat-trees — k=36 (11 664 hosts), k=48 (27 648), and k=74
//! (101 306, the 10⁵-host point) — and merge a `sim_sharded` section into
//! `BENCH_switch.json` at the repository root (run the `throughput` binary
//! first — it rewrites the whole file). Flags:
//!
//! - `--smoke`: a seconds-scale CI run (one small config, shard counts 1
//!   and 8) that prints results without touching the file. With
//!   `NETCL_SIM_K=74 NETCL_SIM_FLOWS=…` this is the CI 10⁵-host gate:
//!   build the full tree, route real flows, prove exactness — bounded
//!   flows keep it under a minute.
//! - `--gate`: measure the k=36 config and fail (exit 1) unless the
//!   8-shard critical-path rate is ≥ 4× the 1-shard baseline and the
//!   busiest shard carries ≤ 25% of events. Like the multi_tenant gate,
//!   the baseline is `min(recorded, in-run)` so a slow CI host cannot
//!   fake a pass by deflating the denominator.
//!
//! Three scaling mechanisms under test, all introduced together:
//! event-weight-balanced partitioning ([`FatTree::partition_balanced`] —
//! pods packed by traced flow load instead of dealt round-robin), streamed
//! flow injection ([`FlowStream`] through a flow source — memory stays
//! O(live events), reported as `peak_queue`), and window-batched
//! cross-shard hand-offs (staged per-destination-shard, merged in key
//! order). The recorded `partition_fp` fingerprints each row's partition
//! for exact replay.
//!
//! Every shard count is first cross-checked for exactness: the merged
//! `NetStats` must be byte-identical to the 1-shard run — the bench
//! doubles as a large-topology determinism gate, and exits nonzero on any
//! divergence.
//!
//! Two rates are reported per shard count:
//!
//! - `wall_eps`: events / wall-clock seconds of `run()`. On a multi-core
//!   host this shows the parallel speedup directly; on a single-core
//!   container the threads serialize and it shows only overhead.
//! - `critical_path_eps`: events / Σ per-round max shard busy time — the
//!   wall time an adequately provisioned host would see, measured (not
//!   modeled) from each shard's actual busy intervals. This is the
//!   scaling number quoted in EXPERIMENTS.md, labeled as such.

use std::sync::Arc;
use std::time::Instant;

use netcl_apps::calc;
use netcl_bmv2::Switch;
use netcl_net::topo::LinkSpec;
use netcl_net::{FatTree, FlowStream, NetStats, NetworkBuilder, PrecomputedRoutes, Zipf};
use netcl_runtime::message::{pack, Message};

/// One flow rendered to wire bytes: a CALC request computing at the
/// destination host's edge switch, whose reply reflects back to the source.
/// Wire addresses are u16; host ids above the wire space fold modulo 2¹⁶
/// (the `dst` field is cosmetic — the kernel reflects to `src`, so sources
/// are restricted to wire-addressable hosts instead).
fn calc_packet(src: u16, dst: u16, dev: u16, a: u64, b: u64) -> Vec<u8> {
    let m = Message::new(src, dst, 1, dev);
    pack(&m, &calc::spec(), &[Some(&[calc::OP_ADD]), Some(&[a]), Some(&[b]), None]).expect("packs")
}

/// The edge switch serving host index `idx` (hosts are pod-major,
/// `k/2` per edge switch).
fn edge_of(ft: &FatTree, idx: usize) -> u16 {
    let half = (ft.k / 2) as usize;
    let pod = idx / (half * half);
    let within = (idx % (half * half)) / half;
    ft.edge_by_pod[pod][within]
}

/// The flow schedule's fixed parameters: seed 7, Zipf(hosts, 0.99) keys,
/// mean inter-arrival 10 ns — pure f(seed), identical in every run.
const FLOW_SEED: u64 = 7;
const MEAN_GAP_NS: u64 = 10;

struct Workload {
    sources: Vec<u32>,
    zipf: Zipf,
    nflows: usize,
    /// Zipf rank → (wire destination, executing edge switch), the
    /// multiplicative-permutation scatter precomputed once per topology.
    dmap: Arc<Vec<(u16, u16)>>,
}

impl Workload {
    fn new(ft: &FatTree, nflows: usize) -> Workload {
        // Sources are a strided subset of hosts (clients), restricted to
        // the u16 wire-addressable range so replies route back correctly;
        // destinations are Zipf-popular (CACHE-style skew).
        let sources: Vec<u32> =
            ft.hosts.iter().copied().step_by(16).filter(|&h| h < 65_536).collect();
        let zipf = Zipf::new(ft.num_hosts(), 0.99);
        // Scatter Zipf ranks across the tree with a multiplicative
        // permutation (the constant is prime, hence coprime with any
        // smaller host count): without it the entire Zipf head lands in
        // pod 0 and one shard carries most of the run.
        let dmap: Vec<(u16, u16)> =
            (0..ft.num_hosts()).map(|i| ((ft.hosts[i] % 65_536) as u16, edge_of(ft, i))).collect();
        Workload { sources, zipf, nflows, dmap: Arc::new(dmap) }
    }

    fn stream(&self) -> FlowStream {
        FlowStream::new(FLOW_SEED, &self.sources, &self.zipf, self.nflows, MEAN_GAP_NS)
    }

    fn scatter(&self, key: u64) -> usize {
        ((key as usize - 1) * 2_654_435_761) % self.zipf.n()
    }

    /// `(source, executing device)` pairs for the partitioner's weight
    /// tracing — the same schedule the run will inject.
    fn pairs(&self) -> impl Iterator<Item = (u32, u16)> + '_ {
        self.stream().map(|f| (f.src, self.dmap[self.scatter(f.key)].1))
    }
}

struct RunResult {
    shards: usize,
    stats: NetStats,
    wall_s: f64,
    critical_path_s: f64,
    rounds: u64,
    /// Per-shard event shares from the sequential run (threaded wall-time
    /// scheduling doesn't change them — stats are byte-identical).
    shares: Vec<f64>,
    peak_queue: u64,
    partition_fp: u64,
}

impl RunResult {
    fn critical_path_eps(&self) -> f64 {
        self.stats.events as f64 / self.critical_path_s.max(1e-9)
    }

    fn busiest_share(&self) -> f64 {
        self.shares.iter().copied().fold(0.0, f64::max)
    }
}

/// Builds the network fresh (switch state must not leak across shard
/// counts), attaches the streamed flow schedule, runs to completion, and
/// measures.
///
/// Each shard count runs twice — the threaded runner for wall clock, the
/// sequential runner for the critical path. On a single-core container
/// the threaded runner's per-shard busy windows absorb preemption while
/// another shard's thread holds the CPU; the sequential runner executes
/// the identical round/window schedule with no thread handoffs, so its
/// per-round max-busy sum measures the actual computational depth. The
/// two runs must also produce identical `NetStats` (the threaded ≡
/// sequential determinism contract, here at 10⁵-host scale).
fn run_once(
    ft: &FatTree,
    p4: &netcl_p4::ast::P4Program,
    routes: &PrecomputedRoutes,
    wl: &Workload,
    shards: usize,
) -> RunResult {
    let threaded = measure_run(ft, p4, routes, wl, shards, true);
    if shards == 1 {
        return threaded;
    }
    let sequential = measure_run(ft, p4, routes, wl, shards, false);
    if threaded.stats != sequential.stats {
        eprintln!(
            "DIVERGENCE: {shards}-shard threaded vs sequential NetStats:\n{:#?}\nvs\n{:#?}",
            threaded.stats, sequential.stats
        );
        std::process::exit(1);
    }
    RunResult {
        shards,
        stats: threaded.stats,
        wall_s: threaded.wall_s,
        critical_path_s: sequential.critical_path_s,
        rounds: sequential.rounds,
        shares: sequential.shares,
        peak_queue: sequential.peak_queue,
        partition_fp: sequential.partition_fp,
    }
}

fn measure_run(
    ft: &FatTree,
    p4: &netcl_p4::ast::P4Program,
    routes: &PrecomputedRoutes,
    wl: &Workload,
    shards: usize,
    threaded: bool,
) -> RunResult {
    let (partition, loads) = ft.partition_balanced(routes, wl.pairs(), shards);
    let partition_fp = partition.fingerprint();
    let mut b = NetworkBuilder::new(ft.topology.clone()).seed(1);
    for pod in ft.edge_by_pod.iter().chain(ft.agg_by_pod.iter()) {
        for &d in pod {
            b = b.device(d, Switch::new(p4.clone()), 500);
        }
    }
    for &c in &ft.core {
        b = b.device(c, Switch::new(p4.clone()), 500);
    }
    for &h in &ft.hosts {
        b = b.sink_host(h);
    }
    let mut net = b.build_sharded_with(partition, routes).expect("valid partition");
    net.set_threaded(threaded);
    let mut stream = wl.stream();
    let dmap = Arc::clone(&wl.dmap);
    let zipf_n = wl.zipf.n();
    net.set_flow_source(Box::new(move |/* lazy: pulled as sim time advances */| {
        stream.next().map(|f| {
            let idx = ((f.key as usize - 1) * 2_654_435_761) % zipf_n;
            let (dst, dev) = dmap[idx];
            (f.at_ns, f.src, calc_packet((f.src % 65_536) as u16, dst, dev, f.key, f.at_ns))
        })
    }));
    let start = Instant::now();
    net.run(100_000_000);
    let wall_s = start.elapsed().as_secs_f64();
    let events: Vec<u64> = net.shard_stats().iter().map(|s| s.events).collect();
    let total: u64 = events.iter().sum();
    let shares: Vec<f64> = events.iter().map(|&e| e as f64 / (total as f64).max(1.0)).collect();
    if std::env::var("NETCL_SIM_DEBUG").is_ok() {
        let busy: Vec<f64> = net.busy_ns().iter().map(|&b| b as f64 / 1e9).collect();
        eprintln!(
            "debug: shards={shards} threaded={threaded} busy={busy:?} sum={:.3}s \
             events/shard={events:?} predicted-loads={loads:?}",
            busy.iter().sum::<f64>(),
        );
    }
    RunResult {
        shards,
        stats: net.stats(),
        wall_s,
        critical_path_s: net.critical_path_ns() as f64 / 1e9,
        rounds: net.rounds(),
        shares,
        peak_queue: net.peak_queue(),
        partition_fp,
    }
}

/// One measured topology: arity, flow count, and the shard counts swept.
struct Config {
    k: u16,
    nflows: usize,
    shard_counts: Vec<usize>,
}

/// Measures one config end to end; exits on any determinism divergence.
fn measure_config(cfg: &Config) -> (FatTree, Vec<RunResult>) {
    let ft = FatTree::new(cfg.k, LinkSpec::default()).expect("even arity");
    println!(
        "fat-tree k={}: {} hosts, {} switches, {} flows",
        cfg.k,
        ft.num_hosts(),
        ft.core.len() + ft.k as usize * ft.k as usize,
        cfg.nflows
    );
    let t0 = Instant::now();
    let routes = PrecomputedRoutes::new(&ft.topology);
    println!(
        "  routes precomputed once in {:.2}s (shared across all builds)",
        t0.elapsed().as_secs_f64()
    );
    let wl = Workload::new(&ft, cfg.nflows);
    let unit = netcl_apps::compile("calc.ncl", &calc::netcl_source());
    let p4 = &unit.devices[0].tna_p4;
    let mut results: Vec<RunResult> = Vec::new();
    for &shards in &cfg.shard_counts {
        let r = run_once(&ft, p4, &routes, &wl, shards);
        println!(
            "{} shard(s): {:>9} events  wall {:>7.3}s ({:>10.0} ev/s)  \
             critical-path {:>7.3}s ({:>10.0} ev/s)  {:>5} rounds  \
             busiest {:>5.1}%  peak-queue {}",
            r.shards,
            r.stats.events,
            r.wall_s,
            r.stats.events as f64 / r.wall_s,
            r.critical_path_s,
            r.critical_path_eps(),
            r.rounds,
            r.busiest_share() * 100.0,
            r.peak_queue,
        );
        if let Some(first) = results.first() {
            if r.stats != first.stats {
                eprintln!(
                    "DIVERGENCE: {}-shard NetStats differ from 1-shard:\n{:#?}\nvs\n{:#?}",
                    r.shards, r.stats, first.stats
                );
                std::process::exit(1);
            }
        } else {
            assert!(r.stats.kernel_executions > 0, "flows must exercise kernels");
            assert_eq!(r.stats.unroutable, 0, "fat-tree must route everything");
        }
        results.push(r);
    }
    // The per-shard event-share histogram for the widest sweep point.
    if let Some(r) = results.iter().rev().find(|r| r.shards > 1) {
        let shares: Vec<String> = r.shares.iter().map(|s| format!("{:.1}%", s * 100.0)).collect();
        println!("  {}-shard event shares: [{}]", r.shards, shares.join(", "));
    }
    println!("determinism cross-check: all shard counts produced identical NetStats");
    (ft, results)
}

/// Recorded 1-shard `critical_path_eps` for arity `k` from a previous
/// `BENCH_switch.json`, if present — the gate's recorded baseline.
fn recorded_baseline(json: &str, k: u16) -> Option<f64> {
    let sec = json.find("\"sim_sharded\":").map(|i| &json[i..])?;
    let cfg = sec.find(&format!("\"k\": {k},")).map(|i| &sec[i..])?;
    let row = cfg.find("\"shards\": 1,").map(|i| &cfg[i..])?;
    let val = row.find("\"critical_path_eps\": ").map(|i| &row[i + 21..])?;
    let end = val.find([',', '}', '\n'])?;
    val[..end].trim().parse().ok()
}

fn main() {
    let mut smoke = false;
    let mut gate = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--gate" => gate = true,
            other => {
                eprintln!("error: unknown argument `{other}` (expected `--smoke` or `--gate`)");
                std::process::exit(2);
            }
        }
    }
    let env_k: Option<u16> = std::env::var("NETCL_SIM_K").ok().and_then(|s| s.parse().ok());
    let env_flows: Option<usize> =
        std::env::var("NETCL_SIM_FLOWS").ok().and_then(|s| s.parse().ok());
    let configs: Vec<Config> = if smoke {
        // CI-scale: one config, two shard counts, no file write. Defaults
        // to a k=8 toy; NETCL_SIM_K=74 makes this the 10⁵-host smoke.
        vec![Config {
            k: env_k.unwrap_or(8),
            nflows: env_flows.unwrap_or(2_000),
            shard_counts: vec![1, 8],
        }]
    } else if gate {
        // The gate measures the k=36 reference config only.
        vec![Config {
            k: env_k.unwrap_or(36),
            nflows: env_flows.unwrap_or(20_000),
            shard_counts: vec![1, 8],
        }]
    } else if let Some(k) = env_k {
        vec![Config { k, nflows: env_flows.unwrap_or(20_000), shard_counts: vec![1, 2, 4, 8] }]
    } else {
        vec![
            Config { k: 36, nflows: env_flows.unwrap_or(20_000), shard_counts: vec![1, 2, 4, 8] },
            Config { k: 48, nflows: env_flows.unwrap_or(20_000), shard_counts: vec![1, 2, 4, 8] },
            // The 10⁵-host point; 1 → 4 → 8 shards bounds build time.
            Config { k: 74, nflows: env_flows.unwrap_or(20_000), shard_counts: vec![1, 4, 8] },
        ]
    };

    let path = "BENCH_switch.json";
    let prior = std::fs::read_to_string(path).ok();

    let mut measured: Vec<(FatTree, Vec<RunResult>)> = Vec::new();
    for cfg in &configs {
        measured.push(measure_config(cfg));
    }

    if gate {
        let (_, results) = &measured[0];
        let k = configs[0].k;
        let one = results.iter().find(|r| r.shards == 1).expect("1-shard row");
        let eight = results.iter().find(|r| r.shards == 8).expect("8-shard row");
        // Normalize against min(recorded, in-run): a slow host deflates
        // both numerator and denominator, so the ratio holds; only a real
        // scaling regression (or imbalance) fails.
        let in_run = one.critical_path_eps();
        let baseline = match prior.as_deref().and_then(|j| recorded_baseline(j, k)) {
            Some(rec) => rec.min(in_run),
            None => in_run,
        };
        let scale = eight.critical_path_eps() / baseline.max(1e-9);
        let busiest = eight.busiest_share();
        println!(
            "gate: 8-shard critical-path scaling {scale:.2}x (need ≥ 4.0), \
             busiest shard {:.1}% (need ≤ 25%)",
            busiest * 100.0
        );
        if scale < 4.0 {
            eprintln!("GATE FAIL: 8-shard critical-path scaling {scale:.2}x < 4.0x");
            std::process::exit(1);
        }
        if busiest > 0.25 {
            eprintln!("GATE FAIL: busiest shard carries {:.1}% > 25%", busiest * 100.0);
            std::process::exit(1);
        }
        println!("gate passed");
        return;
    }
    if smoke {
        println!("smoke run: not writing BENCH_switch.json");
        return;
    }

    let mut section = String::from("{\n    \"topology\": \"fat-tree\",\n    \"configs\": [\n");
    for (ci, (ft, results)) in measured.iter().enumerate() {
        section.push_str(&format!(
            "      {{\"k\": {}, \"hosts\": {}, \"flows\": {}, \"rows\": [\n",
            configs[ci].k,
            ft.num_hosts(),
            configs[ci].nflows
        ));
        for (i, r) in results.iter().enumerate() {
            section.push_str(&format!(
                "        {{\"shards\": {}, \"events\": {}, \"wall_s\": {:.3}, \
                 \"wall_eps\": {:.0}, \"critical_path_s\": {:.3}, \
                 \"critical_path_eps\": {:.0}, \"rounds\": {}, \
                 \"busiest_share\": {:.3}, \"peak_queue\": {}, \
                 \"partition_fp\": \"{:#018x}\"}}{}\n",
                r.shards,
                r.stats.events,
                r.wall_s,
                r.stats.events as f64 / r.wall_s,
                r.critical_path_s,
                r.critical_path_eps(),
                r.rounds,
                r.busiest_share(),
                r.peak_queue,
                r.partition_fp,
                if i + 1 < results.len() { "," } else { "" },
            ));
        }
        section.push_str(&format!("      ]}}{}\n", if ci + 1 < measured.len() { "," } else { "" }));
    }
    section.push_str("    ]\n  }");

    let json = prior.unwrap_or_else(|| {
        eprintln!("error: cannot read {path}; run the throughput binary first");
        std::process::exit(1);
    });
    // Drop any previous sim_sharded section: it spans from its key to the
    // next top-level key (multi_tenant) or the closing brace.
    let json = match json.find(",\n  \"sim_sharded\":") {
        Some(start) => {
            let rest = &json[start + 1..];
            let end = rest
                .find(",\n  \"multi_tenant\":")
                .map(|i| start + 1 + i)
                .unwrap_or_else(|| json.rfind("\n}").expect("closing brace"));
            format!("{}{}", &json[..start], &json[end..])
        }
        None => json,
    };
    // Insert before multi_tenant (which keeps the last slot) or at the end.
    let insert_at = json
        .find(",\n  \"multi_tenant\":")
        .unwrap_or_else(|| json.rfind("\n}").expect("closing brace"));
    let out =
        format!("{},\n  \"sim_sharded\": {section}{}", &json[..insert_at], &json[insert_at..]);
    std::fs::write(path, out).expect("write BENCH_switch.json");
    println!("merged sim_sharded section into {path}");
}
