//! A discrete-event network simulator for NetCL systems.
//!
//! Plays the role of the paper's testbed (§VII: six servers and a Tofino
//! switch): hosts and programmable devices connected by links, exchanging
//! NetCL-over-UDP messages. Devices run compiled (or handwritten) P4 on the
//! bmv2 interpreter with per-packet latency taken from the Tofino model;
//! the NetCL device runtime applies Table II forwarding; hosts are
//! event-driven application handlers with timers (retransmission etc.).
//!
//! The simulator is deterministic: a seeded RNG drives loss injection, and
//! events at equal timestamps process in insertion order.

pub mod fault;
pub mod sim;
pub mod topo;

pub use fault::{Fault, FaultSchedule};
pub use sim::{
    HostEvent, HostHandler, NetStats, Network, NetworkBuilder, NodeCounters, Outbox, RestartHook,
};
pub use topo::{LinkSpec, NodeId, Topology};
