//! Load-time compilation of a [`P4Program`] into flat, index-addressed form.
//!
//! The tree-walking interpreter in `switch.rs` re-resolves every field path,
//! action name, and register handle per packet, allocating `String`s and
//! probing `HashMap`s on the hot path. This module walks the program **once**
//! at switch construction and produces:
//!
//! * a [`SlotTable`] interning every canonical field/metadata path into a
//!   dense [`FieldSlot`] and every header instance into a [`HeaderId`],
//!   with deparse layouts resolved up front;
//! * postfix expression programs (`EOp`) evaluated on a reusable stack;
//! * flat statement op arrays (`COp`) with relative branch skips instead
//!   of nested statement trees;
//! * a compiled parser FSM (`CParser`) whose extracts are pre-flattened
//!   `(slot, width)` plans.
//!
//! The compiled form is semantically identical to the interpreter — the
//! interpreter stays available behind [`crate::Switch::set_interpreted`] as
//! the differential-test oracle. Any entity the interpreter would only
//! discover to be missing at execution time (unknown action, table, parser
//! state, ...) lowers to a `COp::Fail`/`StateRef::Unknown` carrying the
//! interpreter's exact error message, so errors surface at the same moment
//! with the same text.

use std::collections::HashMap;
use std::sync::Arc;

use crate::eval::{canonical, instance_of};
use netcl_p4::ast::*;
use netcl_sema::builtins::{AtomicOp, HashKind};
use netcl_util::define_index;
use netcl_util::idx::{Idx, IndexVec};
use netcl_util::intern::{Interner, Symbol};

define_index!(FieldSlot, "fs");
define_index!(HeaderId, "hdr");

/// Dense slot assignment for every field/metadata path and header instance
/// a program can touch. Shared (via `Arc`) between the [`CompiledProgram`]
/// and every [`crate::Packet`] flowing through the switch.
///
/// Header-namespace and metadata-namespace paths are distinct slots even
/// when their canonical spelling collides (an action parameter `x` and a
/// header field `x` must not alias), so paths are interned under a
/// one-character namespace prefix.
#[derive(Debug, Default)]
pub struct SlotTable {
    /// `"h:<path>"` / `"m:<path>"` → [`FieldSlot`].
    paths: Interner,
    /// Header instance names (`ncl`, `args_c1`, ...).
    instances: Interner,
    /// Per-instance deparse/extract plan: `(slot, bits)` in wire order with
    /// stacks flattened. `None` = no `<name>_t` header type exists, which
    /// the interpreter reports as an unknown header if it ever deparses.
    layouts: IndexVec<HeaderId, Option<Vec<(FieldSlot, u32)>>>,
}

impl SlotTable {
    /// Number of field slots (the size of a packet's value store).
    pub fn n_slots(&self) -> usize {
        self.paths.len()
    }

    /// Number of header instances (the size of a packet's validity bitset).
    pub fn n_instances(&self) -> usize {
        self.instances.len()
    }

    /// Looks up a header-namespace path without interning.
    pub fn header_slot(&self, path: &str) -> Option<FieldSlot> {
        self.lookup('h', path)
    }

    /// Looks up a metadata-namespace path without interning.
    pub fn meta_slot(&self, path: &str) -> Option<FieldSlot> {
        self.lookup('m', path)
    }

    /// Looks up a header instance without interning.
    pub fn instance_id(&self, name: &str) -> Option<HeaderId> {
        self.instances.get(name).map(|s| HeaderId(s.0))
    }

    /// The name of an interned instance (`None` for dynamic ids a packet
    /// allocated beyond this table).
    pub fn instance_name(&self, id: HeaderId) -> Option<&str> {
        if id.index() < self.instances.len() {
            Some(self.instances.resolve(Symbol(id.0)))
        } else {
            None
        }
    }

    /// The deparse plan for an instance, if a header type defines one.
    pub fn layout(&self, id: HeaderId) -> Option<&[(FieldSlot, u32)]> {
        self.layouts.get(id).and_then(|o| o.as_deref())
    }

    fn lookup(&self, ns: char, path: &str) -> Option<FieldSlot> {
        self.paths.get(&format!("{ns}:{path}")).map(|s| FieldSlot(s.0))
    }

    fn intern_slot(&mut self, ns: char, path: &str) -> FieldSlot {
        FieldSlot(self.paths.intern(&format!("{ns}:{path}")).0)
    }

    fn intern_instance(&mut self, name: &str) -> HeaderId {
        let id = HeaderId(self.instances.intern(name).0);
        while self.layouts.len() <= id.index() {
            self.layouts.push(None);
        }
        id
    }
}

/// A `(start, len)` range into one of the flat pools (`eops`, `cops`,
/// `args`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// First element index.
    pub start: u32,
    /// Number of elements.
    pub len: u32,
}

/// Postfix expression ops, evaluated against a value/width stack.
#[derive(Clone, Copy, Debug)]
pub(crate) enum EOp {
    /// Push a literal `(value, width)`.
    Const(u64, u32),
    /// Push a slot's value with the path's declared width.
    Load(FieldSlot, u32),
    /// Bare-name load: metadata slot if bound (action parameter / local),
    /// header slot otherwise — the interpreter's namespace fallback.
    LoadBare {
        /// Metadata-namespace slot.
        meta: FieldSlot,
        /// Header-namespace slot.
        hdr: FieldSlot,
        /// Declared width.
        width: u32,
    },
    /// Push a header's validity bit (`$isValid`), width 1.
    LoadValid(HeaderId),
    /// Pop two, push the binary result (width/wrapping per `eval`).
    Bin(P4BinOp),
    /// Logical not (width 1).
    Not,
    /// Bitwise not at operand width.
    BitNot,
    /// Truncate to `bits`.
    Cast(u32),
    /// Bit slice `[hi:lo]`.
    Slice(u32, u32),
}

/// Where a statement writes its result.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Dest {
    /// No destination (missing `dst` or non-field lvalue — interpreter
    /// silently ignores).
    None,
    /// Header-namespace slot, masked to the path width.
    Header(FieldSlot, u32),
    /// Metadata-namespace slot (sets the presence bit), masked.
    Meta(FieldSlot, u32),
}

/// Resolved extern function for [`COp::ExternCall`].
#[derive(Clone, Copy, Debug)]
pub(crate) enum ExternFn {
    /// The SplitMix64 `random` extern (switch-local RNG state).
    Random,
    /// `eval_intrinsic(target, name, args)` — index into
    /// [`CompiledProgram::externs`].
    Intrinsic(u32),
}

/// Flat statement ops executed by a program counter over a [`Span`].
#[derive(Clone, Copy, Debug)]
pub(crate) enum COp {
    /// Evaluate and store.
    Assign {
        /// Destination slot.
        dst: Dest,
        /// Right-hand side.
        expr: Span,
    },
    /// Invoke a compiled action with no arguments.
    CallAction(u32),
    /// Apply a table (hit result discarded).
    ApplyTable(u32),
    /// Execute a `RegisterAction` microprogram.
    ExecRegAction {
        /// Where the returned value goes.
        dst: Dest,
        /// Index into [`CompiledProgram::reg_actions`].
        ra: u32,
        /// Element index expression.
        index: Span,
    },
    /// Hash extern: concatenate args little-endian and hash.
    HashGet {
        /// Result destination.
        dst: Dest,
        /// Index into [`CompiledProgram::hashes`].
        hash: u32,
        /// Arg expressions (range into the `args` pool).
        args: Span,
    },
    /// Other extern call.
    ExternCall {
        /// Result destination.
        dst: Dest,
        /// Resolved function.
        func: ExternFn,
        /// Arg expressions.
        args: Span,
    },
    /// `if` on a value expression: when false, skip the next `else_skip`
    /// ops.
    BranchExpr {
        /// Condition.
        cond: Span,
        /// Relative skip when the condition is false.
        else_skip: u32,
    },
    /// Peephole-fused `Assign` + `BranchExpr` whose condition was a single
    /// load of the assigned slot: evaluate, store, branch on the stored
    /// (masked) value without re-reading it (see [`mod@crate::peephole`]).
    AssignBranch {
        /// Destination slot (never [`Dest::None`] — fusion requires a
        /// loadable destination).
        dst: Dest,
        /// Right-hand side.
        expr: Span,
        /// Relative skip when the stored value is zero.
        else_skip: u32,
    },
    /// `if (t.apply().hit / miss)`: applies the table (with side effects),
    /// then branches.
    BranchTable {
        /// Table to apply.
        table: u32,
        /// Branch taken on hit (`true`) or miss (`false`).
        want_hit: bool,
        /// Relative skip when not taken.
        else_skip: u32,
    },
    /// Unconditional relative skip (end of a then-block).
    Jump(u32),
    /// Mark a header valid.
    SetValid(HeaderId),
    /// Mark a header invalid.
    SetInvalid(HeaderId),
    /// Statically-unresolvable entity: raise the interpreter's exact error
    /// when (and only when) executed. Index into `fail_msgs`.
    Fail(u32),
}

/// A compiled action: parameter meta slots plus a flat body.
#[derive(Debug)]
pub(crate) struct CAction {
    /// `(meta slot, declared width)` per parameter, in order.
    pub params: Vec<(FieldSlot, u32)>,
    /// Body ops.
    pub body: Span,
}

/// A compiled table definition (keys + action scope). Entries live in
/// runtime state, shared **by name** across same-named definitions exactly
/// as the interpreter's global `HashMap<String, Vec<TableEntry>>` does.
#[derive(Debug)]
pub(crate) struct CTable {
    /// Index into the runtime entry stores.
    pub state: u32,
    /// Compiled key expressions and their match kinds.
    pub keys: Vec<(Span, MatchKind)>,
    /// Resolved default action (`None` for `NoAction` or unknown — the
    /// interpreter silently skips both).
    pub default_action: Option<u32>,
    /// The owning control's action scope, used to resolve the action names
    /// carried by runtime [`TableEntry`]s.
    pub action_ids: HashMap<String, u32>,
}

/// A compiled `RegisterAction` definition.
#[derive(Debug)]
pub(crate) struct CRegAction {
    /// Register state index.
    pub reg: u32,
    /// Element width from the owning control's register declaration.
    pub elem_bits: u32,
    /// The SALU microprogram.
    pub op: AtomicOp,
    /// Optional predicate.
    pub cond: Option<Span>,
    /// Operand expressions (range into the `args` pool).
    pub operands: Span,
}

/// A compiled hash extern.
#[derive(Debug)]
pub(crate) struct CHash {
    /// Algorithm.
    pub algo: HashKind,
    /// Output width.
    pub out_bits: u32,
}

/// A register's global identity: name + element count.
#[derive(Debug)]
pub(crate) struct CReg {
    /// Register name.
    pub name: String,
    /// Element count (last same-named definition wins, as with the
    /// interpreter's `HashMap::insert`).
    pub size: usize,
}

/// Initial entries for one table state (keyed by name).
#[derive(Debug)]
pub(crate) struct TableStateInit {
    /// Table name.
    pub name: String,
    /// `const entries` seed.
    pub entries: Vec<TableEntry>,
}

/// Parser state target.
#[derive(Clone, Copy, Debug)]
pub(crate) enum StateRef {
    /// Terminal accept.
    Accept,
    /// Terminal reject (the interpreter treats it like accept).
    Reject,
    /// Transition to a known state.
    State(u32),
    /// Unknown state name — fail with this message when reached.
    Unknown(u32),
}

/// Compiled extract: a known header's flattened plan, or a deferred error.
#[derive(Clone, Copy, Debug)]
pub(crate) enum CExtract {
    /// Extract this instance (plan in [`SlotTable::layout`]).
    Header(HeaderId),
    /// Unknown header type — fail when executed.
    Unknown(u32),
}

/// A compiled parser state.
#[derive(Debug)]
pub(crate) struct CState {
    /// Extractions, in order.
    pub extracts: Vec<CExtract>,
    /// Next-state logic.
    pub transition: CTransition,
}

/// Compiled transition.
#[derive(Debug)]
pub(crate) enum CTransition {
    /// To accept.
    Accept,
    /// To reject.
    Reject,
    /// Unconditional.
    Direct(StateRef),
    /// `select` on an expression.
    Select {
        /// Selector expression.
        selector: Span,
        /// `(value, target)` cases.
        cases: Vec<(u64, StateRef)>,
        /// Fallback target.
        default: StateRef,
    },
}

/// The compiled parser FSM.
#[derive(Debug)]
pub(crate) struct CParser {
    /// The `start` state.
    pub start: StateRef,
    /// States in definition order.
    pub states: Vec<CState>,
}

/// Everything the compiled fast path needs, produced once per program.
#[derive(Debug)]
pub struct CompiledProgram {
    /// The slot table (shared with packets).
    pub slots: Arc<SlotTable>,
    pub(crate) eops: Vec<EOp>,
    pub(crate) cops: Vec<COp>,
    /// Expression-ref pool for arg lists and RA operands.
    pub(crate) args: Vec<Span>,
    pub(crate) actions: Vec<CAction>,
    pub(crate) tables: Vec<CTable>,
    pub(crate) reg_actions: Vec<CRegAction>,
    pub(crate) hashes: Vec<CHash>,
    /// `(target, name)` pairs for intrinsic extern calls.
    pub(crate) externs: Vec<(String, String)>,
    pub(crate) fail_msgs: Vec<String>,
    /// One op region per control, in program order.
    pub(crate) applies: Vec<Span>,
    pub(crate) parser: Option<CParser>,
    pub(crate) regs: Vec<CReg>,
    /// Register name → state index.
    pub(crate) reg_index: HashMap<String, u32>,
    pub(crate) table_states: Vec<TableStateInit>,
    /// Table name → state index.
    pub(crate) table_index: HashMap<String, u32>,
    /// Canonical path → declared width (locals first, headers overwrite) —
    /// also serves the interpreter's width function.
    pub(crate) field_widths: HashMap<String, u32>,
    /// What the peephole pass did to this program.
    pub(crate) peephole: crate::peephole::PeepholeStats,
}

impl CompiledProgram {
    /// The deferred-error message for a `Fail` op.
    pub(crate) fn fail_msg(&self, id: u32) -> &str {
        &self.fail_msgs[id as usize]
    }

    /// What the peephole pass did at compile time (tests and telemetry).
    pub fn peephole_stats(&self) -> crate::peephole::PeepholeStats {
        self.peephole
    }

    /// A per-variant histogram of the lowered op stream (perf diagnostics:
    /// what a given app's data plane is made of).
    pub fn op_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
        for op in &self.cops {
            let name = match op {
                COp::Assign { .. } => "Assign",
                COp::AssignBranch { .. } => "AssignBranch",
                COp::BranchExpr { .. } => "BranchExpr",
                COp::BranchTable { .. } => "BranchTable",
                COp::Jump(_) => "Jump",
                COp::CallAction(_) => "CallAction",
                COp::ApplyTable(_) => "ApplyTable",
                COp::ExecRegAction { .. } => "ExecRegAction",
                COp::HashGet { .. } => "HashGet",
                COp::ExternCall { .. } => "ExternCall",
                COp::SetValid(_) => "SetValid",
                COp::SetInvalid(_) => "SetInvalid",
                COp::Fail(_) => "Fail",
            };
            *counts.entry(name).or_default() += 1;
        }
        counts.into_iter().collect()
    }
}

/// Per-control name scopes (the interpreter resolves all names against the
/// enclosing `ControlDef`).
#[derive(Default)]
struct Scope {
    actions: HashMap<String, u32>,
    tables: HashMap<String, u32>,
    /// `Ok(reg-action id)` or `Err(fail msg id)` when the definition names
    /// an unknown register.
    ras: HashMap<String, Result<u32, u32>>,
    hashes: HashMap<String, u32>,
}

struct Compiler<'p> {
    program: &'p P4Program,
    slots: SlotTable,
    eops: Vec<EOp>,
    cops: Vec<COp>,
    args: Vec<Span>,
    actions: Vec<CAction>,
    tables: Vec<CTable>,
    reg_actions: Vec<CRegAction>,
    hashes: Vec<CHash>,
    externs: Vec<(String, String)>,
    extern_index: HashMap<(String, String), u32>,
    fail_msgs: Vec<String>,
    fail_index: HashMap<String, u32>,
    applies: Vec<Span>,
    regs: Vec<CReg>,
    reg_index: HashMap<String, u32>,
    table_states: Vec<TableStateInit>,
    table_index: HashMap<String, u32>,
    field_widths: HashMap<String, u32>,
}

/// Compiles a program. Infallible: unresolvable references become deferred
/// `COp::Fail` ops matching the interpreter's lazy error behavior.
pub fn compile(program: &P4Program) -> CompiledProgram {
    let mut c = Compiler {
        program,
        slots: SlotTable::default(),
        eops: Vec::new(),
        cops: Vec::new(),
        args: Vec::new(),
        actions: Vec::new(),
        tables: Vec::new(),
        reg_actions: Vec::new(),
        hashes: Vec::new(),
        externs: Vec::new(),
        extern_index: HashMap::new(),
        fail_msgs: Vec::new(),
        fail_index: HashMap::new(),
        applies: Vec::new(),
        regs: Vec::new(),
        reg_index: HashMap::new(),
        table_states: Vec::new(),
        table_index: HashMap::new(),
        field_widths: HashMap::new(),
    };
    c.build_widths();
    c.build_layouts();
    for control in &program.controls {
        c.compile_control(control);
    }
    let parser = program.parser.as_ref().map(|p| c.compile_parser(p));
    let mut cp = CompiledProgram {
        slots: Arc::new(c.slots),
        eops: c.eops,
        cops: c.cops,
        args: c.args,
        actions: c.actions,
        tables: c.tables,
        reg_actions: c.reg_actions,
        hashes: c.hashes,
        externs: c.externs,
        fail_msgs: c.fail_msgs,
        applies: c.applies,
        parser,
        regs: c.regs,
        reg_index: c.reg_index,
        table_states: c.table_states,
        table_index: c.table_index,
        field_widths: c.field_widths,
        peephole: crate::peephole::PeepholeStats::default(),
    };
    cp.peephole = crate::peephole::optimize(&mut cp);
    cp
}

impl Compiler<'_> {
    /// Mirrors `Switch::new`'s width map exactly: control locals first,
    /// header fields overwrite.
    fn build_widths(&mut self) {
        for c in &self.program.controls {
            for (n, w) in &c.locals {
                self.field_widths.insert(n.clone(), *w);
            }
        }
        for h in &self.program.headers {
            let instance = h.name.strip_suffix("_t").unwrap_or(&h.name).to_string();
            for (f, w) in &h.fields {
                if h.stack > 1 {
                    for i in 0..h.stack {
                        self.field_widths.insert(format!("{instance}[{i}].{f}"), *w);
                    }
                } else {
                    self.field_widths.insert(format!("{instance}.{f}"), *w);
                }
            }
        }
    }

    /// Builds per-instance extract/deparse plans. Only `*_t` header types
    /// are reachable through the interpreter's `header_def` lookup; the
    /// first definition of a type wins (`Iterator::find`).
    fn build_layouts(&mut self) {
        for h in &self.program.headers {
            let Some(instance) = h.name.strip_suffix("_t") else { continue };
            let instance = instance.to_string();
            let id = self.slots.intern_instance(&instance);
            if self.slots.layouts[id].is_some() {
                continue;
            }
            let mut plan = Vec::new();
            for i in 0..h.stack {
                for (f, w) in &h.fields {
                    let path = if h.stack > 1 {
                        format!("{instance}[{i}].{f}")
                    } else {
                        format!("{instance}.{f}")
                    };
                    plan.push((self.slots.intern_slot('h', &path), *w));
                }
            }
            self.slots.layouts[id] = Some(plan);
        }
    }

    fn width_of(&self, path: &str) -> u32 {
        self.field_widths.get(path).copied().unwrap_or(32)
    }

    fn fail_id(&mut self, msg: String) -> u32 {
        if let Some(&i) = self.fail_index.get(&msg) {
            return i;
        }
        let i = self.fail_msgs.len() as u32;
        self.fail_msgs.push(msg.clone());
        self.fail_index.insert(msg, i);
        i
    }

    fn emit_fail(&mut self, msg: String) {
        let m = self.fail_id(msg);
        self.cops.push(COp::Fail(m));
    }

    fn extern_id(&mut self, target: &str, name: &str) -> u32 {
        let key = (target.to_string(), name.to_string());
        if let Some(&i) = self.extern_index.get(&key) {
            return i;
        }
        let i = self.externs.len() as u32;
        self.externs.push(key.clone());
        self.extern_index.insert(key, i);
        i
    }

    // ---- expressions ----------------------------------------------------

    fn compile_expr(&mut self, e: &Expr) -> Span {
        let start = self.eops.len() as u32;
        self.emit_expr(e);
        Span { start, len: self.eops.len() as u32 - start }
    }

    fn emit_expr(&mut self, e: &Expr) {
        match e {
            Expr::Const(v, bits) => self.eops.push(EOp::Const(*v, *bits)),
            Expr::Bool(b) => self.eops.push(EOp::Const(*b as u64, 1)),
            Expr::Field(segs) => {
                if segs.last().map(|s| s.name.as_str()) == Some("$isValid") {
                    let inst = instance_of(segs);
                    let id = self.slots.intern_instance(&inst);
                    self.eops.push(EOp::LoadValid(id));
                    return;
                }
                let path = canonical(segs);
                let width = self.width_of(&path);
                match segs.first().map(|s| s.name.as_str()) {
                    Some("meta") => {
                        let s = self.slots.intern_slot('m', &path);
                        self.eops.push(EOp::Load(s, width));
                    }
                    Some("hdr") => {
                        let s = self.slots.intern_slot('h', &path);
                        self.eops.push(EOp::Load(s, width));
                    }
                    _ => {
                        let meta = self.slots.intern_slot('m', &path);
                        let hdr = self.slots.intern_slot('h', &path);
                        self.eops.push(EOp::LoadBare { meta, hdr, width });
                    }
                }
            }
            Expr::Bin(op, a, b) => {
                self.emit_expr(a);
                self.emit_expr(b);
                self.eops.push(EOp::Bin(*op));
            }
            Expr::Not(x) => {
                self.emit_expr(x);
                self.eops.push(EOp::Not);
            }
            Expr::BitNot(x) => {
                self.emit_expr(x);
                self.eops.push(EOp::BitNot);
            }
            Expr::Cast(bits, x) => {
                self.emit_expr(x);
                self.eops.push(EOp::Cast(*bits));
            }
            Expr::Slice(x, hi, lo) => {
                self.emit_expr(x);
                self.eops.push(EOp::Slice(*hi, *lo));
            }
            // Statement-level constructs reaching expression position fail
            // closed, as in the interpreter.
            Expr::TableHit(_) | Expr::TableMiss(_) => self.eops.push(EOp::Const(0, 1)),
        }
    }

    fn compile_dest(&mut self, dst: &Expr) -> Dest {
        let Expr::Field(segs) = dst else { return Dest::None };
        let path = canonical(segs);
        let w = self.width_of(&path);
        if segs.first().map(|s| s.name.as_str()) == Some("meta") {
            Dest::Meta(self.slots.intern_slot('m', &path), w)
        } else {
            Dest::Header(self.slots.intern_slot('h', &path), w)
        }
    }

    fn compile_args(&mut self, args: &[Expr]) -> Span {
        let spans: Vec<Span> = args.iter().map(|a| self.compile_expr(a)).collect();
        let start = self.args.len() as u32;
        self.args.extend(spans);
        Span { start, len: self.args.len() as u32 - start }
    }

    // ---- controls -------------------------------------------------------

    fn compile_control(&mut self, c: &ControlDef) {
        // Global register state: last same-named definition wins, matching
        // the interpreter's `HashMap::insert` ordering.
        for r in &c.registers {
            match self.reg_index.get(&r.name) {
                Some(&i) => self.regs[i as usize].size = r.size as usize,
                None => {
                    let i = self.regs.len() as u32;
                    self.regs.push(CReg { name: r.name.clone(), size: r.size as usize });
                    self.reg_index.insert(r.name.clone(), i);
                }
            }
        }

        let mut scope = Scope::default();

        for h in &c.hashes {
            if scope.hashes.contains_key(&h.name) {
                continue;
            }
            let id = self.hashes.len() as u32;
            self.hashes.push(CHash { algo: h.algo, out_bits: h.out_bits });
            scope.hashes.insert(h.name.clone(), id);
        }

        for ra in &c.register_actions {
            if scope.ras.contains_key(&ra.name) {
                continue;
            }
            let entry = match c.register(&ra.register) {
                None => Err(self.fail_id(format!("register `{}`", ra.register))),
                Some(reg) => {
                    let elem_bits = reg.elem_bits;
                    let cond = ra.cond.as_ref().map(|e| self.compile_expr(e));
                    let operands = self.compile_args(&ra.operands);
                    let gid = self.reg_index[&ra.register];
                    let id = self.reg_actions.len() as u32;
                    self.reg_actions.push(CRegAction {
                        reg: gid,
                        elem_bits,
                        op: ra.op,
                        cond,
                        operands,
                    });
                    Ok(id)
                }
            };
            scope.ras.insert(ra.name.clone(), entry);
        }

        // Pre-assign action ids (bodies may reference tables and vice
        // versa); compile bodies once the scope is complete.
        let mut bodies: Vec<(u32, &ActionDef)> = Vec::new();
        for a in &c.actions {
            let id = self.actions.len() as u32;
            let params: Vec<(FieldSlot, u32)> =
                a.params.iter().map(|(n, w)| (self.slots.intern_slot('m', n), *w)).collect();
            self.actions.push(CAction { params, body: Span::default() });
            bodies.push((id, a));
            scope.actions.entry(a.name.clone()).or_insert(id);
        }

        for t in &c.tables {
            let state = match self.table_index.get(&t.name) {
                // Last same-named definition seeds the shared entry store.
                Some(&i) => {
                    self.table_states[i as usize].entries = t.entries.clone();
                    i
                }
                None => {
                    let i = self.table_states.len() as u32;
                    self.table_states
                        .push(TableStateInit { name: t.name.clone(), entries: t.entries.clone() });
                    self.table_index.insert(t.name.clone(), i);
                    i
                }
            };
            let keys: Vec<(Span, MatchKind)> =
                t.keys.iter().map(|(e, mk)| (self.compile_expr(e), *mk)).collect();
            let default_action = if t.default_action != "NoAction" {
                scope.actions.get(&t.default_action).copied()
            } else {
                None
            };
            let id = self.tables.len() as u32;
            self.tables.push(CTable {
                state,
                keys,
                default_action,
                action_ids: scope.actions.clone(),
            });
            scope.tables.entry(t.name.clone()).or_insert(id);
        }

        for (id, a) in bodies {
            let body = self.compile_region(&a.body, &scope);
            self.actions[id as usize].body = body;
        }

        let apply = self.compile_region(&c.apply, &scope);
        self.applies.push(apply);
    }

    fn compile_region(&mut self, stmts: &[Stmt], scope: &Scope) -> Span {
        let start = self.cops.len() as u32;
        self.compile_stmts(stmts, scope);
        Span { start, len: self.cops.len() as u32 - start }
    }

    fn compile_stmts(&mut self, stmts: &[Stmt], scope: &Scope) {
        for s in stmts {
            self.compile_stmt(s, scope);
        }
    }

    fn patch_skip(&mut self, at: usize, skip: u32) {
        match &mut self.cops[at] {
            COp::BranchExpr { else_skip, .. } | COp::BranchTable { else_skip, .. } => {
                *else_skip = skip
            }
            COp::Jump(n) => *n = skip,
            other => unreachable!("patching non-branch op {other:?}"),
        }
    }

    fn compile_stmt(&mut self, s: &Stmt, scope: &Scope) {
        match s {
            Stmt::Assign(dst, rhs) => {
                let expr = self.compile_expr(rhs);
                let dst = self.compile_dest(dst);
                self.cops.push(COp::Assign { dst, expr });
            }
            Stmt::CallAction(name) => match scope.actions.get(name) {
                Some(&id) => self.cops.push(COp::CallAction(id)),
                None => self.emit_fail(format!("action `{name}`")),
            },
            Stmt::ApplyTable(name) => match scope.tables.get(name) {
                Some(&id) => self.cops.push(COp::ApplyTable(id)),
                None => self.emit_fail(format!("table `{name}`")),
            },
            Stmt::ExecuteRegisterAction { dst, ra, index } => match scope.ras.get(ra) {
                None => self.emit_fail(format!("RegisterAction `{ra}`")),
                Some(&Err(m)) => self.cops.push(COp::Fail(m)),
                Some(&Ok(rid)) => {
                    let index = self.compile_expr(index);
                    let dst = match dst {
                        Some(e) => self.compile_dest(e),
                        None => Dest::None,
                    };
                    self.cops.push(COp::ExecRegAction { dst, ra: rid, index });
                }
            },
            Stmt::HashGet { dst, hash, args } => match scope.hashes.get(hash) {
                None => self.emit_fail(format!("hash `{hash}`")),
                Some(&h) => {
                    let args = self.compile_args(args);
                    let dst = self.compile_dest(dst);
                    self.cops.push(COp::HashGet { dst, hash: h, args });
                }
            },
            Stmt::If { cond, then, els } => {
                let bpos = match cond {
                    Expr::TableHit(t) | Expr::TableMiss(t) => match scope.tables.get(t) {
                        None => {
                            self.emit_fail(format!("table `{t}`"));
                            return;
                        }
                        Some(&tid) => {
                            let want_hit = matches!(cond, Expr::TableHit(_));
                            self.cops.push(COp::BranchTable { table: tid, want_hit, else_skip: 0 });
                            self.cops.len() - 1
                        }
                    },
                    other => {
                        let cond = self.compile_expr(other);
                        self.cops.push(COp::BranchExpr { cond, else_skip: 0 });
                        self.cops.len() - 1
                    }
                };
                self.compile_stmts(then, scope);
                if els.is_empty() {
                    let skip = (self.cops.len() - bpos - 1) as u32;
                    self.patch_skip(bpos, skip);
                } else {
                    self.cops.push(COp::Jump(0));
                    let jpos = self.cops.len() - 1;
                    self.patch_skip(bpos, (jpos - bpos) as u32);
                    self.compile_stmts(els, scope);
                    let skip = (self.cops.len() - jpos - 1) as u32;
                    self.patch_skip(jpos, skip);
                }
            }
            Stmt::ExternCall { dst, func, args } => {
                let args = self.compile_args(args);
                let func = if func == "random" {
                    ExternFn::Random
                } else {
                    let (t, n) = match func.split_once('_') {
                        Some((t, n)) => (t, n),
                        None => ("", func.as_str()),
                    };
                    ExternFn::Intrinsic(self.extern_id(t, n))
                };
                let dst = match dst {
                    Some(e) => self.compile_dest(e),
                    None => Dest::None,
                };
                self.cops.push(COp::ExternCall { dst, func, args });
            }
            Stmt::SetValid(e) => {
                if let Expr::Field(segs) = e {
                    let inst = instance_of(segs);
                    let id = self.slots.intern_instance(&inst);
                    self.cops.push(COp::SetValid(id));
                }
            }
            Stmt::SetInvalid(e) => {
                if let Expr::Field(segs) = e {
                    let inst = instance_of(segs);
                    let id = self.slots.intern_instance(&inst);
                    self.cops.push(COp::SetInvalid(id));
                }
            }
            // The interpreter treats `exit` as a no-op.
            Stmt::Exit => {}
        }
    }

    // ---- parser ---------------------------------------------------------

    fn compile_parser(&mut self, p: &ParserDef) -> CParser {
        // First definition of a name wins (`Iterator::find`).
        let mut index: HashMap<&str, u32> = HashMap::new();
        for (i, s) in p.states.iter().enumerate() {
            index.entry(s.name.as_str()).or_insert(i as u32);
        }
        let index: HashMap<String, u32> =
            index.into_iter().map(|(k, v)| (k.to_string(), v)).collect();

        let mut states = Vec::with_capacity(p.states.len());
        for s in &p.states {
            let mut extracts = Vec::with_capacity(s.extracts.len());
            for ex in &s.extracts {
                let instance = ex.strip_prefix("hdr.").unwrap_or(ex).to_string();
                let id = self.slots.intern_instance(&instance);
                if self.slots.layouts[id].is_some() {
                    extracts.push(CExtract::Header(id));
                } else {
                    let m = self.fail_id(format!("header `{instance}`"));
                    extracts.push(CExtract::Unknown(m));
                }
            }
            let transition = match &s.transition {
                Transition::Accept => CTransition::Accept,
                Transition::Reject => CTransition::Reject,
                Transition::Direct(t) => CTransition::Direct(self.state_ref(t, &index)),
                Transition::Select { selector, cases, default } => CTransition::Select {
                    selector: self.compile_expr(selector),
                    cases: cases.iter().map(|(v, t)| (*v, self.state_ref(t, &index))).collect(),
                    default: self.state_ref(default, &index),
                },
            };
            states.push(CState { extracts, transition });
        }
        CParser { start: self.state_ref("start", &index), states }
    }

    fn state_ref(&mut self, name: &str, index: &HashMap<String, u32>) -> StateRef {
        match name {
            "accept" => StateRef::Accept,
            "reject" => StateRef::Reject,
            _ => match index.get(name) {
                Some(&i) => StateRef::State(i),
                None => StateRef::Unknown(self.fail_id(format!("parser state `{name}`"))),
            },
        }
    }
}
