//! Prints the lookup-duplication ablation.
fn main() {
    print!("{}", netcl_bench::report_ablate_duplication());
}
