// PACC_dev2 — generated for Intel Tofino (TNA)
#include <core.p4>
#include <tna.p4>

header ncl_t {
    bit<16> src;
    bit<16> dst;
    bit<16> from;
    bit<16> to;
    bit<8> comp;
    bit<8> action;
    bit<16> target;
}

header arr_c1_a5_t {
    bit<32> value;
}

header args_c1_t {
    bit<8> a0_type;
    bit<32> a1_instance;
    bit<16> a2_round;
    bit<16> a3_vround;
    bit<8> a4_vote;
}

header k1_loc1_t {
    bit<32> value;
}

parser IgParser(packet_in pkt, out headers_t hdr) {
    state start {
        pkt.extract(hdr.ncl);
        transition select(hdr.ncl.comp) {
            1: parse_c1;
            default: accept;
        }
    }
    state parse_c1 {
        pkt.extract(hdr.args_c1);
        pkt.extract(hdr.arr_c1_a5);
        transition accept;
    }
}

control Ig(inout headers_t hdr, inout metadata_t meta) {
    bit<16> egress_port;
    bit<16> k1_t77;
    bit<32> k1_t87;
    bit<1> k1_t88;
    bit<32> k1_t89;
    bit<32> k1_t91;
    bit<16> k1_t92;
    bit<32> k1_t93;
    bit<32> k1_t94;
    bit<32> k1_t95;
    bit<32> k1_t96;
    bit<1> k1_t97;
    bit<32> k1_t99;
    bit<16> k1_t100;
    bit<32> k1_t102;
    bit<32> k1_t103;
    bit<32> k1_t104;
    bit<32> k1_t106;
    bit<32> k1_t107;
    bit<32> k1_t108;
    bit<32> k1_t110;
    bit<32> k1_t111;
    bit<32> k1_t112;
    bit<32> k1_t114;
    bit<32> k1_t115;
    bit<32> k1_t116;
    bit<32> k1_t118;
    bit<32> k1_t119;
    bit<32> k1_t120;
    bit<32> k1_t122;
    bit<32> k1_t123;
    bit<32> k1_t124;
    bit<32> k1_t126;
    bit<32> k1_t127;
    bit<32> k1_t128;
    bit<32> k1_t130;
    bit<32> k1_t131;
    bit<32> k1_t132;
    bit<16> k1_l0_round;
    bit<16> k1_l2_r;
    Register<bit<16>, bit<32>>(1024) VRound;
    Register<bit<16>, bit<32>>(1024) Round;
    Register<bit<32>, bit<32>>(1024) Value__0;
    Register<bit<32>, bit<32>>(1024) Value__1;
    Register<bit<32>, bit<32>>(1024) Value__2;
    Register<bit<32>, bit<32>>(1024) Value__3;
    Register<bit<32>, bit<32>>(1024) Value__4;
    Register<bit<32>, bit<32>>(1024) Value__5;
    Register<bit<32>, bit<32>>(1024) Value__6;
    Register<bit<32>, bit<32>>(1024) Value__7;
    RegisterAction<bit<16>, bit<32>, bit<16>>(Round) ra_Round_0 = {
        void apply(inout bit<16> m, out bit<16> o) {
            m = max(m, meta.k1_t77);
            o = m;
        }
    };
    RegisterAction<bit<16>, bit<32>, bit<16>>(VRound) ra_VRound_1 = {
        void apply(inout bit<16> m, out bit<16> o) {
            o = m;
            m = meta.k1_t77;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Value__0) ra_Value__0_2 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = meta.k1_t103;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Value__1) ra_Value__1_3 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = meta.k1_t107;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Value__2) ra_Value__2_4 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = meta.k1_t111;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Value__3) ra_Value__3_5 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = meta.k1_t115;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Value__4) ra_Value__4_6 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = meta.k1_t119;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Value__5) ra_Value__5_7 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = meta.k1_t123;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Value__6) ra_Value__6_8 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = meta.k1_t127;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Value__7) ra_Value__7_9 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = meta.k1_t131;
        }
    };
    action set_egress(bit<16> port) {
        meta.egress_port = port;
    }
    table l2_fwd {
        key = { hdr.ncl.dst : exact }
        actions = { set_egress; NoAction; }
        default_action = NoAction();
        size = 64;
    }
    apply {
        if ((hdr.ncl.isValid() && (hdr.ncl.to == 16w2))) {
            if ((hdr.ncl.comp == 8w1)) {
                meta.k1_t77 = hdr.args_c1.a2_round;
                hdr.k1_loc1[0].value = hdr.arr_c1_a5[0].value;
                hdr.k1_loc1[1].value = hdr.arr_c1_a5[1].value;
                hdr.k1_loc1[2].value = hdr.arr_c1_a5[2].value;
                hdr.k1_loc1[3].value = hdr.arr_c1_a5[3].value;
                hdr.k1_loc1[4].value = hdr.arr_c1_a5[4].value;
                hdr.k1_loc1[5].value = hdr.arr_c1_a5[5].value;
                hdr.k1_loc1[6].value = hdr.arr_c1_a5[6].value;
                hdr.k1_loc1[7].value = hdr.arr_c1_a5[7].value;
                meta.k1_t87 = (bit<32>)(hdr.args_c1.a0_type);
                meta.k1_t88 = (bit<1>)((meta.k1_t87 == 32w2));
                meta.k1_t89 = (bit<32>)(meta.k1_t77);
                if ((meta.k1_t88 == 1w1)) {
                    meta.k1_t91 = (hdr.args_c1.a1_instance & 32w1023);
                    meta.k1_t92 = ra_Round_0.execute((bit<32>)(meta.k1_t91));
                    meta.k1_t93 = (bit<32>)(meta.k1_t92);
                    meta.k1_t94 = (meta.k1_t89 ^ 32w2147483648);
                    meta.k1_t95 = (meta.k1_t93 ^ 32w2147483648);
                    meta.k1_t96 = (meta.k1_t95 |-| meta.k1_t94);
                    meta.k1_t97 = (bit<1>)((meta.k1_t96 == 32w0));
                    if ((meta.k1_t97 == 1w1)) {
                        meta.k1_t99 = (hdr.args_c1.a1_instance & 32w1023);
                        meta.k1_t100 = ra_VRound_1.execute((bit<32>)(meta.k1_t99));
                        meta.k1_t102 = (hdr.args_c1.a1_instance & 32w1023);
                        meta.k1_t103 = hdr.k1_loc1[0].value;
                        meta.k1_t104 = ra_Value__0_2.execute((bit<32>)(meta.k1_t102));
                        meta.k1_t106 = (hdr.args_c1.a1_instance & 32w1023);
                        meta.k1_t107 = hdr.k1_loc1[1].value;
                        meta.k1_t108 = ra_Value__1_3.execute((bit<32>)(meta.k1_t106));
                        meta.k1_t110 = (hdr.args_c1.a1_instance & 32w1023);
                        meta.k1_t111 = hdr.k1_loc1[2].value;
                        meta.k1_t112 = ra_Value__2_4.execute((bit<32>)(meta.k1_t110));
                        meta.k1_t114 = (hdr.args_c1.a1_instance & 32w1023);
                        meta.k1_t115 = hdr.k1_loc1[3].value;
                        meta.k1_t116 = ra_Value__3_5.execute((bit<32>)(meta.k1_t114));
                        meta.k1_t118 = (hdr.args_c1.a1_instance & 32w1023);
                        meta.k1_t119 = hdr.k1_loc1[4].value;
                        meta.k1_t120 = ra_Value__4_6.execute((bit<32>)(meta.k1_t118));
                        meta.k1_t122 = (hdr.args_c1.a1_instance & 32w1023);
                        meta.k1_t123 = hdr.k1_loc1[5].value;
                        meta.k1_t124 = ra_Value__5_7.execute((bit<32>)(meta.k1_t122));
                        meta.k1_t126 = (hdr.args_c1.a1_instance & 32w1023);
                        meta.k1_t127 = hdr.k1_loc1[6].value;
                        meta.k1_t128 = ra_Value__6_8.execute((bit<32>)(meta.k1_t126));
                        meta.k1_t130 = (hdr.args_c1.a1_instance & 32w1023);
                        meta.k1_t131 = hdr.k1_loc1[7].value;
                        meta.k1_t132 = ra_Value__7_9.execute((bit<32>)(meta.k1_t130));
                        hdr.args_c1.a0_type = 8w3;
                        hdr.args_c1.a3_vround = meta.k1_t77;
                        hdr.args_c1.a4_vote = 8w1;
                        hdr.ncl.action = 8w3;
                        hdr.ncl.target = (bit<16>)(16w5);
                    } else {
                        hdr.ncl.action = 8w1;
                    }
                } else {
                    hdr.ncl.action = 8w0;
                }
            }
        }
        l2_fwd.apply();
    }
}

